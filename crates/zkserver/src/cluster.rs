//! A ZAB-replicated ensemble of replicas.
//!
//! Reads are answered by the replica the client is connected to; writes are
//! serialized into [`WriteTxn`]s, totally ordered by the [`zab`] cluster, and
//! applied by every replica in commit order. Crashing the leader triggers an
//! election among the survivors, exactly the behaviour the fault-tolerance
//! experiment (Figure 12) measures.

use std::collections::HashMap;

use jute::records::{ConnectResponse, OpCode, ReplyHeader};
use jute::{Request, Response};
use zab::{NodeId, ZabCluster};

use crate::error::ZkError;
use crate::ops::WriteTxn;
use crate::server::{ZkReplica, DEFAULT_SESSION_TIMEOUT_MS};
use crate::watch::WatchEvent;

/// A replicated ZooKeeper ensemble driven deterministically in-process.
pub struct ZkCluster {
    replicas: HashMap<NodeId, ZkReplica>,
    zab: ZabCluster,
    clock_ms: i64,
    session_to_replica: HashMap<i64, NodeId>,
    next_session_hint: i64,
}

impl std::fmt::Debug for ZkCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZkCluster")
            .field("replicas", &self.replicas.len())
            .field("leader", &self.zab.leader_id())
            .field("epoch", &self.zab.epoch())
            .field("sessions", &self.session_to_replica.len())
            .finish()
    }
}

impl ZkCluster {
    /// Creates an ensemble of `size` vanilla replicas.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        Self::with_replica_factory(size, ZkReplica::new)
    }

    /// Creates an ensemble whose replicas are built by `factory` (used by
    /// SecureKeeper to install its interceptor and counter-enclave namer).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn with_replica_factory(size: usize, factory: impl Fn(u32) -> ZkReplica) -> Self {
        let zab = ZabCluster::new(size);
        let mut replicas = HashMap::new();
        for &id in zab.node_ids() {
            replicas.insert(id, factory(id.0));
        }
        ZkCluster {
            replicas,
            zab,
            clock_ms: 0,
            session_to_replica: HashMap::new(),
            next_session_hint: 0,
        }
    }

    /// Identifiers of all replicas.
    pub fn replica_ids(&self) -> Vec<NodeId> {
        self.zab.node_ids().to_vec()
    }

    /// The replica currently acting as ZAB leader.
    pub fn leader_id(&self) -> NodeId {
        self.zab.leader_id()
    }

    /// Number of leader elections run so far.
    pub fn elections(&self) -> u32 {
        self.zab.elections()
    }

    /// True if a write quorum is available.
    pub fn has_quorum(&self) -> bool {
        self.zab.has_quorum()
    }

    /// True if the given replica is crashed.
    pub fn is_crashed(&self, replica: NodeId) -> bool {
        self.zab.is_crashed(replica)
    }

    /// Read access to a replica (panics if the id is unknown).
    ///
    /// # Panics
    ///
    /// Panics if `replica` is not a member of the ensemble.
    pub fn replica(&self, replica: NodeId) -> &ZkReplica {
        &self.replicas[&replica]
    }

    /// Advances the shared logical clock on every replica.
    pub fn advance_clock(&mut self, delta_ms: i64) {
        self.clock_ms += delta_ms;
        for replica in self.replicas.values_mut() {
            replica.advance_clock(delta_ms);
        }
    }

    /// The logical clock in milliseconds.
    pub fn now_ms(&self) -> i64 {
        self.clock_ms
    }

    /// Establishes a session on `replica`.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::SessionExpired`] if the replica is crashed (the
    /// client should retry against another replica).
    pub fn connect(
        &mut self,
        replica: NodeId,
        timeout_ms: i64,
    ) -> Result<ConnectResponse, ZkError> {
        if self.zab.is_crashed(replica) {
            return Err(ZkError::SessionExpired { session_id: 0 });
        }
        let server = self.replicas.get_mut(&replica).ok_or(ZkError::NoQuorum)?;
        // Make session ids unique across replicas by folding in the replica id.
        self.next_session_hint += 1;
        let unique_id = (i64::from(replica.0) << 48) | self.next_session_hint;
        let password = server.adopt_session(unique_id, timeout_ms);
        self.session_to_replica.insert(unique_id, replica);
        Ok(ConnectResponse {
            protocol_version: 0,
            timeout_ms: timeout_ms as i32,
            session_id: unique_id,
            password,
        })
    }

    /// Connects with the default session timeout.
    ///
    /// # Errors
    ///
    /// See [`ZkCluster::connect`].
    pub fn connect_default(&mut self, replica: NodeId) -> Result<ConnectResponse, ZkError> {
        self.connect(replica, DEFAULT_SESSION_TIMEOUT_MS)
    }

    /// The replica a session is connected to, if any.
    pub fn session_replica(&self, session_id: i64) -> Option<NodeId> {
        self.session_to_replica.get(&session_id).copied()
    }

    /// Handles a typed request on behalf of `session_id`.
    pub fn submit(&mut self, session_id: i64, request: &Request) -> Response {
        let Some(&replica_id) = self.session_to_replica.get(&session_id) else {
            return Response::Error(ZkError::SessionExpired { session_id }.code());
        };
        if self.zab.is_crashed(replica_id) {
            // Connection loss: the client must reconnect to another replica.
            return Response::Error(ZkError::SessionExpired { session_id }.code());
        }

        if request.op().is_write() {
            self.submit_write(session_id, replica_id, request)
        } else {
            let replica = self.replicas.get_mut(&replica_id).expect("member");
            replica.serve_read(session_id, request)
        }
    }

    fn submit_write(&mut self, session_id: i64, replica_id: NodeId, request: &Request) -> Response {
        if *request == Request::CloseSession {
            return self.close_session(session_id);
        }
        let request_bytes = ZkReplica::serialize_request(0, request);
        let txn = WriteTxn { session_id, time_ms: self.clock_ms, request_bytes };
        let Some(zxid) = self.zab.broadcast(txn.to_bytes()) else {
            return Response::Error(ZkError::NoQuorum.code());
        };
        let responses = self.apply_all_committed();
        responses
            .get(&(replica_id, zxid.as_u64()))
            .cloned()
            .unwrap_or_else(|| Response::Error(ZkError::NoQuorum.code()))
    }

    /// Applies every newly committed transaction on every alive replica and
    /// returns the responses keyed by `(replica, zxid)`.
    fn apply_all_committed(&mut self) -> HashMap<(NodeId, u64), Response> {
        let mut responses = HashMap::new();
        for id in self.zab.node_ids().to_vec() {
            if self.zab.is_crashed(id) {
                continue;
            }
            for txn in self.zab.take_committed(id) {
                let replica = self.replicas.get_mut(&id).expect("member");
                match WriteTxn::from_bytes(&txn.payload) {
                    Ok(write) => {
                        let response = replica.apply_txn(txn.zxid.as_u64() as i64, &write);
                        responses.insert((id, txn.zxid.as_u64()), response);
                    }
                    Err(err) => {
                        responses.insert((id, txn.zxid.as_u64()), Response::Error(err.code()));
                    }
                }
            }
        }
        responses
    }

    /// Closes a session: deletes its ephemeral znodes through agreement and
    /// removes the session from its replica.
    pub fn close_session(&mut self, session_id: i64) -> Response {
        let Some(&replica_id) = self.session_to_replica.get(&session_id) else {
            return Response::Error(ZkError::SessionExpired { session_id }.code());
        };
        let ephemerals = self.replicas[&replica_id].tree().ephemerals_of(session_id);
        for path in ephemerals {
            let delete = Request::Delete(jute::records::DeleteRequest { path, version: -1 });
            let bytes = ZkReplica::serialize_request(0, &delete);
            let txn = WriteTxn { session_id, time_ms: self.clock_ms, request_bytes: bytes };
            if self.zab.broadcast(txn.to_bytes()).is_none() {
                return Response::Error(ZkError::NoQuorum.code());
            }
            self.apply_all_committed();
        }
        self.session_to_replica.remove(&session_id);
        if let Some(replica) = self.replicas.get_mut(&replica_id) {
            replica.close_session(session_id);
        }
        Response::CloseSession
    }

    /// Crashes a replica; if it was the leader an election is triggered.
    pub fn crash(&mut self, replica: NodeId) {
        self.zab.crash(replica);
        self.apply_all_committed();
    }

    /// Recovers a crashed replica and brings its tree up to date.
    pub fn recover(&mut self, replica: NodeId) {
        self.zab.recover(replica);
        self.apply_all_committed();
    }

    /// Drains watch events queued for a session on its replica.
    pub fn take_watch_events(&mut self, session_id: i64) -> Vec<WatchEvent> {
        match self.session_to_replica.get(&session_id) {
            Some(&replica_id) => {
                self.replicas.get_mut(&replica_id).expect("member").take_watch_events(session_id)
            }
            None => Vec::new(),
        }
    }

    /// Handles a serialized request buffer for `session_id`, passing it
    /// through the connected replica's interceptor on the way in and out —
    /// the byte-level path SecureKeeper instruments.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError`] when the interceptor rejects the message, the
    /// session is unknown, or the buffer cannot be parsed.
    pub fn submit_serialized(
        &mut self,
        session_id: i64,
        mut buffer: Vec<u8>,
    ) -> Result<Vec<u8>, ZkError> {
        let replica_id = *self
            .session_to_replica
            .get(&session_id)
            .ok_or(ZkError::SessionExpired { session_id })?;
        if self.zab.is_crashed(replica_id) {
            return Err(ZkError::SessionExpired { session_id });
        }
        let interceptor = self.replicas[&replica_id].interceptor();
        interceptor.on_request(session_id, &mut buffer)?;
        let (header, request) = Request::from_bytes(&buffer)?;
        let response = self.submit(session_id, &request);
        let zxid = self.replicas[&replica_id].last_zxid();
        let reply = ReplyHeader { xid: header.xid, zxid, err: response.error_code() };
        let mut response_bytes = response.to_bytes(&reply);
        interceptor.on_response(session_id, header.op, &mut response_bytes)?;
        Ok(response_bytes)
    }

    /// Parses a serialized response (see [`ZkCluster::submit_serialized`]).
    ///
    /// # Errors
    ///
    /// Returns a marshalling error when the buffer cannot be decoded.
    pub fn parse_response(bytes: &[u8], op: OpCode) -> Result<(ReplyHeader, Response), ZkError> {
        Ok(Response::from_bytes(bytes, op)?)
    }

    /// Total number of znodes on the leader (for sanity checks and reporting).
    pub fn leader_node_count(&self) -> usize {
        self.replicas[&self.zab.leader_id()].tree().node_count()
    }

    /// Memory footprint of every replica's database, in bytes.
    pub fn memory_bytes_per_replica(&self) -> HashMap<NodeId, usize> {
        self.replicas.iter().map(|(&id, replica)| (id, replica.memory_bytes())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jute::records::{CreateMode, CreateRequest, DeleteRequest, GetDataRequest, SetDataRequest};

    fn create(path: &str, mode: CreateMode) -> Request {
        Request::Create(CreateRequest { path: path.into(), data: b"v".to_vec(), mode })
    }

    fn get(path: &str) -> Request {
        Request::GetData(GetDataRequest { path: path.into(), watch: false })
    }

    #[test]
    fn write_on_one_replica_is_visible_on_all() {
        let mut cluster = ZkCluster::new(3);
        let ids = cluster.replica_ids();
        let session = cluster.connect_default(ids[1]).unwrap().session_id;
        let response = cluster.submit(session, &create("/shared", CreateMode::Persistent));
        assert!(response.is_ok());
        for id in ids {
            assert!(cluster.replica(id).tree().contains("/shared"), "{id}");
        }
    }

    #[test]
    fn reads_are_served_by_the_connected_replica() {
        let mut cluster = ZkCluster::new(3);
        let ids = cluster.replica_ids();
        let writer = cluster.connect_default(ids[0]).unwrap().session_id;
        let reader = cluster.connect_default(ids[2]).unwrap().session_id;
        cluster.submit(writer, &create("/data", CreateMode::Persistent));
        let response = cluster.submit(reader, &get("/data"));
        assert!(response.is_ok());
    }

    #[test]
    fn sequential_creates_agree_across_replicas() {
        let mut cluster = ZkCluster::new(3);
        let ids = cluster.replica_ids();
        let s1 = cluster.connect_default(ids[0]).unwrap().session_id;
        let s2 = cluster.connect_default(ids[1]).unwrap().session_id;
        cluster.submit(s1, &create("/queue", CreateMode::Persistent));
        let r1 = cluster.submit(s1, &create("/queue/item-", CreateMode::PersistentSequential));
        let r2 = cluster.submit(s2, &create("/queue/item-", CreateMode::PersistentSequential));
        let (p1, p2) = match (r1, r2) {
            (Response::Create(a), Response::Create(b)) => (a.path, b.path),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(p1, "/queue/item-0000000000");
        assert_eq!(p2, "/queue/item-0000000001");
        for id in ids {
            assert_eq!(cluster.replica(id).tree().get_children("/queue").unwrap().len(), 2);
        }
    }

    #[test]
    fn follower_failure_keeps_cluster_available() {
        let mut cluster = ZkCluster::new(3);
        let ids = cluster.replica_ids();
        let session = cluster.connect_default(ids[0]).unwrap().session_id;
        cluster.submit(session, &create("/a", CreateMode::Persistent));
        let follower = ids.iter().copied().find(|&id| id != cluster.leader_id()).unwrap();
        cluster.crash(follower);
        assert!(cluster.submit(session, &create("/b", CreateMode::Persistent)).is_ok());
        // The crashed follower missed the write.
        assert!(!cluster.replica(follower).tree().contains("/b"));
        // After recovery it catches up.
        cluster.recover(follower);
        assert!(cluster.replica(follower).tree().contains("/b"));
    }

    #[test]
    fn leader_failure_triggers_election_and_clients_on_other_replicas_continue() {
        let mut cluster = ZkCluster::new(3);
        let ids = cluster.replica_ids();
        let leader = cluster.leader_id();
        let survivor = ids.iter().copied().find(|&id| id != leader).unwrap();
        let session = cluster.connect_default(survivor).unwrap().session_id;
        cluster.submit(session, &create("/before", CreateMode::Persistent));
        cluster.crash(leader);
        assert_ne!(cluster.leader_id(), leader);
        assert_eq!(cluster.elections(), 1);
        let response = cluster.submit(session, &create("/after", CreateMode::Persistent));
        assert!(response.is_ok());
        assert!(cluster.replica(survivor).tree().contains("/before"));
        assert!(cluster.replica(survivor).tree().contains("/after"));
    }

    #[test]
    fn clients_connected_to_a_crashed_replica_lose_their_session() {
        let mut cluster = ZkCluster::new(3);
        let ids = cluster.replica_ids();
        let follower = ids.iter().copied().find(|&id| id != cluster.leader_id()).unwrap();
        let session = cluster.connect_default(follower).unwrap().session_id;
        cluster.crash(follower);
        let response = cluster.submit(session, &get("/"));
        assert!(!response.is_ok());
        // Connecting to the crashed replica also fails; another replica works.
        assert!(cluster.connect_default(follower).is_err());
        assert!(cluster.connect_default(cluster.leader_id()).is_ok());
    }

    #[test]
    fn no_quorum_rejects_writes_with_a_typed_error() {
        let mut cluster = ZkCluster::new(3);
        let ids = cluster.replica_ids();
        let session = cluster.connect_default(ids[0]).unwrap().session_id;
        cluster.crash(ids[1]);
        cluster.crash(ids[2]);
        let response = cluster.submit(session, &create("/x", CreateMode::Persistent));
        // The txn is not silently dropped: the client sees NoQuorum, not a
        // generic marshalling failure.
        assert_eq!(response.error_code(), jute::records::ErrorCode::NoQuorum);
        // The typed client maps the wire code back to the typed error.
        assert_eq!(crate::ops::error_from_code(response.error_code(), "/x"), ZkError::NoQuorum);
        // Reads are still served by the surviving replica.
        assert!(cluster.submit(session, &get("/")).is_ok());
        // Once quorum returns, the same session writes again.
        cluster.recover(ids[1]);
        assert!(cluster.submit(session, &create("/x", CreateMode::Persistent)).is_ok());
    }

    #[test]
    fn version_conflicts_surface_to_the_client() {
        let mut cluster = ZkCluster::new(3);
        let ids = cluster.replica_ids();
        let session = cluster.connect_default(ids[0]).unwrap().session_id;
        cluster.submit(session, &create("/v", CreateMode::Persistent));
        cluster.submit(
            session,
            &Request::SetData(SetDataRequest {
                path: "/v".into(),
                data: b"1".to_vec(),
                version: -1,
            }),
        );
        let stale = cluster.submit(
            session,
            &Request::SetData(SetDataRequest {
                path: "/v".into(),
                data: b"2".to_vec(),
                version: 0,
            }),
        );
        assert_eq!(stale.error_code(), jute::records::ErrorCode::BadVersion);
    }

    #[test]
    fn close_session_cleans_up_ephemerals_cluster_wide() {
        let mut cluster = ZkCluster::new(3);
        let ids = cluster.replica_ids();
        let session = cluster.connect_default(ids[1]).unwrap().session_id;
        cluster.submit(session, &create("/members", CreateMode::Persistent));
        cluster.submit(session, &create("/members/me", CreateMode::Ephemeral));
        for id in &ids {
            assert!(cluster.replica(*id).tree().contains("/members/me"));
        }
        cluster.submit(session, &Request::CloseSession);
        for id in &ids {
            assert!(!cluster.replica(*id).tree().contains("/members/me"), "{id}");
        }
    }

    #[test]
    fn serialized_submission_roundtrips() {
        let mut cluster = ZkCluster::new(3);
        let ids = cluster.replica_ids();
        let session = cluster.connect_default(ids[0]).unwrap().session_id;
        let bytes = ZkReplica::serialize_request(3, &create("/raw", CreateMode::Persistent));
        let response_bytes = cluster.submit_serialized(session, bytes).unwrap();
        let (header, response) =
            ZkCluster::parse_response(&response_bytes, OpCode::Create).unwrap();
        assert_eq!(header.xid, 3);
        assert!(response.is_ok());
        let bytes = ZkReplica::serialize_request(4, &get("/raw"));
        let response_bytes = cluster.submit_serialized(session, bytes).unwrap();
        let (_, response) = ZkCluster::parse_response(&response_bytes, OpCode::GetData).unwrap();
        assert!(response.is_ok());
    }

    #[test]
    fn deletes_replicate() {
        let mut cluster = ZkCluster::new(3);
        let ids = cluster.replica_ids();
        let session = cluster.connect_default(ids[0]).unwrap().session_id;
        cluster.submit(session, &create("/gone", CreateMode::Persistent));
        let response = cluster
            .submit(session, &Request::Delete(DeleteRequest { path: "/gone".into(), version: -1 }));
        assert!(response.is_ok());
        for id in ids {
            assert!(!cluster.replica(id).tree().contains("/gone"));
        }
    }
}
