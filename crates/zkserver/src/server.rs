//! A single ZooKeeper replica.
//!
//! A replica owns the data tree, the sessions of the clients connected to it,
//! their watches, and the byte-level request path that SecureKeeper's entry
//! enclave intercepts. In standalone mode the replica orders writes itself;
//! in cluster mode ([`crate::cluster::ZkCluster`]) writes arrive as committed
//! ZAB transactions via [`ZkReplica::apply_txn`].
//!
//! The replica uses interior mutability throughout so it can be shared
//! between the threads of the networked transport ([`crate::net`]): reads
//! take a shared lock on the tree and run concurrently, writes take the
//! exclusive lock and allocate their zxid inside it, so zxid order always
//! matches tree-application order.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock, RwLockReadGuard};

use jute::records::{ConnectResponse, OpCode, ReplyHeader, RequestHeader};
use jute::{Request, Response};

use crate::error::ZkError;
use crate::ops::{self, ApplyContext, DefaultSequentialNamer, SequentialNamer, WriteTxn};
use crate::pipeline::{PassthroughInterceptor, RequestInterceptor};
use crate::session::{Clock, ManualClock, SessionManager, SessionRecord};
use crate::tree::{split_path, DataTree};
use crate::watch::{WatchEvent, WatchEventKind, WatchManager};

/// Default session timeout granted to clients, in milliseconds.
pub const DEFAULT_SESSION_TIMEOUT_MS: i64 = 30_000;

/// One ZooKeeper replica.
pub struct ZkReplica {
    id: u32,
    tree: RwLock<DataTree>,
    sessions: Mutex<SessionManager>,
    watches: Mutex<WatchManager>,
    namer: Arc<dyn SequentialNamer>,
    interceptor: Arc<dyn RequestInterceptor>,
    clock: Arc<dyn Clock>,
    /// Kept when the replica runs on the default [`ManualClock`] so
    /// [`ZkReplica::advance_clock`] can drive it (deterministic tests).
    manual_clock: Option<Arc<ManualClock>>,
    last_zxid: AtomicI64,
    watch_events: Mutex<Vec<WatchEvent>>,
}

impl std::fmt::Debug for ZkReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZkReplica")
            .field("id", &self.id)
            .field("znodes", &self.tree.read().node_count())
            .field("sessions", &self.sessions.lock().count())
            .field("last_zxid", &self.last_zxid())
            .finish()
    }
}

impl ZkReplica {
    /// Creates a replica with the default (vanilla ZooKeeper) behaviour and a
    /// manually ticked clock.
    pub fn new(id: u32) -> Self {
        let manual = Arc::new(ManualClock::new());
        ZkReplica {
            id,
            tree: RwLock::new(DataTree::new()),
            // Session ids are namespaced by replica id so ephemeral owners
            // stay unique when several replicas of an ensemble each accept
            // their own client connections.
            sessions: Mutex::new(SessionManager::with_id_base(i64::from(id) << 48)),
            watches: Mutex::new(WatchManager::new()),
            namer: Arc::new(DefaultSequentialNamer),
            interceptor: Arc::new(PassthroughInterceptor),
            clock: Arc::clone(&manual) as Arc<dyn Clock>,
            manual_clock: Some(manual),
            last_zxid: AtomicI64::new(0),
            watch_events: Mutex::new(Vec::new()),
        }
    }

    /// Replaces the sequential-node naming hook (SecureKeeper's counter enclave).
    pub fn with_namer(mut self, namer: Arc<dyn SequentialNamer>) -> Self {
        self.namer = namer;
        self
    }

    /// Replaces the request/response interceptor (SecureKeeper's entry enclaves).
    pub fn with_interceptor(mut self, interceptor: Arc<dyn RequestInterceptor>) -> Self {
        self.interceptor = interceptor;
        self
    }

    /// Replaces the session time source. The networked server installs a
    /// [`crate::session::MonotonicClock`] here so session expiry follows
    /// wall-clock time; [`ZkReplica::advance_clock`] becomes a no-op for the
    /// clock (it still runs the expiry sweep).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self.manual_clock = None;
        self
    }

    /// The replica's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The interceptor installed on this replica.
    pub fn interceptor(&self) -> Arc<dyn RequestInterceptor> {
        Arc::clone(&self.interceptor)
    }

    /// Read access to the data tree (holds the tree's shared lock).
    pub fn tree(&self) -> RwLockReadGuard<'_, DataTree> {
        self.tree.read()
    }

    /// Approximate memory footprint of the replica's database in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.tree.read().approximate_memory_bytes()
    }

    /// The session clock in milliseconds.
    pub fn now_ms(&self) -> i64 {
        self.clock.now_ms()
    }

    /// Advances the manual clock (when installed) and expires timed-out
    /// sessions, removing their ephemeral znodes.
    pub fn advance_clock(&self, delta_ms: i64) {
        if let Some(manual) = &self.manual_clock {
            manual.advance(delta_ms);
        }
        self.tick();
    }

    /// Runs one session-expiry sweep at the current clock reading and returns
    /// the ids of the sessions that expired. The networked server calls this
    /// from its background ticker.
    pub fn tick(&self) -> Vec<i64> {
        let now = self.clock.now_ms();
        let expired = self.sessions.lock().expire_sessions(now);
        for &session_id in &expired {
            self.cleanup_session(session_id);
            self.interceptor.on_session_closed(session_id);
        }
        expired
    }

    /// The zxid of the most recently applied write.
    pub fn last_zxid(&self) -> i64 {
        self.last_zxid.load(Ordering::SeqCst)
    }

    /// `(id, timeout_ms)` of every active session, sorted by id.
    pub fn session_table(&self) -> Vec<(i64, i64)> {
        self.sessions.lock().session_table()
    }

    /// The full durable record (id, timeout, password) of every active
    /// session, sorted by id — the session table persisted in snapshots so
    /// clients can re-attach after a full-ensemble restart.
    pub fn session_records(&self) -> Vec<SessionRecord> {
        self.sessions.lock().session_records()
    }

    /// Replaces the replica's entire state with a recovered or
    /// leader-shipped snapshot: the tree, the applied-zxid watermark, and
    /// the session table (adopted so recovered ephemeral owners can still
    /// expire). Watches are *not* restored — they are connection state, and
    /// the connections did not survive the restart.
    pub fn install_snapshot(&self, tree: DataTree, last_zxid: i64, sessions: &[SessionRecord]) {
        {
            let mut guard = self.tree.write();
            *guard = tree;
            self.last_zxid.store(last_zxid, Ordering::SeqCst);
        }
        let now = self.clock.now_ms();
        let mut manager = self.sessions.lock();
        for record in sessions {
            // Sessions connected to this replica right now keep their live
            // state (password, last-seen); only unknown owners are adopted.
            if !manager.is_active(record.id) {
                manager.adopt_with_password(record.id, record.timeout_ms, &record.password, now);
            }
        }
    }

    /// Number of active sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.lock().count()
    }

    /// Number of watches currently armed (registered and not yet fired).
    pub fn watch_count(&self) -> usize {
        self.watches.lock().pending()
    }

    /// Establishes a new client session.
    pub fn connect(&self, timeout_ms: i64) -> ConnectResponse {
        let (session_id, password) =
            self.sessions.lock().create_session(timeout_ms, self.clock.now_ms());
        ConnectResponse { protocol_version: 0, timeout_ms: timeout_ms as i32, session_id, password }
    }

    /// Registers a session under an externally assigned id (cluster mode);
    /// returns the session password.
    pub fn adopt_session(&self, session_id: i64, timeout_ms: i64) -> Vec<u8> {
        self.sessions.lock().adopt(session_id, timeout_ms, self.clock.now_ms())
    }

    /// Re-attaches a client to an existing session: verifies the password
    /// against the (possibly snapshot-recovered) session and touches it.
    /// Returns `None` for unknown sessions or a password mismatch — the
    /// caller falls back to establishing a fresh session.
    pub fn reattach_session(&self, session_id: i64, password: &[u8]) -> Option<ConnectResponse> {
        let timeout_ms =
            self.sessions.lock().reattach(session_id, password, self.clock.now_ms())?;
        Some(ConnectResponse {
            protocol_version: 0,
            timeout_ms: timeout_ms as i32,
            session_id,
            password: password.to_vec(),
        })
    }

    /// Closes a session, removing its watches and ephemeral znodes.
    pub fn close_session(&self, session_id: i64) {
        if self.sessions.lock().close_session(session_id) {
            self.cleanup_session(session_id);
        }
        self.interceptor.on_session_closed(session_id);
    }

    /// Ids of sessions whose timeout has elapsed at the current clock
    /// reading, *without* expiring them. The ensemble server uses this to
    /// replicate the ephemeral cleanup through agreement before removing the
    /// session with [`ZkReplica::remove_session_local`].
    pub fn peek_expired_sessions(&self) -> Vec<i64> {
        self.sessions.lock().peek_expired(self.clock.now_ms())
    }

    /// Removes a session and its watches without touching the data tree.
    /// Cluster mode only: the session's ephemeral znodes must already have
    /// been deleted through agreement (a local delete would fork the
    /// replicated tree and corrupt the zxid sequence).
    pub fn remove_session_local(&self, session_id: i64) {
        if self.sessions.lock().close_session(session_id) {
            self.watches.lock().remove_session(session_id);
        }
        self.interceptor.on_session_closed(session_id);
    }

    fn cleanup_session(&self, session_id: i64) {
        self.watches.lock().remove_session(session_id);
        let mut tree = self.tree.write();
        for path in tree.ephemerals_of(session_id) {
            let zxid = self.last_zxid.fetch_add(1, Ordering::SeqCst) + 1;
            if tree.delete(&path, -1, zxid).is_ok() {
                self.record_delete_watches(&path, zxid);
            }
        }
    }

    /// Handles a typed request in standalone mode (the replica orders writes
    /// itself). Returns the response; watch events are queued separately and
    /// retrieved with [`ZkReplica::take_watch_events`].
    pub fn handle_request(&self, session_id: i64, request: &Request) -> Response {
        {
            let mut sessions = self.sessions.lock();
            if !sessions.is_active(session_id) {
                return Response::Error(ZkError::SessionExpired { session_id }.code());
            }
            sessions.touch(session_id, self.clock.now_ms());
        }

        if request.op().is_write() {
            if *request == Request::CloseSession {
                self.close_session(session_id);
                return Response::CloseSession;
            }
            // The zxid is allocated while holding the exclusive tree lock, so
            // concurrent writers always apply in zxid order.
            let mut tree = self.tree.write();
            let zxid = self.last_zxid.fetch_add(1, Ordering::SeqCst) + 1;
            let ctx = ApplyContext { zxid, time_ms: self.clock.now_ms(), session_id };
            self.apply_write_with_watches(&mut tree, request, &ctx)
        } else {
            self.handle_read(session_id, request)
        }
    }

    fn handle_read(&self, session_id: i64, request: &Request) -> Response {
        self.handle_read_watch_only(session_id, request);
        match ops::apply_read(&self.tree.read(), request) {
            Ok(response) => response,
            Err(err) => ops::error_response(&err),
        }
    }

    fn apply_write_with_watches(
        &self,
        tree: &mut DataTree,
        request: &Request,
        ctx: &ApplyContext,
    ) -> Response {
        let result = ops::apply_write(tree, request, ctx, self.namer.as_ref());
        match result {
            Ok(response) => {
                self.record_write_watches(request, &response, ctx.zxid);
                response
            }
            Err(err) => ops::error_response(&err),
        }
    }

    fn record_write_watches(&self, request: &Request, response: &Response, zxid: i64) {
        match (request, response) {
            (Request::Create(_), Response::Create(create)) => {
                self.record_create_watches(&create.path, zxid);
            }
            (Request::Delete(delete), Response::Delete) => {
                self.record_delete_watches(&delete.path, zxid);
            }
            (Request::SetData(set), Response::SetData(_)) => {
                self.record_set_data_watches(&set.path, zxid);
            }
            (Request::Multi(multi), Response::Multi(results)) if results.is_committed() => {
                self.record_multi_watches(multi, results, zxid);
            }
            _ => {}
        }
    }

    /// Fires the watches of one committed `multi` as a single batch: the
    /// per-path events of the transaction are coalesced — each `(path,
    /// trigger)` pair fires at most once no matter how many sub-operations
    /// touched it, and one `NodeChildrenChanged` per parent covers all the
    /// children the batch created or deleted under it — and every event is
    /// tagged with the transaction's single zxid. An aborted multi changed
    /// nothing and fires nothing.
    fn record_multi_watches(
        &self,
        multi: &jute::multi::MultiRequest,
        results: &jute::multi::MultiResponse,
        zxid: i64,
    ) {
        use std::collections::HashSet;

        let mut fired: HashSet<(String, WatchEventKind)> = HashSet::new();
        let mut parents: HashSet<String> = HashSet::new();
        let mut events = Vec::new();
        let mut watches = self.watches.lock();
        for (op, result) in multi.ops.iter().zip(&results.results) {
            let (path, kind) = match (op, result) {
                (jute::multi::Op::Create(_), jute::multi::OpResult::Create { path }) => {
                    (path.as_str(), WatchEventKind::NodeCreated)
                }
                (jute::multi::Op::Delete(delete), jute::multi::OpResult::Delete) => {
                    (delete.path.as_str(), WatchEventKind::NodeDeleted)
                }
                (jute::multi::Op::SetData(set), jute::multi::OpResult::SetData { .. }) => {
                    (set.path.as_str(), WatchEventKind::NodeDataChanged)
                }
                _ => continue,
            };
            if fired.insert((path.to_string(), kind)) {
                events.extend(watches.trigger_data(path, kind, zxid));
            }
            if kind != WatchEventKind::NodeDataChanged {
                if let Some((parent, _)) = split_path(path) {
                    if parents.insert(parent.to_string()) {
                        events.extend(watches.trigger_children(parent, zxid));
                    }
                }
            }
        }
        drop(watches);
        self.watch_events.lock().extend(events);
    }

    fn record_create_watches(&self, path: &str, zxid: i64) {
        let events = self.watches.lock().trigger_data(path, WatchEventKind::NodeCreated, zxid);
        self.watch_events.lock().extend(events);
        if let Some((parent, _)) = split_path(path) {
            let events = self.watches.lock().trigger_children(parent, zxid);
            self.watch_events.lock().extend(events);
        }
    }

    fn record_set_data_watches(&self, path: &str, zxid: i64) {
        let events = self.watches.lock().trigger_data(path, WatchEventKind::NodeDataChanged, zxid);
        self.watch_events.lock().extend(events);
    }

    fn record_delete_watches(&self, path: &str, zxid: i64) {
        let events = self.watches.lock().trigger_data(path, WatchEventKind::NodeDeleted, zxid);
        self.watch_events.lock().extend(events);
        if let Some((parent, _)) = split_path(path) {
            let events = self.watches.lock().trigger_children(parent, zxid);
            self.watch_events.lock().extend(events);
        }
    }

    /// Drains watch notifications queued for `session_id`.
    pub fn take_watch_events(&self, session_id: i64) -> Vec<WatchEvent> {
        let mut queue = self.watch_events.lock();
        let (mine, rest): (Vec<WatchEvent>, Vec<WatchEvent>) =
            std::mem::take(&mut *queue).into_iter().partition(|e| e.session_id == session_id);
        *queue = rest;
        mine
    }

    /// Drains every queued watch notification (the networked server fans these
    /// out to the live connections after each write).
    pub fn take_all_watch_events(&self) -> Vec<WatchEvent> {
        std::mem::take(&mut *self.watch_events.lock())
    }

    /// Registers read-side watches for cluster mode (where reads are routed
    /// through the cluster but watches live on the connected replica).
    pub fn register_read_watch(&self, session_id: i64, request: &Request) {
        if self.sessions.lock().is_active(session_id) {
            self.handle_read_watch_only(session_id, request);
        }
    }

    fn handle_read_watch_only(&self, session_id: i64, request: &Request) {
        // Register watches before reading, as ZooKeeper does.
        match request {
            Request::GetData(get) if get.watch => {
                self.watches.lock().add_data_watch(&get.path, session_id)
            }
            Request::Exists(exists) if exists.watch => {
                self.watches.lock().add_data_watch(&exists.path, session_id)
            }
            Request::GetChildren(ls) if ls.watch => {
                self.watches.lock().add_child_watch(&ls.path, session_id)
            }
            _ => {}
        }
    }

    /// True if the session is active on this replica.
    pub fn has_session(&self, session_id: i64) -> bool {
        self.sessions.lock().is_active(session_id)
    }

    /// Touches a session (cluster mode bookkeeping).
    pub fn touch_session(&self, session_id: i64) {
        self.sessions.lock().touch(session_id, self.clock.now_ms());
    }

    /// Answers a read directly from the local tree (cluster mode).
    pub fn serve_read(&self, session_id: i64, request: &Request) -> Response {
        {
            let mut sessions = self.sessions.lock();
            if !sessions.is_active(session_id) {
                return Response::Error(ZkError::SessionExpired { session_id }.code());
            }
            sessions.touch(session_id, self.clock.now_ms());
        }
        self.handle_read(session_id, request)
    }

    /// Applies a committed write transaction delivered by ZAB (cluster mode).
    ///
    /// Every replica calls this with the same arguments in the same order, so
    /// the trees stay identical. The returned response is only meaningful on
    /// the replica the issuing client is connected to.
    pub fn apply_txn(&self, zxid: i64, txn: &WriteTxn) -> Response {
        let mut tree = self.tree.write();
        self.last_zxid.store(zxid, Ordering::SeqCst);
        let (_, request) = match Request::from_bytes(&txn.request_bytes) {
            Ok(parsed) => parsed,
            Err(err) => return ops::error_response(&ZkError::from(err)),
        };
        let ctx = ApplyContext { zxid, time_ms: txn.time_ms, session_id: txn.session_id };
        self.apply_write_with_watches(&mut tree, &request, &ctx)
    }

    /// Handles a serialized request buffer exactly as it arrives from the
    /// client connection: the interceptor sees the raw bytes first (this is
    /// where SecureKeeper's entry enclave decrypts the transport layer and
    /// encrypts sensitive fields), then the request is parsed and dispatched,
    /// and the serialized response passes through the interceptor again.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError`] when the interceptor rejects the message or the
    /// buffer cannot be parsed; operation-level failures are reported in-band
    /// as error responses.
    pub fn handle_serialized_request(
        &self,
        session_id: i64,
        mut buffer: Vec<u8>,
    ) -> Result<Vec<u8>, ZkError> {
        let interceptor = Arc::clone(&self.interceptor);
        interceptor.on_request(session_id, &mut buffer)?;
        let (header, request) = Request::from_bytes(&buffer)?;
        let response = self.handle_request(session_id, &request);
        let reply =
            ReplyHeader { xid: header.xid, zxid: self.last_zxid(), err: response.error_code() };
        let mut response_bytes = response.to_bytes(&reply);
        interceptor.on_response(session_id, header.op, &mut response_bytes)?;
        Ok(response_bytes)
    }

    /// Serializes a request for [`ZkReplica::handle_serialized_request`];
    /// mirrors what a real client library does before hitting the wire.
    pub fn serialize_request(xid: i32, request: &Request) -> Vec<u8> {
        request.to_bytes(&RequestHeader { xid, op: request.op() })
    }

    /// Parses a serialized response produced by this replica.
    ///
    /// # Errors
    ///
    /// Returns a marshalling error when the buffer cannot be decoded.
    pub fn parse_response(bytes: &[u8], op: OpCode) -> Result<(ReplyHeader, Response), ZkError> {
        Ok(Response::from_bytes(bytes, op)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::MonotonicClock;
    use jute::records::{
        CreateMode, CreateRequest, DeleteRequest, GetChildrenRequest, GetDataRequest,
        SetDataRequest,
    };

    fn replica_with_session() -> (ZkReplica, i64) {
        let replica = ZkReplica::new(1);
        let connect = replica.connect(DEFAULT_SESSION_TIMEOUT_MS);
        (replica, connect.session_id)
    }

    fn create(path: &str, mode: CreateMode) -> Request {
        Request::Create(CreateRequest { path: path.into(), data: b"v".to_vec(), mode })
    }

    #[test]
    fn standalone_write_read_cycle() {
        let (replica, session) = replica_with_session();
        let response = replica.handle_request(session, &create("/app", CreateMode::Persistent));
        assert!(response.is_ok());
        let response = replica.handle_request(
            session,
            &Request::GetData(GetDataRequest { path: "/app".into(), watch: false }),
        );
        match response {
            Response::GetData(get) => assert_eq!(get.data, b"v"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(replica.last_zxid(), 1);
    }

    #[test]
    fn requests_from_unknown_sessions_are_rejected() {
        let replica = ZkReplica::new(1);
        let response = replica.handle_request(999, &Request::Ping);
        assert_eq!(response.error_code(), jute::records::ErrorCode::SessionExpired);
    }

    #[test]
    fn close_session_removes_ephemerals_and_watches() {
        let (replica, session) = replica_with_session();
        let other = replica.connect(DEFAULT_SESSION_TIMEOUT_MS).session_id;
        replica.handle_request(session, &create("/app", CreateMode::Persistent));
        replica.handle_request(session, &create("/app/worker", CreateMode::Ephemeral));
        // The other session watches the ephemeral node.
        replica.handle_request(
            other,
            &Request::GetData(GetDataRequest { path: "/app/worker".into(), watch: true }),
        );
        replica.handle_request(session, &Request::CloseSession);
        assert!(!replica.tree().contains("/app/worker"));
        let events = replica.take_watch_events(other);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, WatchEventKind::NodeDeleted);
        assert!(!replica.has_session(session));
    }

    #[test]
    fn session_expiry_removes_ephemerals() {
        let (replica, session) = replica_with_session();
        replica.handle_request(session, &create("/e", CreateMode::Ephemeral));
        replica.advance_clock(DEFAULT_SESSION_TIMEOUT_MS + 1);
        assert!(!replica.tree().contains("/e"));
        assert_eq!(replica.session_count(), 0);
    }

    #[test]
    fn monotonic_clock_expires_sessions_without_manual_ticking() {
        let replica = ZkReplica::new(1).with_clock(Arc::new(MonotonicClock::new()));
        let session = replica.connect(1).session_id; // 1 ms timeout
        replica.handle_request(session, &create("/e", CreateMode::Ephemeral));
        std::thread::sleep(std::time::Duration::from_millis(10));
        let expired = replica.tick();
        assert_eq!(expired, vec![session]);
        assert!(!replica.tree().contains("/e"));
        // advance_clock is harmless without a manual clock: it just sweeps.
        replica.advance_clock(1_000);
        assert_eq!(replica.session_count(), 0);
    }

    #[test]
    fn watches_fire_on_data_change_and_child_change() {
        let (replica, session) = replica_with_session();
        replica.handle_request(session, &create("/app", CreateMode::Persistent));
        replica.handle_request(
            session,
            &Request::GetData(GetDataRequest { path: "/app".into(), watch: true }),
        );
        replica.handle_request(
            session,
            &Request::GetChildren(GetChildrenRequest { path: "/app".into(), watch: true }),
        );
        replica.handle_request(
            session,
            &Request::SetData(SetDataRequest {
                path: "/app".into(),
                data: b"x".to_vec(),
                version: -1,
            }),
        );
        replica.handle_request(session, &create("/app/child", CreateMode::Persistent));
        let events = replica.take_watch_events(session);
        let kinds: Vec<WatchEventKind> = events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&WatchEventKind::NodeDataChanged));
        assert!(kinds.contains(&WatchEventKind::NodeChildrenChanged));
        // Watches are one-shot: another change fires nothing.
        replica.handle_request(
            session,
            &Request::SetData(SetDataRequest {
                path: "/app".into(),
                data: b"y".to_vec(),
                version: -1,
            }),
        );
        assert!(replica.take_watch_events(session).is_empty());
    }

    #[test]
    fn multi_watches_fire_coalesced_and_share_the_txn_zxid() {
        use jute::multi::Op;
        use jute::records::SetDataRequest;

        let (replica, writer) = replica_with_session();
        let watcher_a = replica.connect(DEFAULT_SESSION_TIMEOUT_MS).session_id;
        let watcher_b = replica.connect(DEFAULT_SESSION_TIMEOUT_MS).session_id;
        replica.handle_request(writer, &create("/app", CreateMode::Persistent));
        replica.handle_request(writer, &create("/app/cfg", CreateMode::Persistent));
        // Both sessions watch the parent's children and the cfg node's data.
        for session in [watcher_a, watcher_b] {
            replica.handle_request(
                session,
                &Request::GetChildren(GetChildrenRequest { path: "/app".into(), watch: true }),
            );
            replica.handle_request(
                session,
                &Request::GetData(GetDataRequest { path: "/app/cfg".into(), watch: true }),
            );
        }

        // One committed multi: two creates under the same parent and two
        // set_datas on the same node.
        let response = replica.handle_request(
            writer,
            &Request::Multi(jute::multi::MultiRequest {
                ops: vec![
                    Op::Create(CreateRequest {
                        path: "/app/one".into(),
                        data: vec![],
                        mode: CreateMode::Persistent,
                    }),
                    Op::Create(CreateRequest {
                        path: "/app/two".into(),
                        data: vec![],
                        mode: CreateMode::Persistent,
                    }),
                    Op::SetData(SetDataRequest {
                        path: "/app/cfg".into(),
                        data: b"v1".to_vec(),
                        version: -1,
                    }),
                    Op::SetData(SetDataRequest {
                        path: "/app/cfg".into(),
                        data: b"v2".to_vec(),
                        version: -1,
                    }),
                ],
            }),
        );
        assert!(response.is_ok());
        let txn_zxid = replica.last_zxid();

        for session in [watcher_a, watcher_b] {
            let events = replica.take_watch_events(session);
            // Coalesced: ONE children-changed for the parent (not one per
            // created child) and ONE data-changed for the twice-written
            // node, all tagged with the batch's single zxid.
            let kinds: Vec<WatchEventKind> = events.iter().map(|e| e.kind).collect();
            assert_eq!(
                kinds,
                vec![WatchEventKind::NodeChildrenChanged, WatchEventKind::NodeDataChanged],
                "session {session}"
            );
            assert!(
                events.iter().all(|e| e.zxid == txn_zxid),
                "all events of one multi carry its zxid: {events:?}"
            );
        }
    }

    #[test]
    fn serialized_path_roundtrips_through_interceptor() {
        let (replica, session) = replica_with_session();
        let request = create("/via-bytes", CreateMode::Persistent);
        let bytes = ZkReplica::serialize_request(5, &request);
        let response_bytes = replica.handle_serialized_request(session, bytes).unwrap();
        let (header, response) =
            ZkReplica::parse_response(&response_bytes, OpCode::Create).unwrap();
        assert_eq!(header.xid, 5);
        assert!(response.is_ok());
        assert!(replica.tree().contains("/via-bytes"));
    }

    #[test]
    fn interceptor_errors_abort_the_request() {
        struct Reject;
        impl RequestInterceptor for Reject {
            fn on_request(&self, _session: i64, _buffer: &mut Vec<u8>) -> Result<(), ZkError> {
                Err(ZkError::Marshalling { reason: "tampered".into() })
            }
        }
        let replica = ZkReplica::new(1).with_interceptor(Arc::new(Reject));
        let session = replica.connect(1000).session_id;
        let bytes = ZkReplica::serialize_request(1, &Request::Ping);
        assert!(replica.handle_serialized_request(session, bytes).is_err());
    }

    #[test]
    fn apply_txn_matches_standalone_semantics() {
        let (replica, session) = replica_with_session();
        let request = create("/from-zab", CreateMode::Persistent);
        let txn = WriteTxn {
            session_id: session,
            time_ms: 42,
            request_bytes: ZkReplica::serialize_request(1, &request),
        };
        let response = replica.apply_txn(10, &txn);
        assert!(response.is_ok());
        assert_eq!(replica.tree().get("/from-zab").unwrap().stat().czxid, 10);
        assert_eq!(replica.last_zxid(), 10);
    }

    #[test]
    fn delete_and_error_paths() {
        let (replica, session) = replica_with_session();
        replica.handle_request(session, &create("/a", CreateMode::Persistent));
        let response = replica.handle_request(
            session,
            &Request::Delete(DeleteRequest { path: "/missing".into(), version: -1 }),
        );
        assert_eq!(response.error_code(), jute::records::ErrorCode::NoNode);
        let response = replica.handle_request(
            session,
            &Request::Delete(DeleteRequest { path: "/a".into(), version: -1 }),
        );
        assert!(response.is_ok());
    }

    #[test]
    fn concurrent_reads_and_writes_keep_zxids_ordered() {
        let replica = Arc::new(ZkReplica::new(1));
        replica.handle_request(
            replica.connect(DEFAULT_SESSION_TIMEOUT_MS).session_id,
            &create("/root", CreateMode::Persistent),
        );
        let mut handles = Vec::new();
        for t in 0..4 {
            let replica = Arc::clone(&replica);
            handles.push(std::thread::spawn(move || {
                let session = replica.connect(DEFAULT_SESSION_TIMEOUT_MS).session_id;
                let mut last = 0i64;
                for i in 0..25 {
                    let response = replica.handle_request(
                        session,
                        &create(&format!("/root/t{t}-{i}"), CreateMode::Persistent),
                    );
                    assert!(response.is_ok());
                    let zxid = replica.last_zxid();
                    assert!(zxid > last, "zxid moved backwards: {zxid} after {last}");
                    last = zxid;
                    // Interleave reads, which only take the shared lock.
                    let read = replica.handle_request(
                        session,
                        &Request::GetChildren(GetChildrenRequest {
                            path: "/root".into(),
                            watch: false,
                        }),
                    );
                    assert!(read.is_ok());
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        // 1 root create + 4 threads × 25 creates.
        assert_eq!(replica.last_zxid(), 101);
        assert_eq!(replica.tree().get("/root").unwrap().stat().num_children, 100);
    }

    #[test]
    fn debug_output_is_informative() {
        let (replica, _) = replica_with_session();
        let rendered = format!("{replica:?}");
        assert!(rendered.contains("ZkReplica"));
        assert!(rendered.contains("sessions"));
    }
}
