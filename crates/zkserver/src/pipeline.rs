//! The request-processing pipeline and its interception points.
//!
//! ZooKeeper pushes every message through a chain of *request processors*
//! (preparation, proposal/agreement, final application). SecureKeeper's whole
//! integration consists of intercepting the serialized byte buffers right
//! before they enter this pipeline and right after responses leave it — the
//! Java side forwards the buffers over JNI into the entry enclave (paper
//! Section 5.1, only three changed lines of ZooKeeper code).
//!
//! This module defines the [`RequestInterceptor`] trait that models those two
//! hooks at the same granularity (opaque byte buffers plus the session id and
//! pending operation), and the [`ProcessingStage`] bookkeeping used by the
//! benchmark harness to attribute costs per stage.

use jute::records::OpCode;

use crate::error::ZkError;

/// Hooks invoked on serialized request and response buffers.
///
/// Implementations may rewrite the buffer in place (including growing it —
/// the paper's "larger buffer allocated outside" trick is modelled by the
/// `Vec` simply reallocating). The default implementation passes buffers
/// through untouched, which yields vanilla ZooKeeper behaviour.
pub trait RequestInterceptor: Send + Sync {
    /// Called with the serialized request exactly as received from the client,
    /// before deserialization by the server.
    ///
    /// # Errors
    ///
    /// Returning an error aborts the request; the client receives a
    /// marshalling/authentication failure.
    fn on_request(&self, session_id: i64, buffer: &mut Vec<u8>) -> Result<(), ZkError> {
        let _ = (session_id, buffer);
        Ok(())
    }

    /// Called with the serialized response right before it is handed back to
    /// the client connection.
    ///
    /// # Errors
    ///
    /// Returning an error aborts the response; the client receives a
    /// marshalling/authentication failure.
    fn on_response(
        &self,
        session_id: i64,
        op: OpCode,
        buffer: &mut Vec<u8>,
    ) -> Result<(), ZkError> {
        let _ = (session_id, op, buffer);
        Ok(())
    }

    /// Called when a new session completes the connection handshake, with the
    /// opaque handshake blob the client sent in `ConnectRequest.password`.
    /// SecureKeeper installs the session's transport key in a fresh entry
    /// enclave here; the default accepts any blob and keeps the session
    /// unencrypted.
    ///
    /// # Errors
    ///
    /// Returning an error rejects the connection before any request is
    /// processed.
    fn on_session_established(&self, session_id: i64, handshake: &[u8]) -> Result<(), ZkError> {
        let _ = (session_id, handshake);
        Ok(())
    }

    /// Called with a serialized server-initiated watch notification right
    /// before it is pushed to the client connection. SecureKeeper seals the
    /// frame with the session's transport key (and rewrites the encrypted
    /// path back to plaintext) so notifications travel the same protected
    /// channel as responses.
    ///
    /// # Errors
    ///
    /// Returning an error drops the notification.
    fn on_event(&self, session_id: i64, buffer: &mut Vec<u8>) -> Result<(), ZkError> {
        let _ = (session_id, buffer);
        Ok(())
    }

    /// Called when a session disconnects, so per-session state (SecureKeeper's
    /// per-client entry enclave) can be torn down.
    fn on_session_closed(&self, session_id: i64) {
        let _ = session_id;
    }

    /// A short human-readable name used in logs and benchmark reports.
    fn name(&self) -> &'static str {
        "interceptor"
    }

    /// A snapshot of the interceptor's internal counters, exported through
    /// the ops plane (`/metrics` and `mntr`). The default reports all
    /// zeroes — a passthrough interceptor seals nothing and caches nothing.
    fn stats(&self) -> InterceptorStats {
        InterceptorStats::default()
    }
}

/// Counters an interceptor exposes to the ops plane. SecureKeeper's entry
/// interceptor fills these from its path cache and sealing pipeline; a
/// passthrough interceptor leaves them at zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterceptorStats {
    /// Path-cache lookups answered from the cache.
    pub path_cache_hits: u64,
    /// Path-cache lookups that had to compute the mapping.
    pub path_cache_misses: u64,
    /// Frames sealed (encrypted) on the response/event path.
    pub frames_sealed: u64,
    /// Frames opened (decrypted) on the request path.
    pub frames_opened: u64,
    /// Per-session entry enclaves currently instantiated.
    pub entry_enclaves: u64,
}

/// The identity interceptor: vanilla ZooKeeper message flow.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassthroughInterceptor;

impl RequestInterceptor for PassthroughInterceptor {
    fn name(&self) -> &'static str {
        "passthrough"
    }
}

/// The stages of ZooKeeper's request-processor chain, used for accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessingStage {
    /// Connection handling and deserialization.
    Preparation,
    /// ZAB agreement (writes only).
    Proposal,
    /// Application to the data tree and response serialization.
    Final,
}

impl ProcessingStage {
    /// All stages in pipeline order.
    pub fn all() -> [ProcessingStage; 3] {
        [ProcessingStage::Preparation, ProcessingStage::Proposal, ProcessingStage::Final]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_leaves_buffers_untouched() {
        let interceptor = PassthroughInterceptor;
        let mut buffer = vec![1, 2, 3];
        interceptor.on_request(1, &mut buffer).unwrap();
        interceptor.on_response(1, OpCode::GetData, &mut buffer).unwrap();
        interceptor.on_session_closed(1);
        assert_eq!(buffer, vec![1, 2, 3]);
        assert_eq!(interceptor.name(), "passthrough");
    }

    #[test]
    fn custom_interceptor_can_rewrite_buffers() {
        struct Doubler;
        impl RequestInterceptor for Doubler {
            fn on_request(&self, _session: i64, buffer: &mut Vec<u8>) -> Result<(), ZkError> {
                let copy = buffer.clone();
                buffer.extend_from_slice(&copy);
                Ok(())
            }
        }
        let mut buffer = vec![7, 8];
        Doubler.on_request(1, &mut buffer).unwrap();
        assert_eq!(buffer, vec![7, 8, 7, 8]);
    }

    #[test]
    fn stages_enumerate_in_order() {
        assert_eq!(
            ProcessingStage::all(),
            [ProcessingStage::Preparation, ProcessingStage::Proposal, ProcessingStage::Final]
        );
    }
}
