//! The shared typed operation layer.
//!
//! Every client handle in the workspace — the in-process [`crate::ZkClient`],
//! the socket [`crate::ZkTcpClient`], and SecureKeeper's encrypted
//! equivalents — exposes the same convenience surface (`create`, `get_data`,
//! `set_data`, `delete`, `get_children`, `exists`, `ping`, `multi`). Only the
//! transport differs. This module holds the parts they share:
//!
//! * the `expect_*` decoders that turn a wire [`Response`] into the typed
//!   result or the typed [`ZkError`], so the response-match boilerplate lives
//!   in exactly one place;
//! * the [`MultiDispatch`] trait — "I can send a `multi` and return its
//!   per-operation results" — which is the only thing a transport must
//!   implement to get the [`Txn`] builder;
//! * the [`Txn`] builder itself:
//!   `client.txn().create(..).check(..).set_data(..).delete(..).commit()`.
//!
//! `commit` distinguishes the two failure planes: a transport/session error
//! surfaces as the client's own error type, while a server-side abort maps
//! the *first failing sub-operation* onto the matching typed error
//! (`BadVersion`, `NoNode`, `NodeExists`, ...) with that operation's path —
//! never a generic marshalling failure. Callers that need the full
//! per-operation result vector of an aborted transaction call
//! [`MultiDispatch::multi`] directly, which reports aborts in-band.

use jute::multi::{first_error_of, Op, OpResult};
use jute::records::{
    CheckVersionRequest, CreateMode, CreateRequest, DeleteRequest, ErrorCode, SetDataRequest, Stat,
};
use jute::Response;

use crate::error::ZkError;
use crate::ops::error_from_code;

/// The catch-all for a response variant that does not match the request.
pub fn unexpected_response(response: &Response) -> ZkError {
    ZkError::Marshalling { reason: format!("unexpected response {response:?}") }
}

/// Decodes a CREATE response into the final path.
///
/// # Errors
///
/// Maps error responses onto the typed [`ZkError`] for `path`.
pub fn expect_create(response: Response, path: &str) -> Result<String, ZkError> {
    match response {
        Response::Create(create) => Ok(create.path),
        Response::Error(code) => Err(error_from_code(code, path)),
        other => Err(unexpected_response(&other)),
    }
}

/// Decodes a GET response into payload and metadata.
///
/// # Errors
///
/// Maps error responses onto the typed [`ZkError`] for `path`.
pub fn expect_get_data(response: Response, path: &str) -> Result<(Vec<u8>, Stat), ZkError> {
    match response {
        Response::GetData(get) => Ok((get.data, get.stat)),
        Response::Error(code) => Err(error_from_code(code, path)),
        other => Err(unexpected_response(&other)),
    }
}

/// Decodes a SET response into the updated metadata.
///
/// # Errors
///
/// Maps error responses onto the typed [`ZkError`] for `path`.
pub fn expect_set_data(response: Response, path: &str) -> Result<Stat, ZkError> {
    match response {
        Response::SetData(set) => Ok(set.stat),
        Response::Error(code) => Err(error_from_code(code, path)),
        other => Err(unexpected_response(&other)),
    }
}

/// Decodes a DELETE acknowledgement.
///
/// # Errors
///
/// Maps error responses onto the typed [`ZkError`] for `path`.
pub fn expect_delete(response: Response, path: &str) -> Result<(), ZkError> {
    match response {
        Response::Delete => Ok(()),
        Response::Error(code) => Err(error_from_code(code, path)),
        other => Err(unexpected_response(&other)),
    }
}

/// Decodes an LS response into the child names.
///
/// # Errors
///
/// Maps error responses onto the typed [`ZkError`] for `path`.
pub fn expect_get_children(response: Response, path: &str) -> Result<Vec<String>, ZkError> {
    match response {
        Response::GetChildren(ls) => Ok(ls.children),
        Response::Error(code) => Err(error_from_code(code, path)),
        other => Err(unexpected_response(&other)),
    }
}

/// Decodes an EXISTS response; a missing node is `Ok(None)`, not an error.
///
/// # Errors
///
/// Maps other error responses onto the typed [`ZkError`] for `path`.
pub fn expect_exists(response: Response, path: &str) -> Result<Option<Stat>, ZkError> {
    match response {
        Response::Exists(exists) => Ok(Some(exists.stat)),
        Response::Error(ErrorCode::NoNode) => Ok(None),
        Response::Error(code) => Err(error_from_code(code, path)),
        other => Err(unexpected_response(&other)),
    }
}

/// Decodes a CHECK acknowledgement.
///
/// # Errors
///
/// Maps error responses onto the typed [`ZkError`] for `path`.
pub fn expect_check(response: Response, path: &str) -> Result<(), ZkError> {
    match response {
        Response::Check => Ok(()),
        Response::Error(code) => Err(error_from_code(code, path)),
        other => Err(unexpected_response(&other)),
    }
}

/// Decodes a PING acknowledgement.
///
/// # Errors
///
/// Maps error responses onto the typed [`ZkError`].
pub fn expect_ping(response: Response) -> Result<(), ZkError> {
    match response {
        Response::Ping => Ok(()),
        Response::Error(code) => Err(error_from_code(code, "/")),
        other => Err(unexpected_response(&other)),
    }
}

/// Decodes a `multi` response into the per-sub-operation results. Aborted
/// transactions are *not* an error at this level: the result vector reports
/// them in-band, one slot per requested operation.
///
/// # Errors
///
/// Maps transport-plane error responses (session expiry, quorum loss,
/// interceptor rejection) onto the typed [`ZkError`], and rejects responses
/// whose result count does not match `op_count`.
pub fn expect_multi(response: Response, op_count: usize) -> Result<Vec<OpResult>, ZkError> {
    match response {
        Response::Multi(multi) => {
            if multi.results.len() == op_count {
                Ok(multi.results)
            } else {
                Err(ZkError::Marshalling {
                    reason: format!(
                        "multi response carries {} results for {op_count} operations",
                        multi.results.len()
                    ),
                })
            }
        }
        Response::Error(code) => Err(error_from_code(code, "/")),
        other => Err(unexpected_response(&other)),
    }
}

/// A transport that can execute an atomic `multi` transaction. Implementing
/// this single method equips a client with the [`Txn`] builder via
/// [`MultiDispatch::txn`].
pub trait MultiDispatch {
    /// The client's error type for transport-plane failures.
    type Error: From<ZkError>;

    /// Executes `ops` atomically and returns one [`OpResult`] per operation,
    /// in order. An aborted transaction is reported in-band (error results in
    /// the vector), not as `Err`; `Err` means the request itself failed
    /// (connection loss, expired session, lost quorum, ...).
    ///
    /// # Errors
    ///
    /// Returns the transport-plane failure.
    fn multi(&mut self, ops: Vec<Op>) -> Result<Vec<OpResult>, Self::Error>;

    /// Starts a transaction builder on this client.
    fn txn(&mut self) -> Txn<'_, Self> {
        Txn { client: self, ops: Vec::new() }
    }
}

/// The unified typed client API: every client flavour in the workspace —
/// the in-process [`crate::ZkClient`], the socket [`crate::ZkTcpClient`],
/// and SecureKeeper's encrypted `SecureKeeperClient` — implements this one
/// trait, so workload drivers, chaos scenarios and end-to-end tests can be
/// written once and run against any transport.
///
/// The operation set mirrors ZooKeeper's client library: `create`,
/// `get_data`, `set_data`, `delete`, `get_children` (ls), `exists`, `check`
/// and `ping`, plus atomic `multi`/`txn` through the [`MultiDispatch`]
/// supertrait. All methods take `&mut self` because socket clients mutate
/// connection state (xid counters, frame decoders); the in-process clients
/// simply ignore the exclusivity.
///
/// Error granularity stays per-client ([`crate::ZkError`] for the plain
/// clients, `SkError` for SecureKeeper); generic code that needs to match
/// on specific errors constrains `Error = ZkError`, while code that only
/// propagates can stay fully generic:
///
/// ```
/// use jute::records::CreateMode;
/// use zkserver::typed::ZooKeeper;
/// use zkserver::client::{share, ZkClient};
/// use zkserver::ZkCluster;
/// use zab::NodeId;
///
/// fn heartbeat_file<C: ZooKeeper>(zk: &mut C, path: &str) -> Result<(), C::Error> {
///     zk.create(path, b"alive".to_vec(), CreateMode::Ephemeral)?;
///     zk.ping()
/// }
///
/// let cluster = share(ZkCluster::new(3));
/// let mut client = ZkClient::connect(&cluster, NodeId(1))?;
/// heartbeat_file(&mut client, "/member-1")?;
/// # Ok::<(), zkserver::ZkError>(())
/// ```
pub trait ZooKeeper: MultiDispatch {
    /// Creates a znode and returns its actual path (with the sequence
    /// suffix for sequential modes).
    ///
    /// # Errors
    ///
    /// Propagates the service error (`NodeExists`, `NoNode` for a missing
    /// parent, connection loss, ...).
    fn create(
        &mut self,
        path: &str,
        data: Vec<u8>,
        mode: CreateMode,
    ) -> Result<String, Self::Error>;

    /// Reads a znode's payload and metadata, optionally arming a one-shot
    /// data watch.
    ///
    /// # Errors
    ///
    /// Returns the client's `NoNode` error if the path does not exist.
    fn get_data(&mut self, path: &str, watch: bool) -> Result<(Vec<u8>, Stat), Self::Error>;

    /// Overwrites a znode's payload (-1 skips the version guard).
    ///
    /// # Errors
    ///
    /// Returns `BadVersion` on a version mismatch or `NoNode`.
    fn set_data(&mut self, path: &str, data: Vec<u8>, version: i32) -> Result<Stat, Self::Error>;

    /// Deletes a znode (-1 skips the version guard).
    ///
    /// # Errors
    ///
    /// Returns `NotEmpty`, `BadVersion` or `NoNode` as appropriate.
    fn delete(&mut self, path: &str, version: i32) -> Result<(), Self::Error>;

    /// Lists the children of a znode (ZooKeeper's `ls`), optionally arming
    /// a one-shot child watch.
    ///
    /// # Errors
    ///
    /// Returns the client's `NoNode` error if the path does not exist.
    fn get_children(&mut self, path: &str, watch: bool) -> Result<Vec<String>, Self::Error>;

    /// Checks whether a znode exists; a missing node is `Ok(None)`, not an
    /// error.
    ///
    /// # Errors
    ///
    /// Only connection-level failures produce errors.
    fn exists(&mut self, path: &str, watch: bool) -> Result<Option<Stat>, Self::Error>;

    /// Asserts that a znode exists at the expected version (-1 checks
    /// existence only) without modifying anything.
    ///
    /// # Errors
    ///
    /// Returns `NoNode` or `BadVersion`.
    fn check(&mut self, path: &str, version: i32) -> Result<(), Self::Error>;

    /// Sends a keep-alive ping.
    ///
    /// # Errors
    ///
    /// Returns the client's session-expiry error when the session is gone.
    fn ping(&mut self) -> Result<(), Self::Error>;
}

/// A fluent builder for atomic transactions, terminated by [`Txn::commit`].
///
/// The same builder runs against every client flavour; here against the
/// in-process cluster client:
///
/// ```
/// use jute::records::CreateMode;
/// use zkserver::client::{share, ZkClient};
/// use zkserver::{MultiDispatch, OpResult, ZkCluster};
/// use zab::NodeId;
///
/// let cluster = share(ZkCluster::new(3));
/// let mut client = ZkClient::connect(&cluster, NodeId(1))?;
/// client.create("/config", b"v0".to_vec(), CreateMode::Persistent)?;
///
/// // Guarded read-modify-write with an audit trail, applied at one zxid:
/// let results = client
///     .txn()
///     .check("/config", 0)
///     .set_data("/config", b"v1".to_vec(), 0)
///     .create("/config/history-", b"v0".to_vec(), CreateMode::PersistentSequential)
///     .commit()?;
/// assert!(matches!(&results[2], OpResult::Create { path } if path.starts_with("/config/history-")));
///
/// // A stale guard aborts the whole batch; nothing is applied and the
/// // failing sub-operation's typed error comes back:
/// let err = client.txn().check("/config", 0).delete("/config", -1).commit();
/// assert!(matches!(err, Err(zkserver::ZkError::BadVersion { .. })));
/// # Ok::<(), zkserver::ZkError>(())
/// ```
#[must_use = "a transaction does nothing until commit() is called"]
pub struct Txn<'c, C: MultiDispatch + ?Sized> {
    client: &'c mut C,
    ops: Vec<Op>,
}

impl<C: MultiDispatch + ?Sized> std::fmt::Debug for Txn<'_, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Txn").field("ops", &self.ops.len()).finish()
    }
}

impl<'c, C: MultiDispatch + ?Sized> Txn<'c, C> {
    /// Queues a CREATE (any [`CreateMode`], including sequential variants).
    pub fn create(mut self, path: &str, data: Vec<u8>, mode: CreateMode) -> Self {
        self.ops.push(Op::Create(CreateRequest { path: path.to_string(), data, mode }));
        self
    }

    /// Queues a version/existence CHECK guard (-1 checks existence only).
    pub fn check(mut self, path: &str, version: i32) -> Self {
        self.ops.push(Op::Check(CheckVersionRequest { path: path.to_string(), version }));
        self
    }

    /// Queues a SET (-1 skips the version guard).
    pub fn set_data(mut self, path: &str, data: Vec<u8>, version: i32) -> Self {
        self.ops.push(Op::SetData(SetDataRequest { path: path.to_string(), data, version }));
        self
    }

    /// Queues a DELETE (-1 skips the version guard).
    pub fn delete(mut self, path: &str, version: i32) -> Self {
        self.ops.push(Op::Delete(DeleteRequest { path: path.to_string(), version }));
        self
    }

    /// Queues a pre-built sub-operation.
    pub fn op(mut self, op: Op) -> Self {
        self.ops.push(op);
        self
    }

    /// Number of queued sub-operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no sub-operation has been queued yet.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Executes the transaction atomically. On commit, returns one
    /// [`OpResult`] per queued operation. On abort, returns the typed error
    /// of the first failing sub-operation, carrying that operation's path —
    /// no sub-operation was applied. Use [`MultiDispatch::multi`] directly
    /// when the full per-operation result vector of an abort is needed.
    ///
    /// # Errors
    ///
    /// Transport-plane failures and transaction aborts, both as the client's
    /// error type.
    pub fn commit(self) -> Result<Vec<OpResult>, C::Error> {
        let paths: Vec<String> = self.ops.iter().map(|op| op.path().to_string()).collect();
        let results = self.client.multi(self.ops)?;
        match first_error_of(&results) {
            None => Ok(results),
            Some((index, code)) => {
                let path = paths.get(index).map_or("/", String::as_str);
                Err(C::Error::from(error_from_code(code, path)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jute::multi::MultiResponse;
    use jute::records::{CreateResponse, GetDataResponse, SetDataResponse};

    #[test]
    fn decoders_pass_success_through() {
        assert_eq!(
            expect_create(Response::Create(CreateResponse { path: "/a".into() }), "/a").unwrap(),
            "/a"
        );
        let (data, stat) = expect_get_data(
            Response::GetData(GetDataResponse { data: vec![1], stat: Stat::default() }),
            "/a",
        )
        .unwrap();
        assert_eq!(data, vec![1]);
        assert_eq!(stat, Stat::default());
        assert_eq!(
            expect_set_data(Response::SetData(SetDataResponse { stat: Stat::default() }), "/a")
                .unwrap(),
            Stat::default()
        );
        expect_delete(Response::Delete, "/a").unwrap();
        expect_ping(Response::Ping).unwrap();
        assert!(expect_exists(Response::Error(ErrorCode::NoNode), "/a").unwrap().is_none());
    }

    #[test]
    fn decoders_map_error_codes_onto_typed_errors() {
        assert!(matches!(
            expect_create(Response::Error(ErrorCode::NodeExists), "/a"),
            Err(ZkError::NodeExists { .. })
        ));
        assert!(matches!(
            expect_get_data(Response::Error(ErrorCode::NoNode), "/a"),
            Err(ZkError::NoNode { .. })
        ));
        assert!(matches!(
            expect_set_data(Response::Error(ErrorCode::BadVersion), "/a"),
            Err(ZkError::BadVersion { .. })
        ));
        assert!(matches!(
            expect_delete(Response::Error(ErrorCode::NotEmpty), "/a"),
            Err(ZkError::NotEmpty { .. })
        ));
        assert!(matches!(
            expect_get_children(Response::Delete, "/a"),
            Err(ZkError::Marshalling { .. })
        ));
    }

    #[test]
    fn expect_multi_validates_the_result_count() {
        let results = expect_multi(
            Response::Multi(MultiResponse::new(vec![OpResult::Check, OpResult::Delete])),
            2,
        )
        .unwrap();
        assert_eq!(results.len(), 2);
        assert!(matches!(
            expect_multi(Response::Multi(MultiResponse::new(vec![OpResult::Check])), 2),
            Err(ZkError::Marshalling { .. })
        ));
        assert!(matches!(
            expect_multi(Response::Error(ErrorCode::NoQuorum), 1),
            Err(ZkError::NoQuorum)
        ));
    }

    /// A dispatcher that answers every multi with a canned result vector.
    struct Canned(Vec<OpResult>);
    impl MultiDispatch for Canned {
        type Error = ZkError;
        fn multi(&mut self, ops: Vec<Op>) -> Result<Vec<OpResult>, ZkError> {
            assert_eq!(ops.len(), self.0.len());
            Ok(self.0.clone())
        }
    }

    #[test]
    fn txn_builder_commits_and_reports_typed_aborts() {
        let mut ok = Canned(vec![OpResult::Check, OpResult::SetData { stat: Stat::default() }]);
        let results =
            ok.txn().check("/cfg", 3).set_data("/cfg", b"v".to_vec(), 3).commit().unwrap();
        assert_eq!(results.len(), 2);

        let mut aborted = Canned(MultiResponse::aborted(3, 1, ErrorCode::BadVersion).results);
        let err = aborted
            .txn()
            .create("/a", vec![], CreateMode::Persistent)
            .check("/cfg", 9)
            .delete("/a", -1)
            .commit()
            .unwrap_err();
        match err {
            ZkError::BadVersion { path, .. } => assert_eq!(path, "/cfg"),
            other => panic!("expected a typed BadVersion abort, got {other:?}"),
        }
    }

    #[test]
    fn txn_builder_tracks_queued_ops() {
        let mut client = Canned(vec![]);
        {
            let txn = client.txn();
            assert!(txn.is_empty());
            let txn = txn.op(Op::Check(CheckVersionRequest { path: "/x".into(), version: -1 }));
            assert_eq!(txn.len(), 1);
            assert!(format!("{txn:?}").contains("Txn"));
        }
        // An empty commit is legal and commits nothing.
        assert!(client.txn().commit().unwrap().is_empty());
    }
}
