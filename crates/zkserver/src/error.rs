//! Error type for ZooKeeper operations.

use std::error::Error;
use std::fmt;

use jute::records::ErrorCode;

/// Errors returned by the coordination service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZkError {
    /// The znode does not exist.
    NoNode {
        /// The offending path.
        path: String,
    },
    /// A znode with this path already exists.
    NodeExists {
        /// The offending path.
        path: String,
    },
    /// The znode still has children.
    NotEmpty {
        /// The offending path.
        path: String,
    },
    /// Expected version mismatch.
    BadVersion {
        /// The offending path.
        path: String,
        /// Version the caller expected.
        expected: i32,
        /// Actual version of the znode.
        actual: i32,
    },
    /// Ephemeral znodes cannot have children.
    NoChildrenForEphemerals {
        /// The ephemeral parent path.
        path: String,
    },
    /// The path is syntactically invalid.
    BadArguments {
        /// Explanation of what is wrong.
        reason: String,
    },
    /// The session is unknown or has expired.
    SessionExpired {
        /// The session id.
        session_id: i64,
    },
    /// A `multi` sub-operation that was never attempted because a sibling
    /// sub-operation aborted the transaction (ZooKeeper's
    /// `RUNTIMEINCONSISTENCY`).
    RuntimeInconsistency {
        /// Path of the not-attempted sub-operation.
        path: String,
    },
    /// Wire-format decoding failed.
    Marshalling {
        /// Explanation of what is wrong.
        reason: String,
    },
    /// The cluster has lost its quorum and cannot process writes.
    NoQuorum,
    /// The connection to the server was lost (networked transport).
    ConnectionLoss {
        /// Explanation of what happened.
        reason: String,
    },
    /// The session exceeded its request-rate budget; back off and retry.
    Throttled,
    /// The operation spans more than one namespace shard (or was sent to a
    /// member that does not own the path's subtree); split it per shard.
    CrossShard {
        /// The offending path, or the first sub-operation path that left the
        /// transaction's shard.
        path: String,
    },
}

impl ZkError {
    /// Maps the error onto ZooKeeper's wire error codes.
    pub fn code(&self) -> ErrorCode {
        match self {
            ZkError::NoNode { .. } => ErrorCode::NoNode,
            ZkError::NodeExists { .. } => ErrorCode::NodeExists,
            ZkError::NotEmpty { .. } => ErrorCode::NotEmpty,
            ZkError::BadVersion { .. } => ErrorCode::BadVersion,
            ZkError::NoChildrenForEphemerals { .. } => ErrorCode::NoChildrenForEphemerals,
            ZkError::BadArguments { .. } => ErrorCode::BadArguments,
            ZkError::SessionExpired { .. } => ErrorCode::SessionExpired,
            ZkError::RuntimeInconsistency { .. } => ErrorCode::RuntimeInconsistency,
            ZkError::Marshalling { .. } => ErrorCode::MarshallingError,
            ZkError::NoQuorum => ErrorCode::NoQuorum,
            ZkError::ConnectionLoss { .. } => ErrorCode::ConnectionLoss,
            ZkError::Throttled => ErrorCode::Throttled,
            ZkError::CrossShard { .. } => ErrorCode::CrossShard,
        }
    }
}

impl fmt::Display for ZkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZkError::NoNode { path } => write!(f, "znode does not exist: {path}"),
            ZkError::NodeExists { path } => write!(f, "znode already exists: {path}"),
            ZkError::NotEmpty { path } => write!(f, "znode has children: {path}"),
            ZkError::BadVersion { path, expected, actual } => {
                write!(f, "version mismatch on {path}: expected {expected}, actual {actual}")
            }
            ZkError::NoChildrenForEphemerals { path } => {
                write!(f, "ephemeral znode cannot have children: {path}")
            }
            ZkError::BadArguments { reason } => write!(f, "bad arguments: {reason}"),
            ZkError::SessionExpired { session_id } => write!(f, "session {session_id} expired"),
            ZkError::RuntimeInconsistency { path } => {
                write!(f, "transaction sub-operation not attempted: {path}")
            }
            ZkError::Marshalling { reason } => write!(f, "marshalling error: {reason}"),
            ZkError::NoQuorum => write!(f, "cluster has no quorum"),
            ZkError::ConnectionLoss { reason } => write!(f, "connection lost: {reason}"),
            ZkError::Throttled => write!(f, "session request rate exceeded; retry later"),
            ZkError::CrossShard { path } => {
                write!(f, "operation crosses shard boundaries at {path}")
            }
        }
    }
}

impl Error for ZkError {}

impl From<jute::JuteError> for ZkError {
    fn from(err: jute::JuteError) -> Self {
        ZkError::Marshalling { reason: err.to_string() }
    }
}

impl From<std::io::Error> for ZkError {
    fn from(err: std::io::Error) -> Self {
        ZkError::ConnectionLoss { reason: err.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_match_wire_values() {
        assert_eq!(ZkError::NoNode { path: "/a".into() }.code(), ErrorCode::NoNode);
        assert_eq!(ZkError::NodeExists { path: "/a".into() }.code(), ErrorCode::NodeExists);
        assert_eq!(
            ZkError::BadVersion { path: "/a".into(), expected: 1, actual: 2 }.code(),
            ErrorCode::BadVersion
        );
        assert_eq!(ZkError::NoQuorum.code(), ErrorCode::NoQuorum);
        assert_eq!(ZkError::Throttled.code(), ErrorCode::Throttled);
    }

    #[test]
    fn display_mentions_the_path() {
        let err = ZkError::NotEmpty { path: "/app/config".into() };
        assert!(err.to_string().contains("/app/config"));
    }

    #[test]
    fn jute_errors_convert() {
        let err: ZkError = jute::JuteError::TrailingBytes { remaining: 3 }.into();
        assert!(matches!(err, ZkError::Marshalling { .. }));
    }
}
