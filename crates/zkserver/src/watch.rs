//! One-shot watches on znodes.
//!
//! ZooKeeper clients can register a *watch* when reading a znode (GET, EXISTS)
//! or listing its children (LS). The watch fires exactly once, the next time
//! the watched state changes, and is delivered to the session that registered
//! it. SecureKeeper leaves the watch mechanism untouched (watch notifications
//! carry only the — encrypted — path), but the substrate needs it to be a
//! faithful ZooKeeper stand-in for the example applications (locks, leader
//! election).

use std::collections::{HashMap, HashSet};

/// The kind of state change a watch observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WatchEventKind {
    /// The znode was created.
    NodeCreated,
    /// The znode was deleted.
    NodeDeleted,
    /// The znode's payload changed.
    NodeDataChanged,
    /// The znode's children changed.
    NodeChildrenChanged,
}

impl WatchEventKind {
    /// ZooKeeper wire value for the event type (carried in
    /// [`jute::records::WatcherEvent::event_type`]).
    pub fn to_wire(self) -> i32 {
        match self {
            WatchEventKind::NodeCreated => 1,
            WatchEventKind::NodeDeleted => 2,
            WatchEventKind::NodeDataChanged => 3,
            WatchEventKind::NodeChildrenChanged => 4,
        }
    }

    /// Parses a ZooKeeper wire event type.
    pub fn from_wire(value: i32) -> Option<Self> {
        Some(match value {
            1 => WatchEventKind::NodeCreated,
            2 => WatchEventKind::NodeDeleted,
            3 => WatchEventKind::NodeDataChanged,
            4 => WatchEventKind::NodeChildrenChanged,
            _ => return None,
        })
    }
}

/// A fired watch notification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchEvent {
    /// The watched path (possibly ciphertext under SecureKeeper).
    pub path: String,
    /// What happened.
    pub kind: WatchEventKind,
    /// Session that registered the watch.
    pub session_id: i64,
    /// zxid of the transaction that fired the watch. Every event of one
    /// committed `multi` carries the same zxid, so clients can recognize
    /// the notifications of one atomic batch.
    pub zxid: i64,
}

/// Registry of pending watches.
#[derive(Debug, Default)]
pub struct WatchManager {
    /// Data watches (set by GET and EXISTS).
    data_watches: HashMap<String, HashSet<i64>>,
    /// Child watches (set by LS).
    child_watches: HashMap<String, HashSet<i64>>,
}

impl WatchManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a data watch on `path` for `session_id`.
    pub fn add_data_watch(&mut self, path: &str, session_id: i64) {
        self.data_watches.entry(path.to_string()).or_default().insert(session_id);
    }

    /// Registers a child watch on `path` for `session_id`.
    pub fn add_child_watch(&mut self, path: &str, session_id: i64) {
        self.child_watches.entry(path.to_string()).or_default().insert(session_id);
    }

    /// Number of pending watches (data + child).
    pub fn pending(&self) -> usize {
        self.data_watches.values().map(HashSet::len).sum::<usize>()
            + self.child_watches.values().map(HashSet::len).sum::<usize>()
    }

    /// Fires data watches on `path` with `kind`, removing them (one-shot).
    /// Events are tagged with the `zxid` of the triggering transaction.
    pub fn trigger_data(&mut self, path: &str, kind: WatchEventKind, zxid: i64) -> Vec<WatchEvent> {
        match self.data_watches.remove(path) {
            Some(sessions) => {
                let mut events: Vec<WatchEvent> = sessions
                    .into_iter()
                    .map(|session_id| WatchEvent { path: path.to_string(), kind, session_id, zxid })
                    .collect();
                events.sort_by_key(|e| e.session_id);
                events
            }
            None => Vec::new(),
        }
    }

    /// Fires child watches on `path`, removing them (one-shot). Events are
    /// tagged with the `zxid` of the triggering transaction.
    pub fn trigger_children(&mut self, path: &str, zxid: i64) -> Vec<WatchEvent> {
        match self.child_watches.remove(path) {
            Some(sessions) => {
                let mut events: Vec<WatchEvent> = sessions
                    .into_iter()
                    .map(|session_id| WatchEvent {
                        path: path.to_string(),
                        kind: WatchEventKind::NodeChildrenChanged,
                        session_id,
                        zxid,
                    })
                    .collect();
                events.sort_by_key(|e| e.session_id);
                events
            }
            None => Vec::new(),
        }
    }

    /// Removes every watch registered by `session_id` (on session close).
    pub fn remove_session(&mut self, session_id: i64) {
        for sessions in self.data_watches.values_mut() {
            sessions.remove(&session_id);
        }
        for sessions in self.child_watches.values_mut() {
            sessions.remove(&session_id);
        }
        self.data_watches.retain(|_, s| !s.is_empty());
        self.child_watches.retain(|_, s| !s.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_watch_fires_once() {
        let mut mgr = WatchManager::new();
        mgr.add_data_watch("/a", 1);
        mgr.add_data_watch("/a", 2);
        let events = mgr.trigger_data("/a", WatchEventKind::NodeDataChanged, 7);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].session_id, 1);
        assert_eq!(events[1].kind, WatchEventKind::NodeDataChanged);
        assert!(events.iter().all(|e| e.zxid == 7), "events carry the txn zxid");
        assert!(mgr.trigger_data("/a", WatchEventKind::NodeDataChanged, 7).is_empty());
        assert_eq!(mgr.pending(), 0);
    }

    #[test]
    fn child_watch_is_independent_of_data_watch() {
        let mut mgr = WatchManager::new();
        mgr.add_data_watch("/a", 1);
        mgr.add_child_watch("/a", 1);
        assert_eq!(mgr.pending(), 2);
        assert_eq!(mgr.trigger_children("/a", 7).len(), 1);
        assert_eq!(mgr.pending(), 1);
        assert_eq!(mgr.trigger_data("/a", WatchEventKind::NodeDeleted, 7).len(), 1);
    }

    #[test]
    fn unrelated_paths_do_not_fire() {
        let mut mgr = WatchManager::new();
        mgr.add_data_watch("/a", 1);
        assert!(mgr.trigger_data("/b", WatchEventKind::NodeCreated, 7).is_empty());
        assert_eq!(mgr.pending(), 1);
    }

    #[test]
    fn event_kinds_roundtrip_through_the_wire_values() {
        for kind in [
            WatchEventKind::NodeCreated,
            WatchEventKind::NodeDeleted,
            WatchEventKind::NodeDataChanged,
            WatchEventKind::NodeChildrenChanged,
        ] {
            assert_eq!(WatchEventKind::from_wire(kind.to_wire()), Some(kind));
        }
        assert_eq!(WatchEventKind::from_wire(99), None);
    }

    #[test]
    fn remove_session_clears_its_watches() {
        let mut mgr = WatchManager::new();
        mgr.add_data_watch("/a", 1);
        mgr.add_data_watch("/a", 2);
        mgr.add_child_watch("/b", 1);
        mgr.remove_session(1);
        assert_eq!(mgr.pending(), 1);
        let events = mgr.trigger_data("/a", WatchEventKind::NodeDeleted, 7);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].session_id, 2);
    }
}
