//! The znode database.
//!
//! Znodes form a tree rooted at `/`. Each znode carries payload bytes, a
//! [`Stat`] metadata record, a sorted set of child names and a counter used to
//! number sequential children. The tree is the replicated state machine: every
//! replica applies the same committed write transactions to its own copy.

use std::collections::{BTreeSet, HashMap};

use jute::records::Stat;

use crate::error::ZkError;

/// A single node in the tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Znode {
    data: Vec<u8>,
    stat: Stat,
    children: BTreeSet<String>,
    next_sequence: u32,
}

impl Znode {
    /// The znode's payload.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// The znode's metadata.
    pub fn stat(&self) -> &Stat {
        &self.stat
    }

    /// Names (not full paths) of the children, sorted.
    pub fn children(&self) -> impl Iterator<Item = &str> {
        self.children.iter().map(String::as_str)
    }

    /// True if the znode is ephemeral (owned by a session).
    pub fn is_ephemeral(&self) -> bool {
        self.stat.ephemeral_owner != 0
    }

    /// The next sequence number this znode would assign to a sequential
    /// child (persisted in snapshots so recovered replicas keep numbering
    /// where they left off).
    pub fn next_sequence(&self) -> u32 {
        self.next_sequence
    }

    /// Rebuilds a znode from its persisted parts; the child set is
    /// reconstructed from the paths by [`DataTree::from_nodes`].
    pub(crate) fn from_parts(data: Vec<u8>, stat: Stat, next_sequence: u32) -> Self {
        Znode { data, stat, children: BTreeSet::new(), next_sequence }
    }

    /// Approximate memory footprint of this znode in bytes.
    fn memory_bytes(&self) -> usize {
        const NODE_OVERHEAD: usize = 160; // struct, map entry, stat
        NODE_OVERHEAD + self.data.len() + self.children.iter().map(|c| c.len() + 48).sum::<usize>()
    }
}

/// Splits a path into its parent path and final component.
///
/// Returns `None` for the root path.
pub fn split_path(path: &str) -> Option<(&str, &str)> {
    if path == "/" {
        return None;
    }
    let idx = path.rfind('/')?;
    let parent = if idx == 0 { "/" } else { &path[..idx] };
    Some((parent, &path[idx + 1..]))
}

/// Validates a znode path: absolute, no empty or relative components, no
/// trailing slash (except the root itself).
///
/// # Errors
///
/// Returns [`ZkError::BadArguments`] describing the first violation found.
pub fn validate_path(path: &str) -> Result<(), ZkError> {
    if path.is_empty() {
        return Err(ZkError::BadArguments { reason: "path is empty".into() });
    }
    if !path.starts_with('/') {
        return Err(ZkError::BadArguments { reason: format!("path must be absolute: {path}") });
    }
    if path == "/" {
        return Ok(());
    }
    if path.ends_with('/') {
        return Err(ZkError::BadArguments {
            reason: format!("path must not end with '/': {path}"),
        });
    }
    for component in path[1..].split('/') {
        if component.is_empty() {
            return Err(ZkError::BadArguments {
                reason: format!("empty path component in {path}"),
            });
        }
        if component == "." || component == ".." {
            return Err(ZkError::BadArguments {
                reason: format!("relative path component in {path}"),
            });
        }
        if component.contains('\u{0}') {
            return Err(ZkError::BadArguments { reason: "null character in path".into() });
        }
    }
    Ok(())
}

/// The hierarchical znode store.
#[derive(Debug, Clone)]
pub struct DataTree {
    nodes: HashMap<String, Znode>,
}

impl Default for DataTree {
    fn default() -> Self {
        Self::new()
    }
}

impl DataTree {
    /// Creates a tree containing only the root znode `/`.
    pub fn new() -> Self {
        let mut nodes = HashMap::new();
        nodes.insert("/".to_string(), Znode::default());
        DataTree { nodes }
    }

    /// Number of znodes, including the root.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate memory footprint of the whole tree in bytes (payloads,
    /// paths, child sets and per-node overhead). Used by the Figure 2
    /// experiment.
    pub fn approximate_memory_bytes(&self) -> usize {
        self.nodes.iter().map(|(path, node)| path.len() + node.memory_bytes()).sum()
    }

    /// Looks up a znode.
    pub fn get(&self, path: &str) -> Option<&Znode> {
        self.nodes.get(path)
    }

    /// True if the path exists.
    pub fn contains(&self, path: &str) -> bool {
        self.nodes.contains_key(path)
    }

    /// Reserves and returns the next sequence number of `parent`.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::NoNode`] if the parent does not exist.
    pub fn next_sequence(&mut self, parent: &str) -> Result<u32, ZkError> {
        let node = self
            .nodes
            .get_mut(parent)
            .ok_or_else(|| ZkError::NoNode { path: parent.to_string() })?;
        let seq = node.next_sequence;
        node.next_sequence += 1;
        Ok(seq)
    }

    /// Creates a znode at `path`.
    ///
    /// The caller is responsible for having already appended any sequential
    /// suffix to `path` (see [`crate::ops`]); `ephemeral_owner` is the owning
    /// session id or 0.
    ///
    /// # Errors
    ///
    /// * [`ZkError::BadArguments`] for malformed paths;
    /// * [`ZkError::NoNode`] when the parent does not exist;
    /// * [`ZkError::NodeExists`] when the path already exists;
    /// * [`ZkError::NoChildrenForEphemerals`] when the parent is ephemeral.
    pub fn create(
        &mut self,
        path: &str,
        data: Vec<u8>,
        ephemeral_owner: i64,
        zxid: i64,
        time_ms: i64,
    ) -> Result<(), ZkError> {
        validate_path(path)?;
        if path == "/" {
            return Err(ZkError::NodeExists { path: path.to_string() });
        }
        if self.nodes.contains_key(path) {
            return Err(ZkError::NodeExists { path: path.to_string() });
        }
        let (parent_path, name) = split_path(path).expect("non-root path has a parent");
        let data_length = data.len() as i32;
        {
            let parent = self
                .nodes
                .get_mut(parent_path)
                .ok_or_else(|| ZkError::NoNode { path: parent_path.to_string() })?;
            if parent.is_ephemeral() {
                return Err(ZkError::NoChildrenForEphemerals { path: parent_path.to_string() });
            }
            parent.children.insert(name.to_string());
            parent.stat.cversion += 1;
            parent.stat.pzxid = zxid;
            parent.stat.num_children = parent.children.len() as i32;
        }
        let stat = Stat {
            czxid: zxid,
            mzxid: zxid,
            ctime: time_ms,
            mtime: time_ms,
            version: 0,
            cversion: 0,
            aversion: 0,
            ephemeral_owner,
            data_length,
            num_children: 0,
            pzxid: zxid,
        };
        self.nodes.insert(
            path.to_string(),
            Znode { data, stat, children: BTreeSet::new(), next_sequence: 0 },
        );
        Ok(())
    }

    /// Deletes the znode at `path` if `expected_version` matches (or is -1).
    ///
    /// # Errors
    ///
    /// * [`ZkError::NoNode`] when the path does not exist;
    /// * [`ZkError::NotEmpty`] when the znode still has children;
    /// * [`ZkError::BadVersion`] on a version mismatch;
    /// * [`ZkError::BadArguments`] when attempting to delete the root.
    pub fn delete(&mut self, path: &str, expected_version: i32, zxid: i64) -> Result<(), ZkError> {
        if path == "/" {
            return Err(ZkError::BadArguments { reason: "cannot delete the root znode".into() });
        }
        let node =
            self.nodes.get(path).ok_or_else(|| ZkError::NoNode { path: path.to_string() })?;
        if !node.children.is_empty() {
            return Err(ZkError::NotEmpty { path: path.to_string() });
        }
        if expected_version != -1 && node.stat.version != expected_version {
            return Err(ZkError::BadVersion {
                path: path.to_string(),
                expected: expected_version,
                actual: node.stat.version,
            });
        }
        self.nodes.remove(path);
        if let Some((parent_path, name)) = split_path(path) {
            if let Some(parent) = self.nodes.get_mut(parent_path) {
                parent.children.remove(name);
                parent.stat.cversion += 1;
                parent.stat.pzxid = zxid;
                parent.stat.num_children = parent.children.len() as i32;
            }
        }
        Ok(())
    }

    /// Replaces the payload of `path` if `expected_version` matches (or is -1),
    /// returning the updated metadata.
    ///
    /// # Errors
    ///
    /// * [`ZkError::NoNode`] when the path does not exist;
    /// * [`ZkError::BadVersion`] on a version mismatch.
    pub fn set_data(
        &mut self,
        path: &str,
        data: Vec<u8>,
        expected_version: i32,
        zxid: i64,
        time_ms: i64,
    ) -> Result<Stat, ZkError> {
        let node =
            self.nodes.get_mut(path).ok_or_else(|| ZkError::NoNode { path: path.to_string() })?;
        if expected_version != -1 && node.stat.version != expected_version {
            return Err(ZkError::BadVersion {
                path: path.to_string(),
                expected: expected_version,
                actual: node.stat.version,
            });
        }
        node.stat.version += 1;
        node.stat.mzxid = zxid;
        node.stat.mtime = time_ms;
        node.stat.data_length = data.len() as i32;
        node.data = data;
        Ok(node.stat)
    }

    /// Reads the payload and metadata of `path`.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::NoNode`] when the path does not exist.
    pub fn get_data(&self, path: &str) -> Result<(Vec<u8>, Stat), ZkError> {
        let node =
            self.nodes.get(path).ok_or_else(|| ZkError::NoNode { path: path.to_string() })?;
        Ok((node.data.clone(), node.stat))
    }

    /// Returns the metadata of `path`, or `None` if it does not exist.
    pub fn stat(&self, path: &str) -> Option<Stat> {
        self.nodes.get(path).map(|n| n.stat)
    }

    /// Lists the child names of `path`, sorted.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::NoNode`] when the path does not exist.
    pub fn get_children(&self, path: &str) -> Result<Vec<String>, ZkError> {
        let node =
            self.nodes.get(path).ok_or_else(|| ZkError::NoNode { path: path.to_string() })?;
        Ok(node.children.iter().cloned().collect())
    }

    /// Full paths of every ephemeral znode owned by `session_id`.
    pub fn ephemerals_of(&self, session_id: i64) -> Vec<String> {
        let mut paths: Vec<String> = self
            .nodes
            .iter()
            .filter(|(_, node)| node.stat.ephemeral_owner == session_id && session_id != 0)
            .map(|(path, _)| path.clone())
            .collect();
        // Delete deepest paths first so parents empty out before removal.
        paths.sort_by_key(|p| std::cmp::Reverse(p.matches('/').count()));
        paths
    }

    /// Restores a znode to a previously captured state: `Some` reinstates the
    /// captured node verbatim, `None` removes the path. Used by the
    /// all-or-nothing `multi` apply to roll back the nodes a failed
    /// transaction touched — parent bookkeeping (child sets, `cversion`,
    /// `pzxid`, sequence counters) is *not* recomputed, because the parent is
    /// captured and restored as its own snapshot.
    pub(crate) fn restore_node(&mut self, path: &str, node: Option<Znode>) {
        match node {
            Some(node) => {
                self.nodes.insert(path.to_string(), node);
            }
            None => {
                self.nodes.remove(path);
            }
        }
    }

    /// All paths in the tree (sorted), useful for tests and debugging.
    pub fn paths(&self) -> Vec<String> {
        let mut paths: Vec<String> = self.nodes.keys().cloned().collect();
        paths.sort();
        paths
    }

    /// Every `(path, znode)` pair, in sorted path order (parents before
    /// children, since a parent path is a strict prefix). The snapshot
    /// codec serializes this.
    pub fn nodes_sorted(&self) -> Vec<(&str, &Znode)> {
        let mut nodes: Vec<(&str, &Znode)> =
            self.nodes.iter().map(|(path, node)| (path.as_str(), node)).collect();
        nodes.sort_by_key(|(path, _)| *path);
        nodes
    }

    /// Rebuilds a tree from persisted `(path, znode)` pairs, reconstructing
    /// each parent's child set from the paths. Paths must be valid, unique,
    /// and every non-root node's parent must be present; the root must be
    /// included.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::Marshalling`] on any structural violation, so a
    /// corrupt snapshot is rejected instead of installing a broken tree.
    pub(crate) fn from_nodes(pairs: Vec<(String, Znode)>) -> Result<Self, ZkError> {
        let mut nodes: HashMap<String, Znode> = HashMap::with_capacity(pairs.len());
        for (path, node) in pairs {
            if path != "/" {
                validate_path(&path)
                    .map_err(|_| ZkError::Marshalling { reason: format!("bad path {path}") })?;
            }
            if nodes.insert(path.clone(), node).is_some() {
                return Err(ZkError::Marshalling { reason: format!("duplicate path {path}") });
            }
        }
        if !nodes.contains_key("/") {
            return Err(ZkError::Marshalling { reason: "snapshot tree has no root".into() });
        }
        let children: Vec<(String, String)> = nodes
            .keys()
            .filter_map(|path| {
                split_path(path).map(|(parent, name)| (parent.to_string(), name.to_string()))
            })
            .collect();
        for (parent, name) in children {
            let Some(parent_node) = nodes.get_mut(&parent) else {
                return Err(ZkError::Marshalling {
                    reason: format!("orphan node {parent}/{name}"),
                });
            };
            parent_node.children.insert(name);
        }
        // The persisted stats must agree with the rebuilt structure — a
        // mismatch means the snapshot bytes are corrupt.
        for (path, node) in &nodes {
            if node.stat.num_children as usize != node.children.len() {
                return Err(ZkError::Marshalling {
                    reason: format!("child count mismatch at {path}"),
                });
            }
        }
        Ok(DataTree { nodes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with(paths: &[&str]) -> DataTree {
        let mut tree = DataTree::new();
        for (i, path) in paths.iter().enumerate() {
            tree.create(path, b"data".to_vec(), 0, i as i64 + 1, 1000).unwrap();
        }
        tree
    }

    #[test]
    fn root_exists_initially() {
        let tree = DataTree::new();
        assert!(tree.contains("/"));
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.get_children("/").unwrap(), Vec::<String>::new());
    }

    #[test]
    fn create_and_read_back() {
        let mut tree = DataTree::new();
        tree.create("/app", b"top".to_vec(), 0, 1, 500).unwrap();
        tree.create("/app/config", b"secret".to_vec(), 0, 2, 600).unwrap();
        let (data, stat) = tree.get_data("/app/config").unwrap();
        assert_eq!(data, b"secret");
        assert_eq!(stat.czxid, 2);
        assert_eq!(stat.ctime, 600);
        assert_eq!(stat.data_length, 6);
        assert_eq!(tree.get_children("/app").unwrap(), vec!["config".to_string()]);
        assert_eq!(tree.get("/app").unwrap().stat().num_children, 1);
    }

    #[test]
    fn create_requires_existing_parent() {
        let mut tree = DataTree::new();
        let err = tree.create("/missing/child", vec![], 0, 1, 0).unwrap_err();
        assert!(matches!(err, ZkError::NoNode { .. }));
    }

    #[test]
    fn create_rejects_duplicates_and_root() {
        let mut tree = tree_with(&["/a"]);
        assert!(matches!(tree.create("/a", vec![], 0, 2, 0), Err(ZkError::NodeExists { .. })));
        assert!(matches!(tree.create("/", vec![], 0, 2, 0), Err(ZkError::NodeExists { .. })));
    }

    #[test]
    fn path_validation_rejects_malformed_paths() {
        assert!(validate_path("/ok/path").is_ok());
        assert!(validate_path("/").is_ok());
        for bad in
            ["", "relative", "/trailing/", "/dou//ble", "/dot/.", "/dotdot/..", "/nul/\u{0}x"]
        {
            assert!(validate_path(bad).is_err(), "{bad:?} should be invalid");
        }
    }

    #[test]
    fn split_path_handles_root_children() {
        assert_eq!(split_path("/a"), Some(("/", "a")));
        assert_eq!(split_path("/a/b/c"), Some(("/a/b", "c")));
        assert_eq!(split_path("/"), None);
    }

    #[test]
    fn delete_enforces_children_and_version() {
        let mut tree = tree_with(&["/a", "/a/b"]);
        assert!(matches!(tree.delete("/a", -1, 10), Err(ZkError::NotEmpty { .. })));
        assert!(matches!(tree.delete("/a/b", 7, 10), Err(ZkError::BadVersion { .. })));
        tree.delete("/a/b", -1, 10).unwrap();
        tree.delete("/a", 0, 11).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert!(matches!(tree.delete("/a", -1, 12), Err(ZkError::NoNode { .. })));
        assert!(matches!(tree.delete("/", -1, 12), Err(ZkError::BadArguments { .. })));
    }

    #[test]
    fn set_data_bumps_version_and_checks_expected() {
        let mut tree = tree_with(&["/a"]);
        let stat = tree.set_data("/a", b"v1".to_vec(), -1, 5, 100).unwrap();
        assert_eq!(stat.version, 1);
        assert_eq!(stat.mzxid, 5);
        let stat = tree.set_data("/a", b"v2".to_vec(), 1, 6, 200).unwrap();
        assert_eq!(stat.version, 2);
        assert!(matches!(
            tree.set_data("/a", b"v3".to_vec(), 1, 7, 300),
            Err(ZkError::BadVersion { expected: 1, actual: 2, .. })
        ));
    }

    #[test]
    fn parent_cversion_tracks_child_changes() {
        let mut tree = tree_with(&["/a"]);
        let before = tree.get("/").unwrap().stat().cversion;
        tree.create("/b", vec![], 0, 2, 0).unwrap();
        tree.delete("/b", -1, 3).unwrap();
        let after = tree.get("/").unwrap().stat().cversion;
        assert_eq!(after, before + 2);
    }

    #[test]
    fn sequence_numbers_increase_per_parent() {
        let mut tree = tree_with(&["/locks", "/other"]);
        assert_eq!(tree.next_sequence("/locks").unwrap(), 0);
        assert_eq!(tree.next_sequence("/locks").unwrap(), 1);
        assert_eq!(tree.next_sequence("/other").unwrap(), 0);
        assert!(tree.next_sequence("/missing").is_err());
    }

    #[test]
    fn ephemeral_nodes_are_tracked_by_owner_and_cannot_have_children() {
        let mut tree = DataTree::new();
        tree.create("/app", vec![], 0, 1, 0).unwrap();
        tree.create("/app/session-node", vec![], 42, 2, 0).unwrap();
        assert!(tree.get("/app/session-node").unwrap().is_ephemeral());
        assert_eq!(tree.ephemerals_of(42), vec!["/app/session-node".to_string()]);
        assert!(tree.ephemerals_of(0).is_empty());
        let err = tree.create("/app/session-node/child", vec![], 0, 3, 0).unwrap_err();
        assert!(matches!(err, ZkError::NoChildrenForEphemerals { .. }));
    }

    #[test]
    fn ephemerals_of_orders_deepest_first() {
        let mut tree = DataTree::new();
        tree.create("/a", vec![], 7, 1, 0).unwrap();
        // Ephemerals cannot have children, so build a separate persistent branch.
        tree.create("/b", vec![], 0, 2, 0).unwrap();
        tree.create("/b/c", vec![], 7, 3, 0).unwrap();
        let paths = tree.ephemerals_of(7);
        assert_eq!(paths, vec!["/b/c".to_string(), "/a".to_string()]);
    }

    #[test]
    fn memory_accounting_grows_with_payload() {
        let mut tree = DataTree::new();
        let empty = tree.approximate_memory_bytes();
        tree.create("/big", vec![0u8; 100_000], 0, 1, 0).unwrap();
        let with_node = tree.approximate_memory_bytes();
        assert!(with_node > empty + 100_000);
    }

    #[test]
    fn paths_lists_everything_sorted() {
        let tree = tree_with(&["/b", "/a", "/a/x"]);
        assert_eq!(tree.paths(), vec!["/", "/a", "/a/x", "/b"]);
    }
}
