//! The TCP wire transport.
//!
//! SecureKeeper's deployment is a *networked* service: clients speak the
//! length-prefixed ZooKeeper wire protocol over TCP, and the entry enclave
//! intercepts serialized buffers on the connection path (paper §5.1). This
//! module provides that transport on `std::net` and OS threads:
//!
//! * each accepted connection performs the `ConnectRequest` handshake and
//!   then runs a per-connection thread; the handshake blob (the request's
//!   `password` field) is handed to the replica's interceptor via
//!   [`RequestInterceptor::on_session_established`](crate::pipeline::RequestInterceptor::on_session_established),
//!   which is where
//!   SecureKeeper installs the per-session transport key in an entry enclave;
//! * reads execute concurrently on the connection threads against the
//!   replica's reader-writer-locked tree;
//! * writes funnel through a single-writer ordered queue (an [`mpsc`]
//!   channel drained by one thread), so zxid order on the wire always matches
//!   apply order;
//! * a background ticker drives session expiry from the replica's clock and
//!   fans fired watch notifications back out over the live connections as
//!   [`WatcherEvent`] frames (reply header xid [`NOTIFICATION_XID`]).
//!
//! [`RequestInterceptor`]: crate::pipeline::RequestInterceptor

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use jute::framing;
use jute::records::{ConnectRequest, ErrorCode, ReplyHeader, WatcherEvent, NOTIFICATION_XID};
use jute::{InputArchive, OutputArchive, Request};
use opsplane::ratelimit::{RateLimitConfig, SessionRateLimiter};
use opsplane::words::{self, ClientInfo, ServerInfo};

use crate::error::ZkError;
use crate::metrics::ServerMetrics;
use crate::server::{ZkReplica, DEFAULT_SESSION_TIMEOUT_MS};
use crate::session::SESSION_PASSWORD_LEN;
use crate::watch::WatchEvent;

/// Encrypts and decrypts whole wire frames (one endpoint of the per-session
/// secure channel). The server side lives inside the interceptor; clients
/// hold an implementation of this trait. [`PlainWire`] is the identity
/// cipher used against vanilla replicas.
pub trait WireCipher: Send {
    /// Protects an outgoing frame in place.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::Marshalling`] when the frame cannot be sealed.
    fn seal(&self, buffer: &mut Vec<u8>) -> Result<(), ZkError>;

    /// Verifies and strips the protection of an incoming frame in place.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::Marshalling`] when the frame was tampered with,
    /// replayed, or reordered.
    fn open(&self, buffer: &mut Vec<u8>) -> Result<(), ZkError>;
}

/// The identity cipher: frames travel in plaintext (vanilla ZooKeeper).
#[derive(Debug, Clone, Copy, Default)]
pub struct PlainWire;

impl WireCipher for PlainWire {
    fn seal(&self, _buffer: &mut Vec<u8>) -> Result<(), ZkError> {
        Ok(())
    }

    fn open(&self, _buffer: &mut Vec<u8>) -> Result<(), ZkError> {
        Ok(())
    }
}

/// Produces the per-session handshake material for a new connection: the
/// opaque blob carried in `ConnectRequest.password` (which the server-side
/// interceptor consumes in `on_session_established`) and the client's frame
/// cipher. SecureKeeper's implementation generates a fresh session key per
/// connection; [`PlainCredentials`] yields an empty blob and [`PlainWire`].
pub trait SessionCredentials: Send + Sync {
    /// Generates fresh handshake material for one connection attempt.
    fn establish(&self) -> (Vec<u8>, Box<dyn WireCipher>);
}

/// Credentials for a vanilla (non-encrypted) session.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlainCredentials;

impl SessionCredentials for PlainCredentials {
    fn establish(&self) -> (Vec<u8>, Box<dyn WireCipher>) {
        (Vec::new(), Box::new(PlainWire))
    }
}

/// Strategy for ordering and applying the write path of a [`ZkTcpServer`].
///
/// The standalone server applies writes directly to its replica
/// ([`LocalWriteHandler`]); an ensemble member routes them through ZAB
/// agreement instead ([`crate::ensemble`]), so the seam covers everything
/// that mutates the replicated tree: client writes, `CloseSession` ephemeral
/// cleanup, and session-expiry sweeps.
pub trait WriteHandler: Send + Sync {
    /// Executes one write (including `CloseSession`) on behalf of
    /// `session_id` and returns the response plus the zxid for the reply
    /// header.
    fn execute_write(
        &self,
        replica: &Arc<ZkReplica>,
        session_id: i64,
        request: &Request,
    ) -> (jute::Response, i64);

    /// Runs one session-expiry sweep, returning the ids of the sessions that
    /// expired (their connections are dropped by the caller).
    fn tick(&self, replica: &Arc<ZkReplica>) -> Vec<i64> {
        replica.tick()
    }

    /// A snapshot of the coordination state the four-letter admin words
    /// report. The standalone default is a ready, non-draining member with
    /// no ensemble around it; the ensemble handler overrides this with its
    /// live ZAB role.
    fn admin_info(&self) -> AdminInfo {
        AdminInfo::default()
    }
}

/// Coordination-layer state reported by the admin words (`srvr`, `stat`,
/// `mntr`), supplied by the [`WriteHandler`] because only the write path
/// knows whether it is standalone or an ensemble member.
#[derive(Debug, Clone)]
pub struct AdminInfo {
    /// `"standalone"`, `"leader"`, `"follower"`, or `"electing"`.
    pub role: String,
    /// Current ZAB epoch (0 when standalone).
    pub epoch: u32,
    /// Member id of the current leader, if known.
    pub leader: Option<u32>,
    /// Whether the member currently passes its readiness probe.
    pub ready: bool,
    /// Whether a graceful drain is in progress.
    pub draining: bool,
}

impl Default for AdminInfo {
    fn default() -> Self {
        AdminInfo {
            role: "standalone".into(),
            epoch: 0,
            leader: None,
            ready: true,
            draining: false,
        }
    }
}

/// The standalone write path: the replica orders and applies writes itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalWriteHandler;

impl WriteHandler for LocalWriteHandler {
    fn execute_write(
        &self,
        replica: &Arc<ZkReplica>,
        session_id: i64,
        request: &Request,
    ) -> (jute::Response, i64) {
        let response = replica.handle_request(session_id, request);
        (response, replica.last_zxid())
    }
}

/// Configuration of a [`ZkTcpServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Upper bound on the session timeout granted to clients, in ms.
    pub max_session_timeout_ms: i64,
    /// Interval of the background expiry/fan-out ticker.
    pub tick_interval: Duration,
    /// Per-session request-rate limit; `None` disables throttling.
    pub rate_limit: Option<RateLimitConfig>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_session_timeout_ms: DEFAULT_SESSION_TIMEOUT_MS,
            tick_interval: Duration::from_millis(20),
            rate_limit: None,
        }
    }
}

/// A write queued for the single-writer thread, with the channel its
/// response travels back on.
struct WriteJob {
    session_id: i64,
    request: Request,
    reply: Sender<(jute::Response, i64)>,
}

/// Per-connection server state shared between the connection's own thread
/// and the threads that push watch notifications to it.
struct Connection {
    session_id: i64,
    stream: TcpStream,
    /// Serializes seal-and-write pairs so the interceptor's per-session
    /// frame counters always match the byte order on the socket.
    write_lock: Mutex<()>,
}

impl Connection {
    /// Seals `frame` through `seal` and writes it, atomically with respect to
    /// other frames sent to this connection.
    fn send(
        &self,
        seal: impl FnOnce(&mut Vec<u8>) -> Result<(), ZkError>,
        mut frame: Vec<u8>,
    ) -> Result<(), ZkError> {
        let _guard = self.write_lock.lock();
        seal(&mut frame)?;
        framing::write_frame(&mut &self.stream, &frame)?;
        Ok(())
    }
}

/// State shared by the accept loop, connection threads, writer and ticker.
struct Shared {
    replica: Arc<ZkReplica>,
    handler: Arc<dyn WriteHandler>,
    config: NetConfig,
    metrics: Arc<ServerMetrics>,
    limiter: Option<SessionRateLimiter>,
    connections: Mutex<HashMap<i64, Arc<Connection>>>,
    /// Every accepted socket, registered *before* the handshake and removed
    /// when its connection thread exits. Shutdown closes these, so a client
    /// that stalls mid-handshake (never in `connections`) cannot wedge
    /// [`ZkTcpServer::shutdown`] on a blocking read.
    sockets: Mutex<HashMap<u64, TcpStream>>,
    next_socket_token: AtomicU64,
    running: AtomicBool,
}

impl Shared {
    /// Drains fired watch events from the replica and pushes each to the
    /// connection of the session that registered the watch. Events for
    /// sessions without a live connection are dropped, as in ZooKeeper.
    fn fan_out_watch_events(&self) {
        let events = self.replica.take_all_watch_events();
        if events.is_empty() {
            return;
        }
        let interceptor = self.replica.interceptor();
        for event in events {
            let conn = self.connections.lock().get(&event.session_id).cloned();
            let Some(conn) = conn else { continue };
            // The reply header carries the zxid of the transaction that
            // fired the watch, so the events of one multi share one zxid.
            let frame = encode_watch_event(&event, event.zxid);
            let session_id = event.session_id;
            if conn.send(|buffer| interceptor.on_event(session_id, buffer), frame).is_ok() {
                self.metrics.watch_events.inc();
            }
        }
    }

    fn drop_connection(&self, session_id: i64) {
        if let Some(conn) = self.connections.lock().remove(&session_id) {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
    }

    /// Closes `conn` and removes it from the registry *only if it is still
    /// the registered connection* for its session — when a client
    /// re-attaches from a new socket, the predecessor's exiting reader
    /// thread must not tear the fresh connection down with it.
    fn drop_connection_exact(&self, conn: &Arc<Connection>) {
        {
            let mut connections = self.connections.lock();
            if connections.get(&conn.session_id).is_some_and(|current| Arc::ptr_eq(current, conn)) {
                connections.remove(&conn.session_id);
            }
        }
        let _ = conn.stream.shutdown(Shutdown::Both);
    }
}

/// Serializes a watch notification as a reply frame with
/// [`NOTIFICATION_XID`] in the header, the format real ZooKeeper uses.
fn encode_watch_event(event: &WatchEvent, zxid: i64) -> Vec<u8> {
    let mut out = OutputArchive::with_capacity(32 + event.path.len());
    ReplyHeader { xid: NOTIFICATION_XID, zxid, err: ErrorCode::Ok }.serialize(&mut out);
    WatcherEvent {
        event_type: event.kind.to_wire(),
        state: WatcherEvent::STATE_SYNC_CONNECTED,
        path: event.path.clone(),
    }
    .serialize(&mut out);
    out.into_bytes()
}

/// A ZooKeeper replica listening on a real TCP socket.
///
/// Dropping the server shuts it down: the listener and every connection are
/// closed and all threads are joined.
pub struct ZkTcpServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for ZkTcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZkTcpServer")
            .field("local_addr", &self.local_addr)
            .field("connections", &self.connection_count())
            .finish()
    }
}

impl ZkTcpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts serving
    /// `replica`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn bind(addr: impl ToSocketAddrs, replica: Arc<ZkReplica>) -> io::Result<Self> {
        Self::bind_with_config(addr, replica, NetConfig::default())
    }

    /// Binds with an explicit [`NetConfig`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn bind_with_config(
        addr: impl ToSocketAddrs,
        replica: Arc<ZkReplica>,
        config: NetConfig,
    ) -> io::Result<Self> {
        Self::bind_with_handler(addr, replica, config, Arc::new(LocalWriteHandler))
    }

    /// Binds with an explicit [`WriteHandler`] — the seam the replicated
    /// ensemble uses to route writes through ZAB agreement instead of
    /// applying them locally.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn bind_with_handler(
        addr: impl ToSocketAddrs,
        replica: Arc<ZkReplica>,
        config: NetConfig,
        handler: Arc<dyn WriteHandler>,
    ) -> io::Result<Self> {
        Self::bind_with_metrics(addr, replica, config, handler, Arc::new(ServerMetrics::new()))
    }

    /// Binds with an externally owned metric surface — the ensemble server
    /// passes the surface its ZAB driver already updates, so one registry
    /// covers the member's request path and its agreement path.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn bind_with_metrics(
        addr: impl ToSocketAddrs,
        replica: Arc<ZkReplica>,
        config: NetConfig,
        handler: Arc<dyn WriteHandler>,
        metrics: Arc<ServerMetrics>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        metrics.attach_replica(&replica);
        let limiter = config.rate_limit.map(SessionRateLimiter::new);
        let shared = Arc::new(Shared {
            replica,
            handler,
            config,
            metrics,
            limiter,
            connections: Mutex::new(HashMap::new()),
            sockets: Mutex::new(HashMap::new()),
            next_socket_token: AtomicU64::new(0),
            running: AtomicBool::new(true),
        });
        {
            let connections_open = shared.metrics.connections_open.clone();
            let weak = Arc::downgrade(&shared);
            shared.metrics.registry().register_collector(move || {
                if let Some(shared) = weak.upgrade() {
                    connections_open.set(shared.connections.lock().len() as i64);
                }
            });
        }
        let (write_tx, write_rx) = mpsc::channel::<WriteJob>();
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let mut threads = Vec::new();
        threads.push({
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || writer_loop(&shared, &write_rx))
        });
        threads.push({
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || ticker_loop(&shared))
        });
        threads.push({
            let shared = Arc::clone(&shared);
            let conn_threads = Arc::clone(&conn_threads);
            std::thread::spawn(move || accept_loop(&listener, &shared, &write_tx, &conn_threads))
        });

        Ok(ZkTcpServer { shared, local_addr, threads, conn_threads })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The replica served by this transport.
    pub fn replica(&self) -> Arc<ZkReplica> {
        Arc::clone(&self.shared.replica)
    }

    /// Number of live client connections.
    pub fn connection_count(&self) -> usize {
        self.shared.connections.lock().len()
    }

    /// The metric surface this transport updates.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Stops accepting, closes every connection and joins all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if !self.shared.running.swap(false, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept call with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        // Close every accepted socket, including ones still mid-handshake,
        // so no connection thread stays blocked in a read.
        for socket in self.shared.sockets.lock().values() {
            let _ = socket.shutdown(Shutdown::Both);
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        let handles = std::mem::take(&mut *self.conn_threads.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for ZkTcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Accepts connections until the server shuts down, spawning one thread per
/// connection. The writer-queue sender is cloned into each thread; the writer
/// exits once the last sender (this loop's clone) is gone.
fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    write_tx: &Sender<WriteJob>,
    conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if !shared.running.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(_) => {
                // Persistent accept errors (e.g. fd exhaustion) must not
                // busy-spin; back off briefly and re-check `running`.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        let token = shared.next_socket_token.fetch_add(1, Ordering::Relaxed);
        if let Ok(socket) = stream.try_clone() {
            shared.sockets.lock().insert(token, socket);
        }
        let shared = Arc::clone(shared);
        let write_tx = write_tx.clone();
        let handle = std::thread::spawn(move || {
            connection_loop(&shared, &write_tx, stream);
            shared.sockets.lock().remove(&token);
        });
        // Reap finished connection threads so the handle list tracks live
        // connections instead of growing with total connection churn.
        let mut handles = conn_threads.lock();
        handles.retain(|handle| !handle.is_finished());
        handles.push(handle);
    }
}

/// Applies queued writes one at a time, preserving arrival order, and fans
/// the watch events fired by each write out to the live connections.
fn writer_loop(shared: &Shared, write_rx: &Receiver<WriteJob>) {
    while let Ok(job) = write_rx.recv() {
        let (response, zxid) =
            shared.handler.execute_write(&shared.replica, job.session_id, &job.request);
        let _ = job.reply.send((response, zxid));
        shared.fan_out_watch_events();
    }
}

/// Expires sessions on the replica's clock, closes their connections, and
/// delivers the watch events their ephemeral-node cleanup fired.
fn ticker_loop(shared: &Shared) {
    while shared.running.load(Ordering::SeqCst) {
        std::thread::sleep(shared.config.tick_interval);
        for session_id in shared.handler.tick(&shared.replica) {
            shared.metrics.sessions_expired.inc();
            if let Some(limiter) = &shared.limiter {
                limiter.forget(session_id);
            }
            shared.drop_connection(session_id);
        }
        shared.fan_out_watch_events();
    }
}

/// Runs one client connection: handshake, then the request loop.
fn connection_loop(shared: &Shared, write_tx: &Sender<WriteJob>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(reader) = stream.try_clone() else { return };
    let mut reader = reader;
    let Some(conn) = handshake(shared, &mut reader, stream) else { return };

    serve_connection(shared, write_tx, &conn, &mut reader);

    shared.drop_connection_exact(&conn);
    // A connection that ends without CloseSession leaves its session behind
    // to expire via the ticker — ZooKeeper's disconnection semantics, which
    // is what keeps ephemeral znodes alive across a client reconnect window.
}

/// Performs the `ConnectRequest`/`ConnectResponse` exchange and registers the
/// connection. The handshake travels unencrypted (it carries the key-exchange
/// blob, not application data), exactly like the attested key exchange that
/// precedes the secure channel in the paper.
fn handshake(
    shared: &Shared,
    reader: &mut TcpStream,
    stream: TcpStream,
) -> Option<Arc<Connection>> {
    // The first four bytes are either a frame length prefix or a four-letter
    // admin word in raw ASCII (ZooKeeper answers `ruok` & co. on the client
    // port). Peek the prefix before committing to frame parsing.
    let prefix = framing::read_prefix(reader).ok()??;
    if let Some(word) = words::parse_word(&prefix) {
        serve_admin_word(shared, word, &stream);
        return None;
    }
    let frame = framing::read_body(reader, prefix).ok()?;
    let mut input = InputArchive::new(&frame);
    let connect = ConnectRequest::deserialize(&mut input).ok()?;
    input.expect_exhausted().ok()?;

    // A client announcing a `last_zxid_seen` beyond this replica's applied
    // log has observed state we cannot serve yet; attaching it here would
    // let its session read backwards in time. Refuse (drop the connection)
    // and let the client fail over to a member that has caught up.
    if connect.last_zxid_seen > shared.replica.last_zxid() {
        return None;
    }

    let requested = i64::from(connect.timeout_ms);
    let timeout_ms = if requested <= 0 {
        DEFAULT_SESSION_TIMEOUT_MS.min(shared.config.max_session_timeout_ms)
    } else {
        requested.min(shared.config.max_session_timeout_ms)
    };
    // A non-zero session id is a re-attach attempt: the first 16 bytes of
    // the password field are the session password, the rest is the
    // interceptor's key-exchange blob (which a fresh connect carries alone).
    // A failed re-attach (expired session, wrong password) falls back to a
    // fresh session — the client sees the new id and knows its ephemerals
    // and watches are gone, ZooKeeper's session-expired contract.
    let (response, interceptor_blob) =
        if connect.session_id != 0 && connect.password.len() >= SESSION_PASSWORD_LEN {
            let (session_password, blob) = connect.password.split_at(SESSION_PASSWORD_LEN);
            match shared.replica.reattach_session(connect.session_id, session_password) {
                Some(response) => (response, blob),
                None => (shared.replica.connect(timeout_ms), blob),
            }
        } else {
            (shared.replica.connect(timeout_ms), connect.password.as_slice())
        };
    let session_id = response.session_id;

    let interceptor = shared.replica.interceptor();
    if interceptor.on_session_established(session_id, interceptor_blob).is_err() {
        shared.replica.close_session(session_id);
        return None;
    }

    let conn = Arc::new(Connection { session_id, stream, write_lock: Mutex::new(()) });
    shared.connections.lock().insert(session_id, Arc::clone(&conn));

    let mut out = OutputArchive::with_capacity(64);
    response.serialize(&mut out);
    if conn.send(|_| Ok(()), out.into_bytes()).is_err() {
        shared.drop_connection_exact(&conn);
        return None;
    }
    Some(conn)
}

/// Answers one four-letter admin word with plain text on `stream` and lets
/// the connection close. The reply is never framed or encrypted — admin
/// words predate sessions, carry no client data, and must work from `nc`.
fn serve_admin_word(shared: &Shared, word: &str, stream: &TcpStream) {
    use std::io::Write;

    let admin = shared.handler.admin_info();
    let clients: Vec<ClientInfo> = shared
        .connections
        .lock()
        .values()
        .map(|conn| ClientInfo {
            addr: conn
                .stream
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "unknown".to_string()),
            session_id: Some(conn.session_id),
        })
        .collect();
    let replica = &shared.replica;
    let info = ServerInfo {
        version: format!("securekeeper-repro {}", env!("CARGO_PKG_VERSION")),
        member_id: replica.id(),
        role: admin.role,
        epoch: admin.epoch,
        leader: admin.leader,
        last_zxid: replica.last_zxid(),
        znode_count: replica.tree().node_count() as u64,
        approx_memory_bytes: replica.memory_bytes() as u64,
        session_count: replica.session_count() as u64,
        connection_count: clients.len() as u64,
        watch_count: replica.watch_count() as u64,
        ready: admin.ready,
        draining: admin.draining,
        secure: replica.interceptor().name() != "passthrough",
        clients,
    };
    if let Some(reply) = words::respond(word, &info, &shared.metrics.registry()) {
        shared.metrics.admin_commands.inc();
        let mut writer = stream;
        let _ = writer.write_all(reply.as_bytes());
        let _ = writer.flush();
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// The per-connection request loop: reads framed requests, routes them
/// through the interceptor and the replica (reads inline, writes via the
/// single-writer queue), and sends framed responses back.
fn serve_connection(
    shared: &Shared,
    write_tx: &Sender<WriteJob>,
    conn: &Arc<Connection>,
    reader: &mut TcpStream,
) {
    let interceptor = shared.replica.interceptor();
    let session_id = conn.session_id;
    while let Ok(Some(mut buffer)) = framing::read_frame(reader) {
        // The interceptor sees the raw bytes first: this is where the entry
        // enclave terminates the transport encryption and encrypts the
        // sensitive fields before the untrusted server parses the request.
        if interceptor.on_request(session_id, &mut buffer).is_err() {
            break;
        }
        let Ok((header, request)) = Request::from_bytes(&buffer) else { break };

        if request == Request::CloseSession {
            // Seal and send the acknowledgement while the session's enclave
            // is still alive (closing the session tears it down), then run
            // the close — ephemeral cleanup is a write — through the ordered
            // queue before ending the connection.
            let reply = ReplyHeader {
                xid: header.xid,
                zxid: shared.replica.last_zxid(),
                err: ErrorCode::Ok,
            };
            let bytes = jute::Response::CloseSession.to_bytes(&reply);
            let _ =
                conn.send(|buffer| interceptor.on_response(session_id, header.op, buffer), bytes);
            let (reply_tx, reply_rx) = mpsc::channel();
            if write_tx.send(WriteJob { session_id, request, reply: reply_tx }).is_ok() {
                let _ = reply_rx.recv();
            }
            shared.metrics.requests_write.inc();
            if let Some(limiter) = &shared.limiter {
                limiter.forget(session_id);
            }
            break;
        }

        // Rate limiting happens after the exempt requests (pings keep the
        // session alive, CloseSession above frees resources) and before any
        // tree work. A throttled request is answered in-band with the typed
        // error and the connection stays open — the client backs off.
        if request != Request::Ping {
            if let Some(limiter) = &shared.limiter {
                if !limiter.try_acquire(session_id) {
                    shared.metrics.throttled.inc();
                    shared.metrics.request_errors.inc();
                    let reply = ReplyHeader {
                        xid: header.xid,
                        zxid: shared.replica.last_zxid(),
                        err: ErrorCode::Throttled,
                    };
                    let bytes = jute::Response::Error(ErrorCode::Throttled).to_bytes(&reply);
                    let sent = conn.send(
                        |buffer| interceptor.on_response(session_id, header.op, buffer),
                        bytes,
                    );
                    if sent.is_err() {
                        break;
                    }
                    continue;
                }
            }
        }

        let started = Instant::now();
        let is_write = request.op().is_write();
        let (response, zxid) = if is_write {
            let (reply_tx, reply_rx) = mpsc::channel();
            if write_tx.send(WriteJob { session_id, request, reply: reply_tx }).is_err() {
                break;
            }
            match reply_rx.recv() {
                Ok(result) => result,
                Err(_) => break,
            }
        } else {
            let response = shared.replica.handle_request(session_id, &request);
            (response, shared.replica.last_zxid())
        };

        let elapsed = started.elapsed();
        if is_write {
            shared.metrics.requests_write.inc();
            shared.metrics.latency_write.observe_duration(elapsed);
        } else {
            shared.metrics.requests_read.inc();
            shared.metrics.latency_read.observe_duration(elapsed);
        }
        if response.error_code() != ErrorCode::Ok {
            shared.metrics.request_errors.inc();
        }

        let reply = ReplyHeader { xid: header.xid, zxid, err: response.error_code() };
        let bytes = response.to_bytes(&reply);
        let sent =
            conn.send(|buffer| interceptor.on_response(session_id, header.op, buffer), bytes);
        if sent.is_err() {
            break;
        }
    }
}
