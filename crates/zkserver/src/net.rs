//! The TCP wire transport.
//!
//! SecureKeeper's deployment is a *networked* service: clients speak the
//! length-prefixed ZooKeeper wire protocol over TCP, and the entry enclave
//! intercepts serialized buffers on the connection path (paper §5.1). This
//! module provides that transport on a sharded readiness reactor
//! ([`netcore`]) instead of one OS thread per connection, so a single server
//! process sustains thousands of live sessions with O(cores) threads:
//!
//! * accepted connections are multiplexed onto the reactor's event-loop
//!   shards; the `ConnectRequest` handshake arrives as the first frame, and
//!   its blob (the request's `password` field) is handed to the replica's
//!   interceptor via
//!   [`RequestInterceptor::on_session_established`](crate::pipeline::RequestInterceptor::on_session_established),
//!   which is where SecureKeeper installs the per-session transport key in an
//!   entry enclave;
//! * reads execute on the shard threads against the replica's
//!   reader-writer-locked tree;
//! * writes funnel through a single-writer ordered queue (an [`mpsc`]
//!   channel drained by one thread), so zxid order on the wire always matches
//!   apply order. While a session's write is in flight its later requests
//!   wait in a per-connection backlog, preserving the strict per-session
//!   FIFO the protocol requires;
//! * a background ticker drives session expiry from the replica's clock and
//!   fans fired watch notifications back out over the live connections as
//!   [`WatcherEvent`] frames (reply header xid [`NOTIFICATION_XID`]).
//!
//! Frame sealing happens inside each connection's outbound-queue lock
//! ([`netcore::Conn::send_framed`]), so the interceptor's per-session frame
//! counters always match the byte order on the socket no matter which thread
//! produced the frame.
//!
//! [`RequestInterceptor`]: crate::pipeline::RequestInterceptor

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use jute::records::{
    ConnectRequest, ErrorCode, ReplyHeader, RequestHeader, WatcherEvent, NOTIFICATION_XID,
};
use jute::trace_envelope::{self, TraceContext};
use jute::{InputArchive, OutputArchive, Request};
use netcore::{Backlog, Conn, Reactor, ReactorConfig, Service};
use opsplane::ratelimit::{RateLimitConfig, SessionRateLimiter};
use opsplane::words::{self, ClientInfo, ServerInfo};
use trace::Stage;

use crate::error::ZkError;
use crate::metrics::ServerMetrics;
use crate::server::{ZkReplica, DEFAULT_SESSION_TIMEOUT_MS};
use crate::session::SESSION_PASSWORD_LEN;
use crate::watch::WatchEvent;

/// Encrypts and decrypts whole wire frames (one endpoint of the per-session
/// secure channel). The server side lives inside the interceptor; clients
/// hold an implementation of this trait. [`PlainWire`] is the identity
/// cipher used against vanilla replicas.
pub trait WireCipher: Send {
    /// Protects an outgoing frame in place.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::Marshalling`] when the frame cannot be sealed.
    fn seal(&self, buffer: &mut Vec<u8>) -> Result<(), ZkError>;

    /// Verifies and strips the protection of an incoming frame in place.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::Marshalling`] when the frame was tampered with,
    /// replayed, or reordered.
    fn open(&self, buffer: &mut Vec<u8>) -> Result<(), ZkError>;
}

/// The identity cipher: frames travel in plaintext (vanilla ZooKeeper).
#[derive(Debug, Clone, Copy, Default)]
pub struct PlainWire;

impl WireCipher for PlainWire {
    fn seal(&self, _buffer: &mut Vec<u8>) -> Result<(), ZkError> {
        Ok(())
    }

    fn open(&self, _buffer: &mut Vec<u8>) -> Result<(), ZkError> {
        Ok(())
    }
}

/// Produces the per-session handshake material for a new connection: the
/// opaque blob carried in `ConnectRequest.password` (which the server-side
/// interceptor consumes in `on_session_established`) and the client's frame
/// cipher. SecureKeeper's implementation generates a fresh session key per
/// connection; [`PlainCredentials`] yields an empty blob and [`PlainWire`].
pub trait SessionCredentials: Send + Sync {
    /// Generates fresh handshake material for one connection attempt.
    fn establish(&self) -> (Vec<u8>, Box<dyn WireCipher>);
}

/// Credentials for a vanilla (non-encrypted) session.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlainCredentials;

impl SessionCredentials for PlainCredentials {
    fn establish(&self) -> (Vec<u8>, Box<dyn WireCipher>) {
        (Vec::new(), Box::new(PlainWire))
    }
}

/// Strategy for ordering and applying the write path of a [`ZkTcpServer`].
///
/// The standalone server applies writes directly to its replica
/// ([`LocalWriteHandler`]); an ensemble member routes them through ZAB
/// agreement instead ([`crate::ensemble`]), so the seam covers everything
/// that mutates the replicated tree: client writes, `CloseSession` ephemeral
/// cleanup, and session-expiry sweeps.
pub trait WriteHandler: Send + Sync {
    /// Executes one write (including `CloseSession`) on behalf of
    /// `session_id` and returns the response plus the zxid for the reply
    /// header.
    fn execute_write(
        &self,
        replica: &Arc<ZkReplica>,
        session_id: i64,
        request: &Request,
    ) -> (jute::Response, i64);

    /// Runs one session-expiry sweep, returning the ids of the sessions that
    /// expired (their connections are dropped by the caller).
    fn tick(&self, replica: &Arc<ZkReplica>) -> Vec<i64> {
        replica.tick()
    }

    /// A snapshot of the coordination state the four-letter admin words
    /// report. The standalone default is a ready, non-draining member with
    /// no ensemble around it; the ensemble handler overrides this with its
    /// live ZAB role.
    fn admin_info(&self) -> AdminInfo {
        AdminInfo::default()
    }
}

/// Coordination-layer state reported by the admin words (`srvr`, `stat`,
/// `mntr`), supplied by the [`WriteHandler`] because only the write path
/// knows whether it is standalone or an ensemble member.
#[derive(Debug, Clone)]
pub struct AdminInfo {
    /// `"standalone"`, `"leader"`, `"follower"`, or `"electing"`.
    pub role: String,
    /// Current ZAB epoch (0 when standalone).
    pub epoch: u32,
    /// Member id of the current leader, if known.
    pub leader: Option<u32>,
    /// Whether the member currently passes its readiness probe.
    pub ready: bool,
    /// Whether a graceful drain is in progress.
    pub draining: bool,
    /// On-disk WAL/snapshot footprint for the `dirs` word; `None` for
    /// in-memory members.
    pub data_dirs: Option<opsplane::DataDirInfo>,
}

impl Default for AdminInfo {
    fn default() -> Self {
        AdminInfo {
            role: "standalone".into(),
            epoch: 0,
            leader: None,
            ready: true,
            draining: false,
            data_dirs: None,
        }
    }
}

/// The standalone write path: the replica orders and applies writes itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalWriteHandler;

impl WriteHandler for LocalWriteHandler {
    fn execute_write(
        &self,
        replica: &Arc<ZkReplica>,
        session_id: i64,
        request: &Request,
    ) -> (jute::Response, i64) {
        let response = replica.handle_request(session_id, request);
        (response, replica.last_zxid())
    }
}

/// Configuration of a [`ZkTcpServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Upper bound on the session timeout granted to clients, in ms.
    pub max_session_timeout_ms: i64,
    /// Interval of the background expiry/fan-out ticker.
    pub tick_interval: Duration,
    /// Per-session request-rate limit; `None` disables throttling.
    pub rate_limit: Option<RateLimitConfig>,
    /// Number of reactor event-loop shards; `0` picks `min(cores, 4)`.
    pub event_loops: usize,
    /// When set, this member owns only the named subtree of the namespace
    /// (it is one shard of a partitioned deployment): any operation on a
    /// path that is neither inside the subtree nor an ancestor of it is
    /// answered with the typed `CrossShard` error. Ancestors stay
    /// addressable so the chain of parents above the shard root can be
    /// bootstrapped and inspected.
    pub subtree_root: Option<String>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_session_timeout_ms: DEFAULT_SESSION_TIMEOUT_MS,
            tick_interval: Duration::from_millis(20),
            rate_limit: None,
            event_loops: 0,
            subtree_root: None,
        }
    }
}

/// Where a connection is in its lifecycle.
enum Phase {
    /// Waiting for the `ConnectRequest` frame.
    Handshake,
    /// Session established; requests flow.
    Active { session_id: i64 },
    /// `CloseSession` accepted (or the handshake failed); remaining inbound
    /// frames are discarded.
    Closing,
}

/// Per-connection protocol state. `busy` is true while a write belonging to
/// this session sits in the single-writer queue; requests arriving meanwhile
/// wait in `backlog` so responses keep the per-session FIFO order.
struct ConnState {
    phase: Phase,
    busy: bool,
    backlog: Backlog<(RequestHeader, Request, Option<TraceContext>)>,
}

/// The transport's per-connection attachment (see [`netcore::Service`]).
pub struct SessionSlot {
    state: Mutex<ConnState>,
}

type ZkConn = Conn<SessionSlot>;

/// A write queued for the single-writer thread, carrying the connection its
/// response goes out on.
struct WriteJob {
    conn: Arc<ZkConn>,
    session_id: i64,
    header: RequestHeader,
    request: Request,
    started: Instant,
    /// Trace context carried by the request's wire envelope, if any.
    ctx: Option<TraceContext>,
    /// When the job entered the queue, for `queue_wait` attribution.
    enqueued_ns: u64,
}

/// State shared by the reactor callbacks, the writer and the ticker.
struct Shared {
    replica: Arc<ZkReplica>,
    handler: Arc<dyn WriteHandler>,
    config: NetConfig,
    metrics: Arc<ServerMetrics>,
    limiter: Option<SessionRateLimiter>,
    connections: Mutex<HashMap<i64, Arc<ZkConn>>>,
    running: AtomicBool,
}

impl Shared {
    /// Drains fired watch events from the replica and pushes each to the
    /// connection of the session that registered the watch. Events for
    /// sessions without a live connection are dropped, as in ZooKeeper.
    fn fan_out_watch_events(&self) {
        let events = self.replica.take_all_watch_events();
        if events.is_empty() {
            return;
        }
        let interceptor = self.replica.interceptor();
        for event in events {
            let conn = self.connections.lock().get(&event.session_id).cloned();
            let Some(conn) = conn else { continue };
            // The reply header carries the zxid of the transaction that
            // fired the watch, so the events of one multi share one zxid.
            let frame = encode_watch_event(&event, event.zxid);
            let session_id = event.session_id;
            let sent = conn.send_framed(
                |buffer| interceptor.on_event(session_id, buffer).map_err(|_| ()),
                frame,
            );
            if sent.is_ok() {
                self.metrics.watch_events.inc();
            }
        }
    }

    /// Closes the registered connection of `session_id`, if any.
    fn drop_connection(&self, session_id: i64) {
        if let Some(conn) = self.connections.lock().remove(&session_id) {
            conn.close();
        }
    }

    /// Removes `conn` from the registry *only if it is still the registered
    /// connection* for its session — when a client re-attaches from a new
    /// socket, the predecessor's teardown must not tear the fresh connection
    /// down with it.
    fn unregister_exact(&self, session_id: i64, conn: &Arc<ZkConn>) {
        let mut connections = self.connections.lock();
        if connections.get(&session_id).is_some_and(|current| Arc::ptr_eq(current, conn)) {
            connections.remove(&session_id);
        }
    }
}

/// Serializes a watch notification as a reply frame with
/// [`NOTIFICATION_XID`] in the header, the format real ZooKeeper uses.
/// True when `path` lies on the member's subtree axis: the shard root
/// itself, one of its descendants, or one of its ancestors. Comparison is
/// component-wise and purely byte-wise, so it works unchanged on sealed
/// (per-component encrypted) paths.
pub fn within_subtree(path: &str, root: &str) -> bool {
    let mut path_parts = path.split('/').filter(|c| !c.is_empty());
    let mut root_parts = root.split('/').filter(|c| !c.is_empty());
    loop {
        match (path_parts.next(), root_parts.next()) {
            (Some(p), Some(r)) if p == r => continue,
            (Some(_), Some(_)) => return false,
            // One side ran out: ancestor or descendant (or equal) — in.
            _ => return true,
        }
    }
}

/// True when any path the request names leaves this member's subtree.
fn request_escapes_subtree(request: &Request, root: &str) -> bool {
    if let Some(path) = request.path() {
        return !within_subtree(path, root);
    }
    if let Request::Multi(multi) = request {
        return multi.ops.iter().any(|op| !within_subtree(op.path(), root));
    }
    false
}

fn encode_watch_event(event: &WatchEvent, zxid: i64) -> Vec<u8> {
    let mut out = OutputArchive::with_capacity(32 + event.path.len());
    ReplyHeader { xid: NOTIFICATION_XID, zxid, err: ErrorCode::Ok }.serialize(&mut out);
    WatcherEvent {
        event_type: event.kind.to_wire(),
        state: WatcherEvent::STATE_SYNC_CONNECTED,
        path: event.path.clone(),
    }
    .serialize(&mut out);
    out.into_bytes()
}

/// What to do with one parsed request, decided under the connection's state
/// lock and executed by whichever thread holds the request.
enum RequestRoute {
    /// Handled completely (read, ping, throttle answer, protocol error).
    Done,
    /// A write: the caller owns forwarding `WriteJob` to the ordered queue.
    Write(WriteJob),
    /// `CloseSession`: ack sent, close job queued, connection closing.
    Close(WriteJob),
}

/// The [`netcore::Service`] implementation: protocol dispatch for one client
/// connection, shared across all reactor shards.
struct ZkService {
    shared: Arc<Shared>,
    write_tx: Sender<WriteJob>,
}

impl ZkService {
    /// Sends `response` for `header` back on `conn`, sealed through the
    /// interceptor. Failures schedule the connection for teardown.
    fn respond(
        &self,
        conn: &Arc<ZkConn>,
        session_id: i64,
        header: &RequestHeader,
        response: &jute::Response,
        zxid: i64,
    ) {
        let interceptor = self.shared.replica.interceptor();
        let reply = ReplyHeader { xid: header.xid, zxid, err: response.error_code() };
        let bytes = response.to_bytes(&reply);
        let flush_start = trace::now_ns();
        let mut seal_ns = 0u64;
        let sent = conn.send_framed(
            |buffer| {
                let seal_start = trace::now_ns();
                let sealed = interceptor.on_response(session_id, header.op, buffer).map_err(|_| ());
                seal_ns = trace::now_ns().saturating_sub(seal_start);
                sealed
            },
            bytes,
        );
        let stages = &self.shared.metrics.stages;
        stages.observe_ns(Stage::Seal, seal_ns);
        stages.observe_ns(Stage::ReplyFlush, trace::now_ns().saturating_sub(flush_start));
        trace::record_current(Stage::ReplyFlush, flush_start, header.xid as u64);
        if sent.is_err() {
            conn.close();
        }
    }

    /// Routes one parsed request. Runs with the connection's state lock held
    /// by the caller (`state`), so per-session processing stays serial.
    fn route_request(
        &self,
        conn: &Arc<ZkConn>,
        state: &mut ConnState,
        session_id: i64,
        header: RequestHeader,
        request: Request,
        ctx: Option<TraceContext>,
    ) -> RequestRoute {
        let shared = &self.shared;
        if request == Request::CloseSession {
            // Seal and send the acknowledgement while the session's enclave
            // is still alive (closing the session tears it down), then run
            // the close — ephemeral cleanup is a write — through the ordered
            // queue before ending the connection.
            let reply = ReplyHeader {
                xid: header.xid,
                zxid: shared.replica.last_zxid(),
                err: ErrorCode::Ok,
            };
            let interceptor = shared.replica.interceptor();
            let bytes = jute::Response::CloseSession.to_bytes(&reply);
            let _ = conn.send_framed(
                |buffer| interceptor.on_response(session_id, header.op, buffer).map_err(|_| ()),
                bytes,
            );
            shared.metrics.requests_write.inc();
            if let Some(limiter) = &shared.limiter {
                limiter.forget(session_id);
            }
            state.phase = Phase::Closing;
            state.busy = true;
            return RequestRoute::Close(WriteJob {
                conn: Arc::clone(conn),
                session_id,
                header,
                request,
                started: Instant::now(),
                ctx,
                enqueued_ns: trace::now_ns(),
            });
        }

        // Subtree enforcement runs before the rate limiter: a misrouted
        // request is a deployment error, not tenant traffic, and must not
        // drain the session's token budget.
        if let Some(root) = &shared.config.subtree_root {
            if request_escapes_subtree(&request, root) {
                shared.metrics.request_errors.inc();
                let response = jute::Response::Error(ErrorCode::CrossShard);
                self.respond(conn, session_id, &header, &response, shared.replica.last_zxid());
                return RequestRoute::Done;
            }
        }

        // Rate limiting happens after the exempt requests (pings keep the
        // session alive, CloseSession above frees resources) and before any
        // tree work. A throttled request is answered in-band with the typed
        // error and the connection stays open — the client backs off.
        if request != Request::Ping {
            if let Some(limiter) = &shared.limiter {
                if !limiter.try_acquire(session_id) {
                    shared.metrics.throttled.inc();
                    shared.metrics.request_errors.inc();
                    let response = jute::Response::Error(ErrorCode::Throttled);
                    self.respond(conn, session_id, &header, &response, shared.replica.last_zxid());
                    return RequestRoute::Done;
                }
            }
        }

        if request.op().is_write() {
            state.busy = true;
            return RequestRoute::Write(WriteJob {
                conn: Arc::clone(conn),
                session_id,
                header,
                request,
                started: Instant::now(),
                ctx,
                enqueued_ns: trace::now_ns(),
            });
        }

        let started = Instant::now();
        let response = shared.replica.handle_request(session_id, &request);
        let zxid = shared.replica.last_zxid();
        shared.metrics.requests_read.inc();
        shared.metrics.latency_read.observe_duration(started.elapsed());
        if response.error_code() != ErrorCode::Ok {
            shared.metrics.request_errors.inc();
        }
        self.respond(conn, session_id, &header, &response, zxid);
        RequestRoute::Done
    }

    /// Forwards a routed write to the single-writer queue.
    fn forward(&self, route: RequestRoute) {
        match route {
            RequestRoute::Done => {}
            RequestRoute::Write(job) | RequestRoute::Close(job) => {
                if self.write_tx.send(job).is_err() {
                    // Shutdown raced us; the reactor is being torn down.
                }
            }
        }
    }

    /// Performs the `ConnectRequest`/`ConnectResponse` exchange. The
    /// handshake travels unencrypted (it carries the key-exchange blob, not
    /// application data), exactly like the attested key exchange that
    /// precedes the secure channel in the paper.
    fn handshake(&self, conn: &Arc<ZkConn>, state: &mut ConnState, frame: &[u8]) {
        let shared = &self.shared;
        let fail = |state: &mut ConnState| {
            state.phase = Phase::Closing;
            conn.close();
        };
        let mut input = InputArchive::new(frame);
        let Ok(connect) = ConnectRequest::deserialize(&mut input) else { return fail(state) };
        if input.expect_exhausted().is_err() {
            return fail(state);
        }

        // A client announcing a `last_zxid_seen` beyond this replica's
        // applied log has observed state we cannot serve yet; attaching it
        // here would let its session read backwards in time. Refuse (drop
        // the connection) and let the client fail over to a member that has
        // caught up.
        if connect.last_zxid_seen > shared.replica.last_zxid() {
            return fail(state);
        }

        let requested = i64::from(connect.timeout_ms);
        let timeout_ms = if requested <= 0 {
            DEFAULT_SESSION_TIMEOUT_MS.min(shared.config.max_session_timeout_ms)
        } else {
            requested.min(shared.config.max_session_timeout_ms)
        };
        // A non-zero session id is a re-attach attempt: the first 16 bytes
        // of the password field are the session password, the rest is the
        // interceptor's key-exchange blob (which a fresh connect carries
        // alone). A failed re-attach (expired session, wrong password) falls
        // back to a fresh session — the client sees the new id and knows its
        // ephemerals and watches are gone, ZooKeeper's session-expired
        // contract.
        let (response, interceptor_blob) =
            if connect.session_id != 0 && connect.password.len() >= SESSION_PASSWORD_LEN {
                let (session_password, blob) = connect.password.split_at(SESSION_PASSWORD_LEN);
                match shared.replica.reattach_session(connect.session_id, session_password) {
                    Some(response) => (response, blob),
                    None => (shared.replica.connect(timeout_ms), blob),
                }
            } else {
                (shared.replica.connect(timeout_ms), connect.password.as_slice())
            };
        let session_id = response.session_id;

        let interceptor = shared.replica.interceptor();
        if interceptor.on_session_established(session_id, interceptor_blob).is_err() {
            shared.replica.close_session(session_id);
            return fail(state);
        }

        state.phase = Phase::Active { session_id };
        shared.connections.lock().insert(session_id, Arc::clone(conn));

        let mut out = OutputArchive::with_capacity(64);
        response.serialize(&mut out);
        if conn.send_framed(|_| Ok(()), out.into_bytes()).is_err() {
            shared.unregister_exact(session_id, conn);
            fail(state);
        }
    }
}

impl Service for ZkService {
    type State = SessionSlot;

    fn make_state(&self, _peer: SocketAddr) -> SessionSlot {
        SessionSlot {
            state: Mutex::new(ConnState {
                phase: Phase::Handshake,
                busy: false,
                backlog: Backlog::default(),
            }),
        }
    }

    fn on_frame(&self, conn: &Arc<ZkConn>, mut frame: Vec<u8>) {
        let mut state = conn.state.state.lock();
        match state.phase {
            Phase::Handshake => self.handshake(conn, &mut state, &frame),
            Phase::Closing => {}
            Phase::Active { session_id } => {
                // The trace envelope rides *outside* the transport cipher,
                // so it peels off before the interceptor — the enclave opens
                // exactly the bytes the client sealed, and the trace plane
                // stays outside the TCB. Making the context ambient here
                // lets the interceptor's open/seal hooks attribute spans.
                let ctx = trace_envelope::strip(&mut frame);
                trace::set_current(ctx);
                // The interceptor sees the raw bytes first — in arrival
                // order, even while the session is busy, because its
                // per-session counters track the inbound byte stream. This
                // is where the entry enclave terminates the transport
                // encryption and encrypts the sensitive fields before the
                // untrusted server parses the request.
                let interceptor = self.shared.replica.interceptor();
                let open_start = trace::now_ns();
                if interceptor.on_request(session_id, &mut frame).is_err() {
                    state.phase = Phase::Closing;
                    drop(state);
                    conn.close();
                    return;
                }
                self.shared
                    .metrics
                    .stages
                    .observe_ns(Stage::Open, trace::now_ns().saturating_sub(open_start));
                let Ok((header, request)) = Request::from_bytes(&frame) else {
                    state.phase = Phase::Closing;
                    drop(state);
                    conn.close();
                    return;
                };
                if state.busy {
                    // A write of this session is in flight; queue behind it
                    // so the response order matches the request order.
                    state.backlog.push((header, request, ctx));
                    return;
                }
                let route = self.route_request(conn, &mut state, session_id, header, request, ctx);
                drop(state);
                self.forward(route);
            }
        }
    }

    fn on_word(&self, conn: &Arc<ZkConn>, word: [u8; 4]) {
        let Some(word) = words::parse_word(&word) else {
            conn.close();
            return;
        };
        serve_admin_word(&self.shared, word, conn);
    }

    fn on_closed(&self, conn: &Arc<ZkConn>) {
        let state = conn.state.state.lock();
        if let Phase::Active { session_id } = state.phase {
            drop(state);
            self.shared.unregister_exact(session_id, conn);
            // A connection that ends without CloseSession leaves its session
            // behind to expire via the ticker — ZooKeeper's disconnection
            // semantics, which is what keeps ephemeral znodes alive across a
            // client reconnect window.
        }
    }
}

/// Answers one four-letter admin word with plain text and closes the
/// connection once the reply has flushed. The reply is never framed or
/// encrypted — admin words predate sessions, carry no client data, and must
/// work from `nc`.
fn serve_admin_word(shared: &Arc<Shared>, word: &str, conn: &Arc<ZkConn>) {
    let admin = shared.handler.admin_info();
    let clients: Vec<ClientInfo> = shared
        .connections
        .lock()
        .iter()
        .map(|(session_id, conn)| ClientInfo {
            addr: conn.peer_addr().to_string(),
            session_id: Some(*session_id),
        })
        .collect();
    let replica = &shared.replica;
    let info = ServerInfo {
        version: format!("securekeeper-repro {}", env!("CARGO_PKG_VERSION")),
        member_id: replica.id(),
        role: admin.role,
        epoch: admin.epoch,
        leader: admin.leader,
        last_zxid: replica.last_zxid(),
        znode_count: replica.tree().node_count() as u64,
        approx_memory_bytes: replica.memory_bytes() as u64,
        session_count: replica.session_count() as u64,
        connection_count: clients.len() as u64,
        watch_count: replica.watch_count() as u64,
        ready: admin.ready,
        draining: admin.draining,
        secure: replica.interceptor().name() != "passthrough",
        clients,
        data_dirs: admin.data_dirs,
    };
    if let Some(reply) = words::respond(word, &info, &shared.metrics.registry()) {
        shared.metrics.admin_commands.inc();
        let _ = conn.send_raw(reply.as_bytes());
        conn.close_after_flush();
    } else {
        conn.close();
    }
}

/// A ZooKeeper replica listening on a real TCP socket.
///
/// Dropping the server shuts it down: the listener and every connection are
/// closed and all threads are joined.
pub struct ZkTcpServer {
    shared: Arc<Shared>,
    reactor: Option<Reactor<ZkService>>,
    local_addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ZkTcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZkTcpServer")
            .field("local_addr", &self.local_addr)
            .field("connections", &self.connection_count())
            .finish()
    }
}

impl ZkTcpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts serving
    /// `replica`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn bind(addr: impl ToSocketAddrs, replica: Arc<ZkReplica>) -> io::Result<Self> {
        Self::bind_with_config(addr, replica, NetConfig::default())
    }

    /// Binds with an explicit [`NetConfig`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn bind_with_config(
        addr: impl ToSocketAddrs,
        replica: Arc<ZkReplica>,
        config: NetConfig,
    ) -> io::Result<Self> {
        Self::bind_with_handler(addr, replica, config, Arc::new(LocalWriteHandler))
    }

    /// Binds with an explicit [`WriteHandler`] — the seam the replicated
    /// ensemble uses to route writes through ZAB agreement instead of
    /// applying them locally.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn bind_with_handler(
        addr: impl ToSocketAddrs,
        replica: Arc<ZkReplica>,
        config: NetConfig,
        handler: Arc<dyn WriteHandler>,
    ) -> io::Result<Self> {
        Self::bind_with_metrics(addr, replica, config, handler, Arc::new(ServerMetrics::new()))
    }

    /// Binds with an externally owned metric surface — the ensemble server
    /// passes the surface its ZAB driver already updates, so one registry
    /// covers the member's request path and its agreement path.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn bind_with_metrics(
        addr: impl ToSocketAddrs,
        replica: Arc<ZkReplica>,
        config: NetConfig,
        handler: Arc<dyn WriteHandler>,
        metrics: Arc<ServerMetrics>,
    ) -> io::Result<Self> {
        metrics.attach_replica(&replica);
        let limiter = config.rate_limit.map(SessionRateLimiter::new);
        let shared = Arc::new(Shared {
            replica,
            handler,
            config,
            metrics,
            limiter,
            connections: Mutex::new(HashMap::new()),
            running: AtomicBool::new(true),
        });
        {
            let connections_open = shared.metrics.connections_open.clone();
            let weak = Arc::downgrade(&shared);
            shared.metrics.registry().register_collector(move || {
                if let Some(shared) = weak.upgrade() {
                    connections_open.set(shared.connections.lock().len() as i64);
                }
            });
        }
        let (write_tx, write_rx) = mpsc::channel::<WriteJob>();
        let service = Arc::new(ZkService { shared: Arc::clone(&shared), write_tx });
        let reactor_config =
            ReactorConfig { shards: shared.config.event_loops, ..ReactorConfig::default() };
        let reactor = Reactor::bind(addr, Arc::clone(&service), reactor_config)?;
        let local_addr = reactor.local_addr();

        let mut threads = Vec::new();
        threads.push({
            let service = Arc::clone(&service);
            std::thread::spawn(move || writer_loop(&service, &write_rx))
        });
        threads.push({
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || ticker_loop(&shared))
        });

        Ok(ZkTcpServer { shared, reactor: Some(reactor), local_addr, threads })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The replica served by this transport.
    pub fn replica(&self) -> Arc<ZkReplica> {
        Arc::clone(&self.shared.replica)
    }

    /// Number of live client connections (established sessions).
    pub fn connection_count(&self) -> usize {
        self.shared.connections.lock().len()
    }

    /// Total transport threads: reactor shards plus the writer and ticker.
    /// O(cores) by construction — independent of the connection count.
    pub fn transport_thread_count(&self) -> usize {
        self.reactor.as_ref().map_or(0, Reactor::shard_count) + self.threads.len()
    }

    /// The metric surface this transport updates.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Stops accepting, closes every connection and joins all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if !self.shared.running.swap(false, Ordering::SeqCst) {
            return;
        }
        // Tearing the reactor down closes every connection — including ones
        // still mid-handshake — and joins the shard threads. Dropping it
        // afterwards drops the service's writer-queue sender, which lets the
        // writer thread's `recv` disconnect.
        if let Some(reactor) = self.reactor.take() {
            reactor.shutdown();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ZkTcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Applies queued writes one at a time, preserving arrival order, and fans
/// the watch events fired by each write out to the live connections. After
/// each write it drains the owning connection's backlog (requests that
/// arrived while the write was in flight), so per-session FIFO order holds
/// without ever blocking a reactor shard on agreement latency.
fn writer_loop(service: &Arc<ZkService>, write_rx: &Receiver<WriteJob>) {
    let shared = &service.shared;
    loop {
        // The loop owns an `Arc<ZkService>` that keeps the queue's sender
        // alive, so disconnection alone can never end it — poll the running
        // flag instead (shutdown cost: at most one timeout window).
        let first = match write_rx.recv_timeout(Duration::from_millis(20)) {
            Ok(job) => job,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.running.load(Ordering::SeqCst) {
                    continue;
                }
                return;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        let mut job = first;
        loop {
            // Attribute the time the job sat behind other sessions' writes,
            // then make its trace context ambient so the agreement and
            // persistence layers below can attribute their own spans.
            let picked_ns = trace::now_ns();
            shared
                .metrics
                .stages
                .observe_ns(Stage::QueueWait, picked_ns.saturating_sub(job.enqueued_ns));
            if let Some(ctx) = &job.ctx {
                trace::record_leaf(Stage::QueueWait, ctx, job.enqueued_ns, 0);
            }
            trace::set_current(job.ctx);
            let closing = matches!(job.request, Request::CloseSession);
            let (response, zxid) =
                shared.handler.execute_write(&shared.replica, job.session_id, &job.request);
            if closing {
                // The acknowledgement was already sent (sealed while the
                // session's enclave was alive); finish the goodbye.
                shared.unregister_exact(job.session_id, &job.conn);
                job.conn.close_after_flush();
            } else {
                shared.metrics.requests_write.inc();
                shared.metrics.latency_write.observe_duration(job.started.elapsed());
                if response.error_code() != ErrorCode::Ok {
                    shared.metrics.request_errors.inc();
                }
                service.respond(&job.conn, job.session_id, &job.header, &response, zxid);
            }
            // Watch fan-out belongs to no single request; drop the ambient
            // context so event seals are not attributed to this trace.
            trace::set_current(None);
            shared.fan_out_watch_events();

            if closing {
                break;
            }
            // Drain the session's backlog: cheap requests (reads, pings,
            // throttle answers) are handled right here under the state lock;
            // the next write continues this loop, keeping the connection
            // marked busy throughout.
            let next = {
                let mut state = job.conn.state.state.lock();
                let mut next = None;
                while let Some((header, request, ctx)) = state.backlog.pop() {
                    trace::set_current(ctx);
                    match service.route_request(
                        &job.conn,
                        &mut state,
                        job.session_id,
                        header,
                        request,
                        ctx,
                    ) {
                        RequestRoute::Done => {}
                        RequestRoute::Write(job) | RequestRoute::Close(job) => {
                            next = Some(job);
                            break;
                        }
                    }
                }
                trace::set_current(None);
                if next.is_none() {
                    state.busy = false;
                }
                next
            };
            match next {
                Some(next_job) => job = next_job,
                None => break,
            }
        }
    }
}

/// Expires sessions on the replica's clock, closes their connections, and
/// delivers the watch events their ephemeral-node cleanup fired.
fn ticker_loop(shared: &Shared) {
    while shared.running.load(Ordering::SeqCst) {
        std::thread::sleep(shared.config.tick_interval);
        for session_id in shared.handler.tick(&shared.replica) {
            shared.metrics.sessions_expired.inc();
            if let Some(limiter) = &shared.limiter {
                limiter.forget(session_id);
            }
            shared.drop_connection(session_id);
        }
        shared.fan_out_watch_events();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subtree_membership_is_componentwise() {
        assert!(within_subtree("/a/b/c", "/a/b"), "descendant is in");
        assert!(within_subtree("/a/b", "/a/b"), "the shard root itself is in");
        assert!(within_subtree("/a", "/a/b"), "ancestors stay addressable");
        assert!(within_subtree("/", "/a/b"), "the tree root is everyone's ancestor");
        assert!(!within_subtree("/a/x", "/a/b"), "siblings are out");
        assert!(!within_subtree("/ab", "/a"), "string prefix is not component prefix");
        assert!(within_subtree("/anything", "/"), "a root-rooted shard owns everything");
    }

    #[test]
    fn multi_escape_checks_every_sub_operation() {
        use jute::records::{CreateMode, CreateRequest};
        let inside = jute::multi::Op::Create(CreateRequest {
            path: "/a/b/x".into(),
            data: vec![],
            mode: CreateMode::Persistent,
        });
        let outside = jute::multi::Op::Create(CreateRequest {
            path: "/z/x".into(),
            data: vec![],
            mode: CreateMode::Persistent,
        });
        let mixed = Request::Multi(jute::MultiRequest::new(vec![inside.clone(), outside]));
        assert!(request_escapes_subtree(&mixed, "/a/b"));
        let pure = Request::Multi(jute::MultiRequest::new(vec![inside]));
        assert!(!request_escapes_subtree(&pure, "/a/b"));
        assert!(!request_escapes_subtree(&Request::Ping, "/a/b"), "pathless ops never escape");
    }
}
