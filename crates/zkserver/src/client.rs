//! A typed client handle over a [`ZkCluster`].
//!
//! The client mirrors the convenience API of ZooKeeper's Java client: typed
//! `create`/`get_data`/`set_data`/`delete`/`get_children`/`exists` methods,
//! one-shot watches, and reconnection to another replica after a connection
//! loss. The examples and the benchmark harness both drive the service
//! through this interface, and the SecureKeeper crate provides a drop-in
//! equivalent whose traffic is transport-encrypted.

use std::sync::Arc;

use parking_lot::Mutex;

use jute::records::{
    CreateMode, CreateRequest, DeleteRequest, ExistsRequest, GetChildrenRequest, GetDataRequest,
    SetDataRequest, Stat,
};
use jute::{Request, Response};
use zab::NodeId;

use crate::cluster::ZkCluster;
use crate::error::ZkError;
use crate::ops::error_from_code;
use crate::watch::WatchEvent;

/// A shared handle to an in-process cluster.
pub type SharedCluster = Arc<Mutex<ZkCluster>>;

/// Wraps a cluster in the shared handle used by clients.
pub fn share(cluster: ZkCluster) -> SharedCluster {
    Arc::new(Mutex::new(cluster))
}

/// A client session against one replica of the cluster.
#[derive(Debug, Clone)]
pub struct ZkClient {
    cluster: SharedCluster,
    session_id: i64,
    replica: NodeId,
}

impl ZkClient {
    /// Connects a new session to `replica`.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::SessionExpired`] if the replica is unreachable.
    pub fn connect(cluster: &SharedCluster, replica: NodeId) -> Result<Self, ZkError> {
        let response = cluster.lock().connect_default(replica)?;
        Ok(ZkClient { cluster: Arc::clone(cluster), session_id: response.session_id, replica })
    }

    /// The session id assigned by the cluster.
    pub fn session_id(&self) -> i64 {
        self.session_id
    }

    /// The replica this client is connected to.
    pub fn replica(&self) -> NodeId {
        self.replica
    }

    /// Re-establishes the session on a different replica (after a crash of the
    /// previous one). Ephemeral znodes of the old session are *not* carried
    /// over, matching ZooKeeper's session-expiry semantics.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::SessionExpired`] if the new replica is unreachable.
    pub fn reconnect_to(&mut self, replica: NodeId) -> Result<(), ZkError> {
        let response = self.cluster.lock().connect_default(replica)?;
        self.session_id = response.session_id;
        self.replica = replica;
        Ok(())
    }

    fn submit(&self, request: &Request) -> Response {
        self.cluster.lock().submit(self.session_id, request)
    }

    /// Creates a znode and returns its actual path (with the sequence suffix
    /// for sequential modes).
    ///
    /// # Errors
    ///
    /// Propagates the service error (`NodeExists`, `NoNode` for a missing
    /// parent, quorum loss, ...).
    pub fn create(&self, path: &str, data: Vec<u8>, mode: CreateMode) -> Result<String, ZkError> {
        let request = Request::Create(CreateRequest { path: path.to_string(), data, mode });
        match self.submit(&request) {
            Response::Create(create) => Ok(create.path),
            Response::Error(code) => Err(error_from_code(code, path)),
            other => Err(ZkError::Marshalling { reason: format!("unexpected response {other:?}") }),
        }
    }

    /// Reads a znode's payload and metadata.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::NoNode`] if the path does not exist.
    pub fn get_data(&self, path: &str, watch: bool) -> Result<(Vec<u8>, Stat), ZkError> {
        let request = Request::GetData(GetDataRequest { path: path.to_string(), watch });
        match self.submit(&request) {
            Response::GetData(get) => Ok((get.data, get.stat)),
            Response::Error(code) => Err(error_from_code(code, path)),
            other => Err(ZkError::Marshalling { reason: format!("unexpected response {other:?}") }),
        }
    }

    /// Overwrites a znode's payload.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::BadVersion`] when `version` does not match, or
    /// [`ZkError::NoNode`] if the path does not exist.
    pub fn set_data(&self, path: &str, data: Vec<u8>, version: i32) -> Result<Stat, ZkError> {
        let request = Request::SetData(SetDataRequest { path: path.to_string(), data, version });
        match self.submit(&request) {
            Response::SetData(set) => Ok(set.stat),
            Response::Error(code) => Err(error_from_code(code, path)),
            other => Err(ZkError::Marshalling { reason: format!("unexpected response {other:?}") }),
        }
    }

    /// Deletes a znode.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::NotEmpty`] when the node still has children,
    /// [`ZkError::BadVersion`] on a version mismatch, or [`ZkError::NoNode`].
    pub fn delete(&self, path: &str, version: i32) -> Result<(), ZkError> {
        let request = Request::Delete(DeleteRequest { path: path.to_string(), version });
        match self.submit(&request) {
            Response::Delete => Ok(()),
            Response::Error(code) => Err(error_from_code(code, path)),
            other => Err(ZkError::Marshalling { reason: format!("unexpected response {other:?}") }),
        }
    }

    /// Lists the children of a znode.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::NoNode`] if the path does not exist.
    pub fn get_children(&self, path: &str, watch: bool) -> Result<Vec<String>, ZkError> {
        let request = Request::GetChildren(GetChildrenRequest { path: path.to_string(), watch });
        match self.submit(&request) {
            Response::GetChildren(ls) => Ok(ls.children),
            Response::Error(code) => Err(error_from_code(code, path)),
            other => Err(ZkError::Marshalling { reason: format!("unexpected response {other:?}") }),
        }
    }

    /// Checks whether a znode exists, returning its metadata if it does.
    ///
    /// # Errors
    ///
    /// Only connection-level failures produce errors; a missing node yields
    /// `Ok(None)`.
    pub fn exists(&self, path: &str, watch: bool) -> Result<Option<Stat>, ZkError> {
        let request = Request::Exists(ExistsRequest { path: path.to_string(), watch });
        match self.submit(&request) {
            Response::Exists(exists) => Ok(Some(exists.stat)),
            Response::Error(jute::records::ErrorCode::NoNode) => Ok(None),
            Response::Error(code) => Err(error_from_code(code, path)),
            other => Err(ZkError::Marshalling { reason: format!("unexpected response {other:?}") }),
        }
    }

    /// Sends a keep-alive ping.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::SessionExpired`] when the session is gone.
    pub fn ping(&self) -> Result<(), ZkError> {
        match self.submit(&Request::Ping) {
            Response::Ping => Ok(()),
            Response::Error(code) => Err(error_from_code(code, "/")),
            other => Err(ZkError::Marshalling { reason: format!("unexpected response {other:?}") }),
        }
    }

    /// Drains watch notifications delivered to this session.
    pub fn take_watch_events(&self) -> Vec<WatchEvent> {
        self.cluster.lock().take_watch_events(self.session_id)
    }

    /// Closes the session, removing its ephemeral znodes.
    pub fn close(self) {
        self.cluster.lock().close_session(self.session_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watch::WatchEventKind;

    fn cluster() -> SharedCluster {
        share(ZkCluster::new(3))
    }

    #[test]
    fn typed_crud_cycle() {
        let cluster = cluster();
        let replica = cluster.lock().replica_ids()[0];
        let client = ZkClient::connect(&cluster, replica).unwrap();

        assert_eq!(
            client.create("/app", b"root".to_vec(), CreateMode::Persistent).unwrap(),
            "/app"
        );
        let (data, stat) = client.get_data("/app", false).unwrap();
        assert_eq!(data, b"root");
        assert_eq!(stat.version, 0);

        let stat = client.set_data("/app", b"v2".to_vec(), 0).unwrap();
        assert_eq!(stat.version, 1);
        assert!(client.exists("/app", false).unwrap().is_some());
        assert!(client.exists("/nope", false).unwrap().is_none());

        client.create("/app/a", vec![], CreateMode::Persistent).unwrap();
        client.create("/app/b", vec![], CreateMode::Persistent).unwrap();
        assert_eq!(client.get_children("/app", false).unwrap(), vec!["a", "b"]);

        client.delete("/app/a", -1).unwrap();
        assert_eq!(client.get_children("/app", false).unwrap(), vec!["b"]);
        assert!(matches!(client.get_data("/app/a", false), Err(ZkError::NoNode { .. })));
        client.ping().unwrap();
    }

    #[test]
    fn sequential_create_returns_generated_path() {
        let cluster = cluster();
        let replica = cluster.lock().replica_ids()[0];
        let client = ZkClient::connect(&cluster, replica).unwrap();
        client.create("/tasks", vec![], CreateMode::Persistent).unwrap();
        let first =
            client.create("/tasks/task-", vec![], CreateMode::PersistentSequential).unwrap();
        let second =
            client.create("/tasks/task-", vec![], CreateMode::PersistentSequential).unwrap();
        assert_eq!(first, "/tasks/task-0000000000");
        assert_eq!(second, "/tasks/task-0000000001");
    }

    #[test]
    fn watches_are_delivered_through_the_client() {
        let cluster = cluster();
        let ids = cluster.lock().replica_ids();
        let watcher = ZkClient::connect(&cluster, ids[0]).unwrap();
        let writer = ZkClient::connect(&cluster, ids[0]).unwrap();
        watcher.create("/watched", b"v1".to_vec(), CreateMode::Persistent).unwrap();
        watcher.get_data("/watched", true).unwrap();
        writer.set_data("/watched", b"v2".to_vec(), -1).unwrap();
        let events = watcher.take_watch_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, WatchEventKind::NodeDataChanged);
        assert_eq!(events[0].path, "/watched");
    }

    #[test]
    fn ephemeral_nodes_vanish_when_the_client_closes() {
        let cluster = cluster();
        let ids = cluster.lock().replica_ids();
        let member = ZkClient::connect(&cluster, ids[1]).unwrap();
        let observer = ZkClient::connect(&cluster, ids[2]).unwrap();
        observer.create("/group", vec![], CreateMode::Persistent).unwrap();
        member.create("/group/member-1", vec![], CreateMode::Ephemeral).unwrap();
        assert_eq!(observer.get_children("/group", false).unwrap().len(), 1);
        member.close();
        assert!(observer.get_children("/group", false).unwrap().is_empty());
    }

    #[test]
    fn client_reconnects_after_replica_crash() {
        let cluster = cluster();
        let ids = cluster.lock().replica_ids();
        let follower = {
            let guard = cluster.lock();
            ids.iter().copied().find(|&id| id != guard.leader_id()).unwrap()
        };
        let mut client = ZkClient::connect(&cluster, follower).unwrap();
        client.create("/persistent", vec![], CreateMode::Persistent).unwrap();
        cluster.lock().crash(follower);
        assert!(client.get_data("/persistent", false).is_err());
        let target = cluster.lock().leader_id();
        client.reconnect_to(target).unwrap();
        assert!(client.get_data("/persistent", false).is_ok());
    }

    #[test]
    fn duplicate_create_reports_node_exists() {
        let cluster = cluster();
        let replica = cluster.lock().replica_ids()[0];
        let client = ZkClient::connect(&cluster, replica).unwrap();
        client.create("/dup", vec![], CreateMode::Persistent).unwrap();
        assert!(matches!(
            client.create("/dup", vec![], CreateMode::Persistent),
            Err(ZkError::NodeExists { .. })
        ));
    }
}
