//! Typed client handles: [`ZkClient`] over an in-process [`ZkCluster`] and
//! the blocking socket client [`ZkTcpClient`] over a [`crate::net::ZkTcpServer`].
//!
//! Both mirror the convenience API of ZooKeeper's Java client: typed
//! `create`/`get_data`/`set_data`/`delete`/`get_children`/`exists` methods,
//! one-shot watches, and reconnection after a connection loss. The examples
//! and the benchmark harness both drive the service through this interface,
//! and the SecureKeeper crate provides drop-in equivalents whose traffic is
//! transport-encrypted.
//!
//! # Safe retry semantics
//!
//! A [`ZkError::ConnectionLoss`] means the outcome of the in-flight request
//! is *unknown*: the write may or may not have committed before the
//! connection died. What is safe to retry after reconnecting:
//!
//! * **Reads** (`get_data`, `exists`, `get_children`) — always safe.
//! * **Versioned writes** (`set_data`/`delete` with an explicit version,
//!   `multi` with a [`Op::Check`] guard) — safe: if the first attempt
//!   committed, the retry fails with `BadVersion` instead of applying twice.
//! * **Plain creates** — safe to retry *if* a `NodeExists` answer is treated
//!   as success (the first attempt may have landed).
//! * **Sequential creates** — NOT idempotent: a retry can allocate a second
//!   sequence number, leaving an orphan node from the lost first attempt.
//!   Recovery requires listing the parent and matching a client-chosen
//!   prefix, as ZooKeeper recipes do.
//!
//! [`ZkTcpClient::connect_ensemble`] and the [`RetryPolicy`] it takes only
//! retry the *connection handshake* (always safe); request retries remain
//! the caller's decision under the rules above.

use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use jute::framing::{self, FrameDecoder};
use jute::multi::{MultiRequest, Op, OpResult};
use jute::records::{
    CheckVersionRequest, ConnectRequest, ConnectResponse, CreateMode, CreateRequest, DeleteRequest,
    ExistsRequest, GetChildrenRequest, GetDataRequest, OpCode, ReplyHeader, RequestHeader,
    SetDataRequest, Stat, WatcherEvent, NOTIFICATION_XID,
};
use jute::{InputArchive, OutputArchive, Request, Response};
use trace::{SpanRecord, Stage, TraceContext};
use zab::NodeId;

use crate::cluster::ZkCluster;
use crate::error::ZkError;
use crate::net::{PlainCredentials, SessionCredentials, WireCipher};
use crate::server::DEFAULT_SESSION_TIMEOUT_MS;
use crate::typed::{self, MultiDispatch, Txn, ZooKeeper};
use crate::watch::{WatchEvent, WatchEventKind};

/// A shared handle to an in-process cluster.
pub type SharedCluster = Arc<Mutex<ZkCluster>>;

/// Wraps a cluster in the shared handle used by clients.
pub fn share(cluster: ZkCluster) -> SharedCluster {
    Arc::new(Mutex::new(cluster))
}

/// A client session against one replica of the cluster.
#[derive(Debug, Clone)]
pub struct ZkClient {
    cluster: SharedCluster,
    session_id: i64,
    replica: NodeId,
}

impl ZkClient {
    /// Connects a new session to `replica`.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::SessionExpired`] if the replica is unreachable.
    pub fn connect(cluster: &SharedCluster, replica: NodeId) -> Result<Self, ZkError> {
        let response = cluster.lock().connect_default(replica)?;
        Ok(ZkClient { cluster: Arc::clone(cluster), session_id: response.session_id, replica })
    }

    /// The session id assigned by the cluster.
    pub fn session_id(&self) -> i64 {
        self.session_id
    }

    /// The replica this client is connected to.
    pub fn replica(&self) -> NodeId {
        self.replica
    }

    /// Re-establishes the session on a different replica (after a crash of the
    /// previous one). Ephemeral znodes of the old session are *not* carried
    /// over, matching ZooKeeper's session-expiry semantics.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::SessionExpired`] if the new replica is unreachable.
    pub fn reconnect_to(&mut self, replica: NodeId) -> Result<(), ZkError> {
        let response = self.cluster.lock().connect_default(replica)?;
        self.session_id = response.session_id;
        self.replica = replica;
        Ok(())
    }

    fn submit(&self, request: &Request) -> Response {
        self.cluster.lock().submit(self.session_id, request)
    }

    /// Creates a znode and returns its actual path (with the sequence suffix
    /// for sequential modes).
    ///
    /// # Errors
    ///
    /// Propagates the service error (`NodeExists`, `NoNode` for a missing
    /// parent, quorum loss, ...).
    pub fn create(&self, path: &str, data: Vec<u8>, mode: CreateMode) -> Result<String, ZkError> {
        let request = Request::Create(CreateRequest { path: path.to_string(), data, mode });
        typed::expect_create(self.submit(&request), path)
    }

    /// Reads a znode's payload and metadata.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::NoNode`] if the path does not exist.
    pub fn get_data(&self, path: &str, watch: bool) -> Result<(Vec<u8>, Stat), ZkError> {
        let request = Request::GetData(GetDataRequest { path: path.to_string(), watch });
        typed::expect_get_data(self.submit(&request), path)
    }

    /// Overwrites a znode's payload.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::BadVersion`] when `version` does not match, or
    /// [`ZkError::NoNode`] if the path does not exist.
    pub fn set_data(&self, path: &str, data: Vec<u8>, version: i32) -> Result<Stat, ZkError> {
        let request = Request::SetData(SetDataRequest { path: path.to_string(), data, version });
        typed::expect_set_data(self.submit(&request), path)
    }

    /// Deletes a znode.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::NotEmpty`] when the node still has children,
    /// [`ZkError::BadVersion`] on a version mismatch, or [`ZkError::NoNode`].
    pub fn delete(&self, path: &str, version: i32) -> Result<(), ZkError> {
        let request = Request::Delete(DeleteRequest { path: path.to_string(), version });
        typed::expect_delete(self.submit(&request), path)
    }

    /// Lists the children of a znode.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::NoNode`] if the path does not exist.
    pub fn get_children(&self, path: &str, watch: bool) -> Result<Vec<String>, ZkError> {
        let request = Request::GetChildren(GetChildrenRequest { path: path.to_string(), watch });
        typed::expect_get_children(self.submit(&request), path)
    }

    /// Checks whether a znode exists, returning its metadata if it does.
    ///
    /// # Errors
    ///
    /// Only connection-level failures produce errors; a missing node yields
    /// `Ok(None)`.
    pub fn exists(&self, path: &str, watch: bool) -> Result<Option<Stat>, ZkError> {
        let request = Request::Exists(ExistsRequest { path: path.to_string(), watch });
        typed::expect_exists(self.submit(&request), path)
    }

    /// Asserts that a znode exists at the expected version (-1 checks
    /// existence only) without modifying anything; the check is ordered with
    /// the write history like any other write.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::NoNode`] or [`ZkError::BadVersion`].
    pub fn check(&self, path: &str, version: i32) -> Result<(), ZkError> {
        let request = Request::Check(CheckVersionRequest { path: path.to_string(), version });
        typed::expect_check(self.submit(&request), path)
    }

    /// Executes `ops` as one atomic transaction and returns the
    /// per-sub-operation results; aborts are reported in-band (see
    /// [`MultiDispatch::multi`]). Prefer [`MultiDispatch::txn`] for the
    /// fluent builder.
    ///
    /// # Errors
    ///
    /// Returns transport-plane failures (session expiry, quorum loss).
    pub fn multi(&self, ops: Vec<Op>) -> Result<Vec<OpResult>, ZkError> {
        let count = ops.len();
        let request = Request::Multi(MultiRequest::new(ops));
        typed::expect_multi(self.submit(&request), count)
    }

    /// Starts an atomic-transaction builder (see [`Txn`]).
    pub fn txn(&mut self) -> Txn<'_, Self> {
        MultiDispatch::txn(self)
    }

    /// Sends a keep-alive ping.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::SessionExpired`] when the session is gone.
    pub fn ping(&self) -> Result<(), ZkError> {
        typed::expect_ping(self.submit(&Request::Ping))
    }

    /// Drains watch notifications delivered to this session.
    pub fn take_watch_events(&self) -> Vec<WatchEvent> {
        self.cluster.lock().take_watch_events(self.session_id)
    }

    /// Closes the session, removing its ephemeral znodes.
    pub fn close(self) {
        self.cluster.lock().close_session(self.session_id);
    }
}

impl MultiDispatch for ZkClient {
    type Error = ZkError;

    fn multi(&mut self, ops: Vec<Op>) -> Result<Vec<OpResult>, ZkError> {
        ZkClient::multi(self, ops)
    }
}

impl ZooKeeper for ZkClient {
    fn create(&mut self, path: &str, data: Vec<u8>, mode: CreateMode) -> Result<String, ZkError> {
        ZkClient::create(self, path, data, mode)
    }

    fn get_data(&mut self, path: &str, watch: bool) -> Result<(Vec<u8>, Stat), ZkError> {
        ZkClient::get_data(self, path, watch)
    }

    fn set_data(&mut self, path: &str, data: Vec<u8>, version: i32) -> Result<Stat, ZkError> {
        ZkClient::set_data(self, path, data, version)
    }

    fn delete(&mut self, path: &str, version: i32) -> Result<(), ZkError> {
        ZkClient::delete(self, path, version)
    }

    fn get_children(&mut self, path: &str, watch: bool) -> Result<Vec<String>, ZkError> {
        ZkClient::get_children(self, path, watch)
    }

    fn exists(&mut self, path: &str, watch: bool) -> Result<Option<Stat>, ZkError> {
        ZkClient::exists(self, path, watch)
    }

    fn check(&mut self, path: &str, version: i32) -> Result<(), ZkError> {
        ZkClient::check(self, path, version)
    }

    fn ping(&mut self) -> Result<(), ZkError> {
        ZkClient::ping(self)
    }
}

/// Callback invoked for every watch notification the server pushes.
pub type WatchCallback = Box<dyn FnMut(&WatchEvent) + Send>;

/// Bounded exponential backoff with jitter for connection retries.
///
/// Attempt `n` (0-based) sleeps `base_backoff * 2^n`, capped at
/// `max_backoff`, plus up to 50% random jitter so a herd of clients
/// reconnecting after a failover does not stampede in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How many *additional* passes to make after the first one fails.
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Ceiling on the exponential backoff (jitter comes on top).
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_millis(800),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one pass, no sleeping).
    pub fn no_retries() -> Self {
        RetryPolicy { max_retries: 0, ..RetryPolicy::default() }
    }

    /// The sleep before retry `attempt` (0-based): exponential, capped,
    /// jittered.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base_backoff.saturating_mul(1u32 << attempt.min(16));
        let capped = exp.min(self.max_backoff);
        capped + jitter(capped / 2)
    }
}

/// Uniform-ish random duration in `[0, cap)` from std-only entropy (the
/// hasher keys of [`std::collections::hash_map::RandomState`] are randomly
/// seeded per instance — no `rand` dependency needed for retry jitter).
fn jitter(cap: Duration) -> Duration {
    use std::hash::{BuildHasher, Hasher};
    let cap_ms = cap.as_millis() as u64;
    if cap_ms == 0 {
        return Duration::ZERO;
    }
    let mut hasher = std::collections::hash_map::RandomState::new().build_hasher();
    hasher.write_u64(cap_ms);
    Duration::from_millis(hasher.finish() % cap_ms)
}

/// A correlation handle for a request submitted with
/// [`ZkTcpClient::submit`]: redeem it with [`ZkTcpClient::poll`]
/// (nonblocking) or [`ZkTcpClient::wait`] (blocking). Tickets are `Copy`
/// and single-use — claiming the response consumes the server-side slot, so
/// a second redemption of the same ticket reports it as unknown. A
/// reconnect invalidates all outstanding tickets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket {
    xid: i32,
    op: OpCode,
}

impl Ticket {
    /// The xid the request was assigned on the wire.
    pub fn xid(&self) -> i32 {
        self.xid
    }

    /// The operation the ticket's response will decode as.
    pub fn op(&self) -> OpCode {
        self.op
    }
}

/// What one bounded read attempt produced.
enum ReadOutcome {
    /// Bytes were fed into the frame decoder.
    Data,
    /// The timeout elapsed without data.
    Empty,
    /// The server closed its end.
    Eof,
}

/// A blocking client speaking the length-prefixed wire protocol against a
/// [`crate::net::ZkTcpServer`].
///
/// Requests are correlated with responses by xid; server-initiated watch
/// notifications (reply xid `-1`) can arrive interleaved with responses and
/// are queued (and handed to the [`WatchCallback`], when one is set) instead
/// of being confused with them. The client also tracks the highest zxid it
/// has seen, like the real ZooKeeper client library.
///
/// # Pipelining
///
/// Besides the blocking typed methods, requests can be issued without
/// waiting: [`ZkTcpClient::submit`] writes the request and returns a
/// [`Ticket`]; any number of tickets may be in flight at once (the server
/// answers them in FIFO order per session), and each is redeemed with
/// [`ZkTcpClient::poll`] or [`ZkTcpClient::wait`]. The blocking methods are
/// submit-then-wait over the same machinery, so mixing both styles on one
/// client is safe. All inbound bytes — responses and watch notifications
/// alike — flow through one persistent frame decoder, so a partial frame
/// left over from a `poll` is completed by the next read wherever it
/// happens.
pub struct ZkTcpClient {
    stream: TcpStream,
    addr: SocketAddr,
    credentials: Arc<dyn SessionCredentials>,
    cipher: Box<dyn WireCipher>,
    session_id: i64,
    /// The session password granted on connect; presented on reconnect to
    /// re-attach to the same session (surviving ephemerals and, after a
    /// power cycle, the snapshot-recovered session table).
    session_password: Vec<u8>,
    negotiated_timeout_ms: i32,
    next_xid: i32,
    last_zxid: i64,
    /// Reassembles length-prefixed frames across reads; shared by every
    /// receive path so partial frames survive between calls.
    decoder: FrameDecoder,
    /// Xids of submitted requests whose responses have not arrived, in
    /// submission order (the server's single-writer answers in this order).
    inflight: VecDeque<i32>,
    /// Responses that arrived before their ticket was redeemed, keyed by
    /// xid; frames are stored cipher-opened (the cipher's frame counters
    /// must advance in arrival order) but not yet decoded.
    completed: HashMap<i32, Vec<u8>>,
    pending_events: VecDeque<WatchEvent>,
    watch_callback: Option<WatchCallback>,
    /// Trace contexts of in-flight requests keyed by xid, each recorded
    /// as a `client_call` root span when its reply arrives: (context,
    /// submit time, path hash).
    trace_pending: HashMap<i32, (TraceContext, u64, u64)>,
    /// Sampling knob: mark 1 of every `n` traces for export (1 = all).
    trace_sample_every: u32,
    /// Rolling counter driving the sampling decision.
    trace_tick: u32,
    /// Trace id minted for the most recent submit.
    last_trace_id: u64,
}

impl std::fmt::Debug for ZkTcpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZkTcpClient")
            .field("addr", &self.addr)
            .field("session_id", &self.session_id)
            .field("last_zxid", &self.last_zxid)
            .finish()
    }
}

impl ZkTcpClient {
    /// Connects a plaintext (vanilla ZooKeeper) session to `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::ConnectionLoss`] when the server is unreachable or
    /// the handshake fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ZkError> {
        Self::connect_with(addr, Arc::new(PlainCredentials), DEFAULT_SESSION_TIMEOUT_MS)
    }

    /// Connects with explicit [`SessionCredentials`] (SecureKeeper's generate
    /// a fresh session key whose blob the entry-enclave manager consumes) and
    /// a requested session timeout.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::ConnectionLoss`] when the server is unreachable or
    /// the handshake fails.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        credentials: Arc<dyn SessionCredentials>,
        timeout_ms: i64,
    ) -> Result<Self, ZkError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ZkError::ConnectionLoss { reason: "no address to connect to".into() })?;
        let (stream, cipher, response) =
            Self::handshake(addr, credentials.as_ref(), timeout_ms, None, 0)?;
        Ok(ZkTcpClient {
            stream,
            addr,
            credentials,
            cipher,
            session_id: response.session_id,
            session_password: response.password,
            negotiated_timeout_ms: response.timeout_ms,
            next_xid: 1,
            last_zxid: 0,
            decoder: FrameDecoder::new(),
            inflight: VecDeque::new(),
            completed: HashMap::new(),
            pending_events: VecDeque::new(),
            watch_callback: None,
            trace_pending: HashMap::new(),
            trace_sample_every: 1,
            trace_tick: 0,
            last_trace_id: 0,
        })
    }

    fn handshake(
        addr: SocketAddr,
        credentials: &dyn SessionCredentials,
        timeout_ms: i64,
        prior_session: Option<(i64, &[u8])>,
        last_zxid_seen: i64,
    ) -> Result<(TcpStream, Box<dyn WireCipher>, ConnectResponse), ZkError> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let (blob, cipher) = credentials.establish();
        // A re-attach sends the prior session id, with the session password
        // prefixed to the credential blob (the server splits them again).
        let (session_id, password) = match prior_session {
            Some((id, session_password)) => {
                let mut combined = Vec::with_capacity(session_password.len() + blob.len());
                combined.extend_from_slice(session_password);
                combined.extend_from_slice(&blob);
                (id, combined)
            }
            None => (0, blob),
        };
        let request = ConnectRequest {
            protocol_version: 0,
            last_zxid_seen,
            timeout_ms: timeout_ms as i32,
            session_id,
            password,
        };
        let mut out = OutputArchive::with_capacity(64);
        request.serialize(&mut out);
        framing::write_frame(&mut stream, &out.into_bytes())?;
        let frame = framing::read_frame(&mut stream)?.ok_or_else(|| ZkError::ConnectionLoss {
            reason: "server rejected the connection handshake".into(),
        })?;
        let mut input = InputArchive::new(&frame);
        let response = ConnectResponse::deserialize(&mut input)?;
        input.expect_exhausted()?;
        Ok((stream, cipher, response))
    }

    /// The session id granted by the server.
    pub fn session_id(&self) -> i64 {
        self.session_id
    }

    /// The server address this client is currently connected to. Sessions
    /// live on the member that created them, so a failover that wants to
    /// keep its session should prefer that member's address when it comes
    /// back.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The session timeout the server granted, in milliseconds.
    pub fn negotiated_timeout_ms(&self) -> i32 {
        self.negotiated_timeout_ms
    }

    /// The highest zxid observed in any reply header so far.
    pub fn last_zxid(&self) -> i64 {
        self.last_zxid
    }

    /// Installs a callback invoked for every watch notification as it is
    /// decoded (events are additionally queued for
    /// [`ZkTcpClient::take_watch_events`]).
    pub fn set_watch_callback(&mut self, callback: WatchCallback) {
        self.watch_callback = Some(callback);
    }

    /// Re-dials the server, attempting to **re-attach to the same session**
    /// by presenting the session password. If the server still knows the
    /// session (alive, or recovered from a snapshot after a power cycle),
    /// the session id — and with it ephemerals — survives; otherwise the
    /// server silently grants a fresh session, which the caller can detect
    /// by comparing [`ZkTcpClient::session_id`] before and after. Watches
    /// are connection state and never survive a reconnect.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::ConnectionLoss`] when the server is unreachable.
    pub fn reconnect(&mut self) -> Result<(), ZkError> {
        self.reconnect_to(self.addr)
    }

    /// Re-dials a *different* server address — the failover path when the
    /// replica this client was connected to crashes. The credentials are
    /// re-established (sticky credentials such as SecureKeeper's replayable
    /// session key reinstall the same key on the new replica), and the
    /// client attempts to re-attach to its session as in
    /// [`ZkTcpClient::reconnect`].
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::ConnectionLoss`] when the server is unreachable,
    /// or when it refuses the attach because its applied log is still
    /// behind the highest zxid this client has observed (retry another
    /// member, or the same one after it catches up).
    pub fn reconnect_to(&mut self, addr: impl ToSocketAddrs) -> Result<(), ZkError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ZkError::ConnectionLoss { reason: "no address to connect to".into() })?;
        let timeout = i64::from(self.negotiated_timeout_ms);
        let prior = (self.session_id != 0 && !self.session_password.is_empty())
            .then_some((self.session_id, self.session_password.as_slice()));
        // Announce the highest zxid this session has observed: a replica
        // whose applied log is behind it refuses the attach, so a failover
        // can never time-travel the session to older state (ZooKeeper's
        // `lastZxidSeen` check). `last_zxid` is deliberately NOT reset — the
        // session's observation floor survives the reconnect.
        let (stream, cipher, response) =
            Self::handshake(addr, self.credentials.as_ref(), timeout, prior, self.last_zxid)?;
        self.stream = stream;
        self.addr = addr;
        self.cipher = cipher;
        self.session_id = response.session_id;
        self.session_password = response.password;
        self.negotiated_timeout_ms = response.timeout_ms;
        self.next_xid = 1;
        // The old connection's stream state dies with it: half-received
        // frames, unredeemed responses and outstanding tickets are all
        // meaningless against the new socket.
        self.decoder = FrameDecoder::new();
        self.inflight.clear();
        self.completed.clear();
        self.pending_events.clear();
        // Replies for pre-reconnect submits will never arrive, so their
        // client_call roots are never recorded — any server-side spans
        // they produced surface as orphan traces in the export rather
        // than silently vanishing.
        self.trace_pending.clear();
        Ok(())
    }

    /// Connects to the first reachable address of an ensemble with the
    /// default [`RetryPolicy`]: each pass tries every address in order, and
    /// failed passes repeat under exponential backoff with jitter. Combine
    /// with [`ZkTcpClient::reconnect_to`] to fail over between the members
    /// after a crash.
    ///
    /// # Errors
    ///
    /// Returns the final attempt's [`ZkError::ConnectionLoss`] when no
    /// member becomes reachable within the policy's retry budget.
    pub fn connect_ensemble(
        addrs: &[SocketAddr],
        credentials: Arc<dyn SessionCredentials>,
        timeout_ms: i64,
    ) -> Result<Self, ZkError> {
        Self::connect_ensemble_with(addrs, credentials, timeout_ms, RetryPolicy::default())
    }

    /// [`ZkTcpClient::connect_ensemble`] with an explicit [`RetryPolicy`]
    /// (use [`RetryPolicy::no_retries`] for a single fail-fast pass).
    ///
    /// # Errors
    ///
    /// Returns the final attempt's [`ZkError::ConnectionLoss`] when no
    /// member becomes reachable within the policy's retry budget.
    pub fn connect_ensemble_with(
        addrs: &[SocketAddr],
        credentials: Arc<dyn SessionCredentials>,
        timeout_ms: i64,
        policy: RetryPolicy,
    ) -> Result<Self, ZkError> {
        let mut last_error =
            ZkError::ConnectionLoss { reason: "no ensemble address to connect to".into() };
        for attempt in 0..=policy.max_retries {
            if attempt > 0 {
                std::thread::sleep(policy.backoff(attempt - 1));
            }
            for &addr in addrs {
                match Self::connect_with(addr, Arc::clone(&credentials), timeout_ms) {
                    Ok(client) => return Ok(client),
                    Err(err) => last_error = err,
                }
            }
        }
        Err(last_error)
    }

    /// Writes one request to the wire without waiting for its response and
    /// returns the [`Ticket`] to redeem later. Any number of tickets may be
    /// outstanding; the server answers them in submission order.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::ConnectionLoss`] on socket failures.
    pub fn submit(&mut self, request: &Request) -> Result<Ticket, ZkError> {
        // Clocked before the frame leaves: the client_call span must
        // enclose every server-side span, and the server can enqueue the
        // request before this thread gets scheduled again.
        let submitted_ns = trace::now_ns();
        let xid = self.next_xid;
        self.next_xid += 1;
        let op = request.op();
        let mut bytes = request.to_bytes(&RequestHeader { xid, op });
        self.cipher.seal(&mut bytes)?;
        // The trace envelope rides OUTSIDE the transport cipher: the
        // server (and the keyless gateway) strips it before the entry
        // enclave ever sees the frame, so the trace plane stays out of
        // the TCB. The path hash is computed over whatever path
        // representation is in the request — ciphertext for sealed
        // clients — never stored as plaintext in a span.
        let ctx = self.originate_trace();
        let detail = request.path().map(trace::path_hash).unwrap_or(0);
        jute::trace_envelope::prepend(&mut bytes, &ctx);
        framing::write_frame(&mut self.stream, &bytes)?;
        self.inflight.push_back(xid);
        self.trace_pending.insert(xid, (ctx, submitted_ns, detail));
        Ok(Ticket { xid, op })
    }

    /// Mints the context for one outgoing request and applies the
    /// sampling knob.
    fn originate_trace(&mut self) -> TraceContext {
        let sampled =
            self.trace_sample_every <= 1 || self.trace_tick.is_multiple_of(self.trace_sample_every);
        self.trace_tick = self.trace_tick.wrapping_add(1);
        let ctx = TraceContext {
            trace_id: trace::new_id(),
            span_id: trace::new_id(),
            flags: if sampled { TraceContext::FLAG_SAMPLED } else { 0 },
        };
        self.last_trace_id = ctx.trace_id;
        ctx
    }

    /// Marks 1 of every `n` traces for export (default 1 = every trace).
    /// Recording is unaffected — unsampled traces still reach the flight
    /// recorder and export if they cross the slow threshold.
    pub fn sample_one_in(&mut self, n: u32) {
        self.trace_sample_every = n.max(1);
    }

    /// The trace id minted for the most recently submitted request —
    /// how a test or a caller correlates an operation with its exported
    /// trace.
    pub fn last_trace_id(&self) -> u64 {
        self.last_trace_id
    }

    /// Checks whether `ticket`'s response has arrived, reading whatever the
    /// socket has buffered (bounded by a 1 ms poll) but never blocking for
    /// the server. Watch notifications decoded along the way are queued as
    /// usual. Returns `Ok(None)` while the response is still outstanding.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::ConnectionLoss`] on socket failures, and
    /// [`ZkError::Marshalling`] for an unknown ticket (already claimed, or
    /// issued before a reconnect) or a FIFO-order violation on the stream.
    pub fn poll(&mut self, ticket: Ticket) -> Result<Option<Response>, ZkError> {
        self.drain_decoder()?;
        if let Some(frame) = self.completed.remove(&ticket.xid) {
            return self.claim(ticket, &frame).map(Some);
        }
        if !self.inflight.contains(&ticket.xid) {
            return Err(unknown_ticket(ticket));
        }
        match self.read_some(Some(Duration::from_millis(1)))? {
            ReadOutcome::Data => self.drain_decoder()?,
            ReadOutcome::Empty => {}
            ReadOutcome::Eof => {
                return Err(ZkError::ConnectionLoss {
                    reason: "server closed the connection".into(),
                })
            }
        }
        match self.completed.remove(&ticket.xid) {
            Some(frame) => self.claim(ticket, &frame).map(Some),
            None => Ok(None),
        }
    }

    /// Blocks until `ticket`'s response arrives, queueing any watch
    /// notifications and earlier-submitted responses that arrive in between.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::ConnectionLoss`] on socket failures or a server
    /// close, and [`ZkError::Marshalling`] for an unknown ticket or a
    /// FIFO-order violation on the stream.
    pub fn wait(&mut self, ticket: Ticket) -> Result<Response, ZkError> {
        loop {
            self.drain_decoder()?;
            if let Some(frame) = self.completed.remove(&ticket.xid) {
                return self.claim(ticket, &frame);
            }
            if !self.inflight.contains(&ticket.xid) {
                return Err(unknown_ticket(ticket));
            }
            if let ReadOutcome::Eof = self.read_some(None)? {
                return Err(ZkError::ConnectionLoss {
                    reason: "server closed the connection".into(),
                });
            }
        }
    }

    /// Sends one request and blocks until its response arrives: submit plus
    /// wait on the same ticket machinery the nonblocking surface uses.
    fn call(&mut self, request: &Request) -> Result<Response, ZkError> {
        let ticket = self.submit(request)?;
        self.wait(ticket)
    }

    /// One bounded read into the frame decoder. `None` blocks until data
    /// arrives (or the peer closes); `Some(timeout)` gives up quietly after
    /// the timeout.
    fn read_some(&mut self, timeout: Option<Duration>) -> Result<ReadOutcome, ZkError> {
        self.stream.set_read_timeout(timeout)?;
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Ok(ReadOutcome::Eof),
            Ok(n) => {
                self.decoder.feed(&chunk[..n]);
                Ok(ReadOutcome::Data)
            }
            Err(err)
                if err.kind() == std::io::ErrorKind::WouldBlock
                    || err.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(ReadOutcome::Empty)
            }
            Err(err) => Err(err.into()),
        }
    }

    /// Routes every complete frame the decoder holds.
    fn drain_decoder(&mut self) -> Result<(), ZkError> {
        for frame in self.decoder.frames()? {
            self.handle_frame(frame)?;
        }
        Ok(())
    }

    /// Routes one inbound frame: opens the cipher (whose frame counters
    /// must advance in arrival order), then either queues a watch
    /// notification or stows a response under its xid. The server is
    /// single-writer per session, so responses must match the in-flight
    /// queue head — anything else is a FIFO violation.
    fn handle_frame(&mut self, mut frame: Vec<u8>) -> Result<(), ZkError> {
        self.cipher.open(&mut frame)?;
        let xid = peek_xid(&frame)?;
        if xid == NOTIFICATION_XID {
            return self.decode_event(&frame);
        }
        match self.inflight.front() {
            Some(&expected) if expected == xid => {
                self.inflight.pop_front();
                self.observe_zxid(peek_zxid(&frame)?);
                // The round trip is complete: record the trace's root.
                if let Some((ctx, start_ns, detail)) = self.trace_pending.remove(&xid) {
                    trace::record(SpanRecord {
                        trace_id: ctx.trace_id,
                        span_id: ctx.span_id,
                        parent_span_id: 0,
                        stage: Stage::ClientCall,
                        flags: ctx.flags,
                        start_ns,
                        end_ns: trace::now_ns(),
                        detail,
                    });
                }
                self.completed.insert(xid, frame);
                Ok(())
            }
            Some(&expected) => Err(ZkError::Marshalling {
                reason: format!("response xid {xid} does not match request xid {expected}"),
            }),
            None => {
                Err(ZkError::Marshalling { reason: "unsolicited non-notification frame".into() })
            }
        }
    }

    /// Decodes a stowed response frame as `ticket`'s operation.
    fn claim(&mut self, ticket: Ticket, frame: &[u8]) -> Result<Response, ZkError> {
        let (header, response) = Response::from_bytes(frame, ticket.op)?;
        debug_assert_eq!(header.xid, ticket.xid);
        self.observe_zxid(header.zxid);
        Ok(response)
    }

    fn observe_zxid(&mut self, zxid: i64) {
        if zxid > self.last_zxid {
            self.last_zxid = zxid;
        }
    }

    fn decode_event(&mut self, frame: &[u8]) -> Result<(), ZkError> {
        let mut input = InputArchive::new(frame);
        let header = ReplyHeader::deserialize(&mut input)?;
        let wire = WatcherEvent::deserialize(&mut input)?;
        input.expect_exhausted()?;
        self.observe_zxid(header.zxid);
        let kind = WatchEventKind::from_wire(wire.event_type).ok_or_else(|| {
            ZkError::Marshalling { reason: format!("unknown watch event type {}", wire.event_type) }
        })?;
        let event =
            WatchEvent { path: wire.path, kind, session_id: self.session_id, zxid: header.zxid };
        if let Some(callback) = &mut self.watch_callback {
            callback(&event);
        }
        self.pending_events.push_back(event);
        Ok(())
    }

    /// Drains the watch notifications received so far without touching the
    /// socket. Combine with [`ZkTcpClient::poll_events`] to wait for new ones.
    pub fn take_watch_events(&mut self) -> Vec<WatchEvent> {
        self.pending_events.drain(..).collect()
    }

    /// Waits up to `wait` for watch notifications and drains every event
    /// received so far (including previously queued ones). Returns as soon as
    /// at least one event is available. Responses to in-flight tickets that
    /// arrive during the wait are stowed for their tickets, not lost; a
    /// partially received frame stays in the shared decoder for whichever
    /// call reads next.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::ConnectionLoss`] on socket failures and
    /// [`ZkError::Marshalling`] if a response frame arrives while no request
    /// is outstanding (which would mean the stream is out of sync).
    pub fn poll_events(&mut self, wait: Duration) -> Result<Vec<WatchEvent>, ZkError> {
        self.drain_decoder()?;
        if !self.pending_events.is_empty() {
            return Ok(self.take_watch_events());
        }
        let deadline = Instant::now() + wait;
        // Once a frame has started arriving we keep reading past the deadline
        // (bounded by a grace period) so a frame in transit is pulled in
        // whole instead of straddling calls.
        let grace = deadline + Duration::from_secs(5);
        loop {
            let now = Instant::now();
            if (self.decoder.pending_bytes() == 0 && now >= deadline) || now >= grace {
                break;
            }
            let budget = if self.decoder.pending_bytes() == 0 { deadline } else { grace };
            let remaining = budget.saturating_duration_since(now).max(Duration::from_millis(1));
            match self.read_some(Some(remaining))? {
                ReadOutcome::Data => {
                    self.drain_decoder()?;
                    if self.decoder.pending_bytes() == 0 && !self.pending_events.is_empty() {
                        break;
                    }
                }
                ReadOutcome::Empty => {}
                ReadOutcome::Eof => break,
            }
        }
        self.stream.set_read_timeout(None)?;
        Ok(self.take_watch_events())
    }

    /// Creates a znode and returns its actual path (with the sequence suffix
    /// for sequential modes).
    ///
    /// # Errors
    ///
    /// Propagates the service error (`NodeExists`, `NoNode` for a missing
    /// parent, connection loss, ...).
    pub fn create(
        &mut self,
        path: &str,
        data: Vec<u8>,
        mode: CreateMode,
    ) -> Result<String, ZkError> {
        let request = Request::Create(CreateRequest { path: path.to_string(), data, mode });
        typed::expect_create(self.call(&request)?, path)
    }

    /// Reads a znode's payload and metadata.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::NoNode`] if the path does not exist.
    pub fn get_data(&mut self, path: &str, watch: bool) -> Result<(Vec<u8>, Stat), ZkError> {
        let request = Request::GetData(GetDataRequest { path: path.to_string(), watch });
        typed::expect_get_data(self.call(&request)?, path)
    }

    /// Overwrites a znode's payload.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::BadVersion`] when `version` does not match, or
    /// [`ZkError::NoNode`] if the path does not exist.
    pub fn set_data(&mut self, path: &str, data: Vec<u8>, version: i32) -> Result<Stat, ZkError> {
        let request = Request::SetData(SetDataRequest { path: path.to_string(), data, version });
        typed::expect_set_data(self.call(&request)?, path)
    }

    /// Deletes a znode.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::NotEmpty`] when the node still has children,
    /// [`ZkError::BadVersion`] on a version mismatch, or [`ZkError::NoNode`].
    pub fn delete(&mut self, path: &str, version: i32) -> Result<(), ZkError> {
        let request = Request::Delete(DeleteRequest { path: path.to_string(), version });
        typed::expect_delete(self.call(&request)?, path)
    }

    /// Lists the children of a znode.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::NoNode`] if the path does not exist.
    pub fn get_children(&mut self, path: &str, watch: bool) -> Result<Vec<String>, ZkError> {
        let request = Request::GetChildren(GetChildrenRequest { path: path.to_string(), watch });
        typed::expect_get_children(self.call(&request)?, path)
    }

    /// Checks whether a znode exists, returning its metadata if it does.
    ///
    /// # Errors
    ///
    /// Only connection-level failures produce errors; a missing node yields
    /// `Ok(None)`.
    pub fn exists(&mut self, path: &str, watch: bool) -> Result<Option<Stat>, ZkError> {
        let request = Request::Exists(ExistsRequest { path: path.to_string(), watch });
        typed::expect_exists(self.call(&request)?, path)
    }

    /// Asserts that a znode exists at the expected version (-1 checks
    /// existence only) without modifying anything; the check is ordered with
    /// the write history like any other write.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::NoNode`] or [`ZkError::BadVersion`].
    pub fn check(&mut self, path: &str, version: i32) -> Result<(), ZkError> {
        let request = Request::Check(CheckVersionRequest { path: path.to_string(), version });
        typed::expect_check(self.call(&request)?, path)
    }

    /// Executes `ops` as one atomic transaction and returns the
    /// per-sub-operation results; aborts are reported in-band (see
    /// [`MultiDispatch::multi`]). Prefer [`ZkTcpClient::txn`] for the
    /// fluent builder.
    ///
    /// # Errors
    ///
    /// Returns transport-plane failures (connection loss, session expiry,
    /// quorum loss).
    pub fn multi(&mut self, ops: Vec<Op>) -> Result<Vec<OpResult>, ZkError> {
        let count = ops.len();
        let request = Request::Multi(MultiRequest::new(ops));
        typed::expect_multi(self.call(&request)?, count)
    }

    /// Starts an atomic-transaction builder (see [`Txn`]).
    pub fn txn(&mut self) -> Txn<'_, Self> {
        MultiDispatch::txn(self)
    }

    /// Sends a keep-alive ping.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::SessionExpired`] when the session is gone.
    pub fn ping(&mut self) -> Result<(), ZkError> {
        typed::expect_ping(self.call(&Request::Ping)?)
    }

    /// Closes the session gracefully; the server removes its ephemeral znodes
    /// immediately instead of waiting for the session timeout.
    pub fn close(mut self) {
        let _ = self.call(&Request::CloseSession);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

impl MultiDispatch for ZkTcpClient {
    type Error = ZkError;

    fn multi(&mut self, ops: Vec<Op>) -> Result<Vec<OpResult>, ZkError> {
        ZkTcpClient::multi(self, ops)
    }
}

impl ZooKeeper for ZkTcpClient {
    fn create(&mut self, path: &str, data: Vec<u8>, mode: CreateMode) -> Result<String, ZkError> {
        ZkTcpClient::create(self, path, data, mode)
    }

    fn get_data(&mut self, path: &str, watch: bool) -> Result<(Vec<u8>, Stat), ZkError> {
        ZkTcpClient::get_data(self, path, watch)
    }

    fn set_data(&mut self, path: &str, data: Vec<u8>, version: i32) -> Result<Stat, ZkError> {
        ZkTcpClient::set_data(self, path, data, version)
    }

    fn delete(&mut self, path: &str, version: i32) -> Result<(), ZkError> {
        ZkTcpClient::delete(self, path, version)
    }

    fn get_children(&mut self, path: &str, watch: bool) -> Result<Vec<String>, ZkError> {
        ZkTcpClient::get_children(self, path, watch)
    }

    fn exists(&mut self, path: &str, watch: bool) -> Result<Option<Stat>, ZkError> {
        ZkTcpClient::exists(self, path, watch)
    }

    fn check(&mut self, path: &str, version: i32) -> Result<(), ZkError> {
        ZkTcpClient::check(self, path, version)
    }

    fn ping(&mut self) -> Result<(), ZkError> {
        ZkTcpClient::ping(self)
    }
}

/// Reads the xid out of a reply header without consuming the frame.
fn peek_xid(frame: &[u8]) -> Result<i32, ZkError> {
    let prefix: [u8; 4] = frame
        .get(..4)
        .and_then(|slice| slice.try_into().ok())
        .ok_or_else(|| ZkError::Marshalling { reason: "reply frame shorter than an xid".into() })?;
    Ok(i32::from_be_bytes(prefix))
}

/// Reads the zxid out of a reply header without consuming the frame, so the
/// observation floor advances when the response arrives rather than when its
/// ticket is eventually redeemed.
fn peek_zxid(frame: &[u8]) -> Result<i64, ZkError> {
    let bytes: [u8; 8] =
        frame.get(4..12).and_then(|slice| slice.try_into().ok()).ok_or_else(|| {
            ZkError::Marshalling { reason: "reply frame shorter than its header".into() }
        })?;
    Ok(i64::from_be_bytes(bytes))
}

/// The error for redeeming a ticket the client no longer tracks.
fn unknown_ticket(ticket: Ticket) -> ZkError {
    ZkError::Marshalling {
        reason: format!(
            "ticket xid {} is neither in flight nor completed (already claimed, or issued \
             before a reconnect)",
            ticket.xid
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watch::WatchEventKind;

    fn cluster() -> SharedCluster {
        share(ZkCluster::new(3))
    }

    #[test]
    fn typed_crud_cycle() {
        let cluster = cluster();
        let replica = cluster.lock().replica_ids()[0];
        let client = ZkClient::connect(&cluster, replica).unwrap();

        assert_eq!(
            client.create("/app", b"root".to_vec(), CreateMode::Persistent).unwrap(),
            "/app"
        );
        let (data, stat) = client.get_data("/app", false).unwrap();
        assert_eq!(data, b"root");
        assert_eq!(stat.version, 0);

        let stat = client.set_data("/app", b"v2".to_vec(), 0).unwrap();
        assert_eq!(stat.version, 1);
        assert!(client.exists("/app", false).unwrap().is_some());
        assert!(client.exists("/nope", false).unwrap().is_none());

        client.create("/app/a", vec![], CreateMode::Persistent).unwrap();
        client.create("/app/b", vec![], CreateMode::Persistent).unwrap();
        assert_eq!(client.get_children("/app", false).unwrap(), vec!["a", "b"]);

        client.delete("/app/a", -1).unwrap();
        assert_eq!(client.get_children("/app", false).unwrap(), vec!["b"]);
        assert!(matches!(client.get_data("/app/a", false), Err(ZkError::NoNode { .. })));
        client.ping().unwrap();
    }

    #[test]
    fn sequential_create_returns_generated_path() {
        let cluster = cluster();
        let replica = cluster.lock().replica_ids()[0];
        let client = ZkClient::connect(&cluster, replica).unwrap();
        client.create("/tasks", vec![], CreateMode::Persistent).unwrap();
        let first =
            client.create("/tasks/task-", vec![], CreateMode::PersistentSequential).unwrap();
        let second =
            client.create("/tasks/task-", vec![], CreateMode::PersistentSequential).unwrap();
        assert_eq!(first, "/tasks/task-0000000000");
        assert_eq!(second, "/tasks/task-0000000001");
    }

    #[test]
    fn watches_are_delivered_through_the_client() {
        let cluster = cluster();
        let ids = cluster.lock().replica_ids();
        let watcher = ZkClient::connect(&cluster, ids[0]).unwrap();
        let writer = ZkClient::connect(&cluster, ids[0]).unwrap();
        watcher.create("/watched", b"v1".to_vec(), CreateMode::Persistent).unwrap();
        watcher.get_data("/watched", true).unwrap();
        writer.set_data("/watched", b"v2".to_vec(), -1).unwrap();
        let events = watcher.take_watch_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, WatchEventKind::NodeDataChanged);
        assert_eq!(events[0].path, "/watched");
    }

    #[test]
    fn ephemeral_nodes_vanish_when_the_client_closes() {
        let cluster = cluster();
        let ids = cluster.lock().replica_ids();
        let member = ZkClient::connect(&cluster, ids[1]).unwrap();
        let observer = ZkClient::connect(&cluster, ids[2]).unwrap();
        observer.create("/group", vec![], CreateMode::Persistent).unwrap();
        member.create("/group/member-1", vec![], CreateMode::Ephemeral).unwrap();
        assert_eq!(observer.get_children("/group", false).unwrap().len(), 1);
        member.close();
        assert!(observer.get_children("/group", false).unwrap().is_empty());
    }

    #[test]
    fn client_reconnects_after_replica_crash() {
        let cluster = cluster();
        let ids = cluster.lock().replica_ids();
        let follower = {
            let guard = cluster.lock();
            ids.iter().copied().find(|&id| id != guard.leader_id()).unwrap()
        };
        let mut client = ZkClient::connect(&cluster, follower).unwrap();
        client.create("/persistent", vec![], CreateMode::Persistent).unwrap();
        cluster.lock().crash(follower);
        assert!(client.get_data("/persistent", false).is_err());
        let target = cluster.lock().leader_id();
        client.reconnect_to(target).unwrap();
        assert!(client.get_data("/persistent", false).is_ok());
    }

    #[test]
    fn duplicate_create_reports_node_exists() {
        let cluster = cluster();
        let replica = cluster.lock().replica_ids()[0];
        let client = ZkClient::connect(&cluster, replica).unwrap();
        client.create("/dup", vec![], CreateMode::Persistent).unwrap();
        assert!(matches!(
            client.create("/dup", vec![], CreateMode::Persistent),
            Err(ZkError::NodeExists { .. })
        ));
    }
}
