//! Client session management.
//!
//! Each connected client owns a session identified by a 64-bit id. Sessions
//! have a timeout; a session that is not touched (by any request or ping)
//! within its timeout expires, and all ephemeral znodes it owns are removed.
//! Time comes from a pluggable [`Clock`]: deterministic tests drive a
//! [`ManualClock`] by hand, while the networked server installs a
//! [`MonotonicClock`] so expiry tracks wall-clock time without ticking.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Instant;

/// Length in bytes of a session password. On the wire, a re-attaching
/// client prefixes its interceptor blob with exactly this many password
/// bytes (see [`crate::net`]'s handshake).
pub const SESSION_PASSWORD_LEN: usize = 16;

/// Source of session time in milliseconds.
pub trait Clock: Send + Sync {
    /// The current time in milliseconds. Only differences matter; the epoch is
    /// implementation-defined.
    fn now_ms(&self) -> i64;
}

/// A clock advanced explicitly by the test or simulation driver.
#[derive(Debug, Default)]
pub struct ManualClock {
    now_ms: AtomicI64,
}

impl ManualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `delta_ms`.
    pub fn advance(&self, delta_ms: i64) {
        self.now_ms.fetch_add(delta_ms, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> i64 {
        self.now_ms.load(Ordering::SeqCst)
    }
}

/// A monotonic real-time clock (milliseconds since the clock was created).
#[derive(Debug)]
pub struct MonotonicClock {
    start: Instant,
}

impl MonotonicClock {
    /// Creates a clock anchored at the current instant.
    pub fn new() -> Self {
        MonotonicClock { start: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ms(&self) -> i64 {
        self.start.elapsed().as_millis() as i64
    }
}

/// Metadata of one client session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// The session id.
    pub id: i64,
    /// Negotiated timeout in milliseconds.
    pub timeout_ms: i64,
    /// Logical time of the last request or ping.
    pub last_seen_ms: i64,
    /// Session password (returned on connect, checked on reconnect).
    pub password: Vec<u8>,
}

impl Session {
    /// True if the session has not been touched within its timeout at `now_ms`.
    pub fn is_expired(&self, now_ms: i64) -> bool {
        now_ms - self.last_seen_ms > self.timeout_ms
    }
}

/// One session's durable record: identity, negotiated timeout, and the
/// password a client must present to re-attach. Persisted in snapshots so a
/// client can resume its session after a full-ensemble power cycle.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SessionRecord {
    /// The session id.
    pub id: i64,
    /// Negotiated timeout in milliseconds.
    pub timeout_ms: i64,
    /// The session password.
    pub password: Vec<u8>,
}

/// Tracks all sessions of one replica (or of the whole in-process cluster).
#[derive(Debug, Default)]
pub struct SessionManager {
    sessions: HashMap<i64, Session>,
    next_id: i64,
}

impl SessionManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        SessionManager { sessions: HashMap::new(), next_id: 1 }
    }

    /// Creates an empty manager whose self-allocated session ids start at
    /// `base + 1`. Replicas of a networked ensemble namespace their ids by
    /// replica id so the session owner recorded on replicated ephemeral
    /// znodes is globally unique.
    pub fn with_id_base(base: i64) -> Self {
        SessionManager { sessions: HashMap::new(), next_id: base + 1 }
    }

    /// `(id, timeout_ms)` of every active session, sorted by id. Persisted
    /// in snapshots so ephemeral znodes recovered from disk keep an owner
    /// that can still expire (and be cleaned up) after a restart.
    pub fn session_table(&self) -> Vec<(i64, i64)> {
        let mut table: Vec<(i64, i64)> =
            self.sessions.values().map(|s| (s.id, s.timeout_ms)).collect();
        table.sort_unstable();
        table
    }

    /// The full durable record of every active session, sorted by id. This
    /// is what snapshots persist (passwords included) so clients can
    /// re-attach after a full-ensemble restart.
    pub fn session_records(&self) -> Vec<SessionRecord> {
        let mut records: Vec<SessionRecord> = self
            .sessions
            .values()
            .map(|s| SessionRecord {
                id: s.id,
                timeout_ms: s.timeout_ms,
                password: s.password.clone(),
            })
            .collect();
        records.sort_unstable();
        records
    }

    /// Ids of the sessions whose timeout has elapsed at `now_ms`, without
    /// removing them. The ensemble server uses this to run ephemeral cleanup
    /// through agreement *before* dropping the session.
    pub fn peek_expired(&self, now_ms: i64) -> Vec<i64> {
        self.sessions.values().filter(|s| s.is_expired(now_ms)).map(|s| s.id).collect()
    }

    /// Creates a session with the given timeout, returning its id and password.
    pub fn create_session(&mut self, timeout_ms: i64, now_ms: i64) -> (i64, Vec<u8>) {
        let id = self.next_id;
        self.next_id += 1;
        // A deterministic per-session password (16 bytes derived from the id).
        let password: Vec<u8> =
            (0..16u8).map(|i| (id as u8).wrapping_mul(31).wrapping_add(i)).collect();
        self.sessions.insert(
            id,
            Session {
                id,
                timeout_ms: timeout_ms.max(1),
                last_seen_ms: now_ms,
                password: password.clone(),
            },
        );
        (id, password)
    }

    /// Registers a session under an externally assigned id (used by the
    /// cluster, which makes ids unique across replicas). Returns the password.
    pub fn adopt(&mut self, session_id: i64, timeout_ms: i64, now_ms: i64) -> Vec<u8> {
        let password: Vec<u8> =
            (0..16u8).map(|i| (session_id as u8).wrapping_mul(31).wrapping_add(i)).collect();
        self.sessions.insert(
            session_id,
            Session {
                id: session_id,
                timeout_ms: timeout_ms.max(1),
                last_seen_ms: now_ms,
                password: password.clone(),
            },
        );
        password
    }

    /// Registers a session under an externally assigned id, preserving the
    /// given password (a snapshot-recovered or leader-shipped record). An
    /// empty password falls back to the derived one, so version-1 snapshots
    /// (which carried no passwords) keep their historical behaviour.
    pub fn adopt_with_password(
        &mut self,
        session_id: i64,
        timeout_ms: i64,
        password: &[u8],
        now_ms: i64,
    ) -> Vec<u8> {
        if password.is_empty() {
            return self.adopt(session_id, timeout_ms, now_ms);
        }
        self.sessions.insert(
            session_id,
            Session {
                id: session_id,
                timeout_ms: timeout_ms.max(1),
                last_seen_ms: now_ms,
                password: password.to_vec(),
            },
        );
        password.to_vec()
    }

    /// Re-attaches a client to an existing session: verifies the password
    /// and touches the session. Returns the negotiated timeout on success,
    /// `None` for unknown sessions or a password mismatch.
    pub fn reattach(&mut self, session_id: i64, password: &[u8], now_ms: i64) -> Option<i64> {
        let session = self.sessions.get_mut(&session_id)?;
        if session.password != password {
            return None;
        }
        session.last_seen_ms = now_ms;
        Some(session.timeout_ms)
    }

    /// Marks a session as active at `now_ms`. Returns false for unknown sessions.
    pub fn touch(&mut self, session_id: i64, now_ms: i64) -> bool {
        match self.sessions.get_mut(&session_id) {
            Some(session) => {
                session.last_seen_ms = now_ms;
                true
            }
            None => false,
        }
    }

    /// True if the session exists (expired sessions are removed by
    /// [`SessionManager::expire_sessions`]).
    pub fn is_active(&self, session_id: i64) -> bool {
        self.sessions.contains_key(&session_id)
    }

    /// Looks up a session.
    pub fn get(&self, session_id: i64) -> Option<&Session> {
        self.sessions.get(&session_id)
    }

    /// Closes a session explicitly, returning true if it existed.
    pub fn close_session(&mut self, session_id: i64) -> bool {
        self.sessions.remove(&session_id).is_some()
    }

    /// Removes every session whose timeout elapsed before `now_ms` and returns
    /// their ids (the caller deletes their ephemeral znodes).
    pub fn expire_sessions(&mut self, now_ms: i64) -> Vec<i64> {
        let expired: Vec<i64> =
            self.sessions.values().filter(|s| s.is_expired(now_ms)).map(|s| s.id).collect();
        for id in &expired {
            self.sessions.remove(id);
        }
        expired
    }

    /// Number of active sessions.
    pub fn count(&self) -> usize {
        self.sessions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_touch_and_close() {
        let mut mgr = SessionManager::new();
        let (id, password) = mgr.create_session(10_000, 0);
        assert!(id > 0);
        assert_eq!(password.len(), 16);
        assert!(mgr.is_active(id));
        assert!(mgr.touch(id, 500));
        assert!(!mgr.touch(id + 999, 500));
        assert!(mgr.close_session(id));
        assert!(!mgr.close_session(id));
        assert!(!mgr.is_active(id));
    }

    #[test]
    fn session_ids_are_unique_and_increasing() {
        let mut mgr = SessionManager::new();
        let (a, _) = mgr.create_session(1000, 0);
        let (b, _) = mgr.create_session(1000, 0);
        assert!(b > a);
        assert_eq!(mgr.count(), 2);
    }

    #[test]
    fn sessions_expire_after_timeout() {
        let mut mgr = SessionManager::new();
        let (a, _) = mgr.create_session(1_000, 0);
        let (b, _) = mgr.create_session(10_000, 0);
        assert!(mgr.expire_sessions(500).is_empty());
        mgr.touch(a, 900);
        // `a` was touched at 900 so it survives until 1900; `b` until 10000.
        assert!(mgr.expire_sessions(1_800).is_empty());
        let expired = mgr.expire_sessions(2_500);
        assert_eq!(expired, vec![a]);
        assert!(mgr.is_active(b));
    }

    #[test]
    fn session_records_preserve_passwords_across_adopt() {
        let mut mgr = SessionManager::new();
        let (id, password) = mgr.create_session(5_000, 0);
        let records = mgr.session_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].password, password);

        // A fresh manager (post power cycle) adopts the records verbatim.
        let mut restarted = SessionManager::new();
        for record in &records {
            restarted.adopt_with_password(record.id, record.timeout_ms, &record.password, 0);
        }
        assert_eq!(restarted.session_records(), records);
        // Re-attach succeeds with the original password only.
        assert_eq!(restarted.reattach(id, &password, 100), Some(5_000));
        assert_eq!(restarted.reattach(id, b"wrong password..", 100), None);
        assert_eq!(restarted.reattach(id + 7, &password, 100), None);
    }

    #[test]
    fn empty_password_adoption_derives_the_legacy_one() {
        let mut v1 = SessionManager::new();
        let derived = v1.adopt(42, 1_000, 0);
        let mut v2 = SessionManager::new();
        assert_eq!(v2.adopt_with_password(42, 1_000, &[], 0), derived);
    }

    #[test]
    fn reattach_touches_the_session() {
        let mut mgr = SessionManager::new();
        let (id, password) = mgr.create_session(1_000, 0);
        assert!(mgr.reattach(id, &password, 900).is_some());
        // Touched at 900, so still alive at 1800.
        assert!(mgr.expire_sessions(1_800).is_empty());
    }

    #[test]
    fn expired_check_uses_strict_timeout() {
        let session = Session { id: 1, timeout_ms: 100, last_seen_ms: 0, password: vec![] };
        assert!(!session.is_expired(100));
        assert!(session.is_expired(101));
    }

    #[test]
    fn manual_clock_advances_on_demand() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_ms(), 0);
        clock.advance(250);
        clock.advance(50);
        assert_eq!(clock.now_ms(), 300);
    }

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let clock = MonotonicClock::new();
        let a = clock.now_ms();
        let b = clock.now_ms();
        assert!(b >= a);
        assert!(a >= 0);
    }
}
