//! Pure application of requests to the data tree — the replicated state machine.
//!
//! Write requests are wrapped in a [`WriteTxn`] (which pins the issuing
//! session and logical time) and totally ordered by ZAB; every replica then
//! calls [`apply_write`] with identical arguments, so all replicas stay
//! byte-for-byte identical. Read requests never go through agreement and are
//! answered directly from the local tree with [`apply_read`].
//!
//! Sequential-node naming goes through the [`SequentialNamer`] hook. Vanilla
//! ZooKeeper appends a zero-padded ten-digit counter
//! ([`DefaultSequentialNamer`]); SecureKeeper replaces the hook with its
//! *counter enclave*, which decrypts the requested (encrypted) name, appends
//! the counter, and re-encrypts the result (paper Section 4.4).

use std::collections::HashSet;

use jute::multi::{MultiRequest, MultiResponse, Op, OpResult};
use jute::records::{
    CreateMode, CreateResponse, ErrorCode, ExistsResponse, GetChildrenResponse, GetDataResponse,
    OpCode, SetDataResponse,
};
use jute::{InputArchive, OutputArchive, Request, Response};

use crate::error::ZkError;
use crate::tree::{split_path, validate_path, DataTree, Znode};

/// Strategy for turning a requested sequential-znode path plus its assigned
/// sequence number into the final znode path.
pub trait SequentialNamer: Send + Sync {
    /// Produces the final path stored in the tree.
    fn name(&self, requested_path: &str, sequence: u32) -> String;
}

/// ZooKeeper's default naming: append the zero-padded ten-digit counter.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultSequentialNamer;

impl SequentialNamer for DefaultSequentialNamer {
    fn name(&self, requested_path: &str, sequence: u32) -> String {
        format!("{requested_path}{sequence:010}")
    }
}

/// Context shared by all replicas when applying one committed write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyContext {
    /// The transaction's global id.
    pub zxid: i64,
    /// Logical time in milliseconds (assigned by the leader).
    pub time_ms: i64,
    /// The session that issued the write (owner of ephemeral znodes).
    pub session_id: i64,
}

/// A write transaction as carried in a ZAB proposal payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteTxn {
    /// The session that issued the write.
    pub session_id: i64,
    /// Logical time assigned by the leader.
    pub time_ms: i64,
    /// The serialized request (header + body).
    pub request_bytes: Vec<u8>,
}

impl WriteTxn {
    /// Serializes the transaction for the ZAB payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = OutputArchive::with_capacity(self.request_bytes.len() + 24);
        out.write_i64(self.session_id);
        out.write_i64(self.time_ms);
        out.write_buffer(&self.request_bytes);
        out.into_bytes()
    }

    /// Decodes a transaction from a ZAB payload.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::Marshalling`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ZkError> {
        let mut input = InputArchive::new(bytes);
        let session_id = input.read_i64("session_id")?;
        let time_ms = input.read_i64("time_ms")?;
        let request_bytes = input.read_buffer("request")?;
        input.expect_exhausted()?;
        Ok(WriteTxn { session_id, time_ms, request_bytes })
    }
}

/// Applies a write request to the tree, returning the response the issuing
/// replica sends back to the client.
///
/// # Errors
///
/// Returns the [`ZkError`] describing why the operation was rejected; the tree
/// is left unchanged in that case.
pub fn apply_write(
    tree: &mut DataTree,
    request: &Request,
    ctx: &ApplyContext,
    namer: &dyn SequentialNamer,
) -> Result<Response, ZkError> {
    match request {
        Request::Create(create) => {
            let final_path =
                create_node(tree, &create.path, &create.data, create.mode, ctx, namer, None)?;
            Ok(Response::Create(CreateResponse { path: final_path }))
        }
        Request::Delete(delete) => {
            validate_path(&delete.path)?;
            tree.delete(&delete.path, delete.version, ctx.zxid)?;
            Ok(Response::Delete)
        }
        Request::SetData(set) => {
            validate_path(&set.path)?;
            let stat =
                tree.set_data(&set.path, set.data.clone(), set.version, ctx.zxid, ctx.time_ms)?;
            Ok(Response::SetData(SetDataResponse { stat }))
        }
        Request::Check(check) => {
            validate_path(&check.path)?;
            check_version(tree, &check.path, check.version)?;
            Ok(Response::Check)
        }
        Request::Multi(multi) => Ok(Response::Multi(apply_multi(tree, multi, ctx, namer))),
        Request::CloseSession => Ok(Response::CloseSession),
        other => Err(ZkError::BadArguments {
            reason: format!("{:?} is not a write operation", other.op()),
        }),
    }
}

/// Applies a `multi` transaction atomically: sub-operations execute in order
/// against the live tree, journalling the prior state of every znode they
/// touch; the first failure rolls the journal back (so the tree is
/// byte-for-byte what it was) and maps the remaining slots to
/// [`ErrorCode::RuntimeInconsistency`]. The whole transaction shares one
/// zxid — the one in `ctx` — exactly like ZooKeeper's multi txn.
///
/// Abort is reported in-band through the per-operation results rather than as
/// an `Err`, because an aborted transaction is still a successfully processed
/// request (every replica computes the identical result vector).
pub fn apply_multi(
    tree: &mut DataTree,
    multi: &MultiRequest,
    ctx: &ApplyContext,
    namer: &dyn SequentialNamer,
) -> MultiResponse {
    let mut undo = UndoLog::default();
    let mut results = Vec::with_capacity(multi.ops.len());
    for (index, op) in multi.ops.iter().enumerate() {
        match apply_op(tree, op, ctx, namer, &mut undo) {
            Ok(result) => results.push(result),
            Err(err) => {
                undo.rollback(tree);
                return MultiResponse::aborted(multi.ops.len(), index, err.code());
            }
        }
    }
    MultiResponse::new(results)
}

/// Applies one sub-operation of a `multi`, journalling touched znodes first.
fn apply_op(
    tree: &mut DataTree,
    op: &Op,
    ctx: &ApplyContext,
    namer: &dyn SequentialNamer,
    undo: &mut UndoLog,
) -> Result<OpResult, ZkError> {
    match op {
        Op::Create(create) => {
            let final_path =
                create_node(tree, &create.path, &create.data, create.mode, ctx, namer, Some(undo))?;
            Ok(OpResult::Create { path: final_path })
        }
        Op::Delete(delete) => {
            validate_path(&delete.path)?;
            undo.capture(tree, &delete.path);
            if let Some((parent, _)) = split_path(&delete.path) {
                undo.capture(tree, parent);
            }
            tree.delete(&delete.path, delete.version, ctx.zxid)?;
            Ok(OpResult::Delete)
        }
        Op::SetData(set) => {
            validate_path(&set.path)?;
            undo.capture(tree, &set.path);
            let stat =
                tree.set_data(&set.path, set.data.clone(), set.version, ctx.zxid, ctx.time_ms)?;
            Ok(OpResult::SetData { stat })
        }
        Op::Check(check) => {
            validate_path(&check.path)?;
            check_version(tree, &check.path, check.version)?;
            Ok(OpResult::Check)
        }
    }
}

/// The shared CREATE path: sequential naming through the namer hook, then the
/// tree insert. `undo` (multi only) captures the parent *before* the sequence
/// counter is consumed and the target before it is inserted.
fn create_node(
    tree: &mut DataTree,
    path: &str,
    data: &[u8],
    mode: CreateMode,
    ctx: &ApplyContext,
    namer: &dyn SequentialNamer,
    undo: Option<&mut UndoLog>,
) -> Result<String, ZkError> {
    validate_path(path)?;
    if path == "/" {
        return Err(ZkError::NodeExists { path: "/".to_string() });
    }
    let (parent, _) = split_path(path)
        .ok_or_else(|| ZkError::BadArguments { reason: "create on root".into() })?;
    let undo = match undo {
        Some(undo) => {
            undo.capture(tree, parent);
            Some(undo)
        }
        None => None,
    };
    let final_path = if mode.is_sequential() {
        let sequence = tree.next_sequence(parent)?;
        namer.name(path, sequence)
    } else {
        path.to_string()
    };
    if let Some(undo) = undo {
        undo.capture(tree, &final_path);
    }
    let owner = if mode.is_ephemeral() { ctx.session_id } else { 0 };
    tree.create(&final_path, data.to_vec(), owner, ctx.zxid, ctx.time_ms)?;
    Ok(final_path)
}

/// Verifies that `path` exists and, unless `version` is -1, that its data
/// version matches.
///
/// # Errors
///
/// Returns [`ZkError::NoNode`] or [`ZkError::BadVersion`].
pub fn check_version(tree: &DataTree, path: &str, version: i32) -> Result<(), ZkError> {
    let node = tree.get(path).ok_or_else(|| ZkError::NoNode { path: path.to_string() })?;
    if version != -1 && node.stat().version != version {
        return Err(ZkError::BadVersion {
            path: path.to_string(),
            expected: version,
            actual: node.stat().version,
        });
    }
    Ok(())
}

/// First-touch snapshots of the znodes a `multi` has mutated so far, in
/// touch order. Rolling back restores each snapshot in reverse, leaving the
/// tree exactly as it was before the transaction started.
#[derive(Default)]
struct UndoLog {
    entries: Vec<(String, Option<Znode>)>,
    seen: HashSet<String>,
}

impl UndoLog {
    /// Records the current state of `path` unless it was already captured.
    fn capture(&mut self, tree: &DataTree, path: &str) {
        if self.seen.insert(path.to_string()) {
            self.entries.push((path.to_string(), tree.get(path).cloned()));
        }
    }

    /// Restores every captured snapshot, newest first.
    fn rollback(self, tree: &mut DataTree) {
        for (path, node) in self.entries.into_iter().rev() {
            tree.restore_node(&path, node);
        }
    }
}

/// Answers a read request from the local tree.
///
/// # Errors
///
/// Returns the [`ZkError`] describing why the operation was rejected.
pub fn apply_read(tree: &DataTree, request: &Request) -> Result<Response, ZkError> {
    match request {
        Request::GetData(get) => {
            validate_path(&get.path)?;
            let (data, stat) = tree.get_data(&get.path)?;
            Ok(Response::GetData(GetDataResponse { data, stat }))
        }
        Request::Exists(exists) => {
            validate_path(&exists.path)?;
            match tree.stat(&exists.path) {
                Some(stat) => Ok(Response::Exists(ExistsResponse { stat })),
                None => Err(ZkError::NoNode { path: exists.path.clone() }),
            }
        }
        Request::GetChildren(ls) => {
            validate_path(&ls.path)?;
            let children = tree.get_children(&ls.path)?;
            Ok(Response::GetChildren(GetChildrenResponse { children }))
        }
        Request::Ping => Ok(Response::Ping),
        other => Err(ZkError::BadArguments {
            reason: format!("{:?} is not a read operation", other.op()),
        }),
    }
}

/// Convenience: turns a [`ZkError`] into the wire-level error response.
pub fn error_response(err: &ZkError) -> Response {
    Response::Error(err.code())
}

/// True if the operation only reads state and can be answered by any replica.
pub fn is_read_op(op: OpCode) -> bool {
    !op.is_write() && op != OpCode::Connect
}

/// Maps an error code back into a `ZkError` (used by typed clients).
pub fn error_from_code(code: ErrorCode, path: &str) -> ZkError {
    match code {
        ErrorCode::NoNode => ZkError::NoNode { path: path.to_string() },
        ErrorCode::NodeExists => ZkError::NodeExists { path: path.to_string() },
        ErrorCode::NotEmpty => ZkError::NotEmpty { path: path.to_string() },
        ErrorCode::BadVersion => {
            ZkError::BadVersion { path: path.to_string(), expected: -1, actual: -1 }
        }
        ErrorCode::NoChildrenForEphemerals => {
            ZkError::NoChildrenForEphemerals { path: path.to_string() }
        }
        ErrorCode::SessionExpired => ZkError::SessionExpired { session_id: 0 },
        ErrorCode::RuntimeInconsistency => ZkError::RuntimeInconsistency { path: path.to_string() },
        ErrorCode::NoQuorum => ZkError::NoQuorum,
        ErrorCode::ConnectionLoss => {
            ZkError::ConnectionLoss { reason: format!("connection lost on {path}") }
        }
        ErrorCode::AuthFailed => ZkError::Marshalling { reason: "authentication failed".into() },
        ErrorCode::BadArguments => ZkError::BadArguments { reason: path.to_string() },
        ErrorCode::Throttled => ZkError::Throttled,
        ErrorCode::CrossShard => ZkError::CrossShard { path: path.to_string() },
        ErrorCode::Ok | ErrorCode::MarshallingError => {
            ZkError::Marshalling { reason: format!("unexpected error code for {path}") }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jute::records::{
        CreateMode, CreateRequest, DeleteRequest, GetChildrenRequest, GetDataRequest,
        SetDataRequest,
    };

    fn ctx(zxid: i64) -> ApplyContext {
        ApplyContext { zxid, time_ms: 1_000 + zxid, session_id: 7 }
    }

    fn create_req(path: &str, mode: CreateMode) -> Request {
        Request::Create(CreateRequest { path: path.into(), data: b"d".to_vec(), mode })
    }

    #[test]
    fn create_get_set_delete_cycle() {
        let mut tree = DataTree::new();
        let namer = DefaultSequentialNamer;

        let resp =
            apply_write(&mut tree, &create_req("/app", CreateMode::Persistent), &ctx(1), &namer)
                .unwrap();
        assert_eq!(resp, Response::Create(CreateResponse { path: "/app".into() }));

        let resp = apply_read(
            &tree,
            &Request::GetData(GetDataRequest { path: "/app".into(), watch: false }),
        )
        .unwrap();
        match resp {
            Response::GetData(get) => assert_eq!(get.data, b"d"),
            other => panic!("unexpected {other:?}"),
        }

        let resp = apply_write(
            &mut tree,
            &Request::SetData(SetDataRequest {
                path: "/app".into(),
                data: b"d2".to_vec(),
                version: 0,
            }),
            &ctx(2),
            &namer,
        )
        .unwrap();
        match resp {
            Response::SetData(set) => assert_eq!(set.stat.version, 1),
            other => panic!("unexpected {other:?}"),
        }

        apply_write(
            &mut tree,
            &Request::Delete(DeleteRequest { path: "/app".into(), version: -1 }),
            &ctx(3),
            &namer,
        )
        .unwrap();
        assert!(!tree.contains("/app"));
    }

    #[test]
    fn sequential_create_appends_zero_padded_counter() {
        let mut tree = DataTree::new();
        let namer = DefaultSequentialNamer;
        apply_write(&mut tree, &create_req("/locks", CreateMode::Persistent), &ctx(1), &namer)
            .unwrap();

        let r1 = apply_write(
            &mut tree,
            &create_req("/locks/lock-", CreateMode::PersistentSequential),
            &ctx(2),
            &namer,
        )
        .unwrap();
        let r2 = apply_write(
            &mut tree,
            &create_req("/locks/lock-", CreateMode::PersistentSequential),
            &ctx(3),
            &namer,
        )
        .unwrap();
        assert_eq!(r1, Response::Create(CreateResponse { path: "/locks/lock-0000000000".into() }));
        assert_eq!(r2, Response::Create(CreateResponse { path: "/locks/lock-0000000001".into() }));
        assert_eq!(tree.get_children("/locks").unwrap().len(), 2);
    }

    #[test]
    fn sequential_numbering_is_per_parent_and_deterministic() {
        // Two replicas applying the same sequence of writes reach the same names.
        let namer = DefaultSequentialNamer;
        let mut a = DataTree::new();
        let mut b = DataTree::new();
        for tree in [&mut a, &mut b] {
            apply_write(tree, &create_req("/q", CreateMode::Persistent), &ctx(1), &namer).unwrap();
            apply_write(
                tree,
                &create_req("/q/item-", CreateMode::PersistentSequential),
                &ctx(2),
                &namer,
            )
            .unwrap();
            apply_write(
                tree,
                &create_req("/q/item-", CreateMode::PersistentSequential),
                &ctx(3),
                &namer,
            )
            .unwrap();
        }
        assert_eq!(a.paths(), b.paths());
    }

    #[test]
    fn ephemeral_create_records_session_owner() {
        let mut tree = DataTree::new();
        let namer = DefaultSequentialNamer;
        apply_write(&mut tree, &create_req("/e", CreateMode::Ephemeral), &ctx(1), &namer).unwrap();
        assert_eq!(tree.get("/e").unwrap().stat().ephemeral_owner, 7);
        assert_eq!(tree.ephemerals_of(7), vec!["/e".to_string()]);
    }

    #[test]
    fn custom_namer_is_honoured() {
        struct SuffixNamer;
        impl SequentialNamer for SuffixNamer {
            fn name(&self, requested_path: &str, sequence: u32) -> String {
                format!("{requested_path}#{sequence}")
            }
        }
        let mut tree = DataTree::new();
        apply_write(&mut tree, &create_req("/s", CreateMode::Persistent), &ctx(1), &SuffixNamer)
            .unwrap();
        let resp = apply_write(
            &mut tree,
            &create_req("/s/n-", CreateMode::PersistentSequential),
            &ctx(2),
            &SuffixNamer,
        )
        .unwrap();
        assert_eq!(resp, Response::Create(CreateResponse { path: "/s/n-#0".into() }));
    }

    #[test]
    fn reads_reject_write_ops_and_vice_versa() {
        let mut tree = DataTree::new();
        let namer = DefaultSequentialNamer;
        assert!(apply_read(&tree, &create_req("/a", CreateMode::Persistent)).is_err());
        assert!(apply_write(
            &mut tree,
            &Request::GetData(GetDataRequest { path: "/".into(), watch: false }),
            &ctx(1),
            &namer
        )
        .is_err());
    }

    #[test]
    fn reads_report_missing_nodes() {
        let tree = DataTree::new();
        for request in [
            Request::GetData(GetDataRequest { path: "/missing".into(), watch: false }),
            Request::GetChildren(GetChildrenRequest { path: "/missing".into(), watch: false }),
        ] {
            assert!(matches!(apply_read(&tree, &request), Err(ZkError::NoNode { .. })));
        }
    }

    fn multi(ops: Vec<Op>) -> Request {
        Request::Multi(MultiRequest::new(ops))
    }

    fn op_create(path: &str, mode: CreateMode) -> Op {
        Op::Create(jute::records::CreateRequest { path: path.into(), data: b"m".to_vec(), mode })
    }

    #[test]
    fn multi_commits_all_sub_ops_at_one_zxid() {
        let mut tree = DataTree::new();
        let namer = DefaultSequentialNamer;
        apply_write(&mut tree, &create_req("/app", CreateMode::Persistent), &ctx(1), &namer)
            .unwrap();

        let request = multi(vec![
            Op::Check(jute::records::CheckVersionRequest { path: "/app".into(), version: 0 }),
            op_create("/app/a", CreateMode::Persistent),
            Op::SetData(jute::records::SetDataRequest {
                path: "/app".into(),
                data: b"v2".to_vec(),
                version: 0,
            }),
            op_create("/app/b", CreateMode::Persistent),
            Op::Delete(jute::records::DeleteRequest { path: "/app/a".into(), version: -1 }),
        ]);
        let response = apply_write(&mut tree, &request, &ctx(2), &namer).unwrap();
        let results = match response {
            Response::Multi(multi) => multi,
            other => panic!("unexpected {other:?}"),
        };
        assert!(results.is_committed());
        assert_eq!(results.results.len(), 5);
        assert_eq!(results.results[1], OpResult::Create { path: "/app/a".into() });
        assert!(matches!(results.results[2], OpResult::SetData { stat } if stat.version == 1));
        // Everything the transaction touched carries the transaction's zxid.
        assert_eq!(tree.get("/app/b").unwrap().stat().czxid, 2);
        assert_eq!(tree.get("/app").unwrap().stat().mzxid, 2);
        assert_eq!(tree.get("/app").unwrap().stat().pzxid, 2);
        assert!(!tree.contains("/app/a"), "created then deleted inside the txn");
    }

    #[test]
    fn failed_check_aborts_the_whole_multi() {
        let mut tree = DataTree::new();
        let namer = DefaultSequentialNamer;
        apply_write(&mut tree, &create_req("/cfg", CreateMode::Persistent), &ctx(1), &namer)
            .unwrap();
        let before = snapshot(&tree);

        let request = multi(vec![
            op_create("/cfg/staged", CreateMode::Persistent),
            Op::Check(jute::records::CheckVersionRequest { path: "/cfg".into(), version: 7 }),
            op_create("/cfg/other", CreateMode::Persistent),
        ]);
        let response = apply_write(&mut tree, &request, &ctx(2), &namer).unwrap();
        let results = match response {
            Response::Multi(multi) => multi,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(
            results.results,
            vec![
                OpResult::Error(ErrorCode::RuntimeInconsistency),
                OpResult::Error(ErrorCode::BadVersion),
                OpResult::Error(ErrorCode::RuntimeInconsistency),
            ]
        );
        assert_eq!(results.first_error(), Some((1, ErrorCode::BadVersion)));
        assert_eq!(snapshot(&tree), before, "aborted multi must leave the tree untouched");
    }

    #[test]
    fn aborted_multi_rolls_back_sequence_counters_and_stats() {
        let mut tree = DataTree::new();
        let namer = DefaultSequentialNamer;
        apply_write(&mut tree, &create_req("/q", CreateMode::Persistent), &ctx(1), &namer).unwrap();
        apply_write(&mut tree, &create_req("/q/keep", CreateMode::Persistent), &ctx(2), &namer)
            .unwrap();
        let before = snapshot(&tree);

        // Two sequential creates, a delete and a set succeed before the
        // final op fails: every mutation must unwind, including the parent's
        // sequence counter, cversion/pzxid, and the deleted node.
        let request = multi(vec![
            op_create("/q/item-", CreateMode::PersistentSequential),
            op_create("/q/item-", CreateMode::PersistentSequential),
            Op::Delete(jute::records::DeleteRequest { path: "/q/keep".into(), version: -1 }),
            Op::SetData(jute::records::SetDataRequest {
                path: "/q".into(),
                data: b"x".to_vec(),
                version: -1,
            }),
            Op::Delete(jute::records::DeleteRequest { path: "/q/missing".into(), version: -1 }),
        ]);
        let response = apply_write(&mut tree, &request, &ctx(3), &namer).unwrap();
        match response {
            Response::Multi(multi) => {
                assert_eq!(multi.first_error(), Some((4, ErrorCode::NoNode)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(snapshot(&tree), before);

        // A later sequential create re-uses the rolled-back number.
        let response = apply_write(
            &mut tree,
            &create_req("/q/item-", CreateMode::PersistentSequential),
            &ctx(4),
            &namer,
        )
        .unwrap();
        assert_eq!(
            response,
            Response::Create(CreateResponse { path: "/q/item-0000000000".into() })
        );
    }

    #[test]
    fn multi_sub_ops_see_earlier_sub_ops() {
        // A create may target a parent created earlier in the same txn, and a
        // check may guard a node the txn just wrote.
        let mut tree = DataTree::new();
        let namer = DefaultSequentialNamer;
        let request = multi(vec![
            op_create("/parent", CreateMode::Persistent),
            op_create("/parent/child", CreateMode::Persistent),
            Op::Check(jute::records::CheckVersionRequest {
                path: "/parent/child".into(),
                version: 0,
            }),
        ]);
        let response = apply_write(&mut tree, &request, &ctx(1), &namer).unwrap();
        match response {
            Response::Multi(multi) => assert!(multi.is_committed()),
            other => panic!("unexpected {other:?}"),
        }
        assert!(tree.contains("/parent/child"));
    }

    #[test]
    fn standalone_check_validates_existence_and_version() {
        let mut tree = DataTree::new();
        let namer = DefaultSequentialNamer;
        apply_write(&mut tree, &create_req("/c", CreateMode::Persistent), &ctx(1), &namer).unwrap();
        let ok =
            Request::Check(jute::records::CheckVersionRequest { path: "/c".into(), version: 0 });
        assert_eq!(apply_write(&mut tree, &ok, &ctx(2), &namer).unwrap(), Response::Check);
        let any =
            Request::Check(jute::records::CheckVersionRequest { path: "/c".into(), version: -1 });
        assert_eq!(apply_write(&mut tree, &any, &ctx(3), &namer).unwrap(), Response::Check);
        let stale =
            Request::Check(jute::records::CheckVersionRequest { path: "/c".into(), version: 3 });
        assert!(matches!(
            apply_write(&mut tree, &stale, &ctx(4), &namer),
            Err(ZkError::BadVersion { .. })
        ));
        let missing = Request::Check(jute::records::CheckVersionRequest {
            path: "/missing".into(),
            version: -1,
        });
        assert!(matches!(
            apply_write(&mut tree, &missing, &ctx(5), &namer),
            Err(ZkError::NoNode { .. })
        ));
    }

    /// Captures every node's full state: (path, data, stat, children, and —
    /// via a probe create below — sequence counters are covered separately).
    fn snapshot(tree: &DataTree) -> Vec<(String, Vec<u8>, jute::records::Stat, Vec<String>)> {
        tree.paths()
            .into_iter()
            .map(|path| {
                let node = tree.get(&path).unwrap();
                (
                    path.clone(),
                    node.data().to_vec(),
                    *node.stat(),
                    node.children().map(str::to_string).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn write_txn_roundtrip() {
        let txn = WriteTxn { session_id: 42, time_ms: 123_456, request_bytes: vec![1, 2, 3, 4] };
        assert_eq!(WriteTxn::from_bytes(&txn.to_bytes()).unwrap(), txn);
        assert!(WriteTxn::from_bytes(&[1, 2]).is_err());
    }

    #[test]
    fn error_response_maps_code() {
        let err = ZkError::NoNode { path: "/x".into() };
        assert_eq!(error_response(&err), Response::Error(ErrorCode::NoNode));
        assert!(matches!(error_from_code(ErrorCode::NoNode, "/x"), ZkError::NoNode { .. }));
    }

    #[test]
    fn read_op_classification() {
        assert!(is_read_op(OpCode::GetData));
        assert!(is_read_op(OpCode::GetChildren));
        assert!(is_read_op(OpCode::Exists));
        assert!(!is_read_op(OpCode::Create));
        assert!(!is_read_op(OpCode::Connect));
    }
}
