//! Pure application of requests to the data tree — the replicated state machine.
//!
//! Write requests are wrapped in a [`WriteTxn`] (which pins the issuing
//! session and logical time) and totally ordered by ZAB; every replica then
//! calls [`apply_write`] with identical arguments, so all replicas stay
//! byte-for-byte identical. Read requests never go through agreement and are
//! answered directly from the local tree with [`apply_read`].
//!
//! Sequential-node naming goes through the [`SequentialNamer`] hook. Vanilla
//! ZooKeeper appends a zero-padded ten-digit counter
//! ([`DefaultSequentialNamer`]); SecureKeeper replaces the hook with its
//! *counter enclave*, which decrypts the requested (encrypted) name, appends
//! the counter, and re-encrypts the result (paper Section 4.4).

use jute::records::{
    CreateResponse, ErrorCode, ExistsResponse, GetChildrenResponse, GetDataResponse, OpCode,
    SetDataResponse,
};
use jute::{InputArchive, OutputArchive, Request, Response};

use crate::error::ZkError;
use crate::tree::{split_path, validate_path, DataTree};

/// Strategy for turning a requested sequential-znode path plus its assigned
/// sequence number into the final znode path.
pub trait SequentialNamer: Send + Sync {
    /// Produces the final path stored in the tree.
    fn name(&self, requested_path: &str, sequence: u32) -> String;
}

/// ZooKeeper's default naming: append the zero-padded ten-digit counter.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultSequentialNamer;

impl SequentialNamer for DefaultSequentialNamer {
    fn name(&self, requested_path: &str, sequence: u32) -> String {
        format!("{requested_path}{sequence:010}")
    }
}

/// Context shared by all replicas when applying one committed write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyContext {
    /// The transaction's global id.
    pub zxid: i64,
    /// Logical time in milliseconds (assigned by the leader).
    pub time_ms: i64,
    /// The session that issued the write (owner of ephemeral znodes).
    pub session_id: i64,
}

/// A write transaction as carried in a ZAB proposal payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteTxn {
    /// The session that issued the write.
    pub session_id: i64,
    /// Logical time assigned by the leader.
    pub time_ms: i64,
    /// The serialized request (header + body).
    pub request_bytes: Vec<u8>,
}

impl WriteTxn {
    /// Serializes the transaction for the ZAB payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = OutputArchive::with_capacity(self.request_bytes.len() + 24);
        out.write_i64(self.session_id);
        out.write_i64(self.time_ms);
        out.write_buffer(&self.request_bytes);
        out.into_bytes()
    }

    /// Decodes a transaction from a ZAB payload.
    ///
    /// # Errors
    ///
    /// Returns [`ZkError::Marshalling`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ZkError> {
        let mut input = InputArchive::new(bytes);
        let session_id = input.read_i64("session_id")?;
        let time_ms = input.read_i64("time_ms")?;
        let request_bytes = input.read_buffer("request")?;
        input.expect_exhausted()?;
        Ok(WriteTxn { session_id, time_ms, request_bytes })
    }
}

/// Applies a write request to the tree, returning the response the issuing
/// replica sends back to the client.
///
/// # Errors
///
/// Returns the [`ZkError`] describing why the operation was rejected; the tree
/// is left unchanged in that case.
pub fn apply_write(
    tree: &mut DataTree,
    request: &Request,
    ctx: &ApplyContext,
    namer: &dyn SequentialNamer,
) -> Result<Response, ZkError> {
    match request {
        Request::Create(create) => {
            validate_path(&create.path)?;
            if create.path == "/" {
                return Err(ZkError::NodeExists { path: "/".to_string() });
            }
            let final_path = if create.mode.is_sequential() {
                let (parent, _) = split_path(&create.path).ok_or_else(|| {
                    ZkError::BadArguments { reason: "sequential create on root".into() }
                })?;
                let sequence = tree.next_sequence(parent)?;
                namer.name(&create.path, sequence)
            } else {
                create.path.clone()
            };
            let owner = if create.mode.is_ephemeral() { ctx.session_id } else { 0 };
            tree.create(&final_path, create.data.clone(), owner, ctx.zxid, ctx.time_ms)?;
            Ok(Response::Create(CreateResponse { path: final_path }))
        }
        Request::Delete(delete) => {
            validate_path(&delete.path)?;
            tree.delete(&delete.path, delete.version, ctx.zxid)?;
            Ok(Response::Delete)
        }
        Request::SetData(set) => {
            validate_path(&set.path)?;
            let stat =
                tree.set_data(&set.path, set.data.clone(), set.version, ctx.zxid, ctx.time_ms)?;
            Ok(Response::SetData(SetDataResponse { stat }))
        }
        Request::CloseSession => Ok(Response::CloseSession),
        other => Err(ZkError::BadArguments {
            reason: format!("{:?} is not a write operation", other.op()),
        }),
    }
}

/// Answers a read request from the local tree.
///
/// # Errors
///
/// Returns the [`ZkError`] describing why the operation was rejected.
pub fn apply_read(tree: &DataTree, request: &Request) -> Result<Response, ZkError> {
    match request {
        Request::GetData(get) => {
            validate_path(&get.path)?;
            let (data, stat) = tree.get_data(&get.path)?;
            Ok(Response::GetData(GetDataResponse { data, stat }))
        }
        Request::Exists(exists) => {
            validate_path(&exists.path)?;
            match tree.stat(&exists.path) {
                Some(stat) => Ok(Response::Exists(ExistsResponse { stat })),
                None => Err(ZkError::NoNode { path: exists.path.clone() }),
            }
        }
        Request::GetChildren(ls) => {
            validate_path(&ls.path)?;
            let children = tree.get_children(&ls.path)?;
            Ok(Response::GetChildren(GetChildrenResponse { children }))
        }
        Request::Ping => Ok(Response::Ping),
        other => Err(ZkError::BadArguments {
            reason: format!("{:?} is not a read operation", other.op()),
        }),
    }
}

/// Convenience: turns a [`ZkError`] into the wire-level error response.
pub fn error_response(err: &ZkError) -> Response {
    Response::Error(err.code())
}

/// True if the operation only reads state and can be answered by any replica.
pub fn is_read_op(op: OpCode) -> bool {
    !op.is_write() && op != OpCode::Connect
}

/// Maps an error code back into a `ZkError` (used by typed clients).
pub fn error_from_code(code: ErrorCode, path: &str) -> ZkError {
    match code {
        ErrorCode::NoNode => ZkError::NoNode { path: path.to_string() },
        ErrorCode::NodeExists => ZkError::NodeExists { path: path.to_string() },
        ErrorCode::NotEmpty => ZkError::NotEmpty { path: path.to_string() },
        ErrorCode::BadVersion => {
            ZkError::BadVersion { path: path.to_string(), expected: -1, actual: -1 }
        }
        ErrorCode::NoChildrenForEphemerals => {
            ZkError::NoChildrenForEphemerals { path: path.to_string() }
        }
        ErrorCode::SessionExpired => ZkError::SessionExpired { session_id: 0 },
        ErrorCode::NoQuorum => ZkError::NoQuorum,
        ErrorCode::ConnectionLoss => {
            ZkError::ConnectionLoss { reason: format!("connection lost on {path}") }
        }
        ErrorCode::AuthFailed => ZkError::Marshalling { reason: "authentication failed".into() },
        ErrorCode::BadArguments => ZkError::BadArguments { reason: path.to_string() },
        ErrorCode::Ok | ErrorCode::MarshallingError => {
            ZkError::Marshalling { reason: format!("unexpected error code for {path}") }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jute::records::{
        CreateMode, CreateRequest, DeleteRequest, GetChildrenRequest, GetDataRequest,
        SetDataRequest,
    };

    fn ctx(zxid: i64) -> ApplyContext {
        ApplyContext { zxid, time_ms: 1_000 + zxid, session_id: 7 }
    }

    fn create_req(path: &str, mode: CreateMode) -> Request {
        Request::Create(CreateRequest { path: path.into(), data: b"d".to_vec(), mode })
    }

    #[test]
    fn create_get_set_delete_cycle() {
        let mut tree = DataTree::new();
        let namer = DefaultSequentialNamer;

        let resp =
            apply_write(&mut tree, &create_req("/app", CreateMode::Persistent), &ctx(1), &namer)
                .unwrap();
        assert_eq!(resp, Response::Create(CreateResponse { path: "/app".into() }));

        let resp = apply_read(
            &tree,
            &Request::GetData(GetDataRequest { path: "/app".into(), watch: false }),
        )
        .unwrap();
        match resp {
            Response::GetData(get) => assert_eq!(get.data, b"d"),
            other => panic!("unexpected {other:?}"),
        }

        let resp = apply_write(
            &mut tree,
            &Request::SetData(SetDataRequest {
                path: "/app".into(),
                data: b"d2".to_vec(),
                version: 0,
            }),
            &ctx(2),
            &namer,
        )
        .unwrap();
        match resp {
            Response::SetData(set) => assert_eq!(set.stat.version, 1),
            other => panic!("unexpected {other:?}"),
        }

        apply_write(
            &mut tree,
            &Request::Delete(DeleteRequest { path: "/app".into(), version: -1 }),
            &ctx(3),
            &namer,
        )
        .unwrap();
        assert!(!tree.contains("/app"));
    }

    #[test]
    fn sequential_create_appends_zero_padded_counter() {
        let mut tree = DataTree::new();
        let namer = DefaultSequentialNamer;
        apply_write(&mut tree, &create_req("/locks", CreateMode::Persistent), &ctx(1), &namer)
            .unwrap();

        let r1 = apply_write(
            &mut tree,
            &create_req("/locks/lock-", CreateMode::PersistentSequential),
            &ctx(2),
            &namer,
        )
        .unwrap();
        let r2 = apply_write(
            &mut tree,
            &create_req("/locks/lock-", CreateMode::PersistentSequential),
            &ctx(3),
            &namer,
        )
        .unwrap();
        assert_eq!(r1, Response::Create(CreateResponse { path: "/locks/lock-0000000000".into() }));
        assert_eq!(r2, Response::Create(CreateResponse { path: "/locks/lock-0000000001".into() }));
        assert_eq!(tree.get_children("/locks").unwrap().len(), 2);
    }

    #[test]
    fn sequential_numbering_is_per_parent_and_deterministic() {
        // Two replicas applying the same sequence of writes reach the same names.
        let namer = DefaultSequentialNamer;
        let mut a = DataTree::new();
        let mut b = DataTree::new();
        for tree in [&mut a, &mut b] {
            apply_write(tree, &create_req("/q", CreateMode::Persistent), &ctx(1), &namer).unwrap();
            apply_write(
                tree,
                &create_req("/q/item-", CreateMode::PersistentSequential),
                &ctx(2),
                &namer,
            )
            .unwrap();
            apply_write(
                tree,
                &create_req("/q/item-", CreateMode::PersistentSequential),
                &ctx(3),
                &namer,
            )
            .unwrap();
        }
        assert_eq!(a.paths(), b.paths());
    }

    #[test]
    fn ephemeral_create_records_session_owner() {
        let mut tree = DataTree::new();
        let namer = DefaultSequentialNamer;
        apply_write(&mut tree, &create_req("/e", CreateMode::Ephemeral), &ctx(1), &namer).unwrap();
        assert_eq!(tree.get("/e").unwrap().stat().ephemeral_owner, 7);
        assert_eq!(tree.ephemerals_of(7), vec!["/e".to_string()]);
    }

    #[test]
    fn custom_namer_is_honoured() {
        struct SuffixNamer;
        impl SequentialNamer for SuffixNamer {
            fn name(&self, requested_path: &str, sequence: u32) -> String {
                format!("{requested_path}#{sequence}")
            }
        }
        let mut tree = DataTree::new();
        apply_write(&mut tree, &create_req("/s", CreateMode::Persistent), &ctx(1), &SuffixNamer)
            .unwrap();
        let resp = apply_write(
            &mut tree,
            &create_req("/s/n-", CreateMode::PersistentSequential),
            &ctx(2),
            &SuffixNamer,
        )
        .unwrap();
        assert_eq!(resp, Response::Create(CreateResponse { path: "/s/n-#0".into() }));
    }

    #[test]
    fn reads_reject_write_ops_and_vice_versa() {
        let mut tree = DataTree::new();
        let namer = DefaultSequentialNamer;
        assert!(apply_read(&tree, &create_req("/a", CreateMode::Persistent)).is_err());
        assert!(apply_write(
            &mut tree,
            &Request::GetData(GetDataRequest { path: "/".into(), watch: false }),
            &ctx(1),
            &namer
        )
        .is_err());
    }

    #[test]
    fn reads_report_missing_nodes() {
        let tree = DataTree::new();
        for request in [
            Request::GetData(GetDataRequest { path: "/missing".into(), watch: false }),
            Request::GetChildren(GetChildrenRequest { path: "/missing".into(), watch: false }),
        ] {
            assert!(matches!(apply_read(&tree, &request), Err(ZkError::NoNode { .. })));
        }
    }

    #[test]
    fn write_txn_roundtrip() {
        let txn = WriteTxn { session_id: 42, time_ms: 123_456, request_bytes: vec![1, 2, 3, 4] };
        assert_eq!(WriteTxn::from_bytes(&txn.to_bytes()).unwrap(), txn);
        assert!(WriteTxn::from_bytes(&[1, 2]).is_err());
    }

    #[test]
    fn error_response_maps_code() {
        let err = ZkError::NoNode { path: "/x".into() };
        assert_eq!(error_response(&err), Response::Error(ErrorCode::NoNode));
        assert!(matches!(error_from_code(ErrorCode::NoNode, "/x"), ZkError::NoNode { .. }));
    }

    #[test]
    fn read_op_classification() {
        assert!(is_read_op(OpCode::GetData));
        assert!(is_read_op(OpCode::GetChildren));
        assert!(is_read_op(OpCode::Exists));
        assert!(!is_read_op(OpCode::Create));
        assert!(!is_read_op(OpCode::Connect));
    }
}
