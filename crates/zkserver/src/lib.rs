//! A ZooKeeper-semantics coordination service.
//!
//! Apache ZooKeeper exposes a hierarchical tree of *znodes* — nodes that carry
//! both payload data and children — through a small file-system-like API
//! (CREATE, GET, SET, DELETE, LS/getChildren, EXISTS), replicates the tree
//! across an ensemble of replicas with the ZAB agreement protocol, and
//! guarantees FIFO order for the requests of each client session.
//!
//! SecureKeeper (the `securekeeper` crate in this workspace) hardens exactly
//! this service; this crate provides the untrusted substrate it runs on:
//!
//! * [`tree::DataTree`] — the znode database with version checks, sequential
//!   node numbering, ephemeral ownership and memory accounting;
//! * [`session::SessionManager`] — client sessions and ephemeral cleanup;
//! * [`watch::WatchManager`] — one-shot data/child watches;
//! * [`ops`] — pure application of a request to the tree (the replicated
//!   state machine);
//! * [`pipeline`] — the request-processor chain with the byte-buffer
//!   interception points SecureKeeper's enclaves hook into;
//! * [`server::ZkReplica`] — a single replica (standalone mode);
//! * [`cluster::ZkCluster`] — a deterministic in-process ZAB ensemble with
//!   crash injection and leader failover (simulation experiments);
//! * [`net::ZkTcpServer`] — the real TCP wire transport: length-prefixed
//!   jute frames, concurrent connections, single-writer ordering;
//! * [`ensemble::ZkEnsembleServer`] — a *networked* ensemble member: ZAB
//!   over real peer sockets, follower→leader write forwarding, heartbeats,
//!   leader election, and crash failover;
//! * [`client::ZkClient`] — a typed client handle used by the examples and
//!   the benchmark harness;
//! * [`client::ZkTcpClient`] — the blocking socket client matching
//!   [`net::ZkTcpServer`];
//! * [`typed`] — the shared typed-operation layer: the [`typed::ZooKeeper`]
//!   trait every client flavour implements, the response decoders they all
//!   share, and the [`typed::Txn`] builder for atomic `multi` transactions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod ensemble;
pub mod error;
pub mod metrics;
pub mod net;
pub mod ops;
pub mod persist;
pub mod pipeline;
pub mod server;
pub mod session;
pub mod tree;
pub mod typed;
pub mod watch;

pub use client::{ZkClient, ZkTcpClient};
pub use cluster::ZkCluster;
pub use ensemble::{DrainReport, EnsembleConfig, PeerTransport, ZkEnsembleServer};
pub use error::ZkError;
pub use jute::multi::{Op, OpResult};
pub use metrics::ServerMetrics;
pub use net::ZkTcpServer;
pub use persist::{PersistConfig, ReplicaPersistence};
pub use server::ZkReplica;
pub use tree::{DataTree, Znode};
pub use typed::{MultiDispatch, Txn, ZooKeeper};
