//! The server's metric surface: every counter, gauge, and histogram one
//! member exports through `GET /metrics` and the `mntr` admin word.
//!
//! [`ServerMetrics`] registers the full family set up front (so a scrape of
//! an idle member already shows every metric at zero) and hands out the
//! lock-free handles the hot paths update. Values owned by other subsystems
//! — the data tree, the session table, the WAL — are bridged with
//! collectors: closures holding [`Weak`] references that refresh gauges and
//! advance monotonic mirror counters right before each render, so a scrape
//! can never deadlock against, or keep alive, the component it observes.
//!
//! The exported family set is documented metric-by-metric in
//! `docs/METRICS.md`; a guard test asserts the two lists never diverge.

use std::sync::{Arc, Weak};
use std::time::Instant;

use opsplane::metrics::{
    Counter, Gauge, Histogram, MetricsRegistry, READ_LATENCY_BUCKETS, STAGE_DURATION_BUCKETS,
    WRITE_LATENCY_BUCKETS,
};
use trace::Stage;

use crate::server::ZkReplica;

/// The pipeline stages a server process executes, in request order — the
/// label set of the `zk_stage_duration_seconds` family. Client- and
/// gateway-side stages (`client_call`, `gw_route`) are exported by their
/// own processes, not here.
const SERVER_STAGES: [Stage; 8] = [
    Stage::Open,
    Stage::QueueWait,
    Stage::Propose,
    Stage::QuorumAck,
    Stage::WalFsync,
    Stage::Apply,
    Stage::Seal,
    Stage::ReplyFlush,
];

/// Per-stage pipeline latency histograms (`zk_stage_duration_seconds`),
/// indexed by [`trace::Stage`] so hot paths observe without string lookups.
/// Stages this process never executes hold no handle and observe as a no-op.
pub struct StageHistograms {
    histograms: [Option<Histogram>; Stage::ALL.len()],
}

impl StageHistograms {
    fn new(registry: &MetricsRegistry) -> Self {
        let mut histograms: [Option<Histogram>; Stage::ALL.len()] = Default::default();
        for stage in SERVER_STAGES {
            histograms[stage as usize] = Some(registry.histogram_with(
                "zk_stage_duration_seconds",
                &[("stage", stage.name())],
                "Request pipeline stage duration in seconds, by stage.",
                &STAGE_DURATION_BUCKETS,
            ));
        }
        StageHistograms { histograms }
    }

    /// Records one execution of `stage` that took `nanos` nanoseconds.
    pub fn observe_ns(&self, stage: Stage, nanos: u64) {
        if let Some(histogram) = &self.histograms[stage as usize] {
            histogram.observe(nanos as f64 / 1e9);
        }
    }
}

/// All metric handles of one server, plus the registry that renders them.
pub struct ServerMetrics {
    registry: Arc<MetricsRegistry>,
    /// Requests answered, by class (`read`, `write`, `admin` covers the
    /// four-letter words).
    pub requests_read: Counter,
    /// Write-class requests answered.
    pub requests_write: Counter,
    /// Requests that returned an in-band error response.
    pub request_errors: Counter,
    /// Read-request service latency.
    pub latency_read: Histogram,
    /// Write-request service latency (includes replication for ensembles).
    pub latency_write: Histogram,
    /// Requests rejected with the `Throttled` error code.
    pub throttled: Counter,
    /// Four-letter admin words answered.
    pub admin_commands: Counter,
    /// Client connections currently open.
    pub connections_open: Gauge,
    /// Sessions expired by the ticker.
    pub sessions_expired: Counter,
    /// Watch notifications pushed to clients.
    pub watch_events: Counter,
    /// ZAB proposals initiated by this member as leader.
    pub zab_proposals: Counter,
    /// ZAB transactions committed (applied to the tree) on this member.
    pub zab_commits: Counter,
    /// Writes forwarded to the leader by this member as follower.
    pub zab_forwards: Counter,
    /// Elections this member started as candidate.
    pub zab_elections_started: Counter,
    /// Elections this member won.
    pub zab_elections_won: Counter,
    /// Current ZAB epoch.
    pub zab_epoch: Gauge,
    /// Current role: 0 = electing, 1 = follower, 2 = leader.
    pub zab_role: Gauge,
    /// Snapshots shipped to lagging peers by this member as leader.
    pub zab_snapshots_shipped: Counter,
    /// Log transactions shipped in sync responses by this member as leader.
    pub zab_sync_txns_shipped: Counter,
    /// Leader-shipped snapshots installed by this member.
    pub zab_snapshots_installed: Counter,
    /// WAL fsync batches (mirrored from the persistence layer).
    pub wal_fsyncs: Counter,
    /// Bytes appended to the WAL (mirrored from the persistence layer).
    pub wal_bytes: Counter,
    /// Tree snapshots written to disk (mirrored from persistence).
    pub snapshots_taken: Counter,
    /// Whether a graceful drain is in progress (0/1).
    pub draining: Gauge,
    /// Per-stage pipeline latency (`zk_stage_duration_seconds{stage=...}`).
    pub stages: StageHistograms,
}

impl ServerMetrics {
    /// Creates the full metric surface on a fresh registry.
    pub fn new() -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let metrics = ServerMetrics {
            requests_read: registry.counter_with(
                "zk_requests_total",
                &[("class", "read")],
                "Client requests answered, by request class.",
            ),
            requests_write: registry.counter_with(
                "zk_requests_total",
                &[("class", "write")],
                "Client requests answered, by request class.",
            ),
            request_errors: registry.counter(
                "zk_request_errors_total",
                "Requests that returned an in-band error response.",
            ),
            latency_read: registry.histogram_with(
                "zk_request_latency_seconds",
                &[("class", "read")],
                "Request service latency in seconds, by request class.",
                &READ_LATENCY_BUCKETS,
            ),
            latency_write: registry.histogram_with(
                "zk_request_latency_seconds",
                &[("class", "write")],
                "Request service latency in seconds, by request class.",
                &WRITE_LATENCY_BUCKETS,
            ),
            throttled: registry.counter(
                "zk_throttled_total",
                "Requests rejected because the session exceeded its rate budget.",
            ),
            admin_commands: registry.counter(
                "zk_admin_commands_total",
                "Four-letter admin words answered on the client port.",
            ),
            connections_open: registry
                .gauge("zk_connections_open", "Client connections currently open."),
            sessions_expired: registry.counter(
                "zk_sessions_expired_total",
                "Sessions expired by the server's timeout sweep.",
            ),
            watch_events: registry.counter(
                "zk_watch_events_total",
                "Watch notifications pushed to client connections.",
            ),
            zab_proposals: registry.counter(
                "zk_zab_proposals_total",
                "ZAB proposals initiated by this member as leader.",
            ),
            zab_commits: registry.counter(
                "zk_zab_commits_total",
                "ZAB transactions committed and applied to the tree.",
            ),
            zab_forwards: registry.counter(
                "zk_zab_forwards_total",
                "Writes forwarded to the leader by this member as follower.",
            ),
            zab_elections_started: registry.counter(
                "zk_zab_elections_started_total",
                "Elections this member started as candidate.",
            ),
            zab_elections_won: registry
                .counter("zk_zab_elections_won_total", "Elections this member won."),
            zab_epoch: registry.gauge("zk_zab_epoch", "Current ZAB epoch."),
            zab_role: registry
                .gauge("zk_zab_role", "Current role: 0 = electing, 1 = follower, 2 = leader."),
            zab_snapshots_shipped: registry.counter(
                "zk_zab_snapshots_shipped_total",
                "State snapshots shipped to lagging peers by this member as leader.",
            ),
            zab_sync_txns_shipped: registry.counter(
                "zk_zab_sync_txns_shipped_total",
                "Log transactions shipped in NewLeaderSync responses by this member.",
            ),
            zab_snapshots_installed: registry.counter(
                "zk_zab_snapshots_installed_total",
                "Leader-shipped snapshots installed by this member.",
            ),
            wal_fsyncs: registry
                .counter("zk_wal_fsyncs_total", "Write-ahead-log fsync batches (group commits)."),
            wal_bytes: registry
                .counter("zk_wal_bytes_total", "Bytes appended to the write-ahead log."),
            snapshots_taken: registry
                .counter("zk_snapshots_taken_total", "Tree snapshots written to disk."),
            draining: registry
                .gauge("zk_draining", "1 while a graceful drain is in progress, else 0."),
            stages: StageHistograms::new(&registry),
            registry,
        };
        // Gauges refreshed by collectors still belong to the always-visible
        // family set; register them (and the uptime clock) up front.
        metrics.registry.gauge("zk_sessions_active", "Sessions currently active.");
        metrics.registry.gauge("zk_watches_pending", "Watches armed and not yet fired.");
        metrics.registry.gauge("zk_znodes", "Znodes in the data tree.");
        metrics
            .registry
            .gauge("zk_approx_memory_bytes", "Approximate bytes held by the data tree.");
        metrics.registry.gauge("zk_last_zxid", "Zxid of the most recently applied write.");
        metrics.registry.counter(
            "zk_path_cache_hits_total",
            "Secure-mode path-cache lookups answered from the cache.",
        );
        metrics.registry.counter(
            "zk_path_cache_misses_total",
            "Secure-mode path-cache lookups that had to compute the mapping.",
        );
        metrics.registry.counter(
            "zk_secure_frames_sealed_total",
            "Frames sealed (encrypted) by the entry interceptor.",
        );
        metrics.registry.counter(
            "zk_secure_frames_opened_total",
            "Frames opened (decrypted) by the entry interceptor.",
        );
        metrics
            .registry
            .gauge("zk_entry_enclaves", "Per-session entry enclaves currently instantiated.");
        let uptime = metrics.registry.gauge("zk_uptime_seconds", "Seconds since server start.");
        let started = Instant::now();
        metrics.registry.register_collector(move || uptime.set(started.elapsed().as_secs() as i64));
        metrics
    }

    /// The registry behind this metric surface (what the ops endpoint and
    /// `mntr` render).
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    /// Bridges the replica-owned values — tree size, session table, armed
    /// watches, interceptor counters — into the registry via a collector
    /// holding a weak reference, so a scrape neither keeps the replica
    /// alive nor races its shutdown.
    pub fn attach_replica(&self, replica: &Arc<ZkReplica>) {
        let sessions = self.registry.gauge("zk_sessions_active", "");
        let watches = self.registry.gauge("zk_watches_pending", "");
        let znodes = self.registry.gauge("zk_znodes", "");
        let memory = self.registry.gauge("zk_approx_memory_bytes", "");
        let last_zxid = self.registry.gauge("zk_last_zxid", "");
        let cache_hits = self.registry.counter("zk_path_cache_hits_total", "");
        let cache_misses = self.registry.counter("zk_path_cache_misses_total", "");
        let sealed = self.registry.counter("zk_secure_frames_sealed_total", "");
        let opened = self.registry.counter("zk_secure_frames_opened_total", "");
        let enclaves = self.registry.gauge("zk_entry_enclaves", "");
        let weak: Weak<ZkReplica> = Arc::downgrade(replica);
        self.registry.register_collector(move || {
            let Some(replica) = weak.upgrade() else { return };
            sessions.set(replica.session_count() as i64);
            watches.set(replica.watch_count() as i64);
            znodes.set(replica.tree().node_count() as i64);
            memory.set(replica.memory_bytes() as i64);
            last_zxid.set(replica.last_zxid());
            let stats = replica.interceptor().stats();
            cache_hits.raise_to(stats.path_cache_hits);
            cache_misses.raise_to(stats.path_cache_misses);
            sealed.raise_to(stats.frames_sealed);
            opened.raise_to(stats.frames_opened);
            enclaves.set(stats.entry_enclaves as i64);
        });
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_family_set_is_visible_on_an_idle_server() {
        let metrics = ServerMetrics::new();
        let names = metrics.registry().family_names();
        for expected in [
            "zk_requests_total",
            "zk_request_latency_seconds",
            "zk_stage_duration_seconds",
            "zk_zab_commits_total",
            "zk_wal_fsyncs_total",
            "zk_path_cache_hits_total",
            "zk_uptime_seconds",
            "zk_draining",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing family {expected}");
        }
    }

    #[test]
    fn replica_collector_refreshes_tree_gauges() {
        use jute::records::{CreateMode, CreateRequest};
        use jute::Request;

        let metrics = ServerMetrics::new();
        let replica = Arc::new(ZkReplica::new(1));
        metrics.attach_replica(&replica);
        let session = replica.connect(30_000).session_id;
        replica.handle_request(
            session,
            &Request::Create(CreateRequest {
                path: "/observed".into(),
                data: b"x".to_vec(),
                mode: CreateMode::Persistent,
            }),
        );
        let text = metrics.registry().render();
        assert!(text.contains("zk_sessions_active 1"), "{text}");
        assert!(text.contains("zk_last_zxid 1"), "{text}");
        drop(replica);
        // With the replica gone the collector is a no-op, not a crash.
        let _ = metrics.registry().render();
    }
}
