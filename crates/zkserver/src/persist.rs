//! Replica persistence: DataTree snapshots plus the durable transaction log.
//!
//! This module is the glue between the storage primitives of the `persist`
//! crate (segment-file WAL, snapshot files — both content-oblivious) and
//! the replica's state:
//!
//! * [`encode_snapshot`] / [`decode_snapshot`] — the jute codec for a whole
//!   [`DataTree`] (payloads, stats, child sets via path structure,
//!   sequential counters, ephemeral owners) plus the session table. In
//!   secure mode, paths and payloads in the tree are already ciphertext, so
//!   a snapshot is sealed at rest *by construction* — the codec never sees
//!   a plaintext byte.
//! * [`ReplicaPersistence`] — one replica's data directory
//!   (`<dir>/log/` + `<dir>/snap/`): recovery on open (newest valid
//!   snapshot + log suffix), the [`zab::DurableLog`] sink that mirrors the
//!   in-memory [`zab::TxnLog`] to disk, periodic snapshot-and-purge, and
//!   adoption of leader-shipped snapshots.
//!
//! The ensemble server ([`crate::ensemble::ZkEnsembleServer`]) threads a
//! `ReplicaPersistence` through boot (recover), the write path (group-commit
//! fsync per drain) and sync (snapshot shipping to lagging peers).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use jute::records::Stat;
use jute::{InputArchive, OutputArchive};
use persist::{SnapshotStore, Wal, WalConfig};
use zab::{DurableLog, Txn, TxnLog, Zxid};

use crate::error::ZkError;
use crate::server::ZkReplica;
use crate::session::SessionRecord;
use crate::tree::{DataTree, Znode};

/// Snapshot codec version byte. Version 2 added session passwords to the
/// session table (so clients can re-attach after a full-ensemble restart);
/// version-1 snapshots still decode, with empty passwords.
const SNAPSHOT_VERSION: u8 = 2;

/// Tuning knobs of a replica's persistence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistConfig {
    /// WAL: force an fsync once this many records accumulate inside one
    /// write-queue drain (the drain itself always ends with one sync).
    pub fsync_every: usize,
    /// WAL: segment rollover size.
    pub segment_max_bytes: u64,
    /// Take a snapshot (and truncate the log behind it) every this many
    /// applied transactions. `u64::MAX` disables periodic snapshots.
    pub snapshot_every: u64,
    /// How many snapshot files to keep on disk.
    pub snapshots_retained: usize,
}

impl Default for PersistConfig {
    fn default() -> Self {
        PersistConfig {
            fsync_every: 64,
            segment_max_bytes: 8 * 1024 * 1024,
            snapshot_every: 1024,
            snapshots_retained: 3,
        }
    }
}

/// Serializes the whole tree plus the session table at one point in time.
///
/// Layout (jute): version byte, node count, then per node *in sorted path
/// order* (parents precede children): path, payload buffer, [`Stat`],
/// sequential counter; then the session count and per session id, timeout
/// and password buffer.
pub fn encode_snapshot(tree: &DataTree, sessions: &[SessionRecord]) -> Vec<u8> {
    let nodes = tree.nodes_sorted();
    let mut out = OutputArchive::with_capacity(64 + nodes.len() * 96);
    out.write_u8(SNAPSHOT_VERSION);
    out.write_i32(nodes.len() as i32);
    for (path, node) in nodes {
        out.write_string(path);
        out.write_buffer(node.data());
        node.stat().serialize(&mut out);
        out.write_i32(node.next_sequence() as i32);
    }
    out.write_i32(sessions.len() as i32);
    for session in sessions {
        out.write_i64(session.id);
        out.write_i64(session.timeout_ms);
        out.write_buffer(&session.password);
    }
    out.into_bytes()
}

/// Decodes a snapshot produced by [`encode_snapshot`].
///
/// # Errors
///
/// Returns [`ZkError::Marshalling`] on truncated or structurally invalid
/// input (bad counts, malformed paths, duplicate nodes, orphans, missing
/// root) — garbage bytes are rejected, never installed and never panic.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(DataTree, Vec<SessionRecord>), ZkError> {
    let mut input = InputArchive::new(bytes);
    let version = input.read_u8("snapshot version")?;
    if version == 0 || version > SNAPSHOT_VERSION {
        return Err(ZkError::Marshalling { reason: format!("snapshot version {version}") });
    }
    let node_count = input.read_i32("snapshot node count")?;
    if node_count < 0 {
        return Err(ZkError::Marshalling { reason: "negative node count".into() });
    }
    let mut pairs = Vec::with_capacity((node_count as usize).min(4096));
    for _ in 0..node_count {
        let path = input.read_string("node path")?;
        let data = input.read_buffer("node data")?;
        let stat = Stat::deserialize(&mut input)?;
        let next_sequence = input.read_i32("node sequence counter")? as u32;
        pairs.push((path, Znode::from_parts(data, stat, next_sequence)));
    }
    let session_count = input.read_i32("session count")?;
    if session_count < 0 {
        return Err(ZkError::Marshalling { reason: "negative session count".into() });
    }
    let mut sessions = Vec::with_capacity((session_count as usize).min(4096));
    for _ in 0..session_count {
        let id = input.read_i64("session id")?;
        let timeout_ms = input.read_i64("session timeout")?;
        // Version 1 predates durable passwords: the session re-derives one
        // on adoption, as it always did.
        let password =
            if version >= 2 { input.read_buffer("session password")? } else { Vec::new() };
        sessions.push(SessionRecord { id, timeout_ms, password });
    }
    input.expect_exhausted()?;
    let tree = DataTree::from_nodes(pairs)?;
    Ok((tree, sessions))
}

/// Serializes the replica's current state, returning the zxid the snapshot
/// is valid at. The tree's shared lock pins the zxid and the contents
/// together (writers take the exclusive lock).
pub fn snapshot_replica(replica: &ZkReplica) -> (i64, Vec<u8>) {
    let tree = replica.tree();
    let zxid = replica.last_zxid();
    let bytes = encode_snapshot(&tree, &replica.session_records());
    (zxid, bytes)
}

/// The longest prefix of `txns` that chains gaplessly onto `horizon`
/// (each zxid [`Zxid::follows`] the previous one). Recovery uses this to
/// reject a WAL suffix disconnected from the snapshot it boots from: when
/// the newest snapshot rots and boot falls back to an older one, the log —
/// already truncated against the newer snapshot — no longer reaches back
/// far enough, and replaying across the gap would silently diverge.
pub fn chained_suffix(txns: Vec<Txn>, horizon: Zxid) -> Vec<Txn> {
    let mut chained = Vec::with_capacity(txns.len());
    for txn in txns {
        if txn.zxid <= horizon {
            continue;
        }
        let prev = chained.last().map_or(horizon, |t: &Txn| t.zxid);
        if !txn.zxid.follows(prev) {
            break;
        }
        chained.push(txn);
    }
    chained
}

/// What [`ReplicaPersistence::open`] recovered from the data directory.
#[derive(Debug, Default)]
pub struct RecoveredState {
    /// Newest valid snapshot, if any: the zxid it was taken at and its
    /// serialized bytes.
    pub snapshot: Option<(u64, Vec<u8>)>,
    /// Log transactions, in zxid order (may include entries the snapshot
    /// already covers; the ensemble filters by zxid).
    pub txns: Vec<Txn>,
    /// Recovered commit watermark.
    pub committed: Zxid,
}

/// Sink mirroring a [`zab::TxnLog`] into the shared WAL. I/O failures are
/// fatal: like ZooKeeper, a replica that cannot persist its log must stop
/// rather than silently serve un-durable acknowledgements.
struct WalSink(Arc<Mutex<Wal>>);

impl DurableLog for WalSink {
    fn append_txn(&mut self, txn: &Txn) {
        self.0.lock().append_txn(txn).expect("WAL append failed");
    }

    fn mark_committed(&mut self, zxid: Zxid) {
        self.0.lock().append_commit(zxid).expect("WAL commit mark failed");
    }

    fn truncate_after(&mut self, zxid: Zxid) {
        self.0.lock().truncate_after(zxid).expect("WAL truncate failed");
    }

    fn reset_to(&mut self, zxid: Zxid) {
        self.0.lock().reset_to(zxid).expect("WAL reset failed");
    }

    fn sync(&mut self) {
        self.0.lock().sync().expect("WAL fsync failed");
    }
}

/// One replica's durable state: the WAL under `<dir>/log/`, snapshots under
/// `<dir>/snap/`, and the snapshot cadence counter.
pub struct ReplicaPersistence {
    data_dir: PathBuf,
    wal: Arc<Mutex<Wal>>,
    snapshots: SnapshotStore,
    config: PersistConfig,
    applied_since_snapshot: AtomicU64,
    snapshots_taken: AtomicU64,
    recovery: Mutex<Option<RecoveredState>>,
}

impl std::fmt::Debug for ReplicaPersistence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaPersistence")
            .field("data_dir", &self.data_dir)
            .field("snapshots_taken", &self.snapshots_taken.load(Ordering::Relaxed))
            .finish()
    }
}

impl ReplicaPersistence {
    /// Opens (creating if needed) the data directory and recovers its
    /// contents: the newest valid snapshot plus the surviving log.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures. Damaged *content* (torn log tails, corrupt
    /// snapshots) is handled by falling back, never surfaced as an error.
    pub fn open(data_dir: impl AsRef<Path>, config: PersistConfig) -> io::Result<Self> {
        let data_dir = data_dir.as_ref().to_path_buf();
        let wal_config = WalConfig {
            fsync_every: config.fsync_every,
            segment_max_bytes: config.segment_max_bytes,
        };
        let (wal, wal_recovery) = Wal::open(data_dir.join("log"), wal_config)?;
        let snapshots = SnapshotStore::open(data_dir.join("snap"))?;
        let snapshot = snapshots.load_latest();
        let recovered =
            RecoveredState { snapshot, txns: wal_recovery.txns, committed: wal_recovery.committed };
        Ok(ReplicaPersistence {
            data_dir,
            wal: Arc::new(Mutex::new(wal)),
            snapshots,
            config,
            applied_since_snapshot: AtomicU64::new(0),
            snapshots_taken: AtomicU64::new(0),
            recovery: Mutex::new(Some(recovered)),
        })
    }

    /// The data directory this persistence writes under.
    pub fn data_dir(&self) -> &Path {
        &self.data_dir
    }

    /// The configuration this persistence was opened with.
    pub fn config(&self) -> PersistConfig {
        self.config
    }

    /// Measures the on-disk footprint of the WAL and snapshot directories
    /// (file sizes as of this call), for the `dirs` admin word.
    pub fn dir_sizes(&self) -> opsplane::DataDirInfo {
        fn scan(dir: &Path) -> (u64, u64) {
            let mut bytes = 0;
            let mut files = 0;
            if let Ok(entries) = std::fs::read_dir(dir) {
                for entry in entries.flatten() {
                    if let Ok(meta) = entry.metadata() {
                        if meta.is_file() {
                            bytes += meta.len();
                            files += 1;
                        }
                    }
                }
            }
            (bytes, files)
        }
        let (wal_bytes, wal_segments) = scan(&self.data_dir.join("log"));
        let (snapshot_bytes, snapshots) = scan(&self.data_dir.join("snap"));
        opsplane::DataDirInfo {
            data_dir: self.data_dir.display().to_string(),
            wal_bytes,
            wal_segments,
            snapshot_bytes,
            snapshots,
        }
    }

    /// Takes the state recovered at [`ReplicaPersistence::open`] (consumed
    /// once, by the ensemble boot path).
    pub fn take_recovery(&self) -> RecoveredState {
        self.recovery.lock().take().unwrap_or_default()
    }

    /// A [`DurableLog`] sink that mirrors a [`TxnLog`] into this WAL.
    pub fn durable_sink(&self) -> Box<dyn DurableLog> {
        Box::new(WalSink(Arc::clone(&self.wal)))
    }

    /// Builds the recovered in-memory log (entries above the snapshot
    /// horizon, commit watermark, horizon) with the durable sink attached.
    pub fn recovered_log(&self, recovered: RecoveredState, horizon: Zxid) -> TxnLog {
        let committed = recovered.committed.max(horizon);
        let mut log = TxnLog::recovered(recovered.txns, committed, horizon);
        log.attach_durable(self.durable_sink());
        log
    }

    /// Group-commit barrier: one fsync for everything appended since the
    /// last one.
    pub fn sync(&self) {
        self.wal.lock().sync().expect("WAL fsync failed");
    }

    /// Counts `applied` freshly applied transactions and reports whether the
    /// snapshot cadence has been reached (the caller then snapshots and
    /// compacts).
    pub fn note_applied(&self, applied: u64) -> bool {
        if self.config.snapshot_every == u64::MAX {
            return false;
        }
        let total = self.applied_since_snapshot.fetch_add(applied, Ordering::Relaxed) + applied;
        if total >= self.config.snapshot_every {
            self.applied_since_snapshot.store(0, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Writes a snapshot of the replica's current state, prunes old
    /// snapshots, and purges log segments the snapshot covers. Returns the
    /// snapshot zxid; the caller compacts the in-memory log behind it.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (the previous snapshot remains intact).
    pub fn snapshot_now(&self, replica: &ZkReplica) -> io::Result<Zxid> {
        let (zxid, bytes) = snapshot_replica(replica);
        self.snapshots.save(zxid as u64, &bytes)?;
        self.snapshots.retain(self.config.snapshots_retained)?;
        let snap_zxid = Zxid::from_u64(zxid as u64);
        {
            let mut wal = self.wal.lock();
            // Roll first so the segment holding the covered suffix is closed
            // and becomes purgeable at the *next* snapshot.
            wal.roll()?;
            wal.purge_through(snap_zxid)?;
        }
        self.snapshots_taken.fetch_add(1, Ordering::Relaxed);
        Ok(snap_zxid)
    }

    /// Records a leader-shipped snapshot in the local store (the WAL itself
    /// is reset through the [`DurableLog`] sink when the log adopts it).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn adopt_shipped_snapshot(&self, zxid: u64, bytes: &[u8]) -> io::Result<()> {
        self.snapshots.save(zxid, bytes)?;
        self.snapshots.retain(self.config.snapshots_retained)?;
        self.applied_since_snapshot.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// Durably records an election vote grant *before* it leaves the node:
    /// `<dir>/grant.vote` holds the granted epoch and candidate, written
    /// atomically (tmp + fsync + rename). A member that crashes and rejoins
    /// within the same epoch therefore cannot hand out a second grant —
    /// the single-grant-per-epoch invariant survives restarts.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the caller must *not* send the grant then.
    pub fn record_grant(&self, epoch: u32, candidate: zab::NodeId) -> io::Result<()> {
        let mut bytes = Vec::with_capacity(12);
        bytes.extend_from_slice(&epoch.to_be_bytes());
        bytes.extend_from_slice(&candidate.0.to_be_bytes());
        let crc = persist::crc::crc32c(&bytes);
        bytes.extend_from_slice(&crc.to_be_bytes());
        let tmp = self.data_dir.join("grant.vote.tmp");
        let path = self.data_dir.join("grant.vote");
        std::fs::write(&tmp, &bytes)?;
        std::fs::File::open(&tmp)?.sync_data()?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// The vote grant recovered from `<dir>/grant.vote`, if a valid one is
    /// on disk: `(epoch, candidate)` of the most recently persisted grant.
    /// A missing, short, or checksum-failing file reads as "never granted".
    pub fn recovered_grant(&self) -> Option<(u32, zab::NodeId)> {
        let bytes = std::fs::read(self.data_dir.join("grant.vote")).ok()?;
        if bytes.len() != 12 {
            return None;
        }
        let crc = u32::from_be_bytes(bytes[8..12].try_into().ok()?);
        if persist::crc::crc32c(&bytes[..8]) != crc {
            return None;
        }
        let epoch = u32::from_be_bytes(bytes[..4].try_into().ok()?);
        let node = u32::from_be_bytes(bytes[4..8].try_into().ok()?);
        Some((epoch, zab::NodeId(node)))
    }

    /// Number of snapshots written since open (shipped ones not included).
    pub fn snapshots_taken(&self) -> u64 {
        self.snapshots_taken.load(Ordering::Relaxed)
    }

    /// Number of fsyncs the WAL has issued (group-commit effectiveness).
    pub fn wal_fsyncs(&self) -> u64 {
        self.wal.lock().fsync_count()
    }

    /// Total bytes currently held by WAL segments.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.lock().total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::DEFAULT_SESSION_TIMEOUT_MS;
    use jute::records::{CreateMode, CreateRequest, SetDataRequest};
    use jute::Request;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("zkserver-persist-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn populated_replica(writes: usize) -> (ZkReplica, i64) {
        let replica = ZkReplica::new(1);
        let session = replica.connect(DEFAULT_SESSION_TIMEOUT_MS).session_id;
        replica.handle_request(
            session,
            &Request::Create(CreateRequest {
                path: "/app".into(),
                data: b"root".to_vec(),
                mode: CreateMode::Persistent,
            }),
        );
        for i in 0..writes {
            replica.handle_request(
                session,
                &Request::Create(CreateRequest {
                    path: format!("/app/node-{i:03}"),
                    data: vec![i as u8; 16],
                    mode: CreateMode::Persistent,
                }),
            );
        }
        (replica, session)
    }

    fn tree_fingerprint(tree: &DataTree) -> Vec<(String, Vec<u8>, Stat, u32)> {
        tree.nodes_sorted()
            .into_iter()
            .map(|(path, node)| {
                (path.to_string(), node.data().to_vec(), *node.stat(), node.next_sequence())
            })
            .collect()
    }

    #[test]
    fn snapshot_roundtrips_tree_sessions_and_counters() {
        let (replica, session) = populated_replica(5);
        // An ephemeral node and a sequential counter, both snapshot state.
        replica.handle_request(
            session,
            &Request::Create(CreateRequest {
                path: "/app/worker".into(),
                data: vec![],
                mode: CreateMode::Ephemeral,
            }),
        );
        replica.handle_request(
            session,
            &Request::Create(CreateRequest {
                path: "/app/seq-".into(),
                data: vec![],
                mode: CreateMode::PersistentSequential,
            }),
        );
        let (zxid, bytes) = snapshot_replica(&replica);
        assert_eq!(zxid, replica.last_zxid());

        let (tree, sessions) = decode_snapshot(&bytes).unwrap();
        assert_eq!(tree_fingerprint(&tree), tree_fingerprint(&replica.tree()));
        assert_eq!(sessions, replica.session_records());
        assert_eq!(tree.get("/app").unwrap().next_sequence(), 1, "counter survives");
        assert!(tree.get("/app/worker").unwrap().is_ephemeral());
        assert_eq!(tree.ephemerals_of(session), vec!["/app/worker".to_string()]);
    }

    #[test]
    fn garbage_and_truncated_snapshots_are_rejected_not_panicked() {
        let (replica, _) = populated_replica(3);
        let (_, bytes) = snapshot_replica(&replica);
        for len in 0..bytes.len() {
            assert!(decode_snapshot(&bytes[..len]).is_err(), "prefix of {len} decoded");
        }
        // Bit flips in the structural header region must not panic either
        // (they may decode to a different-but-valid tree only if they miss
        // every validation, which the counts and path checks prevent).
        for i in 0..bytes.len().min(64) {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0xff;
            let _ = decode_snapshot(&mutated);
        }
        assert!(decode_snapshot(&[0x41; 200]).is_err());
        // A snapshot without the root is structurally invalid.
        let headless = encode_snapshot(&DataTree::new(), &[]);
        let (tree, _) = decode_snapshot(&headless).unwrap();
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn snapshot_plus_suffix_replay_equals_the_oracle() {
        // Oracle: a replica that applied txns 1..=N in memory.
        let replica = ZkReplica::new(1);
        let session = replica.connect(DEFAULT_SESSION_TIMEOUT_MS).session_id;
        let mut txns: Vec<(i64, crate::ops::WriteTxn)> = Vec::new();
        let requests: Vec<Request> = (0..20)
            .map(|i| {
                if i % 4 == 3 {
                    Request::SetData(SetDataRequest {
                        path: format!("/n-{:02}", i - 1),
                        data: vec![0xAB; 8],
                        version: -1,
                    })
                } else {
                    Request::Create(CreateRequest {
                        path: format!("/n-{i:02}"),
                        data: vec![i as u8],
                        mode: CreateMode::Persistent,
                    })
                }
            })
            .collect();
        for (i, request) in requests.iter().enumerate() {
            let txn = crate::ops::WriteTxn {
                session_id: session,
                time_ms: 1000 + i as i64,
                request_bytes: ZkReplica::serialize_request(0, request),
            };
            let zxid = i as i64 + 1;
            replica.apply_txn(zxid, &txn);
            txns.push((zxid, txn));
        }

        // Snapshot at zxid 10, then replay the suffix onto a fresh replica.
        let mid = ZkReplica::new(1);
        let other = mid.connect(DEFAULT_SESSION_TIMEOUT_MS).session_id;
        assert_ne!(other, 0);
        for (zxid, txn) in &txns[..10] {
            mid.apply_txn(*zxid, txn);
        }
        let (snap_zxid, snap_bytes) = snapshot_replica(&mid);
        assert_eq!(snap_zxid, 10);

        let recovered = ZkReplica::new(1);
        let (tree, sessions) = decode_snapshot(&snap_bytes).unwrap();
        recovered.install_snapshot(tree, snap_zxid, &sessions);
        for (zxid, txn) in &txns[10..] {
            recovered.apply_txn(*zxid, txn);
        }
        assert_eq!(recovered.last_zxid(), replica.last_zxid());
        assert_eq!(
            tree_fingerprint(&recovered.tree()),
            tree_fingerprint(&replica.tree()),
            "snapshot-at-zxid + suffix replay diverged from the oracle"
        );
    }

    #[test]
    fn chained_suffix_rejects_history_disconnected_from_the_snapshot() {
        let txn = |epoch: u32, counter: u32| Txn {
            zxid: Zxid { epoch, counter },
            payload: vec![counter as u8],
        };
        let horizon = Zxid { epoch: 1, counter: 100 };
        // Contiguous suffix (with an epoch boundary) survives whole.
        let good = vec![txn(1, 101), txn(1, 102), txn(2, 1), txn(2, 2)];
        assert_eq!(chained_suffix(good.clone(), horizon).len(), 4);
        // Entries the snapshot already covers are skipped, the rest chains.
        let overlapping = vec![txn(1, 99), txn(1, 100), txn(1, 101)];
        assert_eq!(chained_suffix(overlapping, horizon).len(), 1);
        // A gap right after the snapshot (newest snapshot rotted, log was
        // truncated against it) rejects the whole suffix.
        let gapped = vec![txn(1, 150), txn(1, 151)];
        assert!(chained_suffix(gapped, horizon).is_empty());
        // A gap in the middle keeps only the chained prefix.
        let mid_gap = vec![txn(1, 101), txn(1, 103)];
        assert_eq!(chained_suffix(mid_gap, horizon).len(), 1);
        // Without a snapshot, history must start at a first proposal.
        assert!(chained_suffix(vec![txn(1, 5)], Zxid::ZERO).is_empty());
        assert_eq!(chained_suffix(vec![txn(1, 1), txn(1, 2)], Zxid::ZERO).len(), 2);
    }

    #[test]
    fn persistence_round_trip_through_disk() {
        let dir = tmp_dir("roundtrip");
        let config = PersistConfig { snapshot_every: u64::MAX, ..PersistConfig::default() };
        let persistence = ReplicaPersistence::open(&dir, config).unwrap();
        assert!(persistence.take_recovery().snapshot.is_none());

        // Drive the WAL through a TxnLog exactly as the ensemble does.
        let mut log = TxnLog::new();
        log.attach_durable(persistence.durable_sink());
        for i in 1..=8u32 {
            log.append(Txn { zxid: Zxid { epoch: 1, counter: i }, payload: vec![i as u8; 10] });
        }
        log.commit_up_to(Zxid { epoch: 1, counter: 6 });
        log.sync();
        drop(log);
        drop(persistence);

        let reopened = ReplicaPersistence::open(&dir, config).unwrap();
        let recovered = reopened.take_recovery();
        assert_eq!(recovered.txns.len(), 8);
        assert_eq!(recovered.committed, Zxid { epoch: 1, counter: 6 });
        let log = reopened.recovered_log(recovered, Zxid::ZERO);
        assert_eq!(log.last_logged(), Zxid { epoch: 1, counter: 8 });
        assert_eq!(log.last_committed(), Zxid { epoch: 1, counter: 6 });
    }

    #[test]
    fn snapshot_now_purges_the_covered_log() {
        let dir = tmp_dir("purge");
        let config =
            PersistConfig { segment_max_bytes: 256, snapshot_every: 4, ..PersistConfig::default() };
        let persistence = ReplicaPersistence::open(&dir, config).unwrap();
        persistence.take_recovery();

        // Mirror the ensemble: the replica applies committed txns at their
        // packed ZAB zxids, so tree zxids and log zxids agree.
        let replica = ZkReplica::new(1);
        let session = replica.connect(DEFAULT_SESSION_TIMEOUT_MS).session_id;
        let mut log = TxnLog::new();
        log.attach_durable(persistence.durable_sink());
        for i in 1..=7u32 {
            let request = Request::Create(CreateRequest {
                path: format!("/n-{i}"),
                data: vec![0u8; 64],
                mode: CreateMode::Persistent,
            });
            let write = crate::ops::WriteTxn {
                session_id: session,
                time_ms: 1000,
                request_bytes: ZkReplica::serialize_request(0, &request),
            };
            let zxid = Zxid { epoch: 1, counter: i };
            log.append(Txn { zxid, payload: vec![0u8; 100] });
            replica.apply_txn(zxid.as_u64() as i64, &write);
        }
        log.commit_up_to(Zxid { epoch: 1, counter: 7 });
        log.sync();
        let bytes_before = persistence.wal_bytes();

        assert!(persistence.note_applied(4), "cadence reached");
        let snap_zxid = persistence.snapshot_now(&replica).unwrap();
        log.compact_through(snap_zxid);
        // Another snapshot purges the segments the first one rolled away.
        let snap_zxid = persistence.snapshot_now(&replica).unwrap();
        log.compact_through(snap_zxid);
        assert!(persistence.wal_bytes() < bytes_before, "covered segments purged");
        assert_eq!(persistence.snapshots_taken(), 2);

        drop(log);
        drop(persistence);
        // Recovery: snapshot + (possibly empty) suffix reproduces the state.
        let reopened = ReplicaPersistence::open(&dir, config).unwrap();
        let recovered = reopened.take_recovery();
        let (snap_zxid_u64, snap_bytes) = recovered.snapshot.as_ref().unwrap();
        assert_eq!(*snap_zxid_u64 as i64, replica.last_zxid());
        let (tree, _) = decode_snapshot(snap_bytes).unwrap();
        assert_eq!(tree_fingerprint(&tree), tree_fingerprint(&replica.tree()));
    }
}
