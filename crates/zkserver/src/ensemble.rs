//! A networked, ZAB-replicated ensemble member.
//!
//! [`ZkEnsembleServer`] composes the pieces the rest of the workspace
//! provides into one replica *process*:
//!
//! * a client-facing [`ZkTcpServer`] speaking the ZooKeeper wire protocol
//!   (reads answered from the local tree, the entry-enclave interceptor on
//!   the byte path);
//! * a replica-to-replica [`TcpNetwork`] carrying [`ZabMessage`]s as
//!   length-prefixed frames;
//! * a [`ZabNode`] driven by a background thread that pumps the peer
//!   network, applies committed transactions to the local [`ZkReplica`] in
//!   zxid order, emits leader heartbeats, and runs leader election when the
//!   leader goes quiet.
//!
//! Writes received by a follower are forwarded to the current leader
//! ([`ZabMessage::ForwardWrite`]), proposed, committed by quorum, applied on
//! every replica, and answered from the replica the client is connected to —
//! ZooKeeper's request-forwarding architecture. `CloseSession` and
//! session-expiry ephemeral cleanup are replicated the same way, so the
//! trees of all replicas stay byte-for-byte identical.
//!
//! Leader election is grant-based: when a follower's leader goes quiet past
//! its (per-id staggered) timeout, it starts a candidacy for the next epoch
//! and broadcasts its log credential ([`ZabMessage::Election`]). Every other
//! member grants **at most one** vote per epoch ([`ZabMessage::VoteGrant`]) —
//! persisted on durable members so a crash-restart cannot double-vote — and
//! only to a candidate whose announced log is at least as advanced as its
//! own. A candidate that collects a quorum of grants (its own included)
//! promotes itself, syncs every peer with [`ZabMessage::NewLeaderSync`] (or
//! a shipped snapshot for peers behind the log's truncation horizon), and
//! resumes heartbeats; a candidate whose vote window closes short of quorum
//! abandons the round and retries at a higher epoch after a fresh timeout.
//! Because a quorum of single-shot grants is required and any two quorums
//! intersect, two leaders can never be crowned for the same epoch — at any
//! ensemble size, under frame loss, duplication, reordering or partition
//! (the fault schedules `crates/chaos` drives). A refused candidate does
//! not counter-announce at the contested epoch; it only remembers the epoch
//! so its *next* candidacy moves past it, which keeps racing rounds
//! converging instead of livelocking.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use opsplane::http::{OpsServer, ProbeState};
use parking_lot::Mutex;

use jute::records::{DeleteRequest, ErrorCode};
use jute::{InputArchive, OutputArchive, Request, Response};
use trace::{Stage, TraceContext};
use zab::tcp::TcpNetwork;
use zab::{Envelope, NodeId, Role, Txn, ZabMessage, ZabNode, ZabTransport, Zxid};

use crate::error::ZkError;
use crate::metrics::ServerMetrics;
use crate::net::{AdminInfo, NetConfig, WriteHandler, ZkTcpServer};
use crate::ops::WriteTxn;
use crate::persist::{self, ReplicaPersistence};
use crate::server::ZkReplica;

/// Payload bound of one [`ZabMessage::SnapshotChunk`] frame; comfortably
/// below the transport's 16 MiB frame cap even with framing overhead.
const SNAPSHOT_CHUNK_BYTES: usize = 512 * 1024;

/// How often a draining leader re-sends [`ZabMessage::TransferLeadership`]
/// while it still leads: long enough for the successor's previous candidacy
/// round to conclude, short enough to retry many times within a drain budget.
const DRAIN_NUDGE_INTERVAL: Duration = Duration::from_millis(250);

/// The replica-to-replica transport seam of an ensemble member.
///
/// [`TcpNetwork`] is the production implementation; the chaos harness wraps
/// one in a fault-injecting decorator (drops, delays, duplicates,
/// partitions) and hands it to [`ZkEnsembleServer::start_custom`] — the
/// protocol code above this seam cannot tell the difference.
pub trait PeerTransport: ZabTransport + Send + Sync {
    /// The node id this endpoint was bound as.
    fn id(&self) -> NodeId;
    /// The address peers connect to.
    fn local_addr(&self) -> SocketAddr;
    /// Ids of the *other* ensemble members (excludes this node).
    fn peer_ids(&self) -> Vec<NodeId>;
    /// Installs the peer address book (identical on every member).
    fn set_peers(&self, peers: HashMap<NodeId, SocketAddr>);
    /// Blocks up to `timeout` for one incoming envelope.
    fn receive_timeout(&self, timeout: Duration) -> Option<Envelope>;
    /// Stops the endpoint; subsequent sends are dropped.
    fn shutdown(&self);
}

impl PeerTransport for TcpNetwork {
    fn id(&self) -> NodeId {
        TcpNetwork::id(self)
    }

    fn local_addr(&self) -> SocketAddr {
        TcpNetwork::local_addr(self)
    }

    fn peer_ids(&self) -> Vec<NodeId> {
        TcpNetwork::peer_ids(self)
    }

    fn set_peers(&self, peers: HashMap<NodeId, SocketAddr>) {
        TcpNetwork::set_peers(self, peers);
    }

    fn receive_timeout(&self, timeout: Duration) -> Option<Envelope> {
        TcpNetwork::receive_timeout(self, timeout)
    }

    fn shutdown(&self) {
        TcpNetwork::shutdown(self);
    }
}

/// Timing and transport configuration of an ensemble member.
#[derive(Debug, Clone)]
pub struct EnsembleConfig {
    /// Interval between leader heartbeats.
    pub heartbeat_interval: Duration,
    /// Silence from the leader after which a follower starts an election.
    pub election_timeout: Duration,
    /// How long an election collects candidacy announcements before the
    /// winner is determined.
    pub election_vote_window: Duration,
    /// How long a client write may wait for its commit before the server
    /// reports a connection-level failure.
    pub write_timeout: Duration,
    /// Poll granularity of the driver thread (bounds timer slop).
    pub poll_interval: Duration,
    /// Configuration of the client-facing TCP server.
    pub net: NetConfig,
    /// Address of the operational HTTP endpoint (`/metrics`, `/health/live`,
    /// `/health/ready`); `None` runs the member without one. Port 0 binds an
    /// ephemeral port — read it back with
    /// [`ZkEnsembleServer::ops_addr`].
    pub ops_addr: Option<SocketAddr>,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        EnsembleConfig {
            heartbeat_interval: Duration::from_millis(40),
            election_timeout: Duration::from_millis(300),
            election_vote_window: Duration::from_millis(150),
            write_timeout: Duration::from_secs(5),
            poll_interval: Duration::from_millis(10),
            net: NetConfig::default(),
            ops_addr: None,
        }
    }
}

/// The ZAB payload of one replicated write: which replica the issuing client
/// is connected to (so that replica can answer it once the commit applies),
/// an origin-local request id, the serialized [`WriteTxn`], and — when the
/// request carried a wire trace envelope — the trace context, so every
/// replica can attribute its apply and fsync work to the end-to-end trace.
fn encode_payload(
    origin: NodeId,
    request_id: u64,
    txn: &WriteTxn,
    ctx: Option<TraceContext>,
) -> Vec<u8> {
    let txn_bytes = txn.to_bytes();
    let mut out = OutputArchive::with_capacity(36 + txn_bytes.len());
    out.write_i32(origin.0 as i32);
    out.write_i64(request_id as i64);
    out.write_buffer(&txn_bytes);
    let ctx = ctx.unwrap_or(TraceContext { trace_id: 0, span_id: 0, flags: 0 });
    out.write_i64(ctx.trace_id as i64);
    out.write_i64(ctx.span_id as i64);
    out.write_i32(i32::from(ctx.flags));
    out.into_bytes()
}

fn decode_payload(bytes: &[u8]) -> Result<(NodeId, u64, WriteTxn, Option<TraceContext>), ZkError> {
    let mut input = InputArchive::new(bytes);
    let origin = NodeId(input.read_i32("payload origin")? as u32);
    let request_id = input.read_i64("payload request id")? as u64;
    let txn_bytes = input.read_buffer("payload txn")?;
    // The trace fields were appended in a later format revision; a payload
    // recovered from an older WAL simply ends after the txn.
    let ctx = if input.is_exhausted() {
        None
    } else {
        let trace_id = input.read_i64("payload trace id")? as u64;
        let span_id = input.read_i64("payload span id")? as u64;
        let flags = input.read_i32("payload trace flags")? as u8;
        input.expect_exhausted()?;
        (trace_id != 0).then_some(TraceContext { trace_id, span_id, flags })
    };
    let txn = WriteTxn::from_bytes(&txn_bytes)?;
    Ok((origin, request_id, txn, ctx))
}

/// The trace context a replicated payload carries, if any — what a leader
/// receiving a forwarded write (or a follower receiving a proposal) makes
/// ambient so the layers below attribute their spans.
fn payload_trace_ctx(bytes: &[u8]) -> Option<TraceContext> {
    decode_payload(bytes).ok().and_then(|(_, _, _, ctx)| ctx)
}

/// This node's own candidacy in progress: the epoch it is contesting and
/// the grants collected so far (its own self-grant included), each with the
/// granter's announced log tip so the new leader knows what to ship.
struct ElectionState {
    epoch: u32,
    deadline: Instant,
    votes: HashMap<NodeId, Zxid>,
}

/// A leader-shipped snapshot being reassembled from chunks.
struct SnapshotAssembly {
    from: NodeId,
    epoch: u32,
    zxid: Zxid,
    next_seq: u32,
    bytes: Vec<u8>,
}

/// Outgoing frames buffered during one write-queue drain so the WAL can be
/// fsynced *once* before any acknowledgement (or commit) leaves the node —
/// the group-commit ordering a durable log requires.
#[derive(Default)]
struct SendBuffer {
    queued: Mutex<Vec<(NodeId, Option<NodeId>, ZabMessage)>>,
}

impl SendBuffer {
    fn flush(&self, net: &dyn ZabTransport) {
        for (from, to, message) in self.queued.lock().drain(..) {
            match to {
                Some(to) => net.send(from, to, message),
                None => net.broadcast(from, &message),
            }
        }
    }
}

impl ZabTransport for SendBuffer {
    fn send(&self, from: NodeId, to: NodeId, message: ZabMessage) {
        self.queued.lock().push((from, Some(to), message));
    }

    fn broadcast(&self, from: NodeId, message: &ZabMessage) {
        self.queued.lock().push((from, None, message.clone()));
    }

    fn receive(&self, _node: NodeId) -> Option<Envelope> {
        None
    }
}

/// Counters of the resynchronization machinery, exposed for tests and the
/// recovery benchmark: how a leader brought lagging peers up to date, and
/// what this member itself recovered or installed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Snapshots this member shipped to lagging peers (leader side).
    pub snapshots_shipped: u64,
    /// Transactions this member shipped in sync frames (leader side).
    pub sync_txns_shipped: u64,
    /// Leader-shipped snapshots this member installed (follower side).
    pub snapshots_installed: u64,
    /// Transactions replayed from the local durable log at boot.
    pub recovered_txns: u64,
    /// zxid of the on-disk snapshot recovery started from (0 = none).
    pub recovered_snapshot_zxid: u64,
}

/// Protocol state owned by the driver thread (and briefly by writer threads
/// submitting proposals). Lock order: this mutex before the replica's tree
/// lock, never the reverse.
struct ProtocolState {
    node: ZabNode,
    last_leader_contact: Instant,
    last_heartbeat_sent: Instant,
    election: Option<ElectionState>,
    /// Highest election epoch this node has seen contested (own candidacies
    /// and refused ones alike); fresh candidacies always move past it.
    last_vote_epoch: u32,
    /// The single vote this node granted, per epoch: granting again in the
    /// same epoch is only allowed to the same candidate (duplicate frames).
    /// Persisted on durable members so a restart cannot double-vote.
    last_grant: Option<(u32, NodeId)>,
    /// A leader-shipped snapshot in transit (chunks arriving in order).
    pending_snapshot: Option<SnapshotAssembly>,
}

/// Shared core of one ensemble member.
pub struct EnsembleCore {
    id: NodeId,
    cluster_size: usize,
    replica: Arc<ZkReplica>,
    transport: Arc<dyn PeerTransport>,
    state: Mutex<ProtocolState>,
    waiters: Mutex<HashMap<u64, Sender<(Response, i64)>>>,
    next_request_id: AtomicU64,
    running: AtomicBool,
    config: EnsembleConfig,
    /// Durable log + snapshot store; `None` runs the member in-memory only
    /// (the pre-persistence behaviour, still used by most unit tests).
    persistence: Option<ReplicaPersistence>,
    metrics: Arc<ServerMetrics>,
    probes: Arc<ProbeState>,
    /// Set for the remainder of the member's life once a graceful drain
    /// begins: new writes are refused (frozen log tip = clean handoff) and
    /// the readiness probe reports unready.
    draining: AtomicBool,
    snapshots_shipped: AtomicU64,
    sync_txns_shipped: AtomicU64,
    snapshots_installed: AtomicU64,
    recovered_txns: AtomicU64,
    recovered_snapshot_zxid: AtomicU64,
}

impl EnsembleCore {
    /// Routes one incoming peer message. Frames the node sends in response
    /// go through `net` — the driver passes a [`SendBuffer`] so a whole
    /// drain's worth of appends hits the disk with one fsync *before* any
    /// acknowledgement leaves this member.
    fn dispatch(&self, envelope: Envelope, net: &dyn ZabTransport) {
        let mut state = self.state.lock();
        let epoch_before = state.node.epoch();
        let from = envelope.from;
        match envelope.message {
            ZabMessage::Heartbeat { epoch } => self.on_heartbeat(&mut state, epoch, from, net),
            ZabMessage::Election { epoch, last_logged, from: candidate } => {
                self.on_election(&mut state, epoch, last_logged, candidate, net);
            }
            ZabMessage::VoteGrant { epoch, from: voter, last_logged } => {
                self.on_vote_grant(&mut state, epoch, voter, last_logged, net);
            }
            ZabMessage::SnapshotChunk { epoch, snapshot_zxid, seq, last, bytes } => {
                self.on_snapshot_chunk(&mut state, from, epoch, snapshot_zxid, seq, last, bytes);
            }
            ZabMessage::SyncRequest { from: requester, last_logged } => {
                // Handled here rather than in the node so a request from
                // below the log's truncation horizon can be answered with a
                // shipped snapshot (the node cannot produce one).
                if state.node.role() == Role::Leader {
                    self.ship_state(&state, requester, last_logged, net);
                }
            }
            ZabMessage::NewLeaderSync { epoch, txns } => {
                state.node.handle(
                    Envelope { from, message: ZabMessage::NewLeaderSync { epoch, txns } },
                    net,
                );
                if state.node.leader() == Some(from) {
                    state.election = None;
                    state.last_leader_contact = Instant::now();
                }
                self.apply_committed(&mut state);
            }
            ZabMessage::TransferLeadership { epoch } => {
                // A draining leader shipped this member its committed suffix
                // and asks it to take over without waiting out the failure
                // detector. The drain loop re-sends this until leadership
                // moves, so a lost frame only delays the handoff; a re-send
                // that lands mid-candidacy is ignored rather than allowed to
                // restart the round and void the votes already collected.
                if state.node.role() != Role::Leader
                    && !self.draining.load(Ordering::SeqCst)
                    && state.election.is_none()
                {
                    let next = state.last_vote_epoch.max(state.node.epoch()).max(epoch) + 1;
                    self.start_candidacy(&mut state, next);
                }
            }
            message => {
                if state.node.leader() == Some(from) {
                    state.last_leader_contact = Instant::now();
                }
                if matches!(&message, ZabMessage::ForwardWrite { .. })
                    && state.node.role() == Role::Leader
                {
                    if self.draining.load(Ordering::SeqCst) {
                        // A draining leader's log tip is frozen; the frame is
                        // dropped, and the origin's waiter fails over to the
                        // successor on the epoch bump it is about to see.
                        return;
                    }
                    self.metrics.zab_proposals.inc();
                }
                // Forwarded writes and proposals carry the originating trace
                // context in their payload; making it ambient (sticky until
                // the driver's post-drain fsync) lets the propose ring span
                // and the group-commit fsync attribute themselves to it.
                let payload_ctx = match &message {
                    ZabMessage::ForwardWrite { payload, .. } => payload_trace_ctx(payload),
                    ZabMessage::Proposal { txn, .. } => payload_trace_ctx(&txn.payload),
                    _ => None,
                };
                if payload_ctx.is_some() {
                    trace::set_current(payload_ctx);
                }
                state.node.handle(Envelope { from, message }, net);
                self.apply_committed(&mut state);
            }
        }
        if state.node.epoch() > epoch_before {
            // Leadership changed under this replica's feet: writes routed to
            // the old leader may be gone for good. Fail the survivors (the
            // ones the sync just committed were already answered above) so
            // clients retry against the new regime immediately instead of
            // sitting out the full write timeout.
            self.fail_all_waiters();
        }
    }

    /// Brings `peer` (whose log tip is `since`) up to date. When the peer is
    /// still within this leader's log, that is the classic committed-suffix
    /// sync; when it has fallen behind the truncation horizon, the log can
    /// no longer replay the gap and the serialized tree itself is shipped in
    /// chunks, followed by the suffix after the snapshot. Either way the
    /// uncommitted in-flight tail is retransmitted as ordinary proposals so
    /// a gapped follower can still ack writes short of their quorum.
    fn ship_state(&self, state: &ProtocolState, peer: NodeId, since: Zxid, net: &dyn ZabTransport) {
        let epoch = state.node.epoch();
        let log = state.node.log();
        let sync_from = if since < log.horizon() {
            let (snap_zxid_raw, bytes) = persist::snapshot_replica(&self.replica);
            let snapshot_zxid = Zxid::from_u64(snap_zxid_raw as u64);
            let chunks: Vec<&[u8]> = if bytes.is_empty() {
                vec![&[][..]]
            } else {
                bytes.chunks(SNAPSHOT_CHUNK_BYTES).collect()
            };
            let chunk_count = chunks.len();
            for (seq, chunk) in chunks.into_iter().enumerate() {
                net.send(
                    self.id,
                    peer,
                    ZabMessage::SnapshotChunk {
                        epoch,
                        snapshot_zxid,
                        seq: seq as u32,
                        last: seq + 1 == chunk_count,
                        bytes: chunk.to_vec(),
                    },
                );
            }
            self.snapshots_shipped.fetch_add(1, Ordering::Relaxed);
            self.metrics.zab_snapshots_shipped.inc();
            snapshot_zxid
        } else {
            since
        };
        let txns: Vec<Txn> = log.committed().filter(|t| t.zxid > sync_from).cloned().collect();
        self.sync_txns_shipped.fetch_add(txns.len() as u64, Ordering::Relaxed);
        self.metrics.zab_sync_txns_shipped.add(txns.len() as u64);
        zab::send_sync(net, self.id, peer, epoch, txns);
        let mut prev = log.last_committed();
        for txn in log.entries_after(prev) {
            let next = txn.zxid;
            net.send(self.id, peer, ZabMessage::Proposal { txn, prev });
            prev = next;
        }
    }

    /// Reassembles a leader-shipped snapshot and installs it: the replica's
    /// tree, zxid watermark and session table are replaced wholesale, the
    /// protocol log resets to the snapshot zxid (which also resets the
    /// durable log), and the local snapshot store records the shipment so a
    /// crash right after still recovers to this state.
    #[allow(clippy::too_many_arguments)]
    fn on_snapshot_chunk(
        &self,
        state: &mut ProtocolState,
        from: NodeId,
        epoch: u32,
        snapshot_zxid: Zxid,
        seq: u32,
        last: bool,
        bytes: Vec<u8>,
    ) {
        if epoch < state.node.epoch() {
            return;
        }
        if seq == 0 {
            state.pending_snapshot = Some(SnapshotAssembly {
                from,
                epoch,
                zxid: snapshot_zxid,
                next_seq: 0,
                bytes: Vec::new(),
            });
        }
        let Some(assembly) = &mut state.pending_snapshot else { return };
        if assembly.from != from
            || assembly.epoch != epoch
            || assembly.zxid != snapshot_zxid
            || assembly.next_seq != seq
        {
            // Interleaved or reordered shipment: drop it, the leader will
            // retry on the next sync request.
            state.pending_snapshot = None;
            return;
        }
        assembly.bytes.extend_from_slice(&bytes);
        assembly.next_seq = seq + 1;
        if !last {
            return;
        }
        let assembly = state.pending_snapshot.take().expect("assembly checked above");
        match persist::decode_snapshot(&assembly.bytes) {
            Ok((tree, sessions)) => {
                if let Some(persistence) = &self.persistence {
                    let _ =
                        persistence.adopt_shipped_snapshot(assembly.zxid.as_u64(), &assembly.bytes);
                }
                self.replica.install_snapshot(tree, assembly.zxid.as_u64() as i64, &sessions);
                state.node.install_snapshot(epoch, from, assembly.zxid);
                state.election = None;
                state.last_leader_contact = Instant::now();
                self.snapshots_installed.fetch_add(1, Ordering::Relaxed);
                self.metrics.zab_snapshots_installed.inc();
            }
            Err(_) => {
                // A corrupt shipment is dropped; this member keeps asking
                // for a resync and the leader ships a fresh snapshot.
            }
        }
    }

    /// Snapshots the replica and truncates the logs behind it once the
    /// configured number of transactions has been applied since the last
    /// snapshot — this is what bounds leader memory and keeps crash-rejoin
    /// cheap.
    fn maybe_snapshot(&self, state: &mut ProtocolState, applied: u64) {
        let Some(persistence) = &self.persistence else { return };
        if !persistence.note_applied(applied) {
            return;
        }
        if let Ok(snap_zxid) = persistence.snapshot_now(&self.replica) {
            state.node.compact_log_through(snap_zxid);
        }
    }

    fn on_heartbeat(
        &self,
        state: &mut ProtocolState,
        epoch: u32,
        from: NodeId,
        net: &dyn ZabTransport,
    ) {
        let node_epoch = state.node.epoch();
        if epoch < node_epoch {
            return;
        }
        let adopt = match state.node.role() {
            // A leader steps down for a higher epoch, and resolves the
            // (transient, same-epoch) two-leader race deterministically in
            // favour of the higher id.
            Role::Leader => epoch > node_epoch || (epoch == node_epoch && from > self.id),
            // A follower adopts a newer epoch or a changed leader; an
            // electing node rejoins a leader that proves alive — unless its
            // own candidacy targets a higher epoch than the heartbeat
            // carries. A candidate that adopted here would let the outgoing
            // leader's routine heartbeats kill the very candidacy it asked
            // for (the leadership-transfer race); if the candidacy fails its
            // vote window instead, the next heartbeat rejoins as before.
            Role::Follower | Role::Electing => {
                (epoch > node_epoch || state.node.leader() != Some(from))
                    && state.election.as_ref().is_none_or(|election| election.epoch <= epoch)
            }
        };
        if adopt {
            state.node.become_follower(epoch, from);
            state.election = None;
            // Adoption means this member just (re)joined a running regime —
            // typically a restart from disk. Announce the local log tip so
            // the leader ships the missed suffix (or a snapshot when the
            // tip fell behind its truncation horizon) without waiting for
            // the next write to expose the gap.
            net.send(
                self.id,
                from,
                ZabMessage::SyncRequest {
                    from: self.id,
                    last_logged: state.node.log().last_logged(),
                },
            );
        }
        if state.node.leader() == Some(from) {
            state.last_leader_contact = Instant::now();
        }
    }

    /// Handles another member's candidacy announcement: grant the epoch's
    /// single vote if it is still available and the candidate's log is at
    /// least as advanced as this node's, refuse silently otherwise.
    fn on_election(
        &self,
        state: &mut ProtocolState,
        epoch: u32,
        last_logged: Zxid,
        from: NodeId,
        net: &dyn ZabTransport,
    ) {
        if epoch <= state.node.epoch() {
            // Stale candidacy: if this node leads a newer (or the same)
            // epoch, re-assert so the candidate rejoins — with the committed
            // entries past its announced tip, or a shipped snapshot when the
            // tip is below the truncation horizon.
            if state.node.role() == Role::Leader {
                self.ship_state(state, from, last_logged, net);
            }
            return;
        }
        state.last_vote_epoch = state.last_vote_epoch.max(epoch);
        let own_tip = state.node.log().last_logged();
        let vote_free =
            state.last_grant.is_none_or(|(e, c)| epoch > e || (epoch == e && c == from));
        if !vote_free || last_logged < own_tip {
            // Refused — already granted this epoch to someone else, or the
            // candidate's log is behind. Crucially this node does *not*
            // counter-announce at the contested epoch (that livelocks two
            // refusing candidates); bumping `last_vote_epoch` above already
            // points its next timeout-driven candidacy past this round.
            return;
        }
        // Make the vote durable *before* it can leave this node, so a
        // crash-restart cannot grant the same epoch to a second candidate.
        self.record_grant(epoch, from);
        state.last_grant = Some((epoch, from));
        // Granting abandons any own candidacy at this or a lower epoch and
        // buys the candidate a fresh timeout to win and announce itself.
        if state.election.as_ref().is_some_and(|e| e.epoch <= epoch) {
            state.election = None;
        }
        state.last_leader_contact = Instant::now();
        net.send(
            self.id,
            from,
            ZabMessage::VoteGrant { epoch, from: self.id, last_logged: own_tip },
        );
    }

    /// Counts a grant for this node's own candidacy; on quorum the node
    /// promotes itself and synchronizes every peer.
    fn on_vote_grant(
        &self,
        state: &mut ProtocolState,
        epoch: u32,
        voter: NodeId,
        voter_tip: Zxid,
        net: &dyn ZabTransport,
    ) {
        {
            let Some(election) = &mut state.election else { return };
            if election.epoch != epoch {
                return;
            }
            election.votes.insert(voter, voter_tip);
            if election.votes.len() < self.cluster_size / 2 + 1 {
                return;
            }
        }
        let election = state.election.take().expect("candidacy checked above");
        state.node.become_leader(election.epoch);
        self.metrics.zab_elections_won.inc();
        for peer in self.transport.peer_ids() {
            // Ship only what each granter is missing, judged by the log tip
            // it announced with its grant. A granter whose tip contained
            // uncommitted entries truncates them on adoption and re-fetches
            // the difference through a `SyncRequest`.
            match election.votes.get(&peer) {
                Some(&since) => self.ship_state(state, peer, since, net),
                None => {
                    // A peer that granted nobody (or granted a rival) has an
                    // unknown tip — guessing zero would ship the full
                    // history (or, after compaction, a whole destructive
                    // snapshot) to a member that may be fully current. Send
                    // the bare leadership announcement instead; adopting it
                    // makes the peer reply with its real tip, and the
                    // follow-up sync ships exactly what it misses.
                    zab::send_sync(net, self.id, peer, election.epoch, Vec::new());
                }
            }
        }
        state.last_heartbeat_sent = Instant::now();
        net.broadcast(self.id, &ZabMessage::Heartbeat { epoch: election.epoch });
        // Promotion committed everything logged on this node.
        self.apply_committed(state);
    }

    /// Starts this node's candidacy for `epoch`: self-grant (made durable
    /// first), open the vote window, announce the log credential to all.
    fn start_candidacy(&self, state: &mut ProtocolState, epoch: u32) {
        state.node.start_election();
        self.metrics.zab_elections_started.inc();
        state.last_vote_epoch = state.last_vote_epoch.max(epoch);
        let credential = state.node.log().last_logged();
        self.record_grant(epoch, self.id);
        state.last_grant = Some((epoch, self.id));
        let mut votes = HashMap::new();
        votes.insert(self.id, credential);
        state.election = Some(ElectionState {
            epoch,
            deadline: Instant::now() + self.config.election_vote_window,
            votes,
        });
        self.transport.broadcast(
            self.id,
            &ZabMessage::Election { epoch, last_logged: credential, from: self.id },
        );
    }

    /// Persists a granted vote on durable members (a no-op in-memory). Runs
    /// before the grant/candidacy leaves the node, so a restart recovers it.
    fn record_grant(&self, epoch: u32, candidate: NodeId) {
        if let Some(persistence) = &self.persistence {
            let _ = persistence.record_grant(epoch, candidate);
        }
    }

    /// This member's effective leader-silence timeout: the configured base
    /// plus a deterministic per-id stagger, so members time out at distinct
    /// instants and one candidate usually collects its grants before a
    /// rival even starts (concurrent candidacies still converge, just
    /// slower — each refused round bumps the epoch).
    fn election_timeout(&self) -> Duration {
        self.config.election_timeout + (self.config.election_timeout / 8) * self.id.0.min(8)
    }

    /// Emits heartbeats (leader) or checks the failure detector and election
    /// deadlines (everyone else).
    fn run_timers(&self) {
        let mut state = self.state.lock();
        let epoch_before = state.node.epoch();
        let now = Instant::now();
        match state.node.role() {
            Role::Leader => {
                if now.duration_since(state.last_heartbeat_sent) >= self.config.heartbeat_interval {
                    state.last_heartbeat_sent = now;
                    let epoch = state.node.epoch();
                    self.transport.broadcast(self.id, &ZabMessage::Heartbeat { epoch });
                }
            }
            Role::Follower | Role::Electing => {
                if let Some(election) = &state.election {
                    if now >= election.deadline {
                        // The vote window closed short of a quorum of grants
                        // (rival candidacy, partition, or dead peers):
                        // abandon the round and let the timeout drive a
                        // fresh candidacy at a higher epoch.
                        state.election = None;
                        state.last_leader_contact = now;
                    }
                } else if self.cluster_size > 1
                    && now.duration_since(state.last_leader_contact) >= self.election_timeout()
                {
                    let epoch = state.last_vote_epoch.max(state.node.epoch()) + 1;
                    self.start_candidacy(&mut state, epoch);
                }
            }
        }
        if state.node.epoch() > epoch_before {
            // This node just won an election: writes forwarded to the dead
            // leader are lost; fail them so their clients retry here.
            self.fail_all_waiters();
        }
        self.refresh_health(&state, now);
    }

    /// Refreshes the epoch/role gauges and the readiness probe from the
    /// protocol state. Runs on every driver tick, so a probe or scrape is
    /// never more than one poll interval stale.
    fn refresh_health(&self, state: &ProtocolState, now: Instant) {
        self.metrics.zab_epoch.set(i64::from(state.node.epoch()));
        let role = state.node.role();
        self.metrics.zab_role.set(match role {
            Role::Electing => 0,
            Role::Follower => 1,
            Role::Leader => 2,
        });
        if self.draining.load(Ordering::SeqCst) {
            self.probes.set_ready(false, "draining");
            return;
        }
        match role {
            Role::Leader => self.probes.set_ready(true, "leading"),
            Role::Follower => {
                if self.cluster_size == 1
                    || now.duration_since(state.last_leader_contact) < self.election_timeout()
                {
                    self.probes.set_ready(true, "following");
                } else {
                    self.probes.set_ready(false, "no recent leader contact");
                }
            }
            Role::Electing => self.probes.set_ready(false, "electing"),
        }
    }

    /// Applies newly committed transactions to the local replica in zxid
    /// order and answers the waiting client requests that originated here.
    /// Once enough transactions accumulate since the last snapshot, the
    /// replica state is snapshotted and the logs truncate behind it.
    fn apply_committed(&self, state: &mut ProtocolState) {
        let committed = state.node.take_committed();
        let applied = committed.len() as u64;
        for txn in committed {
            let zxid = txn.zxid.as_u64() as i64;
            match decode_payload(&txn.payload) {
                Ok((origin, request_id, write, ctx)) => {
                    let apply_start = trace::now_ns();
                    let response = self.replica.apply_txn(zxid, &write);
                    self.metrics
                        .stages
                        .observe_ns(Stage::Apply, trace::now_ns().saturating_sub(apply_start));
                    if let Some(ctx) = &ctx {
                        trace::record_leaf(Stage::Apply, ctx, apply_start, zxid as u64);
                    }
                    if origin == self.id {
                        self.complete(request_id, response, zxid);
                    }
                }
                Err(_) => {
                    // A malformed payload would mean a bug in a peer's
                    // encoder; skipping it keeps the apply loop alive (and
                    // every replica skips the same txn, so no divergence).
                }
            }
        }
        if applied > 0 {
            self.metrics.zab_commits.add(applied);
            self.maybe_snapshot(state, applied);
        }
    }

    /// Group-commit barrier: one fsync for everything the durable log
    /// buffered since the last one. A no-op for in-memory members.
    fn sync_persistence(&self) {
        if let Some(persistence) = &self.persistence {
            let fsync_start = trace::now_ns();
            persistence.sync();
            self.metrics
                .stages
                .observe_ns(Stage::WalFsync, trace::now_ns().saturating_sub(fsync_start));
        }
    }

    /// Current resynchronization/recovery counters.
    fn sync_stats(&self) -> SyncStats {
        SyncStats {
            snapshots_shipped: self.snapshots_shipped.load(Ordering::Relaxed),
            sync_txns_shipped: self.sync_txns_shipped.load(Ordering::Relaxed),
            snapshots_installed: self.snapshots_installed.load(Ordering::Relaxed),
            recovered_txns: self.recovered_txns.load(Ordering::Relaxed),
            recovered_snapshot_zxid: self.recovered_snapshot_zxid.load(Ordering::Relaxed),
        }
    }

    fn complete(&self, request_id: u64, response: Response, zxid: i64) {
        if let Some(waiter) = self.waiters.lock().remove(&request_id) {
            let _ = waiter.send((response, zxid));
        }
    }

    /// Fails every in-flight write (used on shutdown so client threads do
    /// not sit out the full write timeout).
    fn fail_all_waiters(&self) {
        for (_, waiter) in self.waiters.lock().drain() {
            let _ =
                waiter.send((Response::Error(ErrorCode::ConnectionLoss), self.replica.last_zxid()));
        }
    }

    /// Orders one write through agreement and waits for its local commit.
    fn submit_replicated(&self, session_id: i64, request: &Request) -> (Response, i64) {
        let request_bytes = ZkReplica::serialize_request(0, request);
        let write = WriteTxn { session_id, time_ms: self.replica.now_ms(), request_bytes };
        let request_id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
        // The ambient context was set by the writer thread from the wire
        // envelope; riding it inside the payload carries it to every replica.
        let ctx = trace::current();
        let quorum_start = trace::now_ns();
        let payload = encode_payload(self.id, request_id, &write, ctx);

        let (waiter_tx, waiter_rx) = mpsc::channel();
        self.waiters.lock().insert(request_id, waiter_tx);

        // Route under the protocol lock, but perform the (possibly dialling,
        // hence blocking) forward send *outside* it so a dead leader's
        // connect timeout never stalls the driver thread behind this lock.
        let forward = {
            let mut state = self.state.lock();
            if self.draining.load(Ordering::SeqCst) && state.node.role() == Role::Leader {
                // A draining leader's log tip must stay frozen so the chosen
                // successor (which was shipped that exact tip) wins its
                // election on the first try. Refuse the write; the client
                // reconnects and retries against the new leader.
                self.waiters.lock().remove(&request_id);
                return (Response::Error(ErrorCode::ConnectionLoss), self.replica.last_zxid());
            }
            match state.node.role() {
                Role::Leader => {
                    // Buffer the proposal frames, make the leader's own log
                    // entry durable, then let the frames out — the leader's
                    // implicit self-ack must never precede its fsync.
                    self.metrics.zab_proposals.inc();
                    let buffer = SendBuffer::default();
                    let propose_start = trace::now_ns();
                    state.node.propose(payload, &buffer);
                    self.metrics
                        .stages
                        .observe_ns(Stage::Propose, trace::now_ns().saturating_sub(propose_start));
                    self.sync_persistence();
                    buffer.flush(self.transport.as_ref());
                    // A single-replica ensemble commits immediately.
                    self.apply_committed(&mut state);
                    None
                }
                Role::Follower | Role::Electing => match state.node.leader() {
                    Some(leader) if leader != self.id => Some((leader, payload)),
                    _ => {
                        self.waiters.lock().remove(&request_id);
                        return (
                            Response::Error(ZkError::NoQuorum.code()),
                            self.replica.last_zxid(),
                        );
                    }
                },
            }
        };
        if let Some((leader, payload)) = forward {
            self.metrics.zab_forwards.inc();
            self.transport.send(
                self.id,
                leader,
                ZabMessage::ForwardWrite { origin: self.id, request_id, payload },
            );
        }
        match waiter_rx.recv_timeout(self.config.write_timeout) {
            Ok((response, zxid)) => {
                // From the origin's seat this is the whole agreement round:
                // propose (or forward), quorum ack, local commit and apply.
                self.metrics
                    .stages
                    .observe_ns(Stage::QuorumAck, trace::now_ns().saturating_sub(quorum_start));
                trace::record_current(Stage::QuorumAck, quorum_start, zxid as u64);
                (response, zxid)
            }
            Err(_) => {
                // The commit never reached this replica (leader crash or
                // quorum loss mid-flight): surface a connection-level error
                // so the client reconnects and retries.
                self.waiters.lock().remove(&request_id);
                (Response::Error(ErrorCode::ConnectionLoss), self.replica.last_zxid())
            }
        }
    }

    /// Deletes a session's ephemerals through agreement, then removes the
    /// session locally. On quorum loss the session survives and the cleanup
    /// is retried by the next expiry sweep.
    fn replicated_close_session(&self, replica: &Arc<ZkReplica>, session_id: i64) -> Response {
        let ephemerals = replica.tree().ephemerals_of(session_id);
        for path in ephemerals {
            let delete = Request::Delete(DeleteRequest { path, version: -1 });
            let (response, _) = self.submit_replicated(session_id, &delete);
            match response.error_code() {
                // The znode may already be gone (deleted explicitly between
                // the snapshot above and the commit) — that is fine.
                ErrorCode::Ok | ErrorCode::NoNode => {}
                code => return Response::Error(code),
            }
        }
        replica.remove_session_local(session_id);
        Response::CloseSession
    }

    /// Gracefully takes this member out of service: readiness flips to
    /// unready, new writes are refused, and — if this member leads — its
    /// committed state is shipped to the lowest-id peer, which is then asked
    /// (via [`ZabMessage::TransferLeadership`]) to start an immediate
    /// candidacy instead of waiting out the failure detector. The call
    /// returns once leadership has left this member (or `timeout` expires)
    /// and the durable log is flushed; reads keep being served until the
    /// process actually shuts down.
    fn drain(&self, timeout: Duration) -> DrainReport {
        let started = Instant::now();
        self.draining.store(true, Ordering::SeqCst);
        self.metrics.draining.set(1);
        self.probes.set_ready(false, "draining");
        let (was_leader, successor) = {
            let state = self.state.lock();
            if state.node.role() == Role::Leader && self.cluster_size > 1 {
                // Lowest-id live peer; with no liveness oracle beyond the
                // protocol itself, "lowest id" is the deterministic pick and
                // a dead pick degrades to the ordinary timeout election.
                (true, self.transport.peer_ids().into_iter().min())
            } else {
                (state.node.role() == Role::Leader, None)
            }
        };
        if let Some(peer) = successor {
            {
                let state = self.state.lock();
                // Ship everything past the truncation horizon: idempotent on
                // the receiver, and guarantees its log credential reaches
                // this (now frozen) tip so its candidacy wins on both counts.
                self.ship_state(&state, peer, state.node.log().horizon(), self.transport.as_ref());
            }
            // Nudge the successor until leadership actually moves: the first
            // transfer frame can be lost, or its candidacy can lose a race
            // and dissolve — the successor ignores re-sends while a round is
            // still in flight, so nudging is cheap and cannot void votes.
            let mut last_nudge: Option<Instant> = None;
            while self.state.lock().node.role() == Role::Leader
                && started.elapsed() < timeout
                && self.running.load(Ordering::SeqCst)
            {
                if last_nudge.is_none_or(|at| at.elapsed() >= DRAIN_NUDGE_INTERVAL) {
                    last_nudge = Some(Instant::now());
                    let epoch = self.state.lock().node.epoch();
                    self.transport.send(self.id, peer, ZabMessage::TransferLeadership { epoch });
                }
                std::thread::sleep(self.config.poll_interval);
            }
        }
        // Flush the commit watermark and any buffered appends so a restart
        // of this member recovers to exactly the state it drained at.
        self.sync_persistence();
        let still_leader = self.state.lock().node.role() == Role::Leader;
        DrainReport {
            was_leader,
            successor,
            handed_off: was_leader && !still_leader,
            elapsed: started.elapsed(),
        }
    }
}

/// Outcome of a graceful drain ([`ZkEnsembleServer::drain`]).
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    /// Whether this member led the ensemble when the drain began.
    pub was_leader: bool,
    /// The peer chosen to take over leadership, if a handoff was attempted.
    pub successor: Option<NodeId>,
    /// Whether leadership actually left this member within the timeout.
    pub handed_off: bool,
    /// Wall time the drain took (state shipping included).
    pub elapsed: Duration,
}

impl WriteHandler for EnsembleCore {
    fn execute_write(
        &self,
        replica: &Arc<ZkReplica>,
        session_id: i64,
        request: &Request,
    ) -> (Response, i64) {
        if !replica.has_session(session_id) {
            let code = ZkError::SessionExpired { session_id }.code();
            return (Response::Error(code), replica.last_zxid());
        }
        replica.touch_session(session_id);
        if *request == Request::CloseSession {
            let response = self.replicated_close_session(replica, session_id);
            return (response, replica.last_zxid());
        }
        self.submit_replicated(session_id, request)
    }

    fn admin_info(&self) -> AdminInfo {
        let (role, epoch, leader) = {
            let state = self.state.lock();
            let role = match state.node.role() {
                Role::Leader => "leader",
                Role::Follower => "follower",
                Role::Electing => "electing",
            };
            (role, state.node.epoch(), state.node.leader().map(|n| n.0))
        };
        AdminInfo {
            role: role.to_string(),
            epoch,
            leader,
            ready: self.probes.is_ready(),
            draining: self.draining.load(Ordering::SeqCst),
            data_dirs: self.persistence.as_ref().map(ReplicaPersistence::dir_sizes),
        }
    }

    fn tick(&self, replica: &Arc<ZkReplica>) -> Vec<i64> {
        // Expiry must not delete ephemerals locally (that would fork the
        // replicated tree); replicate the cleanup, then drop the session.
        // The first failed cleanup (quorum loss, leader gone) aborts the
        // sweep: blocking the ticker for a write timeout per session would
        // freeze watch fan-out, and a session whose ephemerals survived
        // must keep its connection until a later sweep finishes the job.
        let mut closed = Vec::new();
        for session_id in replica.peek_expired_sessions() {
            match self.replicated_close_session(replica, session_id) {
                Response::CloseSession => closed.push(session_id),
                _ => break,
            }
        }
        closed
    }
}

/// Drains the peer network and runs the protocol timers until shutdown.
///
/// Each drain processes every queued envelope against a [`SendBuffer`],
/// fsyncs the durable log **once** (group commit), and only then releases
/// the buffered frames — so no ack or commit ever leaves this member before
/// the write it acknowledges is on disk, and a drain of N writes costs one
/// fsync instead of N.
fn driver_loop(core: &Arc<EnsembleCore>) {
    while core.running.load(Ordering::SeqCst) {
        // The liveness probe answers "is the driver thread actually turning
        // over", not just "does the process accept TCP" — a wedged driver
        // lets the heartbeat age out and the probe go dark.
        core.probes.beat();
        if let Some(envelope) = core.transport.receive_timeout(core.config.poll_interval) {
            let buffer = SendBuffer::default();
            core.dispatch(envelope, &buffer);
            // Drain whatever queued up behind it before looking at timers.
            while let Some(envelope) = core.transport.receive(core.id) {
                core.dispatch(envelope, &buffer);
            }
            core.sync_persistence();
            buffer.flush(core.transport.as_ref());
            // The dispatches above may have made a payload's trace context
            // ambient (sticky through the group-commit fsync); drop it so
            // timer work is not attributed to a request.
            trace::set_current(None);
        }
        core.run_timers();
    }
}

/// One member of a networked replicated ensemble: client-facing TCP server,
/// peer transport, and the protocol driver. Dropping it stops everything —
/// which doubles as crash injection in the failover tests.
pub struct ZkEnsembleServer {
    core: Arc<EnsembleCore>,
    server: Option<ZkTcpServer>,
    ops: Option<OpsServer>,
    driver: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ZkEnsembleServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZkEnsembleServer")
            .field("id", &self.core.id)
            .field("role", &self.role())
            .field("epoch", &self.epoch())
            .finish()
    }
}

impl ZkEnsembleServer {
    /// Starts an ensemble member: binds the peer endpoint at
    /// `peer_addrs[id]`, the client listener at `client_addr`, and joins the
    /// ensemble described by `peer_addrs` (which must be identical on every
    /// member). The member with the lowest id leads epoch 1 until the first
    /// failure.
    ///
    /// # Errors
    ///
    /// Fails when `peer_addrs` has no entry for `id` or a listener cannot be
    /// bound.
    pub fn start(
        id: NodeId,
        peer_addrs: HashMap<NodeId, SocketAddr>,
        client_addr: impl ToSocketAddrs,
        replica: Arc<ZkReplica>,
        config: EnsembleConfig,
    ) -> io::Result<Self> {
        let own = *peer_addrs.get(&id).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, format!("no peer address for {id}"))
        })?;
        let transport = TcpNetwork::bind(id, own)?;
        Self::start_with_transport(transport, peer_addrs, client_addr, replica, config)
    }

    /// Starts an ensemble member on an arbitrary [`PeerTransport`]
    /// implementation — the entry point the chaos harness uses to splice a
    /// fault-injecting transport under an otherwise unmodified member.
    /// `persistence` switches the member between durable and in-memory
    /// operation exactly like [`start`](Self::start) vs
    /// [`start_persistent`](Self::start_persistent).
    ///
    /// # Errors
    ///
    /// Fails when the client listener cannot be bound.
    pub fn start_custom(
        transport: Arc<dyn PeerTransport>,
        peer_addrs: HashMap<NodeId, SocketAddr>,
        client_addr: impl ToSocketAddrs,
        replica: Arc<ZkReplica>,
        config: EnsembleConfig,
        persistence: Option<ReplicaPersistence>,
    ) -> io::Result<Self> {
        Self::start_inner(transport, peer_addrs, client_addr, replica, config, persistence)
    }

    /// Starts a *durable* ensemble member: state recovered from
    /// `persistence`'s data directory (newest valid snapshot + log suffix)
    /// before joining, every accepted proposal written ahead to disk. A
    /// member restarted this way rejoins with its local history — the
    /// leader only ships the suffix it missed, or a snapshot if the ensemble
    /// has truncated past its tip.
    ///
    /// # Errors
    ///
    /// Fails when `peer_addrs` has no entry for `id` or a listener cannot be
    /// bound.
    pub fn start_persistent(
        id: NodeId,
        peer_addrs: HashMap<NodeId, SocketAddr>,
        client_addr: impl ToSocketAddrs,
        replica: Arc<ZkReplica>,
        config: EnsembleConfig,
        persistence: ReplicaPersistence,
    ) -> io::Result<Self> {
        let own = *peer_addrs.get(&id).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, format!("no peer address for {id}"))
        })?;
        let transport = TcpNetwork::bind(id, own)?;
        Self::start_inner(
            Arc::new(transport),
            peer_addrs,
            client_addr,
            replica,
            config,
            Some(persistence),
        )
    }

    /// Starts an ensemble member on an already bound peer endpoint (the
    /// local-ensemble helper binds every endpoint on an ephemeral port first
    /// and then exchanges the addresses).
    ///
    /// # Errors
    ///
    /// Fails when the client listener cannot be bound.
    pub fn start_with_transport(
        transport: TcpNetwork,
        peer_addrs: HashMap<NodeId, SocketAddr>,
        client_addr: impl ToSocketAddrs,
        replica: Arc<ZkReplica>,
        config: EnsembleConfig,
    ) -> io::Result<Self> {
        Self::start_inner(Arc::new(transport), peer_addrs, client_addr, replica, config, None)
    }

    /// Recovers durable state (when present) into `replica` and builds the
    /// protocol node: snapshot installed, committed log suffix replayed,
    /// uncommitted tail kept as logged-but-unapplied history.
    fn recover_node(
        id: NodeId,
        cluster_size: usize,
        replica: &ZkReplica,
        persistence: &ReplicaPersistence,
        stats: (&AtomicU64, &AtomicU64),
    ) -> ZabNode {
        let mut recovery = persistence.take_recovery();
        let mut horizon = Zxid::ZERO;
        if let Some((snap_zxid, bytes)) = &recovery.snapshot {
            if let Ok((tree, sessions)) = persist::decode_snapshot(bytes) {
                replica.install_snapshot(tree, *snap_zxid as i64, &sessions);
                horizon = Zxid::from_u64(*snap_zxid);
                stats.1.store(*snap_zxid, Ordering::Relaxed);
            }
        }
        // Only the WAL suffix that *chains* onto the snapshot is usable
        // local history. A gap means this boot fell back past the snapshot
        // the log was truncated against (a rotted newest snapshot): using
        // the disconnected suffix would replay writes onto a state missing
        // their predecessors and silently diverge. Claim only the chained
        // prefix; the leader re-ships the rest (or a snapshot).
        recovery.txns = persist::chained_suffix(recovery.txns, horizon);
        let committed = recovery.committed.max(horizon);
        let mut replayed = 0u64;
        for txn in recovery.txns.iter().filter(|t| t.zxid > horizon && t.zxid <= committed) {
            if let Ok((_, _, write, _)) = decode_payload(&txn.payload) {
                replica.apply_txn(txn.zxid.as_u64() as i64, &write);
                replayed += 1;
            }
        }
        stats.0.store(replayed, Ordering::Relaxed);
        let log = persistence.recovered_log(recovery, horizon);
        ZabNode::with_log(id, cluster_size, log)
    }

    fn start_inner(
        transport: Arc<dyn PeerTransport>,
        peer_addrs: HashMap<NodeId, SocketAddr>,
        client_addr: impl ToSocketAddrs,
        replica: Arc<ZkReplica>,
        config: EnsembleConfig,
        persistence: Option<ReplicaPersistence>,
    ) -> io::Result<Self> {
        let id = transport.id();
        let cluster_size = peer_addrs.len().max(1);
        let initial_leader = peer_addrs.keys().copied().min().unwrap_or(id);
        transport.set_peers(peer_addrs);

        let recovered_txns = AtomicU64::new(0);
        let recovered_snapshot_zxid = AtomicU64::new(0);
        let mut node = match &persistence {
            Some(persistence) => Self::recover_node(
                id,
                cluster_size,
                &replica,
                persistence,
                (&recovered_txns, &recovered_snapshot_zxid),
            ),
            None => ZabNode::new(id, cluster_size),
        };
        let recovered_epoch = node.log().last_logged().epoch.max(node.log().last_committed().epoch);
        // The durable single-vote record: without it a restarted member
        // could grant an epoch it already granted before the crash, and two
        // same-epoch leaders could each assemble a "quorum".
        let recovered_grant = persistence.as_ref().and_then(ReplicaPersistence::recovered_grant);
        let has_history = node.log().last_logged() > Zxid::ZERO;
        if persistence.is_some() && has_history {
            if cluster_size == 1 {
                // Standalone durability: a quorum of one — everything this
                // node logged is decided by definition; lead a fresh epoch
                // past the recovered history.
                node.become_leader(recovered_epoch + 1);
            } else {
                // Rejoining an ensemble that may have moved on: never assume
                // leadership from stale state (a recovered uncommitted tail
                // must not be committed unilaterally). Wait for the current
                // leader's heartbeat, or win a proper election on timeout —
                // the recovered log is the credential either way.
                node.start_election();
            }
        } else if id == initial_leader {
            node.become_leader(1);
        } else {
            node.become_follower(1, initial_leader);
        }
        let metrics = Arc::new(ServerMetrics::new());
        let probes = Arc::new(ProbeState::new());
        let now = Instant::now();
        let core = Arc::new(EnsembleCore {
            id,
            cluster_size,
            replica: Arc::clone(&replica),
            transport,
            state: Mutex::new(ProtocolState {
                node,
                last_leader_contact: now,
                last_heartbeat_sent: now,
                election: None,
                last_vote_epoch: recovered_epoch
                    .max(1)
                    .max(recovered_grant.map_or(0, |(epoch, _)| epoch)),
                last_grant: recovered_grant,
                pending_snapshot: None,
            }),
            waiters: Mutex::new(HashMap::new()),
            // Seeded from wall time so ids stay unique across process
            // restarts of the same member: the leader's forwarded-write
            // dedup window would otherwise confuse a rebooted member's
            // fresh ids with its pre-crash ones.
            next_request_id: AtomicU64::new(
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map_or(1, |since| since.as_nanos() as u64),
            ),
            running: AtomicBool::new(true),
            config: config.clone(),
            persistence,
            metrics: Arc::clone(&metrics),
            probes: Arc::clone(&probes),
            draining: AtomicBool::new(false),
            snapshots_shipped: AtomicU64::new(0),
            sync_txns_shipped: AtomicU64::new(0),
            snapshots_installed: AtomicU64::new(0),
            recovered_txns,
            recovered_snapshot_zxid,
        });

        // Bridge the persistence-owned WAL counters into the registry: a
        // collector refreshes the monotone mirrors right before each render,
        // without the hot fsync path ever touching a metric handle.
        {
            let weak = Arc::downgrade(&core);
            let fsyncs = metrics.wal_fsyncs.clone();
            let bytes = metrics.wal_bytes.clone();
            let snapshots = metrics.snapshots_taken.clone();
            metrics.registry().register_collector(move || {
                let Some(core) = weak.upgrade() else { return };
                let Some(persistence) = &core.persistence else { return };
                fsyncs.raise_to(persistence.wal_fsyncs());
                bytes.raise_to(persistence.wal_bytes());
                snapshots.raise_to(persistence.snapshots_taken());
            });
        }
        {
            let state = core.state.lock();
            core.refresh_health(&state, Instant::now());
        }
        let server = match ZkTcpServer::bind_with_metrics(
            client_addr,
            replica,
            config.net,
            Arc::clone(&core) as Arc<dyn WriteHandler>,
            Arc::clone(&metrics),
        ) {
            Ok(server) => server,
            Err(err) => {
                core.running.store(false, Ordering::SeqCst);
                core.transport.shutdown();
                return Err(err);
            }
        };
        let ops = match config.ops_addr {
            Some(addr) => match OpsServer::bind(addr, metrics.registry(), Arc::clone(&probes)) {
                Ok(ops) => Some(ops),
                Err(err) => {
                    core.running.store(false, Ordering::SeqCst);
                    core.transport.shutdown();
                    server.shutdown();
                    return Err(err);
                }
            },
            None => None,
        };
        // A single-member recovered leader may hold a committed-on-promotion
        // tail in its outbox; apply it before serving (no-op otherwise).
        {
            let mut state = core.state.lock();
            core.apply_committed(&mut state);
        }
        let driver = {
            let core = Arc::clone(&core);
            std::thread::spawn(move || driver_loop(&core))
        };
        Ok(ZkEnsembleServer { core, server: Some(server), ops, driver: Some(driver) })
    }

    /// Binds and starts a complete ensemble of `size` members on loopback
    /// ephemeral ports, with replicas built by `factory`.
    ///
    /// # Errors
    ///
    /// Propagates listener bind failures.
    pub fn start_local_ensemble(
        size: usize,
        config: &EnsembleConfig,
        factory: impl Fn(u32) -> Arc<ZkReplica>,
    ) -> io::Result<Vec<ZkEnsembleServer>> {
        assert!(size >= 1, "an ensemble needs at least one member");
        let transports: Vec<TcpNetwork> = (1..=size as u32)
            .map(|i| TcpNetwork::bind(NodeId(i), "127.0.0.1:0"))
            .collect::<io::Result<_>>()?;
        let peer_addrs: HashMap<NodeId, SocketAddr> =
            transports.iter().map(|t| (t.id(), t.local_addr())).collect();
        transports
            .into_iter()
            .map(|transport| {
                let replica = factory(transport.id().0);
                Self::start_with_transport(
                    transport,
                    peer_addrs.clone(),
                    "127.0.0.1:0",
                    replica,
                    config.clone(),
                )
            })
            .collect()
    }

    /// This member's replica id.
    pub fn id(&self) -> NodeId {
        self.core.id
    }

    /// The address clients connect to.
    pub fn client_addr(&self) -> SocketAddr {
        self.server.as_ref().expect("server alive").local_addr()
    }

    /// The address peers connect to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.core.transport.local_addr()
    }

    /// The local replica (tree, sessions, interceptor).
    pub fn replica(&self) -> Arc<ZkReplica> {
        Arc::clone(&self.core.replica)
    }

    /// The member's current protocol role.
    pub fn role(&self) -> Role {
        self.core.state.lock().node.role()
    }

    /// True if this member currently leads the ensemble.
    pub fn is_leader(&self) -> bool {
        self.role() == Role::Leader
    }

    /// The node this member believes is the leader.
    pub fn leader_hint(&self) -> Option<NodeId> {
        self.core.state.lock().node.leader()
    }

    /// The member's current epoch.
    pub fn epoch(&self) -> u32 {
        self.core.state.lock().node.epoch()
    }

    /// The zxid of the last transaction applied to the local tree.
    pub fn last_applied_zxid(&self) -> i64 {
        self.core.replica.last_zxid()
    }

    /// Resynchronization and recovery counters: what this member shipped to
    /// lagging peers, what it installed, and what it replayed from disk at
    /// boot. Tests use these to prove a restarted member rejoined via its
    /// local history (or a shipped snapshot) rather than a full-log replay.
    pub fn sync_stats(&self) -> SyncStats {
        self.core.sync_stats()
    }

    /// The address of this member's operational HTTP endpoint, when one was
    /// configured ([`EnsembleConfig::ops_addr`]).
    pub fn ops_addr(&self) -> Option<SocketAddr> {
        self.ops.as_ref().map(OpsServer::local_addr)
    }

    /// This member's metric surface (also rendered by `GET /metrics` and the
    /// `mntr` admin word).
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.core.metrics)
    }

    /// This member's liveness/readiness probe state (also served as
    /// `GET /health/live` and `GET /health/ready`).
    pub fn probes(&self) -> Arc<ProbeState> {
        Arc::clone(&self.core.probes)
    }

    /// Gracefully takes this member out of service before a shutdown:
    /// readiness flips to unready, new writes are refused, leadership (if
    /// held) is handed to the lowest-id peer by shipping it this member's
    /// committed state and triggering an immediate candidacy, and the
    /// durable log is flushed. Call [`shutdown`](Self::shutdown) afterwards;
    /// reads keep being served in between so load balancers can rotate the
    /// member out on the unready probe first.
    pub fn drain(&self, timeout: Duration) -> DrainReport {
        self.core.drain(timeout)
    }

    /// Stops the member: client server, driver and peer transport — the
    /// crash-injection primitive of the failover tests.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if !self.core.running.swap(false, Ordering::SeqCst) {
            return;
        }
        // Unblock client writer threads first so the TCP server can join
        // its threads without waiting out the write timeout.
        self.core.fail_all_waiters();
        self.core.probes.set_live(false);
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
        if let Some(ops) = self.ops.take() {
            ops.shutdown();
        }
        self.core.transport.shutdown();
        if let Some(driver) = self.driver.take() {
            let _ = driver.join();
        }
    }
}

impl Drop for ZkEnsembleServer {
    fn drop(&mut self) {
        self.stop();
    }
}
