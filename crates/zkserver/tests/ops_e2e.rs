//! Ops-plane end-to-end tests: a real 3-member ensemble scraped over HTTP,
//! poked with four-letter admin words, throttled, and gracefully drained.
//!
//! The acceptance properties of the ops-plane milestone:
//!
//! * `/metrics` and both health probes answer on every member, and the
//!   counters match what the workload driver actually did (not just "are
//!   non-zero");
//! * every documented admin word answers on the client port, with `mntr`
//!   agreeing with `/metrics`;
//! * a graceful drain of the leader under load hands leadership off in
//!   under a second, flips the readiness probe, and loses no acknowledged
//!   write;
//! * the exported metric family set and `docs/METRICS.md` never diverge
//!   (the guard test CI's `ops-e2e` job leans on).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use jute::records::CreateMode;
use opsplane::http::http_get;
use opsplane::ratelimit::RateLimitConfig;
use opsplane::words::{send_word, ADMIN_WORDS};
use parking_lot::Mutex;
use zkserver::ensemble::{EnsembleConfig, ZkEnsembleServer};
use zkserver::net::NetConfig;
use zkserver::{ZkError, ZkReplica, ZkTcpClient, ZkTcpServer};

fn test_config() -> EnsembleConfig {
    EnsembleConfig {
        heartbeat_interval: Duration::from_millis(20),
        election_timeout: Duration::from_millis(150),
        election_vote_window: Duration::from_millis(80),
        write_timeout: Duration::from_secs(2),
        poll_interval: Duration::from_millis(5),
        ops_addr: Some("127.0.0.1:0".parse().expect("loopback addr")),
        ..EnsembleConfig::default()
    }
}

fn start_ensemble(size: usize) -> Vec<ZkEnsembleServer> {
    ZkEnsembleServer::start_local_ensemble(size, &test_config(), |id| Arc::new(ZkReplica::new(id)))
        .expect("bind loopback ensemble")
}

fn wait_until(what: &str, condition: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !condition() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Extracts the value of one sample line (exact name + label match) from a
/// Prometheus text exposition.
fn sample(text: &str, name: &str) -> f64 {
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(name) {
            if let Some(value) = rest.strip_prefix(' ') {
                return value.trim().parse().expect("sample value");
            }
        }
    }
    panic!("sample {name} not found in:\n{text}");
}

/// Parses a `mntr` reply into its key/value lines.
fn mntr_values(reply: &str) -> Vec<(String, String)> {
    reply
        .lines()
        .map(|line| {
            let (key, value) = line.split_once('\t').expect("mntr lines are key\\tvalue");
            (key.to_string(), value.to_string())
        })
        .collect()
}

#[test]
fn metrics_probes_and_words_reflect_the_workload() {
    let servers = start_ensemble(3);
    assert!(servers[0].is_leader());
    for server in &servers {
        let ops = server.ops_addr().expect("ops endpoint configured");
        wait_until("readiness", || {
            http_get(ops, "/health/ready").map(|(code, _)| code == 200).unwrap_or(false)
        });
        let (code, body) = http_get(ops, "/health/live").unwrap();
        assert_eq!((code, body.as_str()), (200, "live\n"));
    }

    // A known workload against the leader: 20 writes, 20 reads, one watch.
    const WRITES: u64 = 20;
    let mut client = ZkTcpClient::connect(servers[0].client_addr()).expect("connect");
    for i in 0..WRITES {
        client.create(&format!("/w{i}"), vec![b'x'; 8], CreateMode::Persistent).unwrap();
    }
    for i in 0..WRITES {
        let (data, _) = client.get_data(&format!("/w{i}"), false).unwrap();
        assert_eq!(data.len(), 8);
    }
    assert!(client.exists("/w0", true).unwrap().is_some());

    // The connected member's request counters equal the driver's counts.
    let leader_ops = servers[0].ops_addr().unwrap();
    let (code, text) = http_get(leader_ops, "/metrics").unwrap();
    assert_eq!(code, 200);
    assert_eq!(sample(&text, "zk_requests_total{class=\"write\"}"), WRITES as f64);
    // 20 get_data + 1 exists.
    assert_eq!(sample(&text, "zk_requests_total{class=\"read\"}"), (WRITES + 1) as f64);
    assert_eq!(sample(&text, "zk_request_latency_seconds_count{class=\"write\"}"), WRITES as f64);
    assert_eq!(sample(&text, "zk_zab_proposals_total"), WRITES as f64);
    assert_eq!(sample(&text, "zk_connections_open"), 1.0);
    assert_eq!(sample(&text, "zk_sessions_active"), 1.0);
    assert_eq!(sample(&text, "zk_watches_pending"), 1.0);
    assert_eq!(sample(&text, "zk_znodes"), (WRITES + 1) as f64); // + root
    assert_eq!(sample(&text, "zk_zab_role"), 2.0);
    assert_eq!(sample(&text, "zk_draining"), 0.0);

    // Every member committed exactly the driver's writes.
    for server in &servers {
        let ops = server.ops_addr().unwrap();
        wait_until("commit replication", || {
            let (_, text) = http_get(ops, "/metrics").unwrap();
            sample(&text, "zk_zab_commits_total") == WRITES as f64
        });
    }

    // Every documented admin word answers on every member's client port.
    for server in &servers {
        for word in ADMIN_WORDS {
            let reply = send_word(server.client_addr(), word).unwrap();
            // `cons` is legitimately empty on a member with no sessions.
            assert!(
                !reply.is_empty() || word == "cons",
                "{word} answered nothing on {:?}",
                server.id()
            );
        }
    }
    assert_eq!(send_word(servers[0].client_addr(), "ruok").unwrap(), "imok\n");
    let srvr = send_word(servers[0].client_addr(), "srvr").unwrap();
    assert!(srvr.contains("Mode: leader"), "{srvr}");
    assert!(srvr.contains(&format!("Node count: {}", WRITES + 1)), "{srvr}");
    assert!(srvr.contains("Secure: false"), "{srvr}");
    let follower_srvr = send_word(servers[1].client_addr(), "srvr").unwrap();
    assert!(follower_srvr.contains("Mode: follower"), "{follower_srvr}");
    assert!(follower_srvr.contains("Leader: 1"), "{follower_srvr}");
    let stat = send_word(servers[0].client_addr(), "stat").unwrap();
    assert!(stat.contains("Clients:"), "{stat}");
    let cons = send_word(servers[0].client_addr(), "cons").unwrap();
    assert!(cons.contains("session=0x"), "{cons}");
    let wchs = send_word(servers[0].client_addr(), "wchs").unwrap();
    assert!(wchs.contains("1 total watches"), "{wchs}");

    // `mntr` agrees with `/metrics` on the same counters.
    let mntr = send_word(servers[0].client_addr(), "mntr").unwrap();
    let values = mntr_values(&mntr);
    let get = |key: &str| {
        values
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("{key} missing from mntr:\n{mntr}"))
            .1
            .clone()
    };
    assert_eq!(get("zk_server_state"), "leader");
    assert_eq!(get("zk_znodes"), (WRITES + 1).to_string());
    assert_eq!(get("zk_zab_commits_total"), WRITES.to_string());
    assert_eq!(get("zk_requests_total{class=\"write\"}"), WRITES.to_string());

    // The word connections themselves never consume a session.
    let (_, text) = http_get(leader_ops, "/metrics").unwrap();
    assert_eq!(sample(&text, "zk_sessions_active"), 1.0);
    assert!(sample(&text, "zk_admin_commands_total") >= ADMIN_WORDS.len() as f64);
    client.close();
}

#[test]
fn session_rate_limiting_throttles_without_killing_the_connection() {
    let replica = Arc::new(ZkReplica::new(1));
    let config = NetConfig {
        rate_limit: Some(RateLimitConfig { capacity: 5, refill_per_sec: 1 }),
        ..NetConfig::default()
    };
    let server = ZkTcpServer::bind_with_config("127.0.0.1:0", replica, config).unwrap();
    let mut client = ZkTcpClient::connect(server.local_addr()).unwrap();

    // The bucket holds 5 tokens; the 6th rapid-fire request is throttled
    // with a typed in-band error, not a dropped connection.
    let mut throttled = 0u32;
    for i in 0..8 {
        match client.exists(&format!("/probe{i}"), false) {
            Ok(_) => {}
            Err(ZkError::Throttled) => throttled += 1,
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    assert!(throttled >= 3, "expected throttling after the burst, got {throttled}");
    // Pings are exempt (they are the session heartbeat), and the connection
    // is still alive for a later, slower request.
    client.ping().expect("pings are never throttled");
    std::thread::sleep(Duration::from_millis(1100));
    client.exists("/after-refill", false).expect("one token refilled");

    let (_, text) = http_get_metrics(&server);
    assert_eq!(sample(&text, "zk_throttled_total"), f64::from(throttled));
    client.close();
    server.shutdown();
}

/// Renders a standalone server's registry (no ops endpoint bound here).
fn http_get_metrics(server: &ZkTcpServer) -> (u16, String) {
    (200, server.metrics().registry().render())
}

#[test]
fn graceful_leader_drain_loses_no_acknowledged_write() {
    let servers = start_ensemble(3);
    assert!(servers[0].is_leader());
    let leader_ops = servers[0].ops_addr().unwrap();
    wait_until("leader ready", || http_get(leader_ops, "/health/ready").unwrap().0 == 200);
    let mntr_before = mntr_values(&send_word(servers[0].client_addr(), "mntr").unwrap());

    // Continuous write load against the member that is NOT the chosen
    // successor (lowest-id peer = member 2), so its writes are forwarded
    // across the handoff.
    let stop = Arc::new(AtomicBool::new(false));
    let acked: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let writer = {
        let stop = Arc::clone(&stop);
        let acked = Arc::clone(&acked);
        let addr = servers[2].client_addr();
        std::thread::spawn(move || {
            let mut client = ZkTcpClient::connect(addr).expect("writer connect");
            let mut i = 0u64;
            while !stop.load(Ordering::SeqCst) {
                let path = format!("/d{i:05}");
                match client.create(&path, b"v".to_vec(), CreateMode::Persistent) {
                    Ok(_) => {
                        acked.lock().push(path);
                        i += 1;
                    }
                    Err(_) => {
                        // Throttle of the drain window: reconnect and retry
                        // the same path (NodeExists then counts it acked).
                        std::thread::sleep(Duration::from_millis(10));
                        if let Ok(fresh) = ZkTcpClient::connect(addr) {
                            client = fresh;
                        }
                        if let Ok(Some(_)) = client.exists(&path, false) {
                            acked.lock().push(path);
                            i += 1;
                        }
                    }
                }
            }
            client.close();
        })
    };
    wait_until("load running", || acked.lock().len() >= 20);

    let report = servers[0].drain(Duration::from_secs(5));
    assert!(report.was_leader);
    assert!(report.handed_off, "leadership never left the drained member: {report:?}");
    assert!(
        report.elapsed < Duration::from_secs(1),
        "handoff took {:?}, expected sub-second",
        report.elapsed
    );
    assert_eq!(report.successor.map(|n| n.0), Some(2));

    // The drained member flips unready (but stays live) and says why.
    let (code, body) = http_get(leader_ops, "/health/ready").unwrap();
    assert_eq!(code, 503, "{body}");
    assert!(body.contains("draining"), "{body}");
    assert_eq!(http_get(leader_ops, "/health/live").unwrap().0, 200);
    let srvr = send_word(servers[0].client_addr(), "srvr").unwrap();
    assert!(srvr.contains("Draining: true"), "{srvr}");

    // The successor leads, and writes keep landing in the new regime.
    wait_until("successor leads", || servers[1].is_leader());
    let landed = acked.lock().len();
    wait_until("post-drain writes", || acked.lock().len() > landed + 10);
    stop.store(true, Ordering::SeqCst);
    writer.join().expect("writer thread");

    // Zero acknowledged-write loss: every acked path exists on the new
    // leader (and, once converged, on every member).
    let acked = acked.lock();
    assert!(!acked.is_empty());
    let tip = servers[1].last_applied_zxid();
    wait_until("convergence", || servers.iter().all(|s| s.last_applied_zxid() >= tip));
    for server in &servers {
        let replica = server.replica();
        let tree = replica.tree();
        for path in acked.iter() {
            assert!(tree.get(path).is_some(), "acked {path} missing on {:?}", server.id());
        }
    }

    // `mntr` counters on the drained member stayed monotonic through the
    // handoff.
    let mntr_after = mntr_values(&send_word(servers[0].client_addr(), "mntr").unwrap());
    for (key, before) in &mntr_before {
        if !key.ends_with("_total") {
            continue;
        }
        let after = &mntr_after.iter().find(|(k, _)| k == key).expect("family persists").1;
        let (before, after): (f64, f64) = (before.parse().unwrap(), after.parse().unwrap());
        assert!(after >= before, "{key} went backwards: {before} -> {after}");
    }
}

#[test]
fn documented_metrics_match_exported_set() {
    use std::collections::BTreeSet;

    let servers = start_ensemble(1);
    let (code, text) = http_get(servers[0].ops_addr().unwrap(), "/metrics").unwrap();
    assert_eq!(code, 200);
    let exported: BTreeSet<String> = text
        .lines()
        .filter_map(|line| line.strip_prefix("# TYPE "))
        .filter_map(|rest| rest.split_whitespace().next())
        .map(str::to_string)
        .collect();
    assert!(!exported.is_empty());

    let doc_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/METRICS.md");
    let doc = std::fs::read_to_string(&doc_path).expect("docs/METRICS.md exists");
    let documented: BTreeSet<String> = doc
        .lines()
        .filter_map(|line| line.strip_prefix("| `zk_"))
        .filter_map(|rest| rest.split('`').next())
        .map(|name| format!("zk_{name}"))
        .collect();

    let undocumented: Vec<&String> = exported.difference(&documented).collect();
    assert!(undocumented.is_empty(), "exported but missing from docs/METRICS.md: {undocumented:?}");
    let stale: Vec<&String> = documented.difference(&exported).collect();
    assert!(stale.is_empty(), "documented but not exported: {stale:?}");
}
