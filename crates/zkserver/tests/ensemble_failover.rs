//! Networked ensemble end-to-end tests: 3 replicas over real TCP, writes
//! forwarded follower→leader, leader crash with election and client
//! reconnect, replica convergence. CI runs this file in the `ensemble-e2e`
//! job (plain leg of the matrix).

use std::sync::Arc;
use std::time::{Duration, Instant};

use jute::records::CreateMode;
use zkserver::client::ZkTcpClient;
use zkserver::ensemble::{EnsembleConfig, ZkEnsembleServer};
use zkserver::net::PlainCredentials;
use zkserver::server::DEFAULT_SESSION_TIMEOUT_MS;
use zkserver::watch::WatchEventKind;
use zkserver::{ZkError, ZkReplica};

/// Aggressive timers so failover completes in well under a second.
fn test_config() -> EnsembleConfig {
    EnsembleConfig {
        heartbeat_interval: Duration::from_millis(20),
        election_timeout: Duration::from_millis(150),
        election_vote_window: Duration::from_millis(80),
        write_timeout: Duration::from_secs(2),
        poll_interval: Duration::from_millis(5),
        ..EnsembleConfig::default()
    }
}

fn start_ensemble(size: usize) -> Vec<ZkEnsembleServer> {
    ZkEnsembleServer::start_local_ensemble(size, &test_config(), |id| Arc::new(ZkReplica::new(id)))
        .expect("bind loopback ensemble")
}

fn connect(server: &ZkEnsembleServer) -> ZkTcpClient {
    ZkTcpClient::connect(server.client_addr()).expect("client connect")
}

/// Polls `condition` until it holds or the deadline passes.
fn wait_until(what: &str, condition: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !condition() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Retries a write until the ensemble has recovered enough to commit it.
fn create_with_retry(client: &mut ZkTcpClient, path: &str, addrs: &[std::net::SocketAddr]) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.create(path, b"v".to_vec(), CreateMode::Persistent) {
            Ok(_) => return,
            Err(ZkError::NodeExists { .. }) => return,
            Err(_) => {
                assert!(Instant::now() < deadline, "write to {path} never recovered");
                // The connection may be dead (crashed replica) — fail over.
                let _ = client
                    .reconnect_to(addrs[0])
                    .or_else(|_| client.reconnect_to(*addrs.last().unwrap()));
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

#[test]
fn writes_on_a_follower_are_forwarded_and_replicated_everywhere() {
    let servers = start_ensemble(3);
    assert!(servers[0].is_leader(), "lowest id leads the first epoch");

    // Write through a follower: the request is forwarded to the leader,
    // committed by quorum, and applied on every replica.
    let mut client = connect(&servers[2]);
    client.create("/forwarded", b"via follower".to_vec(), CreateMode::Persistent).unwrap();
    let (data, _) = client.get_data("/forwarded", false).unwrap();
    assert_eq!(data, b"via follower");

    for server in &servers {
        let server_id = server.id();
        wait_until(&format!("replication to {server_id}"), || {
            server.replica().tree().contains("/forwarded")
        });
    }
    // All replicas applied the same transaction at the same zxid.
    let zxids: Vec<i64> = servers.iter().map(|s| s.last_applied_zxid()).collect();
    wait_until("zxid convergence", || servers.iter().all(|s| s.last_applied_zxid() == zxids[0]));
    client.close();
}

#[test]
fn multi_at_a_follower_commits_as_one_zxid_on_every_replica() {
    use zkserver::OpResult;

    let servers = start_ensemble(3);
    assert!(!servers[2].is_leader());
    let mut client = connect(&servers[2]);
    client.create("/cfg", b"v0".to_vec(), CreateMode::Persistent).unwrap();

    // One forwarded proposal carries the whole transaction.
    let zxid_before = client.last_zxid();
    let results = client
        .txn()
        .check("/cfg", 0)
        .set_data("/cfg", b"v1".to_vec(), 0)
        .create("/cfg/hist-", b"v0".to_vec(), CreateMode::PersistentSequential)
        .create("/cfg/flag", vec![], CreateMode::Persistent)
        .commit()
        .unwrap();
    assert_eq!(results.len(), 4);
    assert_eq!(results[2], OpResult::Create { path: "/cfg/hist-0000000000".into() });
    let commit_zxid = client.last_zxid();
    assert_eq!(commit_zxid, zxid_before + 1, "the batch is one ZAB proposal");

    // Every replica applied the whole batch at that same single zxid.
    for server in &servers {
        let id = server.id();
        wait_until(&format!("multi replication to {id}"), || {
            server.last_applied_zxid() >= commit_zxid
        });
        let replica = server.replica();
        let tree = replica.tree();
        assert!(tree.contains("/cfg/hist-0000000000"), "{id}");
        assert!(tree.contains("/cfg/flag"), "{id}");
        assert_eq!(tree.get("/cfg").unwrap().stat().mzxid, commit_zxid, "{id}");
        assert_eq!(tree.get("/cfg/flag").unwrap().stat().czxid, commit_zxid, "{id}");
        assert_eq!(tree.get("/cfg").unwrap().data(), b"v1", "{id}");
    }
    client.close();
}

#[test]
fn aborted_multi_at_a_follower_leaves_no_replica_diverged() {
    use jute::records::{CheckVersionRequest, DeleteRequest, ErrorCode};
    use zkserver::{Op, OpResult};

    let servers = start_ensemble(3);
    let mut client = connect(&servers[1]);
    client.create("/inv", b"stock".to_vec(), CreateMode::Persistent).unwrap();
    client.create("/inv/item", b"7".to_vec(), CreateMode::Persistent).unwrap();

    // The failing check (stale version) aborts the forwarded transaction.
    let results = client
        .multi(vec![
            Op::SetData(jute::records::SetDataRequest {
                path: "/inv/item".into(),
                data: b"6".to_vec(),
                version: -1,
            }),
            Op::Check(CheckVersionRequest { path: "/inv/item".into(), version: 9 }),
            Op::Delete(DeleteRequest { path: "/inv/item".into(), version: -1 }),
        ])
        .unwrap();
    assert_eq!(
        results,
        vec![
            OpResult::Error(ErrorCode::RuntimeInconsistency),
            OpResult::Error(ErrorCode::BadVersion),
            OpResult::Error(ErrorCode::RuntimeInconsistency),
        ]
    );
    let abort_zxid = client.last_zxid();

    // The typed builder surfaces the same abort as a BadVersion error.
    let err = client
        .txn()
        .check("/inv/item", 9)
        .set_data("/inv/item", b"0".to_vec(), -1)
        .commit()
        .unwrap_err();
    assert!(matches!(err, ZkError::BadVersion { .. }), "got {err:?}");

    // Every replica processed the aborted proposals (zxids advanced in step)
    // and none applied any sub-operation: the trees stay identical.
    for server in &servers {
        let id = server.id();
        wait_until(&format!("abort replication to {id}"), || {
            server.last_applied_zxid() > abort_zxid
        });
        let replica = server.replica();
        let tree = replica.tree();
        assert_eq!(tree.get("/inv/item").unwrap().data(), b"7", "{id}");
        assert_eq!(tree.get("/inv/item").unwrap().stat().version, 0, "{id}");
        let reference = servers[0].replica();
        assert_eq!(tree.paths(), reference.tree().paths(), "{id}");
    }
    client.close();
}

#[test]
fn sequential_creates_from_different_replicas_agree() {
    let servers = start_ensemble(3);
    let mut a = connect(&servers[1]);
    let mut b = connect(&servers[2]);
    a.create("/queue", vec![], CreateMode::Persistent).unwrap();
    let first = a.create("/queue/item-", vec![], CreateMode::PersistentSequential).unwrap();
    let second = b.create("/queue/item-", vec![], CreateMode::PersistentSequential).unwrap();
    assert_eq!(first, "/queue/item-0000000000");
    assert_eq!(second, "/queue/item-0000000001");
    for server in &servers {
        wait_until("queue replication", || {
            server.replica().tree().get_children("/queue").map_or(0, |c| c.len()) == 2
        });
    }
    a.close();
    b.close();
}

#[test]
fn watches_fire_across_replicas() {
    let servers = start_ensemble(3);
    let mut watcher = connect(&servers[1]);
    let mut writer = connect(&servers[2]);
    watcher.create("/watched", b"v0".to_vec(), CreateMode::Persistent).unwrap();
    watcher.get_data("/watched", true).unwrap();
    writer.set_data("/watched", b"v1".to_vec(), -1).unwrap();
    let events = watcher.poll_events(Duration::from_secs(5)).unwrap();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].kind, WatchEventKind::NodeDataChanged);
    assert_eq!(events[0].path, "/watched");
    watcher.close();
    writer.close();
}

#[test]
fn follower_crash_does_not_interrupt_service() {
    let mut servers = start_ensemble(3);
    let mut client = connect(&servers[0]);
    client.create("/before", vec![], CreateMode::Persistent).unwrap();

    // Crash a follower; the leader and the other follower keep serving.
    let crashed = servers.remove(2);
    crashed.shutdown();
    client.create("/after-follower-crash", vec![], CreateMode::Persistent).unwrap();
    for server in &servers {
        wait_until("survivor replication", || {
            server.replica().tree().contains("/after-follower-crash")
        });
    }
    client.close();
}

#[test]
fn leader_crash_triggers_election_clients_reconnect_and_replicas_converge() {
    let mut servers = start_ensemble(3);
    let survivor_addrs: Vec<std::net::SocketAddr> =
        servers[1..].iter().map(|s| s.client_addr()).collect();

    // A client connected to the leader and one connected to a follower.
    let mut leader_client = connect(&servers[0]);
    let mut follower_client = connect(&servers[1]);
    leader_client.create("/pre-crash", b"durable".to_vec(), CreateMode::Persistent).unwrap();
    wait_until("pre-crash replication", || {
        servers[1..].iter().all(|s| s.replica().tree().contains("/pre-crash"))
    });

    // Kill the leader.
    let old_leader = servers.remove(0);
    assert!(old_leader.is_leader());
    old_leader.shutdown();

    // The survivors elect a new leader in a higher epoch.
    wait_until("election", || servers.iter().any(|s| s.is_leader()));
    let new_leader = servers.iter().find(|s| s.is_leader()).unwrap();
    assert!(new_leader.epoch() > 1, "election must advance the epoch");

    // The orphaned client fails over to a survivor; the follower client's
    // connection survived and its writes are forwarded to the new leader.
    leader_client
        .reconnect_to(survivor_addrs[0])
        .or_else(|_| leader_client.reconnect_to(survivor_addrs[1]))
        .expect("failover reconnect");
    let (data, _) = leader_client.get_data("/pre-crash", false).unwrap();
    assert_eq!(data, b"durable", "a committed write survives the leader crash");

    create_with_retry(&mut leader_client, "/post-crash-a", &survivor_addrs);
    create_with_retry(&mut follower_client, "/post-crash-b", &survivor_addrs);

    // Both survivors converge to identical trees and zxids.
    for path in ["/pre-crash", "/post-crash-a", "/post-crash-b"] {
        for server in &servers {
            let server_id = server.id();
            wait_until(&format!("{path} on {server_id}"), || {
                server.replica().tree().contains(path)
            });
        }
    }
    wait_until("zxid convergence", || {
        servers.iter().all(|s| s.last_applied_zxid() == servers[0].last_applied_zxid())
    });
    let paths: Vec<Vec<String>> = servers.iter().map(|s| s.replica().tree().paths()).collect();
    assert_eq!(paths[0], paths[1], "surviving replicas diverged");

    leader_client.close();
    follower_client.close();
}

#[test]
fn ephemerals_vanish_cluster_wide_when_their_session_closes() {
    let servers = start_ensemble(3);
    let mut owner = connect(&servers[1]);
    let mut observer = connect(&servers[2]);
    observer.create("/group", vec![], CreateMode::Persistent).unwrap();
    wait_until("group replication", || servers[1].replica().tree().contains("/group"));
    owner.create("/group/member", vec![], CreateMode::Ephemeral).unwrap();
    for server in &servers {
        wait_until("ephemeral replication", || server.replica().tree().contains("/group/member"));
    }
    owner.close();
    for server in &servers {
        wait_until("ephemeral cleanup", || !server.replica().tree().contains("/group/member"));
    }
    assert_eq!(observer.get_children("/group", false).unwrap().len(), 0);
    observer.close();
}

#[test]
fn quorum_loss_yields_a_typed_failure_not_a_hang() {
    let mut servers = start_ensemble(3);
    let mut client = connect(&servers[0]);
    client.create("/while-healthy", vec![], CreateMode::Persistent).unwrap();

    // Crash both followers: the leader keeps serving reads but cannot commit.
    servers.remove(2).shutdown();
    servers.remove(1).shutdown();
    let started = Instant::now();
    let result = client.create("/no-quorum", vec![], CreateMode::Persistent);
    assert!(result.is_err(), "a quorum-less write must fail");
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "the failure must be bounded by the write timeout"
    );
    // Reads are still served locally.
    let mut reader = ZkTcpClient::connect_ensemble(
        &[servers[0].client_addr()],
        Arc::new(PlainCredentials),
        DEFAULT_SESSION_TIMEOUT_MS,
    )
    .expect("connect to the surviving leader");
    reader.get_data("/while-healthy", false).expect("reads survive quorum loss");
}
