//! Durable-persistence end-to-end tests: members run on real TCP with a
//! disk-backed WAL + snapshot store, get killed (process teardown) under
//! write load, and restart *from their data directory* — rejoining via
//! local history plus the missed suffix, or via a leader-shipped snapshot
//! when the ensemble truncated past their tip. CI runs this file in the
//! `persistence-e2e` job (plain leg of the matrix).

use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use jute::records::{CreateMode, Stat};
use zab::NodeId;
use zkserver::client::ZkTcpClient;
use zkserver::ensemble::{EnsembleConfig, ZkEnsembleServer};
use zkserver::persist::{PersistConfig, ReplicaPersistence};
use zkserver::session::MonotonicClock;
use zkserver::{ZkError, ZkReplica};

fn test_config() -> EnsembleConfig {
    EnsembleConfig {
        heartbeat_interval: Duration::from_millis(20),
        election_timeout: Duration::from_millis(150),
        election_vote_window: Duration::from_millis(80),
        write_timeout: Duration::from_secs(2),
        poll_interval: Duration::from_millis(5),
        ..EnsembleConfig::default()
    }
}

fn unique_dir(name: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "zk-persistence-e2e-{}-{name}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fresh_replica(id: u32) -> Arc<ZkReplica> {
    Arc::new(ZkReplica::new(id).with_clock(Arc::new(MonotonicClock::new())))
}

/// A durable 3-member ensemble plus everything needed to kill one member
/// and restart it from its data directory on the *same* peer address.
struct DurableEnsemble {
    servers: Vec<Option<ZkEnsembleServer>>,
    peer_addrs: HashMap<NodeId, SocketAddr>,
    data_dirs: Vec<PathBuf>,
    persist_config: PersistConfig,
}

impl DurableEnsemble {
    fn start(name: &str, size: usize, persist_config: PersistConfig) -> Self {
        let transports: Vec<zab::TcpNetwork> = (1..=size as u32)
            .map(|i| zab::TcpNetwork::bind(NodeId(i), "127.0.0.1:0").expect("bind peer"))
            .collect();
        let peer_addrs: HashMap<NodeId, SocketAddr> =
            transports.iter().map(|t| (t.id(), t.local_addr())).collect();
        let data_dirs: Vec<PathBuf> =
            (1..=size).map(|i| unique_dir(&format!("{name}-m{i}"))).collect();
        // `start_persistent` binds its own transport; free the probes first.
        drop(transports);
        let servers = (1..=size as u32)
            .map(|i| {
                let persistence =
                    ReplicaPersistence::open(&data_dirs[i as usize - 1], persist_config)
                        .expect("open data dir");
                Some(
                    ZkEnsembleServer::start_persistent(
                        NodeId(i),
                        peer_addrs.clone(),
                        "127.0.0.1:0",
                        fresh_replica(i),
                        test_config(),
                        persistence,
                    )
                    .expect("start durable member"),
                )
            })
            .collect();
        DurableEnsemble { servers, peer_addrs, data_dirs, persist_config }
    }

    fn server(&self, index: usize) -> &ZkEnsembleServer {
        self.servers[index].as_ref().expect("member alive")
    }

    fn alive(&self) -> impl Iterator<Item = &ZkEnsembleServer> {
        self.servers.iter().flatten()
    }

    /// Kills member `index` (drops the whole process stack: client server,
    /// driver, peer transport). Its data directory survives.
    fn kill(&mut self, index: usize) {
        if let Some(server) = self.servers[index].take() {
            server.shutdown();
        }
    }

    /// Restarts member `index` from its data directory on its original peer
    /// address (retrying the bind while the old socket drains).
    fn restart(&mut self, index: usize) {
        let id = NodeId(index as u32 + 1);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            // Reopened per attempt: a failed bind consumed the handle.
            let persistence = ReplicaPersistence::open(&self.data_dirs[index], self.persist_config)
                .expect("reopen data dir");
            match ZkEnsembleServer::start_persistent(
                id,
                self.peer_addrs.clone(),
                "127.0.0.1:0",
                fresh_replica(id.0),
                test_config(),
                persistence,
            ) {
                Ok(server) => {
                    self.servers[index] = Some(server);
                    return;
                }
                Err(_) if Instant::now() < deadline => {
                    // The crashed member's listener may still be draining
                    // (AddrInUse) or the socket teardown racing; retry.
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(err) => panic!("restart never succeeded: {err}"),
            }
        }
    }
}

/// Counter part of a packed zxid — `last_applied_zxid()` packs the epoch in
/// the high 32 bits, so comparisons against transaction *counts* must look
/// at the low half.
fn applied_counter(server: &ZkEnsembleServer) -> u32 {
    zab::Zxid::from_u64(server.last_applied_zxid() as u64).counter
}

fn wait_until(what: &str, condition: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(15);
    while !condition() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn connect(server: &ZkEnsembleServer) -> ZkTcpClient {
    ZkTcpClient::connect(server.client_addr()).expect("client connect")
}

fn create_with_retry(client: &mut ZkTcpClient, path: &str, addrs: &[SocketAddr]) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.create(path, b"v".to_vec(), CreateMode::Persistent) {
            Ok(_) | Err(ZkError::NodeExists { .. }) => return,
            Err(_) => {
                assert!(Instant::now() < deadline, "write to {path} never recovered");
                for addr in addrs {
                    if client.reconnect_to(*addr).is_ok() {
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Structural fingerprint of a replica's tree: every path with its payload
/// and full stat — byte-for-byte identity across members.
fn fingerprint(server: &ZkEnsembleServer) -> Vec<(String, Vec<u8>, Stat)> {
    let replica = server.replica();
    let tree = replica.tree();
    tree.nodes_sorted()
        .into_iter()
        .map(|(path, node)| (path.to_string(), node.data().to_vec(), *node.stat()))
        .collect()
}

fn assert_converged(ensemble: &DurableEnsemble) {
    wait_until("zxid convergence", || {
        let zxids: Vec<i64> = ensemble.alive().map(|s| s.last_applied_zxid()).collect();
        zxids.windows(2).all(|w| w[0] == w[1])
    });
    let prints: Vec<_> = ensemble.alive().map(fingerprint).collect();
    for (i, print) in prints.iter().enumerate().skip(1) {
        if prints[0] != *print {
            let ref_paths: std::collections::BTreeSet<&String> =
                prints[0].iter().map(|(p, _, _)| p).collect();
            let got_paths: std::collections::BTreeSet<&String> =
                print.iter().map(|(p, _, _)| p).collect();
            let missing: Vec<_> = ref_paths.difference(&got_paths).collect();
            let extra: Vec<_> = got_paths.difference(&ref_paths).collect();
            if !missing.is_empty() || !extra.is_empty() {
                panic!("member {} diverged: missing {:?}, extra {:?}", i + 1, missing, extra);
            }
            for (a, b) in prints[0].iter().zip(print.iter()) {
                if a != b {
                    panic!("member {} diverged:\n  ref: {:?}\n  got: {:?}", i + 1, a, b);
                }
            }
            panic!(
                "member {} diverged in node count: {} vs {}",
                i + 1,
                prints[0].len(),
                print.len()
            );
        }
    }
}

#[test]
fn standalone_member_survives_restart_from_disk() {
    let mut ensemble = DurableEnsemble::start(
        "standalone",
        1,
        PersistConfig { snapshot_every: 8, ..PersistConfig::default() },
    );
    let mut client = connect(ensemble.server(0));
    client.create("/root", b"base".to_vec(), CreateMode::Persistent).unwrap();
    for i in 0..20 {
        client.create(&format!("/root/n-{i:02}"), vec![i], CreateMode::Persistent).unwrap();
    }
    client.set_data("/root", b"updated".to_vec(), -1).unwrap();
    let zxid_before = ensemble.server(0).last_applied_zxid();
    let print_before = fingerprint(ensemble.server(0));
    client.close();

    ensemble.kill(0);
    ensemble.restart(0);

    assert_eq!(ensemble.server(0).last_applied_zxid(), zxid_before, "zxid survives the crash");
    assert_eq!(fingerprint(ensemble.server(0)), print_before, "tree survives the crash");
    let stats = ensemble.server(0).sync_stats();
    assert!(
        stats.recovered_snapshot_zxid > 0,
        "periodic snapshotting must have bounded the replayed log"
    );

    // The restarted member keeps serving: reads and writes continue.
    let mut client = connect(ensemble.server(0));
    let (data, _) = client.get_data("/root", false).unwrap();
    assert_eq!(data, b"updated");
    client.create("/root/after-restart", vec![], CreateMode::Persistent).unwrap();
    assert!(ensemble.server(0).last_applied_zxid() > zxid_before);
    client.close();
}

#[test]
fn follower_killed_under_load_rejoins_from_disk_with_suffix_sync() {
    // Snapshots effectively disabled: the follower's entire history stays in
    // its WAL, so the rejoin must run over local history + the missed
    // suffix, never a snapshot shipment.
    let config = PersistConfig { snapshot_every: u64::MAX, ..PersistConfig::default() };
    let mut ensemble = DurableEnsemble::start("follower", 3, config);
    assert!(ensemble.server(0).is_leader());

    let addrs: Vec<SocketAddr> = [0, 1].iter().map(|&i| ensemble.server(i).client_addr()).collect();
    let mut client = connect(ensemble.server(0));
    client.create("/load", vec![], CreateMode::Persistent).unwrap();

    // Background write load against the leader throughout the crash.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let stop = Arc::clone(&stop);
        let addr = addrs[0];
        std::thread::spawn(move || {
            let mut client = ZkTcpClient::connect(addr).expect("writer connect");
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let path = format!("/load/w-{i:04}");
                if client.create(&path, vec![0u8; 32], CreateMode::Persistent).is_ok() {
                    i += 1;
                }
            }
            client.close();
            i
        })
    };

    // Let some load replicate, then kill the follower mid-stream.
    wait_until("pre-crash load", || applied_counter(ensemble.server(2)) > 10);
    let before_crash = ensemble.server(2).last_applied_zxid();
    ensemble.kill(2);
    // More writes land while the follower is down.
    wait_until("load while down", || ensemble.server(0).last_applied_zxid() > before_crash + 20);

    ensemble.restart(2);
    stop.store(true, Ordering::Relaxed);
    let total_writes = writer.join().expect("writer thread");

    wait_until("rejoin", || {
        ensemble.server(2).last_applied_zxid() >= ensemble.server(0).last_applied_zxid()
    });
    assert_converged(&ensemble);

    // Proof of a cheap rejoin: the restarted member replayed its pre-crash
    // history from disk and the leader shipped only what it missed — not
    // the full log, and no snapshot.
    let stats = ensemble.server(2).sync_stats();
    assert!(stats.recovered_txns > 10, "local history replayed ({} txns)", stats.recovered_txns);
    assert_eq!(stats.snapshots_installed, 0, "no snapshot needed for a suffix rejoin");
    let leader_stats = ensemble.server(0).sync_stats();
    assert_eq!(leader_stats.snapshots_shipped, 0);
    assert!(
        leader_stats.sync_txns_shipped < total_writes as u64 + 8,
        "leader shipped {} txns for {} total writes — that is a full-log replay",
        leader_stats.sync_txns_shipped,
        total_writes
    );
    client.close();
}

#[test]
fn lagging_member_behind_the_truncation_horizon_gets_a_shipped_snapshot() {
    // Aggressive snapshot cadence: while the victim is down, the leader
    // snapshots and truncates its log past the victim's tip, so rejoin MUST
    // go through snapshot shipping.
    let config = PersistConfig { snapshot_every: 16, ..PersistConfig::default() };
    let mut ensemble = DurableEnsemble::start("snapship", 3, config);
    let mut client = connect(ensemble.server(0));
    client.create("/data", vec![], CreateMode::Persistent).unwrap();
    wait_until("initial replication", || ensemble.server(2).last_applied_zxid() > 0);

    ensemble.kill(2);
    for i in 0..80 {
        create_with_retry(
            &mut client,
            &format!("/data/bulk-{i:03}"),
            &[ensemble.server(0).client_addr()],
        );
    }
    ensemble.restart(2);

    wait_until("snapshot rejoin", || {
        ensemble.server(2).last_applied_zxid() >= ensemble.server(0).last_applied_zxid()
    });
    assert_converged(&ensemble);

    // Polled, not sampled: the install sequence bumps the replica tip (which
    // the rejoin-wait above observes) several steps before it ticks this
    // counter, with a durable WAL reset in between — sampling once here can
    // catch the install mid-flight and read a stale zero.
    wait_until("shipped snapshot installed", || {
        ensemble.server(2).sync_stats().snapshots_installed >= 1
    });
    // Whichever member leads by now (an election may have moved leadership
    // mid-test) must have shipped at least one snapshot.
    let shipped: u64 = ensemble.alive().map(|s| s.sync_stats().snapshots_shipped).sum();
    assert!(shipped >= 1, "some member must have shipped a snapshot");

    // The shipped snapshot is durable on the receiver: kill and restart it
    // again with NO writes in between — it must come back from its own disk.
    let zxid = ensemble.server(2).last_applied_zxid();
    ensemble.kill(2);
    ensemble.restart(2);
    wait_until("second rejoin", || ensemble.server(2).last_applied_zxid() >= zxid);
    assert_converged(&ensemble);
    client.close();
}

#[test]
fn leader_killed_under_load_restarts_from_disk_and_rejoins_as_follower() {
    let config = PersistConfig { snapshot_every: u64::MAX, ..PersistConfig::default() };
    let mut ensemble = DurableEnsemble::start("leader", 3, config);
    assert!(ensemble.server(0).is_leader());
    let survivor_addrs: Vec<SocketAddr> =
        [1, 2].iter().map(|&i| ensemble.server(i).client_addr()).collect();

    let mut client = connect(ensemble.server(1));
    client.create("/t", vec![], CreateMode::Persistent).unwrap();
    for i in 0..15 {
        client.create(&format!("/t/pre-{i:02}"), vec![i], CreateMode::Persistent).unwrap();
    }
    wait_until("pre-crash replication", || ensemble.alive().all(|s| applied_counter(s) >= 16));

    // Kill the leader; the survivors elect and keep committing.
    ensemble.kill(0);
    wait_until("election", || ensemble.alive().any(|s| s.is_leader()));
    for i in 0..10 {
        create_with_retry(&mut client, &format!("/t/during-{i:02}"), &survivor_addrs);
    }

    // The old leader restarts from disk and must come back as a follower of
    // the new regime, keep its durable history, and catch up the rest.
    ensemble.restart(0);
    wait_until("old leader rejoins", || {
        ensemble.server(0).last_applied_zxid() >= ensemble.server(1).last_applied_zxid()
            && !ensemble.server(0).is_leader()
    });
    let stats = ensemble.server(0).sync_stats();
    assert!(stats.recovered_txns >= 10, "restart replayed durable history");
    assert!(ensemble.server(0).epoch() > 1, "the restarted member adopted the new epoch");

    for i in 0..5 {
        create_with_retry(&mut client, &format!("/t/post-{i:02}"), &survivor_addrs);
    }
    wait_until("full convergence", || {
        let tip = ensemble.server(1).last_applied_zxid();
        ensemble.alive().all(|s| s.last_applied_zxid() >= tip)
    });
    assert_converged(&ensemble);
    client.close();
}

#[test]
fn whole_ensemble_restart_recovers_committed_state_from_disk() {
    let config = PersistConfig { snapshot_every: 32, ..PersistConfig::default() };
    let mut ensemble = DurableEnsemble::start("full-restart", 3, config);
    let mut client = connect(ensemble.server(1));
    client.create("/cfg", b"v1".to_vec(), CreateMode::Persistent).unwrap();
    for i in 0..40 {
        client.create(&format!("/cfg/item-{i:02}"), vec![i], CreateMode::Persistent).unwrap();
    }
    wait_until("replication", || ensemble.alive().all(|s| applied_counter(s) >= 41));
    let print_before = fingerprint(ensemble.server(0));
    let zxid_before = ensemble.server(0).last_applied_zxid();
    client.close();

    // Power-cycle the whole ensemble.
    for i in 0..3 {
        ensemble.kill(i);
    }
    for i in 0..3 {
        ensemble.restart(i);
    }

    // The members recover from disk, elect a leader among themselves (their
    // recovered logs are the credentials) and serve the old state.
    wait_until("post-restart election", || ensemble.alive().any(|s| s.is_leader()));
    wait_until("recovered state", || {
        ensemble.alive().all(|s| s.last_applied_zxid() >= zxid_before)
    });
    assert_converged(&ensemble);
    assert_eq!(fingerprint(ensemble.server(0)), print_before, "committed state lost");

    // And the recovered ensemble still commits new writes.
    let addrs: Vec<SocketAddr> = (0..3).map(|i| ensemble.server(i).client_addr()).collect();
    let mut client = connect(ensemble.server(0));
    create_with_retry(&mut client, "/cfg/after-powercycle", &addrs);
    wait_until("post-restart write replicates", || {
        ensemble.alive().all(|s| s.replica().tree().contains("/cfg/after-powercycle"))
    });
    client.close();
}
