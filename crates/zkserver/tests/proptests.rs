//! Property-based tests for the data tree and the replicated cluster:
//! structural invariants hold under arbitrary operation sequences, and all
//! replicas converge to identical state regardless of which replica clients
//! talk to.

use proptest::prelude::*;

use jute::records::{CreateMode, CreateRequest, DeleteRequest, SetDataRequest};
use jute::Request;
use zkserver::tree::{split_path, validate_path};
use zkserver::{DataTree, ZkCluster};

/// A randomly generated tree operation over a bounded name space.
#[derive(Debug, Clone)]
enum TreeOp {
    Create { parent: usize, name: usize, payload: Vec<u8>, sequential: bool },
    Set { target: usize, payload: Vec<u8> },
    Delete { target: usize },
}

fn arb_op() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        (0usize..6, 0usize..6, proptest::collection::vec(any::<u8>(), 0..64), any::<bool>())
            .prop_map(|(parent, name, payload, sequential)| TreeOp::Create {
                parent,
                name,
                payload,
                sequential
            }),
        (0usize..12, proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(target, payload)| TreeOp::Set { target, payload }),
        (0usize..12,).prop_map(|(target,)| TreeOp::Delete { target }),
    ]
}

/// Checks the structural invariants of a tree: every non-root node has a live
/// parent that lists it as a child, and every parent's child list points at
/// existing nodes with a correct `num_children` count.
fn assert_tree_invariants(tree: &DataTree) {
    let paths = tree.paths();
    for path in &paths {
        if path == "/" {
            continue;
        }
        let (parent, name) = split_path(path).expect("non-root path has a parent");
        let parent_node =
            tree.get(parent).unwrap_or_else(|| panic!("parent {parent} of {path} missing"));
        assert!(parent_node.children().any(|c| c == name), "{parent} does not list {name}");
    }
    for path in &paths {
        let node = tree.get(path).expect("listed path exists");
        let mut count = 0;
        for child in node.children() {
            let child_path =
                if path == "/" { format!("/{child}") } else { format!("{path}/{child}") };
            assert!(tree.contains(&child_path), "child {child_path} of {path} missing");
            count += 1;
        }
        assert_eq!(node.stat().num_children as usize, count, "num_children mismatch at {path}");
    }
}

fn candidate_paths() -> Vec<String> {
    // A small, overlapping name space so creates/deletes collide often.
    let mut paths = vec!["/n0".to_string(), "/n1".to_string(), "/n2".to_string()];
    for parent in ["/n0", "/n1", "/n2"] {
        for child in ["a", "b", "c"] {
            paths.push(format!("{parent}/{child}"));
        }
    }
    paths
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_invariants_hold_under_random_operations(ops in proptest::collection::vec(arb_op(), 1..80)) {
        let mut tree = DataTree::new();
        let paths = candidate_paths();
        let mut zxid = 0i64;
        for op in ops {
            zxid += 1;
            match op {
                TreeOp::Create { parent, name, payload, sequential } => {
                    let parent_path = if parent % 3 == 0 { "/".to_string() } else { paths[parent % paths.len()].clone() };
                    let path = if parent_path == "/" {
                        format!("/n{}", name % 3)
                    } else {
                        format!("{parent_path}/{}", ["a", "b", "c"][name % 3])
                    };
                    if sequential {
                        if tree.contains(&parent_path) {
                            let seq = tree.next_sequence(&parent_path).unwrap();
                            let _ = tree.create(&format!("{path}{seq:010}"), payload, 0, zxid, zxid);
                        }
                    } else {
                        let _ = tree.create(&path, payload, 0, zxid, zxid);
                    }
                }
                TreeOp::Set { target, payload } => {
                    let path = &paths[target % paths.len()];
                    let _ = tree.set_data(path, payload, -1, zxid, zxid);
                }
                TreeOp::Delete { target } => {
                    let path = &paths[target % paths.len()];
                    let _ = tree.delete(path, -1, zxid);
                }
            }
            assert_tree_invariants(&tree);
        }
        // The root is indestructible and memory accounting stays consistent.
        prop_assert!(tree.contains("/"));
        prop_assert!(tree.approximate_memory_bytes() > 0);
    }

    #[test]
    fn set_data_version_always_counts_writes(writes in 1usize..30) {
        let mut tree = DataTree::new();
        tree.create("/v", vec![], 0, 1, 0).unwrap();
        for i in 0..writes {
            let stat = tree.set_data("/v", vec![i as u8], -1, i as i64 + 2, 0).unwrap();
            prop_assert_eq!(stat.version, i as i32 + 1);
        }
    }

    #[test]
    fn valid_paths_always_roundtrip_through_split(
        components in proptest::collection::vec("[a-zA-Z0-9_=-]{1,12}", 1..5)
    ) {
        let path = format!("/{}", components.join("/"));
        prop_assert!(validate_path(&path).is_ok());
        let (parent, name) = split_path(&path).unwrap();
        prop_assert_eq!(name, components.last().unwrap().as_str());
        if components.len() == 1 {
            prop_assert_eq!(parent, "/");
        } else {
            prop_assert!(validate_path(parent).is_ok());
        }
    }

    #[test]
    fn replicas_converge_regardless_of_the_connected_replica(
        choices in proptest::collection::vec((0usize..3, 0usize..4, any::<bool>()), 1..40)
    ) {
        let mut cluster = ZkCluster::new(3);
        let ids = cluster.replica_ids();
        let sessions: Vec<i64> = ids
            .iter()
            .map(|&id| cluster.connect_default(id).unwrap().session_id)
            .collect();

        for (replica_choice, node_choice, delete) in choices {
            let session = sessions[replica_choice % sessions.len()];
            let path = format!("/node-{}", node_choice % 4);
            let request = if delete {
                Request::Delete(DeleteRequest { path, version: -1 })
            } else if node_choice % 2 == 0 {
                Request::Create(CreateRequest { path, data: vec![1], mode: CreateMode::Persistent })
            } else {
                Request::SetData(SetDataRequest { path, data: vec![2], version: -1 })
            };
            cluster.submit(session, &request);
        }

        // Whatever happened, all replicas hold byte-identical trees.
        let reference = cluster.replica(ids[0]).tree().paths();
        for &id in &ids[1..] {
            prop_assert_eq!(cluster.replica(id).tree().paths(), reference.clone());
        }
    }
}

/// Builds a tree (with ephemeral owners and sequential counters) from the
/// same random operation stream the invariant test uses.
fn build_tree(ops: &[TreeOp]) -> DataTree {
    let mut tree = DataTree::new();
    let paths = candidate_paths();
    let mut zxid = 0i64;
    for op in ops {
        zxid += 1;
        match op {
            TreeOp::Create { parent, name, payload, sequential } => {
                let parent_path = if parent % 3 == 0 {
                    "/".to_string()
                } else {
                    paths[parent % paths.len()].clone()
                };
                let path = if parent_path == "/" {
                    format!("/n{}", name % 3)
                } else {
                    format!("{parent_path}/{}", ["a", "b", "c"][name % 3])
                };
                // Leaf creates alternate between persistent and ephemeral
                // (ephemeral owner ids exercise the snapshot session table).
                let owner =
                    if *name % 2 == 1 && parent_path != "/" { 7_000 + *name as i64 } else { 0 };
                if *sequential {
                    if tree.contains(&parent_path) {
                        let seq = tree.next_sequence(&parent_path).unwrap();
                        let _ = tree.create(
                            &format!("{path}{seq:010}"),
                            payload.clone(),
                            owner,
                            zxid,
                            zxid,
                        );
                    }
                } else {
                    let _ = tree.create(&path, payload.clone(), owner, zxid, zxid);
                }
            }
            TreeOp::Set { target, payload } => {
                let path = &paths[target % paths.len()];
                let _ = tree.set_data(path, payload.clone(), -1, zxid, zxid);
            }
            TreeOp::Delete { target } => {
                let path = &paths[target % paths.len()];
                let _ = tree.delete(path, -1, zxid);
            }
        }
    }
    tree
}

/// Full structural fingerprint of a tree (path, payload, stat, sequence
/// counter) for byte-level equality checks.
fn tree_fingerprint(tree: &DataTree) -> Vec<(String, Vec<u8>, jute::records::Stat, u32)> {
    tree.nodes_sorted()
        .into_iter()
        .map(|(path, node)| {
            (path.to_string(), node.data().to_vec(), *node.stat(), node.next_sequence())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn snapshot_codec_roundtrips_arbitrary_trees(
        ops in proptest::collection::vec(arb_op(), 0..80),
        sessions in proptest::collection::vec(
            (1i64..1_000_000, 1i64..120_000, proptest::collection::vec(any::<u8>(), 0..24)),
            0..8,
        ),
    ) {
        let sessions: Vec<zkserver::session::SessionRecord> = sessions
            .into_iter()
            .map(|(id, timeout_ms, password)| {
                zkserver::session::SessionRecord { id, timeout_ms, password }
            })
            .collect();
        let tree = build_tree(&ops);
        let bytes = zkserver::persist::encode_snapshot(&tree, &sessions);
        let (decoded, decoded_sessions) =
            zkserver::persist::decode_snapshot(&bytes).expect("own snapshot decodes");
        prop_assert_eq!(tree_fingerprint(&decoded), tree_fingerprint(&tree));
        prop_assert_eq!(decoded_sessions, sessions);
        // Decoded trees satisfy the same structural invariants.
        assert_tree_invariants(&decoded);
        // Encoding is deterministic (stable across replicas).
        prop_assert_eq!(zkserver::persist::encode_snapshot(&tree, &sessions), bytes);
    }

    #[test]
    fn garbage_never_panics_the_snapshot_loader(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        // Arbitrary bytes: decoding must reject or succeed, never panic.
        let _ = zkserver::persist::decode_snapshot(&bytes);
    }

    #[test]
    fn truncated_and_mutated_snapshots_never_panic(
        ops in proptest::collection::vec(arb_op(), 0..40),
        cut in any::<proptest::sample::Index>(),
        flip in any::<proptest::sample::Index>(),
    ) {
        let tree = build_tree(&ops);
        let session = zkserver::session::SessionRecord {
            id: 42,
            timeout_ms: 30_000,
            password: vec![7; 16],
        };
        let bytes = zkserver::persist::encode_snapshot(&tree, &[session]);
        // Every truncation of a valid snapshot is rejected without panicking.
        let cut = cut.index(bytes.len().max(1)).min(bytes.len().saturating_sub(1));
        prop_assert!(zkserver::persist::decode_snapshot(&bytes[..cut]).is_err());
        // A bit flip anywhere either still decodes to *some* valid tree or
        // errors — it never panics and never produces a structurally
        // invalid tree.
        let mut mutated = bytes.clone();
        if !mutated.is_empty() {
            let at = flip.index(mutated.len());
            mutated[at] ^= 0x40;
            if let Ok((tree, _)) = zkserver::persist::decode_snapshot(&mutated) {
                assert_tree_invariants(&tree);
            }
        }
    }
}
