//! End-to-end trace-propagation tests: a traced write crossing the real
//! TCP stack must come back out of the flight recorder as one coherent
//! span tree, and the trace plane must keep working across the failure
//! modes that break naive correlation (client reconnect, leader failover).
//! CI runs this file in the `trace-e2e` job.
//!
//! Everything here runs client and server in one process, so the global
//! flight recorder holds both sides' spans and `trace::spans_for` sees
//! the whole tree. Cross-process assembly (each process exports its own
//! spans, joined by trace id) is exercised by the export assertions:
//! `/trace` and `trcx` render exactly what a per-process collector would
//! ship.

use std::collections::{BTreeSet, HashMap};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use jute::records::{CreateMode, CreateRequest};
use jute::Request;
use opsplane::http::http_get;
use opsplane::words::send_word;
use trace::Stage;
use zab::{NodeId, TcpNetwork};
use zkserver::client::ZkTcpClient;
use zkserver::ensemble::{EnsembleConfig, ZkEnsembleServer};
use zkserver::persist::{PersistConfig, ReplicaPersistence};
use zkserver::ZkReplica;

/// Aggressive timers so elections and drains complete fast.
fn test_config() -> EnsembleConfig {
    EnsembleConfig {
        heartbeat_interval: Duration::from_millis(20),
        election_timeout: Duration::from_millis(150),
        election_vote_window: Duration::from_millis(80),
        write_timeout: Duration::from_secs(2),
        poll_interval: Duration::from_millis(5),
        ops_addr: Some("127.0.0.1:0".parse().expect("loopback addr")),
        ..EnsembleConfig::default()
    }
}

/// A durable single-member ensemble over a fresh temp data dir — the
/// smallest deployment whose traces carry a real `wal_fsync` span.
struct DurableMember {
    server: Option<ZkEnsembleServer>,
    data_dir: PathBuf,
}

impl DurableMember {
    fn start() -> DurableMember {
        static SEQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let data_dir =
            std::env::temp_dir().join(format!("zk-trace-e2e-{}-{seq}", std::process::id()));
        let transport = TcpNetwork::bind(NodeId(1), "127.0.0.1:0").expect("bind peer transport");
        let peer_addrs: HashMap<NodeId, SocketAddr> =
            HashMap::from([(NodeId(1), transport.local_addr())]);
        let persistence =
            ReplicaPersistence::open(&data_dir, PersistConfig::default()).expect("open data dir");
        let server = ZkEnsembleServer::start_custom(
            Arc::new(transport),
            peer_addrs,
            "127.0.0.1:0",
            Arc::new(ZkReplica::new(1)),
            test_config(),
            Some(persistence),
        )
        .expect("start durable member");
        DurableMember { server: Some(server), data_dir }
    }

    fn server(&self) -> &ZkEnsembleServer {
        self.server.as_ref().expect("member running")
    }
}

impl Drop for DurableMember {
    fn drop(&mut self) {
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
        let _ = std::fs::remove_dir_all(&self.data_dir);
    }
}

fn wait_until(what: &str, mut condition: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !condition() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The distinct stage names recorded for one trace.
fn stage_names(trace_id: u64) -> BTreeSet<&'static str> {
    trace::spans_for(trace_id).iter().map(|span| span.stage.name()).collect()
}

/// One traced write, retried until its trace carries every `expected`
/// stage. The retry absorbs the group-commit race: the driver thread may
/// fsync a write's WAL entry microseconds before the writer thread
/// reaches its own sync barrier, in which case that one trace legitimately
/// has no `wal_fsync` span (the batch it rode was attributed elsewhere).
fn traced_create_with_stages(
    client: &mut ZkTcpClient,
    prefix: &str,
    expected: &BTreeSet<&'static str>,
) -> u64 {
    let mut last: BTreeSet<&'static str> = BTreeSet::new();
    for attempt in 0..20 {
        client
            .create(&format!("{prefix}{attempt}"), b"traced".to_vec(), CreateMode::Persistent)
            .expect("traced create");
        let trace_id = client.last_trace_id();
        // Spans recorded by other threads (apply on the driver, the WAL
        // fsync) land within the write's synchronous window, but give the
        // recorder a beat for cross-thread visibility.
        for _ in 0..50 {
            last = stage_names(trace_id);
            if expected.is_subset(&last) {
                return trace_id;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    panic!("no trace carried all of {expected:?} after 20 writes; last saw {last:?}");
}

#[test]
fn plain_write_trace_spans_the_whole_durable_pipeline() {
    let member = DurableMember::start();
    let mut client = ZkTcpClient::connect(member.server().client_addr()).expect("connect");

    // The full plain-wire span set: no gateway hop (no `gw_route`) and a
    // passthrough pipeline (no enclave `open`/`seal` spans — their
    // histogram series still exist, near zero).
    let expected: BTreeSet<&'static str> =
        ["client_call", "queue_wait", "propose", "quorum_ack", "wal_fsync", "apply", "reply_flush"]
            .into_iter()
            .collect();
    let trace_id = traced_create_with_stages(&mut client, "/traced", &expected);
    let spans = trace::spans_for(trace_id);

    // One coherent tree: the client_call root parents every server-side
    // leaf, and nothing in the trace dangles off an unknown span.
    let root = spans
        .iter()
        .find(|span| span.stage == Stage::ClientCall)
        .expect("client_call root recorded");
    assert_eq!(root.parent_span_id, 0, "the root has no parent");
    assert_ne!(root.span_id, 0, "the root is a parent across the wire hop");
    for span in &spans {
        if span.stage != Stage::ClientCall {
            assert_eq!(
                span.parent_span_id,
                root.span_id,
                "{} span must hang off the client_call root",
                span.stage.name()
            );
            assert_eq!(span.span_id, 0, "server leaves are not parents");
        }
        assert!(span.end_ns >= span.start_ns, "{} runs backwards", span.stage.name());
        // Starts are provably inside the root window (the server cannot
        // see the frame before submit, nor after the reply). Ends are not:
        // the server's reply_flush end is clocked after its socket write,
        // which the client thread can beat by recording its own end first.
        assert!(
            span.start_ns >= root.start_ns && span.start_ns <= root.end_ns,
            "{} start {} escapes the client_call window [{}, {}]",
            span.stage.name(),
            span.start_ns,
            root.start_ns,
            root.end_ns
        );
    }
    // The root's detail is the path hash — never the path itself.
    let created: Vec<&trace::SpanRecord> =
        spans.iter().filter(|span| span.stage == Stage::ClientCall).collect();
    assert_eq!(created.len(), 1);
    assert_ne!(created[0].detail, 0, "client_call carries the path hash");

    // Monotone pipeline order along the single-member write path.
    let start_of = |stage: Stage| {
        spans.iter().find(|span| span.stage == stage).map(|span| span.start_ns).unwrap()
    };
    assert!(start_of(Stage::ClientCall) <= start_of(Stage::QueueWait));
    assert!(start_of(Stage::QueueWait) <= start_of(Stage::QuorumAck));
    assert!(start_of(Stage::QuorumAck) <= start_of(Stage::Propose));
    assert!(start_of(Stage::Propose) <= start_of(Stage::Apply));
    assert!(start_of(Stage::Apply) <= start_of(Stage::ReplyFlush));

    // The same stages feed the per-stage histograms, traced or not.
    let ops = member.server().ops_addr().expect("ops endpoint configured");
    let (code, text) = http_get(ops, "/metrics").expect("scrape");
    assert_eq!(code, 200);
    for stage in ["queue_wait", "propose", "quorum_ack", "wal_fsync", "apply", "reply_flush"] {
        let needle = format!("zk_stage_duration_seconds_count{{stage=\"{stage}\"}}");
        let line = text
            .lines()
            .find(|line| line.starts_with(&needle))
            .unwrap_or_else(|| panic!("{needle} missing from /metrics"));
        let count: f64 = line[needle.len()..].trim().parse().expect("sample value");
        assert!(count >= 1.0, "{needle} never observed: {line}");
    }

    // The trace exports through both ops surfaces, assembled and rooted.
    let hex = format!("{trace_id:016x}");
    let (code, body) = http_get(ops, "/trace").expect("GET /trace");
    assert_eq!(code, 200);
    let line = body
        .lines()
        .find(|line| line.contains(&hex))
        .unwrap_or_else(|| panic!("trace {hex} missing from /trace:\n{body}"));
    assert!(line.contains("\"orphan\":false"), "{line}");
    for stage in &expected {
        assert!(line.contains(&format!("\"stage\":\"{stage}\"")), "{stage} missing: {line}");
    }
    let words = send_word(member.server().client_addr(), "trcx").expect("trcx word");
    assert!(words.lines().any(|line| line.contains(&hex)), "trace {hex} missing from trcx");

    client.close();
}

#[test]
fn unsampled_traces_stay_out_of_the_export_but_in_the_histograms() {
    let member = DurableMember::start();
    // Push the slow threshold out of reach so a loaded CI host's fsync
    // stall cannot promote the unsampled probe into the export. Every
    // other test's trace is sampled, so this process-global knob is inert
    // for them.
    trace::set_slow_threshold_ns(30_000_000_000);
    let mut client = ZkTcpClient::connect(member.server().client_addr()).expect("connect");
    // Sample 1-in-1000000: these writes' traces are recorded (and would
    // export if slow) but do not qualify as sampled...
    client.sample_one_in(1_000_000);
    client.create("/unsampled-probe", b"v".to_vec(), CreateMode::Persistent).expect("create");
    // ...except the very first tick, which sampling always takes. Use the
    // second write as the unsampled probe.
    client.set_data("/unsampled-probe", b"w".to_vec(), -1).expect("set");
    let unsampled = client.last_trace_id();
    wait_until("spans recorded", || !trace::spans_for(unsampled).is_empty());

    let ops = member.server().ops_addr().expect("ops endpoint");
    let (_, body) = http_get(ops, "/trace").expect("GET /trace");
    let hex = format!("{unsampled:016x}");
    assert!(
        !body.lines().any(|line| line.contains(&hex)),
        "fast unsampled trace {hex} must not export"
    );
    // The recorder still has it (it would export past the slow threshold),
    // and the histograms counted it regardless of sampling.
    assert!(!trace::spans_for(unsampled).is_empty());
    client.close();
}

#[test]
fn reconnect_orphans_inflight_traces_and_new_traces_complete() {
    let servers = ZkEnsembleServer::start_local_ensemble(1, &test_config(), |id| {
        Arc::new(ZkReplica::new(id))
    })
    .expect("bind single member");
    let addr = servers[0].client_addr();
    let mut client = ZkTcpClient::connect(addr).expect("connect");

    // Submit a write and abandon it: reconnect before redeeming the
    // ticket. The server still commits it and records its spans, but the
    // reply never reaches the old socket, so no client_call root exists.
    let request = Request::Create(CreateRequest {
        path: "/orphaned".into(),
        data: b"v".to_vec(),
        mode: CreateMode::Persistent,
    });
    let _ticket = client.submit(&request).expect("submit");
    let orphan_trace = client.last_trace_id();
    client.reconnect_to(addr).expect("re-attach");

    // The abandoned write's server-side spans surface as an orphan trace —
    // flagged, not silently dropped.
    wait_until("orphaned write applied", || {
        trace::spans_for(orphan_trace).iter().any(|span| span.stage == Stage::Apply)
    });
    let spans = trace::spans_for(orphan_trace);
    assert!(
        !spans.iter().any(|span| span.stage == Stage::ClientCall),
        "the reply never arrived, so no client_call root may exist"
    );
    let view = trace::collect_traces()
        .into_iter()
        .find(|view| view.trace_id == orphan_trace)
        .expect("orphan trace still exports");
    assert!(view.orphan, "rootless trace must be flagged orphan");

    // The re-attached session traces cleanly: a fresh write gets a fresh
    // trace id and a complete, rooted span tree through the same pipeline.
    client.create("/after-reconnect", b"v".to_vec(), CreateMode::Persistent).expect("create");
    let fresh = client.last_trace_id();
    assert_ne!(fresh, orphan_trace, "each request mints its own trace id");
    wait_until("fresh trace rooted", || {
        let names = stage_names(fresh);
        ["client_call", "queue_wait", "propose", "quorum_ack", "apply", "reply_flush"]
            .iter()
            .all(|stage| names.contains(stage))
    });
    let view = trace::collect_traces()
        .into_iter()
        .find(|view| view.trace_id == fresh)
        .expect("fresh trace exports");
    assert!(!view.orphan);
    client.close();
}

#[test]
fn traces_survive_leader_failover() {
    let mut servers = ZkEnsembleServer::start_local_ensemble(3, &test_config(), |id| {
        Arc::new(ZkReplica::new(id))
    })
    .expect("bind loopback ensemble");
    assert!(servers[0].is_leader());
    let mut client = ZkTcpClient::connect(servers[0].client_addr()).expect("connect leader");

    // Baseline: a traced write against the healthy leader. In-memory
    // members have no WAL, so the durable stage is legitimately absent.
    let expected: BTreeSet<&'static str> =
        ["client_call", "queue_wait", "propose", "quorum_ack", "apply", "reply_flush"]
            .into_iter()
            .collect();
    let before = traced_create_with_stages(&mut client, "/pre-failover", &expected);

    // Kill the leader. The client fails over to a survivor; the next
    // traced write must produce a complete, rooted trace under the new
    // regime — propagation does not depend on any state the dead leader
    // held.
    servers.remove(0).shutdown();
    wait_until("election", || servers.iter().any(|s| s.is_leader()));
    let survivor_addrs: Vec<SocketAddr> =
        servers.iter().map(ZkEnsembleServer::client_addr).collect();
    wait_until("failover re-attach", || {
        survivor_addrs.iter().any(|&addr| client.reconnect_to(addr).is_ok())
    });
    let after = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            // Retried distinct paths: a timed-out write under the settling
            // ensemble is abandoned, never double-created.
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                traced_create_with_stages(&mut client, "/post-failover", &expected)
            })) {
                Ok(trace_id) => break trace_id,
                Err(_) => {
                    assert!(Instant::now() < deadline, "post-failover trace never completed");
                    let _ = survivor_addrs.iter().find(|&&a| client.reconnect_to(a).is_ok());
                }
            }
        }
    };
    assert_ne!(before, after);
    let root = trace::spans_for(after)
        .into_iter()
        .find(|span| span.stage == Stage::ClientCall)
        .expect("post-failover trace is rooted");
    assert_eq!(root.parent_span_id, 0);
    client.close();
}
