//! Loopback integration tests for the plain (non-encrypted) TCP transport.

use std::sync::Arc;
use std::time::Duration;

use jute::records::CreateMode;
use zkserver::net::{NetConfig, ZkTcpServer};
use zkserver::session::MonotonicClock;
use zkserver::watch::WatchEventKind;
use zkserver::{ZkError, ZkReplica, ZkTcpClient};

fn start_server() -> ZkTcpServer {
    let replica = Arc::new(ZkReplica::new(1).with_clock(Arc::new(MonotonicClock::new())));
    ZkTcpServer::bind("127.0.0.1:0", replica).expect("bind loopback")
}

#[test]
fn crud_cycle_over_a_real_socket() {
    let server = start_server();
    let mut client = ZkTcpClient::connect(server.local_addr()).unwrap();
    assert!(client.session_id() > 0);

    assert_eq!(client.create("/app", b"root".to_vec(), CreateMode::Persistent).unwrap(), "/app");
    let (data, stat) = client.get_data("/app", false).unwrap();
    assert_eq!(data, b"root");
    assert_eq!(stat.version, 0);

    let stat = client.set_data("/app", b"v2".to_vec(), 0).unwrap();
    assert_eq!(stat.version, 1);
    assert!(client.exists("/app", false).unwrap().is_some());
    assert!(client.exists("/nope", false).unwrap().is_none());

    client.create("/app/a", vec![], CreateMode::Persistent).unwrap();
    client.create("/app/b", vec![], CreateMode::Persistent).unwrap();
    assert_eq!(client.get_children("/app", false).unwrap(), vec!["a", "b"]);

    client.delete("/app/a", -1).unwrap();
    assert!(matches!(client.get_data("/app/a", false), Err(ZkError::NoNode { .. })));
    client.ping().unwrap();

    // The reply headers exposed a non-decreasing zxid stream.
    assert!(client.last_zxid() >= 4);
    client.close();
    server.shutdown();
}

#[test]
fn multi_transactions_commit_atomically_over_a_real_socket() {
    use jute::records::ErrorCode;
    use zkserver::OpResult;

    let server = start_server();
    let mut client = ZkTcpClient::connect(server.local_addr()).unwrap();
    client.create("/cfg", b"v0".to_vec(), CreateMode::Persistent).unwrap();
    let zxid_before = client.last_zxid();

    // Commit: check + set + sequential create + delete as one transaction.
    client.create("/cfg/tmp", vec![], CreateMode::Persistent).unwrap();
    let results = client
        .txn()
        .check("/cfg", 0)
        .set_data("/cfg", b"v1".to_vec(), 0)
        .create("/cfg/hist-", b"v0".to_vec(), CreateMode::PersistentSequential)
        .delete("/cfg/tmp", -1)
        .commit()
        .unwrap();
    assert_eq!(results.len(), 4);
    assert_eq!(results[2], OpResult::Create { path: "/cfg/hist-0000000000".into() });
    // The whole batch consumed exactly one zxid (plus the tmp create above).
    assert_eq!(client.last_zxid(), zxid_before + 2);
    let (data, _) = client.get_data("/cfg", false).unwrap();
    assert_eq!(data, b"v1");
    assert!(client.exists("/cfg/tmp", false).unwrap().is_none());

    // Abort: the stale check rolls everything back with typed errors.
    let err =
        client.txn().set_data("/cfg", b"v2".to_vec(), -1).check("/cfg", 0).commit().unwrap_err();
    match err {
        ZkError::BadVersion { path, .. } => assert_eq!(path, "/cfg"),
        other => panic!("expected a typed BadVersion abort, got {other:?}"),
    }
    let (data, _) = client.get_data("/cfg", false).unwrap();
    assert_eq!(data, b"v1", "aborted multi must not apply any sub-op");

    // The per-op result vector of the abort is observable via multi().
    let results = client
        .multi(vec![
            zkserver::Op::Delete(jute::records::DeleteRequest {
                path: "/cfg/hist-0000000000".into(),
                version: -1,
            }),
            zkserver::Op::Check(jute::records::CheckVersionRequest {
                path: "/missing".into(),
                version: -1,
            }),
        ])
        .unwrap();
    assert_eq!(
        results,
        vec![OpResult::Error(ErrorCode::RuntimeInconsistency), OpResult::Error(ErrorCode::NoNode),]
    );
    assert!(client.exists("/cfg/hist-0000000000", false).unwrap().is_some());

    client.close();
    server.shutdown();
}

#[test]
fn sequential_creates_over_the_wire_are_gap_free() {
    let server = start_server();
    let mut client = ZkTcpClient::connect(server.local_addr()).unwrap();
    client.create("/tasks", vec![], CreateMode::Persistent).unwrap();
    let first = client.create("/tasks/task-", vec![], CreateMode::PersistentSequential).unwrap();
    let second = client.create("/tasks/task-", vec![], CreateMode::PersistentSequential).unwrap();
    assert_eq!(first, "/tasks/task-0000000000");
    assert_eq!(second, "/tasks/task-0000000001");
    server.shutdown();
}

#[test]
fn watches_are_pushed_to_the_registering_connection() {
    let server = start_server();
    let mut watcher = ZkTcpClient::connect(server.local_addr()).unwrap();
    let mut writer = ZkTcpClient::connect(server.local_addr()).unwrap();

    watcher.create("/watched", b"v1".to_vec(), CreateMode::Persistent).unwrap();
    watcher.get_data("/watched", true).unwrap();
    writer.set_data("/watched", b"v2".to_vec(), -1).unwrap();

    let events = watcher.poll_events(Duration::from_secs(5)).unwrap();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].kind, WatchEventKind::NodeDataChanged);
    assert_eq!(events[0].path, "/watched");

    // One-shot: a second change fires nothing.
    writer.set_data("/watched", b"v3".to_vec(), -1).unwrap();
    assert!(watcher.poll_events(Duration::from_millis(100)).unwrap().is_empty());
    server.shutdown();
}

#[test]
fn watch_callback_is_invoked_on_delivery() {
    let server = start_server();
    let mut watcher = ZkTcpClient::connect(server.local_addr()).unwrap();
    let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
    let sink = Arc::clone(&seen);
    watcher.set_watch_callback(Box::new(move |event| {
        sink.lock().unwrap().push((event.path.clone(), event.kind));
    }));

    watcher.create("/cb", vec![], CreateMode::Persistent).unwrap();
    watcher.exists("/cb", true).unwrap();
    let mut writer = ZkTcpClient::connect(server.local_addr()).unwrap();
    writer.delete("/cb", -1).unwrap();

    let events = watcher.poll_events(Duration::from_secs(5)).unwrap();
    assert_eq!(events.len(), 1);
    assert_eq!(
        seen.lock().unwrap().as_slice(),
        &[("/cb".to_string(), WatchEventKind::NodeDeleted)]
    );
    server.shutdown();
}

#[test]
fn close_removes_ephemerals_and_disconnect_leaves_them_to_expire() {
    let replica = Arc::new(ZkReplica::new(1).with_clock(Arc::new(MonotonicClock::new())));
    let config = NetConfig {
        max_session_timeout_ms: 30_000,
        tick_interval: Duration::from_millis(5),
        ..NetConfig::default()
    };
    let server =
        ZkTcpServer::bind_with_config("127.0.0.1:0", Arc::clone(&replica), config).unwrap();

    let mut observer = ZkTcpClient::connect(server.local_addr()).unwrap();
    observer.create("/group", vec![], CreateMode::Persistent).unwrap();

    // Graceful close removes the ephemeral immediately.
    let mut member = ZkTcpClient::connect(server.local_addr()).unwrap();
    member.create("/group/a", vec![], CreateMode::Ephemeral).unwrap();
    assert_eq!(observer.get_children("/group", false).unwrap(), vec!["a"]);
    member.close();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while observer.get_children("/group", false).unwrap() == vec!["a"] {
        assert!(std::time::Instant::now() < deadline, "ephemeral /group/a survived close");
        std::thread::sleep(Duration::from_millis(5));
    }

    // An abrupt disconnect keeps the session until its timeout elapses; the
    // background ticker then expires it and deletes the ephemeral.
    let member = ZkTcpClient::connect_with(
        server.local_addr(),
        Arc::new(zkserver::net::PlainCredentials),
        50, // ms
    );
    let mut member = member.unwrap();
    member.create("/group/b", vec![], CreateMode::Ephemeral).unwrap();
    drop(member); // no CloseSession
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !observer.get_children("/group", false).unwrap().is_empty() {
        assert!(std::time::Instant::now() < deadline, "ephemeral /group/b never expired");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

#[test]
fn shutdown_is_not_wedged_by_a_stalled_handshake() {
    let server = start_server();
    // A client that connects but never sends its ConnectRequest leaves its
    // connection thread blocked in the handshake read; shutdown must still
    // complete by force-closing the socket.
    let stalled = std::net::TcpStream::connect(server.local_addr()).unwrap();
    std::thread::sleep(Duration::from_millis(50)); // let the server accept it
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        server.shutdown();
        done_tx.send(()).unwrap();
    });
    done_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("shutdown hung on a mid-handshake connection");
    drop(stalled);
}

#[test]
fn reconnect_reattaches_to_the_live_session() {
    let server = start_server();
    let mut client = ZkTcpClient::connect(server.local_addr()).unwrap();
    let first_session = client.session_id();
    client.create("/durable", vec![], CreateMode::Persistent).unwrap();
    client.create("/mine", vec![], CreateMode::Ephemeral).unwrap();
    client.reconnect().unwrap();
    // The session survives the reconnect (password re-attach), so its
    // ephemeral znodes are still owned and alive.
    assert_eq!(client.session_id(), first_session);
    assert!(client.exists("/durable", false).unwrap().is_some());
    assert!(client.exists("/mine", false).unwrap().is_some());
    client.set_data("/mine", b"still mine".to_vec(), -1).unwrap();
    server.shutdown();
}

#[test]
fn many_concurrent_connections_interleave_correctly() {
    let server = start_server();
    let addr = server.local_addr();
    {
        let mut setup = ZkTcpClient::connect(addr).unwrap();
        setup.create("/load", vec![], CreateMode::Persistent).unwrap();
        setup.close();
    }

    let mut handles = Vec::new();
    for t in 0..8 {
        handles.push(std::thread::spawn(move || {
            let mut client = ZkTcpClient::connect(addr).unwrap();
            let mut observed = 0i64;
            for i in 0..20 {
                let path = format!("/load/t{t}-{i}");
                client.create(&path, vec![t as u8], CreateMode::Persistent).unwrap();
                let zxid = client.last_zxid();
                assert!(zxid > observed, "write zxid did not advance: {zxid} <= {observed}");
                observed = zxid;
                let (data, _) = client.get_data(&path, false).unwrap();
                assert_eq!(data, vec![t as u8]);
                assert!(client.last_zxid() >= observed);
                observed = client.last_zxid();
            }
            client.close();
            observed
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }

    let replica = server.replica();
    assert_eq!(replica.tree().get("/load").unwrap().stat().num_children, 160);
    server.shutdown();
}

#[test]
fn pipelined_tickets_resolve_in_any_claim_order() {
    use jute::records::{GetDataRequest, SetDataRequest};
    use jute::{Request, Response};

    let server = start_server();
    let mut client = ZkTcpClient::connect(server.local_addr()).unwrap();
    client.create("/pipe", b"v0".to_vec(), CreateMode::Persistent).unwrap();

    // Submit a pipeline of requests without reading a single response: the
    // server processes them in FIFO order, the client stows each reply under
    // its ticket until claimed.
    let set = client
        .submit(&Request::SetData(SetDataRequest {
            path: "/pipe".into(),
            data: b"v1".to_vec(),
            version: -1,
        }))
        .unwrap();
    let get = client
        .submit(&Request::GetData(GetDataRequest { path: "/pipe".into(), watch: false }))
        .unwrap();
    let ping = client.submit(&Request::Ping).unwrap();

    // Claim out of submission order: last first.
    assert!(matches!(client.wait(ping).unwrap(), Response::Ping));
    let Response::GetData(read) = client.wait(get).unwrap() else { panic!("expected GetData") };
    assert_eq!(read.data, b"v1", "the earlier pipelined set must be visible to the later get");
    let Response::SetData(written) = client.wait(set).unwrap() else { panic!("expected SetData") };
    assert_eq!(written.stat.version, 1);

    // A claimed ticket is spent; polling it again is a typed error, and
    // polling with nothing in flight never blocks.
    assert!(client.poll(ping).is_err());
    assert!(client.last_zxid() > 0);
    client.close();
    server.shutdown();
}

#[test]
fn poll_returns_none_until_the_response_lands() {
    use jute::records::GetDataRequest;
    use jute::{Request, Response};

    let server = start_server();
    let mut client = ZkTcpClient::connect(server.local_addr()).unwrap();
    client.create("/poll", b"x".to_vec(), CreateMode::Persistent).unwrap();

    let ticket = client
        .submit(&Request::GetData(GetDataRequest { path: "/poll".into(), watch: false }))
        .unwrap();
    // Poll until the reply arrives; each empty poll returns promptly.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let response = loop {
        if let Some(response) = client.poll(ticket).unwrap() {
            break response;
        }
        assert!(std::time::Instant::now() < deadline, "response never arrived");
    };
    assert!(matches!(response, Response::GetData(_)));
    client.close();
    server.shutdown();
}
