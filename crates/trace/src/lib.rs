//! Always-on request tracing with a lock-free flight recorder.
//!
//! Every request entering the system can carry a [`TraceContext`] (minted
//! by the client, propagated on the wire by
//! [`jute::trace_envelope`]); each pipeline stage that touches the
//! request records a timestamped span into a **per-thread ring buffer**
//! — the flight recorder. Recording a span is a handful of relaxed
//! atomic stores into a pre-allocated slot: no locks, no allocation, no
//! syscalls on the hot path, which is what lets the recorder stay
//! enabled in production (`fig16_trace_overhead` pins the cost below 2%
//! of write throughput).
//!
//! # Span taxonomy
//!
//! | stage | tier | meaning |
//! |---|---|---|
//! | `client_call` | client | submit → reply, the whole round trip |
//! | `gw_route` | gateway | routing decision + forward to the shard |
//! | `open` | member (enclave) | entry-enclave decrypt of the request |
//! | `queue_wait` | member | time parked in the single-writer queue |
//! | `propose` | member (leader) | ZAB proposal broadcast |
//! | `quorum_ack` | member (leader) | proposal → quorum acknowledgement |
//! | `wal_fsync` | member | group-commit fsync batch the write rode |
//! | `apply` | member | transaction applied to the data tree |
//! | `seal` | member (enclave) | entry-enclave encrypt of the response |
//! | `reply_flush` | member | response serialization + socket write |
//!
//! # Trust model
//!
//! The trace plane lives entirely **outside the TCB**, like the routing
//! gateway: the envelope is prepended outside the transport cipher, and
//! spans never carry plaintext paths — path-bearing spans store only a
//! 64-bit FNV hash of the (ciphertext) path via [`path_hash`].
//!
//! # Export
//!
//! [`export_json_lines`] renders one JSON object per trace: every trace
//! with the sampled flag, plus any trace — sampled or not — whose
//! end-to-end duration exceeds the [slow threshold](set_slow_threshold_ns).
//! Traces missing their `client_call` root (the client died, reconnected
//! mid-flight, or lives in another process) are flagged `"orphan": true`
//! rather than dropped. The recorder is per-process: a member, a gateway
//! and a client each export the spans *they* recorded.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

pub use jute::trace_envelope::TraceContext;

/// Slots per thread-local ring. Power of two; the ring wraps, keeping
/// the most recent spans recorded by that thread.
const RING_SLOTS: usize = 1024;

/// Spans preserved from exited threads (clients, short-lived workers).
const GRAVEYARD_CAP: usize = 16 * 1024;

/// Most recent traces included in one export, newest last.
const MAX_EXPORT_TRACES: usize = 512;

// ---------------------------------------------------------------------------
// Stage taxonomy
// ---------------------------------------------------------------------------

/// Named pipeline stages a span can be attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Client-side round trip: submit → reply received.
    ClientCall = 0,
    /// Gateway routing decision and forward to the owning shard.
    GwRoute = 1,
    /// Entry-enclave decrypt of the inbound request.
    Open = 2,
    /// Time parked in the member's single-writer queue.
    QueueWait = 3,
    /// ZAB proposal broadcast by the leader.
    Propose = 4,
    /// Proposal broadcast → quorum acknowledgement.
    QuorumAck = 5,
    /// Group-commit WAL fsync batch the write rode to disk.
    WalFsync = 6,
    /// Committed transaction applied to the data tree.
    Apply = 7,
    /// Entry-enclave encrypt of the outbound response.
    Seal = 8,
    /// Response serialization and socket write.
    ReplyFlush = 9,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 10] = [
        Stage::ClientCall,
        Stage::GwRoute,
        Stage::Open,
        Stage::QueueWait,
        Stage::Propose,
        Stage::QuorumAck,
        Stage::WalFsync,
        Stage::Apply,
        Stage::Seal,
        Stage::ReplyFlush,
    ];

    /// The stage's stable snake_case name, as exported and as used in
    /// the `stage` label of `zk_stage_duration_seconds`.
    pub fn name(self) -> &'static str {
        match self {
            Stage::ClientCall => "client_call",
            Stage::GwRoute => "gw_route",
            Stage::Open => "open",
            Stage::QueueWait => "queue_wait",
            Stage::Propose => "propose",
            Stage::QuorumAck => "quorum_ack",
            Stage::WalFsync => "wal_fsync",
            Stage::Apply => "apply",
            Stage::Seal => "seal",
            Stage::ReplyFlush => "reply_flush",
        }
    }

    fn from_u8(value: u8) -> Option<Stage> {
        Stage::ALL.into_iter().find(|stage| *stage as u8 == value)
    }
}

// ---------------------------------------------------------------------------
// Clock and ids
// ---------------------------------------------------------------------------

fn clock_base() -> &'static (Instant, u64) {
    static BASE: OnceLock<(Instant, u64)> = OnceLock::new();
    BASE.get_or_init(|| {
        let unix_ns =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0);
        (Instant::now(), unix_ns)
    })
}

/// Nanoseconds since the Unix epoch on a hybrid clock: one wall-clock
/// reading at first use, advanced by a monotonic [`Instant`] thereafter —
/// so timestamps are comparable across processes (to wall-clock accuracy)
/// and strictly monotone within one.
pub fn now_ns() -> u64 {
    let (instant, unix_ns) = clock_base();
    unix_ns.wrapping_add(instant.elapsed().as_nanos() as u64)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Mints a process-unique, non-zero 64-bit id for a trace or span.
pub fn new_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let tick = COUNTER.fetch_add(1, Ordering::Relaxed);
    let seed = clock_base().1 ^ (tick << 1);
    let id = splitmix64(seed.wrapping_add(tick));
    if id == 0 {
        1
    } else {
        id
    }
}

/// 64-bit FNV-1a hash of a path. Spans never carry path bytes — only
/// this hash, computed over whatever representation crossed the wire
/// (ciphertext in secure deployments), keeping the trace plane outside
/// the TCB.
pub fn path_hash(path: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in path.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Runtime knobs
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(true);
/// Default slow-trace export threshold: 50 ms end-to-end.
const DEFAULT_SLOW_THRESHOLD_NS: u64 = 50_000_000;
static SLOW_THRESHOLD_NS: AtomicU64 = AtomicU64::new(DEFAULT_SLOW_THRESHOLD_NS);

/// Turns the recorder on or off process-wide. Off, [`record`] is a
/// single relaxed load — the knob `fig16_trace_overhead` flips to
/// measure the recorder's own cost.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the recorder is currently accepting spans.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Sets the slow-trace threshold: any trace whose end-to-end duration
/// meets or exceeds it is exported even when not sampled.
pub fn set_slow_threshold_ns(threshold_ns: u64) {
    SLOW_THRESHOLD_NS.store(threshold_ns, Ordering::Relaxed);
}

/// The current slow-trace export threshold in nanoseconds.
pub fn slow_threshold_ns() -> u64 {
    SLOW_THRESHOLD_NS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Thread-local current context
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// Installs `ctx` as this thread's ambient trace context, so deep layers
/// (the WAL fsync, the ZAB proposer, the enclave) can attribute spans
/// without threading a context parameter through every signature.
pub fn set_current(ctx: Option<TraceContext>) {
    CURRENT.with(|cell| cell.set(ctx));
}

/// This thread's ambient trace context, if a traced request is in flight.
pub fn current() -> Option<TraceContext> {
    CURRENT.with(Cell::get)
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// One recorded span, as read back out of the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// The span's own id — non-zero only for spans that become parents
    /// across a hop (`client_call`, `gw_route`); leaf spans use 0.
    pub span_id: u64,
    /// Id of the parent span (0 for the trace root).
    pub parent_span_id: u64,
    /// Pipeline stage this span measures.
    pub stage: Stage,
    /// Propagated flag bits (bit 0 = sampled).
    pub flags: u8,
    /// Span start, [`now_ns`] clock.
    pub start_ns: u64,
    /// Span end, [`now_ns`] clock.
    pub end_ns: u64,
    /// Stage-specific detail: a [`path_hash`], shard index, zxid — never
    /// plaintext.
    pub detail: u64,
}

/// A slot is valid when `seq` is non-zero and even; writers bump it odd,
/// store the fields, then bump it even (seqlock), so a torn concurrent
/// read is detected and retried or skipped by the exporter.
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    trace_id: AtomicU64,
    span_id: AtomicU64,
    parent_span_id: AtomicU64,
    start_ns: AtomicU64,
    end_ns: AtomicU64,
    detail: AtomicU64,
    meta: AtomicU64,
}

impl Slot {
    fn write(&self, record: &SpanRecord) {
        let seq = self.seq.load(Ordering::Relaxed);
        self.seq.store(seq.wrapping_add(1), Ordering::Release);
        self.trace_id.store(record.trace_id, Ordering::Relaxed);
        self.span_id.store(record.span_id, Ordering::Relaxed);
        self.parent_span_id.store(record.parent_span_id, Ordering::Relaxed);
        self.start_ns.store(record.start_ns, Ordering::Relaxed);
        self.end_ns.store(record.end_ns, Ordering::Relaxed);
        self.detail.store(record.detail, Ordering::Relaxed);
        self.meta.store(
            u64::from(record.stage as u8) | (u64::from(record.flags) << 8),
            Ordering::Relaxed,
        );
        self.seq.store(seq.wrapping_add(2), Ordering::Release);
    }

    fn read(&self) -> Option<SpanRecord> {
        for _ in 0..4 {
            let before = self.seq.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                return None;
            }
            let record = SpanRecord {
                trace_id: self.trace_id.load(Ordering::Relaxed),
                span_id: self.span_id.load(Ordering::Relaxed),
                parent_span_id: self.parent_span_id.load(Ordering::Relaxed),
                start_ns: self.start_ns.load(Ordering::Relaxed),
                end_ns: self.end_ns.load(Ordering::Relaxed),
                detail: self.detail.load(Ordering::Relaxed),
                stage: Stage::ClientCall,
                flags: 0,
            };
            let meta = self.meta.load(Ordering::Relaxed);
            let after = self.seq.load(Ordering::Acquire);
            if before == after {
                let stage = Stage::from_u8((meta & 0xFF) as u8)?;
                return Some(SpanRecord { stage, flags: ((meta >> 8) & 0xFF) as u8, ..record });
            }
        }
        None
    }
}

struct ThreadRing {
    head: AtomicUsize,
    slots: Vec<Slot>,
}

impl ThreadRing {
    fn new() -> ThreadRing {
        ThreadRing {
            head: AtomicUsize::new(0),
            slots: (0..RING_SLOTS).map(|_| Slot::default()).collect(),
        }
    }

    fn push(&self, record: &SpanRecord) {
        let index = self.head.fetch_add(1, Ordering::Relaxed) % RING_SLOTS;
        self.slots[index].write(record);
    }

    fn drain_valid(&self) -> Vec<SpanRecord> {
        self.slots.iter().filter_map(Slot::read).collect()
    }

    fn clear(&self) {
        for slot in &self.slots {
            slot.seq.store(0, Ordering::Release);
        }
        self.head.store(0, Ordering::Relaxed);
    }
}

struct Recorder {
    rings: Mutex<Vec<Weak<ThreadRing>>>,
    graveyard: Mutex<Vec<SpanRecord>>,
}

fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder {
        rings: Mutex::new(Vec::new()),
        graveyard: Mutex::new(Vec::new()),
    })
}

/// Keeps the ring registered while the thread lives; on thread exit the
/// ring's surviving spans are folded into the bounded graveyard so a
/// short-lived thread's spans still export.
struct RingHandle(Arc<ThreadRing>);

impl Drop for RingHandle {
    fn drop(&mut self) {
        let spans = self.0.drain_valid();
        let recorder = recorder();
        if !spans.is_empty() {
            let mut graveyard = recorder.graveyard.lock().unwrap_or_else(|e| e.into_inner());
            graveyard.extend(spans);
            if graveyard.len() > GRAVEYARD_CAP {
                let excess = graveyard.len() - GRAVEYARD_CAP;
                graveyard.drain(..excess);
            }
        }
        let mut rings = recorder.rings.lock().unwrap_or_else(|e| e.into_inner());
        rings.retain(|ring| ring.strong_count() > 0);
    }
}

thread_local! {
    static RING: RingHandle = {
        let ring = Arc::new(ThreadRing::new());
        let recorder = recorder();
        recorder
            .rings
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::downgrade(&ring));
        RingHandle(ring)
    };
}

/// Records one finished span into this thread's flight-recorder ring.
/// Zero allocation, zero locking; a no-op while the recorder is
/// [disabled](set_enabled).
pub fn record(record: SpanRecord) {
    if !enabled() || record.trace_id == 0 {
        return;
    }
    RING.with(|handle| handle.0.push(&record));
}

/// Records a leaf span (own span id 0) under `ctx` for `stage`, ending
/// now.
pub fn record_leaf(stage: Stage, ctx: &TraceContext, start_ns: u64, detail: u64) {
    record(SpanRecord {
        trace_id: ctx.trace_id,
        span_id: 0,
        parent_span_id: ctx.span_id,
        stage,
        flags: ctx.flags,
        start_ns,
        end_ns: now_ns(),
        detail,
    });
}

/// Records a leaf span under the thread's [ambient context](current),
/// if any — the deep-layer (`wal_fsync`, `propose`, enclave) entry point.
pub fn record_current(stage: Stage, start_ns: u64, detail: u64) {
    if let Some(ctx) = current() {
        record_leaf(stage, &ctx, start_ns, detail);
    }
}

/// Snapshots every span currently held by the recorder: all live
/// per-thread rings plus spans preserved from exited threads.
pub fn snapshot() -> Vec<SpanRecord> {
    let recorder = recorder();
    let rings: Vec<Arc<ThreadRing>> = {
        let guard = recorder.rings.lock().unwrap_or_else(|e| e.into_inner());
        guard.iter().filter_map(Weak::upgrade).collect()
    };
    let mut spans: Vec<SpanRecord> =
        recorder.graveyard.lock().unwrap_or_else(|e| e.into_inner()).clone();
    for ring in rings {
        spans.extend(ring.drain_valid());
    }
    spans
}

/// All recorded spans of one trace, sorted by start time.
pub fn spans_for(trace_id: u64) -> Vec<SpanRecord> {
    let mut spans: Vec<SpanRecord> =
        snapshot().into_iter().filter(|span| span.trace_id == trace_id).collect();
    spans.sort_by_key(|span| (span.start_ns, span.stage as u8));
    spans
}

/// Empties the recorder (all rings and the graveyard). Test scaffolding;
/// concurrent writers may land spans immediately after.
pub fn clear() {
    let recorder = recorder();
    let rings: Vec<Arc<ThreadRing>> = {
        let guard = recorder.rings.lock().unwrap_or_else(|e| e.into_inner());
        guard.iter().filter_map(Weak::upgrade).collect()
    };
    for ring in rings {
        ring.clear();
    }
    recorder.graveyard.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

/// One assembled trace, as exported.
#[derive(Debug, Clone)]
pub struct TraceView {
    /// The trace id shared by every span below.
    pub trace_id: u64,
    /// True when no `client_call` root was recorded in this process —
    /// the client lives elsewhere, died, or re-attached mid-flight.
    pub orphan: bool,
    /// Earliest span start → latest span end.
    pub duration_ns: u64,
    /// The trace's spans, sorted by start time.
    pub spans: Vec<SpanRecord>,
}

/// Assembles every exportable trace: all sampled traces plus any trace
/// whose duration meets the [slow threshold](set_slow_threshold_ns),
/// newest last, capped at the most recent 512.
pub fn collect_traces() -> Vec<TraceView> {
    let threshold = slow_threshold_ns();
    let mut grouped: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
    for span in snapshot() {
        grouped.entry(span.trace_id).or_default().push(span);
    }
    let mut traces: Vec<TraceView> = grouped
        .into_iter()
        .filter_map(|(trace_id, mut spans)| {
            spans.sort_by_key(|span| (span.start_ns, span.stage as u8));
            let start = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
            let end = spans.iter().map(|s| s.end_ns).max().unwrap_or(0);
            let duration_ns = end.saturating_sub(start);
            let sampled = spans.iter().any(|s| s.flags & TraceContext::FLAG_SAMPLED != 0);
            if !sampled && duration_ns < threshold {
                return None;
            }
            let orphan = !spans.iter().any(|s| s.stage == Stage::ClientCall);
            Some(TraceView { trace_id, orphan, duration_ns, spans })
        })
        .collect();
    traces.sort_by_key(|trace| trace.spans.first().map(|s| s.start_ns).unwrap_or(0));
    if traces.len() > MAX_EXPORT_TRACES {
        let excess = traces.len() - MAX_EXPORT_TRACES;
        traces.drain(..excess);
    }
    traces
}

/// Renders every exportable trace as JSON lines — one self-contained
/// JSON object per line, the payload of `GET /trace` and the `trcx`
/// admin word.
pub fn export_json_lines() -> String {
    let mut out = String::new();
    for trace in collect_traces() {
        let _ = write!(
            out,
            "{{\"trace_id\":\"{:016x}\",\"orphan\":{},\"duration_ns\":{},\"spans\":[",
            trace.trace_id, trace.orphan, trace.duration_ns
        );
        for (index, span) in trace.spans.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":\"{}\",\"span_id\":\"{:016x}\",\"parent_span_id\":\"{:016x}\",\
                 \"start_ns\":{},\"end_ns\":{},\"sampled\":{},\"detail\":\"{:016x}\"}}",
                span.stage.name(),
                span.span_id,
                span.parent_span_id,
                span.start_ns,
                span.end_ns,
                span.flags & TraceContext::FLAG_SAMPLED != 0,
                span.detail,
            );
        }
        out.push_str("]}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that record spans: the recorder (and its
    /// enabled flag) is process-global, so a test flipping the kill
    /// switch must not overlap one asserting its spans landed.
    fn test_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn sampled_ctx() -> TraceContext {
        TraceContext { trace_id: new_id(), span_id: new_id(), flags: TraceContext::FLAG_SAMPLED }
    }

    #[test]
    fn clock_is_monotone() {
        let mut last = now_ns();
        for _ in 0..1000 {
            let now = now_ns();
            assert!(now >= last);
            last = now;
        }
    }

    #[test]
    fn ids_are_nonzero_and_distinct() {
        let ids: std::collections::HashSet<u64> = (0..10_000).map(|_| new_id()).collect();
        assert_eq!(ids.len(), 10_000);
        assert!(!ids.contains(&0));
    }

    #[test]
    fn recorded_spans_come_back_in_snapshots() {
        let _guard = test_guard();
        let ctx = sampled_ctx();
        let start = now_ns();
        record_leaf(Stage::Propose, &ctx, start, 7);
        let spans = spans_for(ctx.trace_id);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].stage, Stage::Propose);
        assert_eq!(spans[0].parent_span_id, ctx.span_id);
        assert_eq!(spans[0].detail, 7);
        assert!(spans[0].end_ns >= spans[0].start_ns);
    }

    #[test]
    fn disabled_recorder_drops_spans() {
        let _guard = test_guard();
        let ctx = sampled_ctx();
        set_enabled(false);
        record_leaf(Stage::Apply, &ctx, now_ns(), 0);
        set_enabled(true);
        assert!(spans_for(ctx.trace_id).is_empty());
    }

    #[test]
    fn ring_wraps_keeping_the_most_recent_spans() {
        let _guard = test_guard();
        let ctx = sampled_ctx();
        for i in 0..(RING_SLOTS as u64 + 64) {
            record_leaf(Stage::Apply, &ctx, now_ns(), i);
        }
        let spans = spans_for(ctx.trace_id);
        assert!(spans.len() <= RING_SLOTS);
        // The newest span survived the wrap.
        assert!(spans.iter().any(|span| span.detail == RING_SLOTS as u64 + 63));
        // The oldest was overwritten.
        assert!(!spans.iter().any(|span| span.detail == 0));
    }

    #[test]
    fn orphan_traces_are_flagged_not_dropped() {
        let _guard = test_guard();
        let ctx = sampled_ctx();
        record_leaf(Stage::QueueWait, &ctx, now_ns(), 0);
        record_leaf(Stage::Apply, &ctx, now_ns(), 0);
        let trace = collect_traces()
            .into_iter()
            .find(|trace| trace.trace_id == ctx.trace_id)
            .expect("orphan trace exported");
        assert!(trace.orphan);

        let rooted = sampled_ctx();
        record(SpanRecord {
            trace_id: rooted.trace_id,
            span_id: rooted.span_id,
            parent_span_id: 0,
            stage: Stage::ClientCall,
            flags: rooted.flags,
            start_ns: now_ns(),
            end_ns: now_ns(),
            detail: 0,
        });
        let trace = collect_traces()
            .into_iter()
            .find(|trace| trace.trace_id == rooted.trace_id)
            .expect("rooted trace exported");
        assert!(!trace.orphan);
    }

    #[test]
    fn unsampled_traces_export_only_past_the_slow_threshold() {
        let _guard = test_guard();
        let quick = TraceContext { trace_id: new_id(), span_id: new_id(), flags: 0 };
        let start = now_ns();
        record(SpanRecord {
            trace_id: quick.trace_id,
            span_id: 0,
            parent_span_id: quick.span_id,
            stage: Stage::Apply,
            flags: 0,
            start_ns: start,
            end_ns: start + 1_000,
            detail: 0,
        });
        assert!(
            !collect_traces().iter().any(|trace| trace.trace_id == quick.trace_id),
            "a fast unsampled trace must not export"
        );

        let slow = TraceContext { trace_id: new_id(), span_id: new_id(), flags: 0 };
        record(SpanRecord {
            trace_id: slow.trace_id,
            span_id: 0,
            parent_span_id: slow.span_id,
            stage: Stage::Apply,
            flags: 0,
            start_ns: start,
            end_ns: start + slow_threshold_ns() + 1,
            detail: 0,
        });
        assert!(
            collect_traces().iter().any(|trace| trace.trace_id == slow.trace_id),
            "a slow unsampled trace must export"
        );
    }

    #[test]
    fn json_export_is_one_object_per_line_with_sorted_spans() {
        let _guard = test_guard();
        let ctx = sampled_ctx();
        let base = now_ns();
        record_leaf(Stage::Apply, &ctx, base + 500, 0);
        record(SpanRecord {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_span_id: 0,
            stage: Stage::ClientCall,
            flags: ctx.flags,
            start_ns: base,
            end_ns: now_ns(),
            detail: 0,
        });
        let rendered = export_json_lines();
        let line = rendered
            .lines()
            .find(|line| line.contains(&format!("{:016x}", ctx.trace_id)))
            .expect("trace exported");
        assert!(line.starts_with('{') && line.ends_with('}'));
        let client = line.find("client_call").expect("root span present");
        let apply = line.find("\"apply\"").expect("apply span present");
        assert!(client < apply, "spans sorted by start time");
        assert!(line.contains("\"orphan\":false"));
    }

    #[test]
    fn spans_survive_thread_exit_via_the_graveyard() {
        let _guard = test_guard();
        let ctx = sampled_ctx();
        let handle = std::thread::spawn(move || {
            record_leaf(Stage::WalFsync, &ctx, now_ns(), 3);
        });
        handle.join().expect("worker thread");
        let spans = spans_for(ctx.trace_id);
        assert_eq!(spans.len(), 1, "exited thread's span must survive");
        assert_eq!(spans[0].stage, Stage::WalFsync);
    }

    #[test]
    fn ambient_context_round_trips() {
        let _guard = test_guard();
        assert!(current().is_none());
        let ctx = sampled_ctx();
        set_current(Some(ctx));
        assert_eq!(current(), Some(ctx));
        let start = now_ns();
        record_current(Stage::WalFsync, start, 0);
        set_current(None);
        assert!(current().is_none());
        record_current(Stage::WalFsync, start, 0);
        assert_eq!(spans_for(ctx.trace_id).len(), 1, "no ambient ctx, no span");
    }

    #[test]
    fn path_hash_is_stable_and_spreads() {
        assert_eq!(path_hash("/app/orders"), path_hash("/app/orders"));
        assert_ne!(path_hash("/app/orders"), path_hash("/app/order"));
        assert_ne!(path_hash("/a"), path_hash("/b"));
    }
}
