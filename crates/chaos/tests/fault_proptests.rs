//! Property tests: arbitrary small fault schedules against a durable
//! three-member ensemble must never panic the driver, the WAL recovery
//! path, or the verification pipeline. (Whether a given pathological
//! schedule *passes* verification is asserted by the named scenario matrix;
//! here the property is that the harness and the ensemble stay well-defined
//! under any schedule at all.)

use std::time::Duration;

use proptest::prelude::*;

use chaos::plane::LinkFaults;
use chaos::scenario::{run_schedule, EnsembleSpec, FaultAction, FaultEvent, RunOptions};
use zab::NodeId;

fn arb_action() -> impl Strategy<Value = FaultAction> {
    prop_oneof![
        (0u32..200, 0u32..200, 0u32..200, 1u64..40).prop_map(|(drop, dup, delay, max)| {
            FaultAction::SetFaults(LinkFaults {
                drop_permille: drop,
                duplicate_permille: dup,
                delay_permille: delay,
                max_delay: Duration::from_millis(max),
            })
        }),
        Just(FaultAction::Partition(vec![vec![NodeId(1)], vec![NodeId(2), NodeId(3)]])),
        (1u32..=3).prop_map(|n| FaultAction::Isolate(NodeId(n))),
        Just(FaultAction::Heal),
        (0usize..3).prop_map(FaultAction::Kill),
        (0usize..3).prop_map(FaultAction::Restart),
        (0usize..3).prop_map(FaultAction::CorruptStorage),
        (0usize..3, -5_000i64..5_000).prop_map(|(i, ms)| FaultAction::SkewClock(i, ms)),
    ]
}

fn arb_schedule() -> impl Strategy<Value = Vec<FaultEvent>> {
    prop::collection::vec((50u64..900, arb_action()), 0..5).prop_map(|events| {
        events
            .into_iter()
            .map(|(at, action)| FaultEvent { at: Duration::from_millis(at), action })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn arbitrary_schedules_never_panic_the_driver(
        seed in 0u64..u64::MAX,
        schedule in arb_schedule(),
    ) {
        let options = RunOptions {
            seed,
            secure: false,
            duration: Duration::from_millis(1_000),
            clients: 2,
        };
        // Durable spec: every kill is recoverable, so the executor's restore
        // phase can always bring the ensemble back before verifying. The
        // property under test is "no panic, a well-formed verdict either
        // way" — the Result itself may legitimately be Err for harness
        // reasons under pathological schedules.
        let _ = run_schedule(EnsembleSpec::durable(3, 32), &schedule, &options);
    }
}
