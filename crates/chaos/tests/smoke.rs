//! Smoke runs of the scenario matrix: a partition scenario and a
//! message-chaos scenario, plain and secure, at fixed seeds. The full
//! matrix runs in CI via the `chaos` binary; these keep `cargo test`
//! honest about the harness itself.

use chaos::scenario::{find, run_scenario};

#[test]
fn leader_partition_scenario_passes_plain() {
    let scenario = find("leader-partition").expect("scenario is in the catalogue");
    let report = run_scenario(&scenario, 1, false).unwrap_or_else(|f| panic!("{f}"));
    assert!(report.ops > 0, "workload made no progress");
    assert!(report.history_len > 0, "nothing recorded against the register");
    assert!(report.frames > 0, "fault plane never consulted");
}

#[test]
fn message_chaos_scenario_passes_plain() {
    let scenario = find("message-chaos").expect("scenario is in the catalogue");
    let report = run_scenario(&scenario, 2, false).unwrap_or_else(|f| panic!("{f}"));
    assert!(report.dropped + report.duplicated + report.delayed > 0, "no faults were injected");
}

#[test]
fn leader_partition_scenario_passes_secure() {
    let scenario = find("leader-partition").expect("scenario is in the catalogue");
    let report = run_scenario(&scenario, 3, true).unwrap_or_else(|f| panic!("{f}"));
    assert!(report.ops > 0, "secure workload made no progress");
}

#[test]
fn graceful_leader_drain_scenario_passes_plain() {
    // The drain executor itself asserts the probe flip, the handoff, and
    // `mntr` counter monotonicity; the run verdict adds linearizability of
    // the concurrent workload (no acknowledged write lost to the handoff).
    let scenario = find("graceful-leader-drain").expect("scenario is in the catalogue");
    let report = run_scenario(&scenario, 4, false).unwrap_or_else(|f| panic!("{f}"));
    assert!(report.ops > 0, "workload made no progress through the drain");
    assert!(report.max_epoch >= 2, "the drain never handed leadership to a new epoch");
}
