//! Chaos scenario `shard-leader-crash-behind-gateway`: two shards of three
//! members each behind the routing gateway; one shard's leader is killed
//! under mixed load. The other shard must never stall, the crashed shard
//! must recover by electing a new leader, and each shard's recorded
//! history must stay linearizable (`chaos::checker`) — the gateway must
//! not smear one shard's outage across shard boundaries.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use chaos::checker;
use chaos::history::{decode_value, encode_value, HistoryRecorder, OpKind, OpRecord, Outcome};
use gateway::{Gateway, GatewayConfig, ShardMap};
use jute::records::CreateMode;
use zkserver::client::ZkTcpClient;
use zkserver::ensemble::{EnsembleConfig, ZkEnsembleServer};
use zkserver::{ZkError, ZkReplica};

const SHARDS: usize = 2;
const WORKERS_PER_SHARD: usize = 2;
/// The register each shard's workers hammer.
const REGISTERS: [&str; SHARDS] = ["/reg", "/app/reg"];

fn shard_config(subtree_root: Option<&str>) -> EnsembleConfig {
    let mut config = EnsembleConfig {
        heartbeat_interval: Duration::from_millis(20),
        election_timeout: Duration::from_millis(150),
        election_vote_window: Duration::from_millis(80),
        write_timeout: Duration::from_secs(1),
        poll_interval: Duration::from_millis(5),
        ..EnsembleConfig::default()
    };
    config.net.subtree_root = subtree_root.map(str::to_string);
    config
}

/// One workload client bound to a single shard's register: random
/// reads and unique-value writes through the gateway, reconnecting with a
/// fresh session (and thus a fresh history client id) after failures.
#[allow(clippy::needless_pass_by_value)]
fn worker_loop(
    global_index: u32,
    shard: usize,
    gateway_addr: SocketAddr,
    recorder: Arc<HistoryRecorder>,
    ops_done: Arc<Vec<AtomicU64>>,
    stop: Arc<AtomicBool>,
) {
    let register = REGISTERS[shard];
    let mut client: Option<ZkTcpClient> = None;
    let mut seq: u64 = 0;
    let mut generation: u32 = 0;

    while !stop.load(Ordering::Relaxed) {
        let Some(active) = client.as_mut() else {
            match ZkTcpClient::connect(gateway_addr) {
                Ok(fresh) => {
                    generation += 1;
                    client = Some(fresh);
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
            continue;
        };

        let invoke_ns = recorder.now_ns();
        let (kind, outcome, lost) = if seq.is_multiple_of(2) {
            match active.get_data(register, false) {
                Ok((data, stat)) => (
                    OpKind::Read,
                    Outcome::ReadOk { version: stat.version, value: decode_value(&data) },
                    false,
                ),
                // Reads have no effect: any failure is a definite no-op for
                // the register, but the session may be gone.
                Err(err) => (OpKind::Read, Outcome::Rejected, connection_dead(&err)),
            }
        } else {
            let value = (u64::from(global_index + 1) << 32) | seq;
            match active.set_data(register, encode_value(value), -1) {
                Ok(stat) => {
                    (OpKind::Write { value }, Outcome::WriteOk { version: stat.version }, false)
                }
                // A failed write may still commit behind the crash —
                // conservatively leave it in limbo for the checker.
                Err(err) => {
                    (OpKind::Write { value }, Outcome::Indeterminate, connection_dead(&err))
                }
            }
        };
        let response_ns = recorder.now_ns();
        recorder.record(OpRecord {
            client: (generation << 8) | global_index,
            invoke_ns,
            response_ns,
            kind,
            outcome,
        });
        seq += 1;
        ops_done[shard].fetch_add(1, Ordering::Relaxed);

        if lost {
            client = None;
        } else {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

fn connection_dead(err: &ZkError) -> bool {
    matches!(err, ZkError::ConnectionLoss { .. } | ZkError::Marshalling { .. })
}

fn create_with_retry(client: &mut ZkTcpClient, path: &str, data: Vec<u8>) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match client.create(path, data.clone(), CreateMode::Persistent) {
            Ok(_) | Err(ZkError::NodeExists { .. }) => return,
            Err(err) if Instant::now() >= deadline => panic!("create {path}: {err}"),
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

#[test]
fn shard_leader_crash_behind_gateway() {
    // Two shards, three in-memory members each. Shard 1 owns /app; the
    // crash lands on its leader.
    let mut shards: Vec<Vec<Option<ZkEnsembleServer>>> = Vec::new();
    for guard in [None, Some("/app")] {
        let members = ZkEnsembleServer::start_local_ensemble(3, &shard_config(guard), |id| {
            Arc::new(ZkReplica::new(id))
        })
        .expect("bind shard ensemble");
        shards.push(members.into_iter().map(Some).collect());
    }
    let shard_addrs: Vec<Vec<SocketAddr>> = shards
        .iter()
        .map(|members| members.iter().map(|m| m.as_ref().unwrap().client_addr()).collect())
        .collect();

    // Bootstrap the /app boundary node directly on shard 1, then the two
    // registers through the gateway.
    let map = ShardMap::new(SHARDS, &[("/", 0), ("/app", 1)]).expect("valid map");
    let gateway = Gateway::bind("127.0.0.1:0", GatewayConfig::new(map, shard_addrs.clone()))
        .expect("bind gateway");
    {
        let mut boot = ZkTcpClient::connect(shard_addrs[1][0]).expect("bootstrap");
        create_with_retry(&mut boot, "/app", Vec::new());
        boot.close();
        let mut seed = ZkTcpClient::connect(gateway.local_addr()).expect("seed");
        for register in REGISTERS {
            create_with_retry(&mut seed, register, encode_value(0));
        }
        seed.close();
    }

    // Mixed load: per-shard recorders so each shard's history is checked
    // against its own register.
    let stop = Arc::new(AtomicBool::new(false));
    let ops_done: Arc<Vec<AtomicU64>> = Arc::new((0..SHARDS).map(|_| AtomicU64::new(0)).collect());
    let recorders: Vec<Arc<HistoryRecorder>> =
        (0..SHARDS).map(|_| Arc::new(HistoryRecorder::new())).collect();
    let workers: Vec<_> = (0..(SHARDS * WORKERS_PER_SHARD) as u32)
        .map(|i| {
            let shard = i as usize % SHARDS;
            let recorder = Arc::clone(&recorders[shard]);
            let ops_done = Arc::clone(&ops_done);
            let stop = Arc::clone(&stop);
            let addr = gateway.local_addr();
            std::thread::spawn(move || worker_loop(i, shard, addr, recorder, ops_done, stop))
        })
        .collect();

    // Let the workload settle, then kill shard 1's leader (crash-stop; the
    // two survivors still form a quorum and must elect a replacement).
    std::thread::sleep(Duration::from_millis(600));
    let leader_slot = shards[1]
        .iter()
        .position(|m| m.as_ref().is_some_and(ZkEnsembleServer::is_leader))
        .expect("shard 1 has a leader before the crash");
    shards[1][leader_slot].take().expect("leader present").shutdown();
    let kill_mark = ops_done[0].load(Ordering::Relaxed);

    // Property 1: the other shard never stalls. Its workers keep completing
    // operations right through shard 1's outage window.
    std::thread::sleep(Duration::from_millis(800));
    let healthy_progress = ops_done[0].load(Ordering::Relaxed) - kill_mark;
    assert!(healthy_progress > 0, "shard 0 made no progress while shard 1's leader was down");

    // Keep the load running while shard 1 re-elects, then stop.
    std::thread::sleep(Duration::from_millis(1000));
    stop.store(true, Ordering::Relaxed);
    for worker in workers {
        worker.join().expect("worker thread");
    }

    // Property 2: the crashed shard recovers — a write to its register
    // commits through the gateway once the survivors elected a new leader.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut recovered = false;
    while Instant::now() < deadline && !recovered {
        if let Ok(mut probe) = ZkTcpClient::connect(gateway.local_addr()) {
            if probe.set_data(REGISTERS[1], encode_value(u64::MAX), -1).is_ok() {
                recovered = true;
            }
            probe.close();
        }
        if !recovered {
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    assert!(recovered, "shard 1 never accepted writes again after its leader crashed");

    // Property 3: each shard's history is linearizable on its own.
    for (shard, recorder) in recorders.iter().enumerate() {
        let history = recorder.take();
        assert!(!history.is_empty(), "shard {shard} recorded no operations");
        let violations = checker::check(&history, (0, 0));
        assert!(
            violations.is_empty(),
            "shard {shard}: {} violation(s) in {} ops: {violations:?}",
            violations.len(),
            history.len()
        );
    }

    gateway.shutdown();
    for members in shards {
        for member in members.into_iter().flatten() {
            member.shutdown();
        }
    }
}
