//! Clock-skew injection via the replica's [`Clock`] seam.

use std::sync::atomic::{AtomicI64, Ordering};

use zkserver::session::{Clock, MonotonicClock};

/// A monotonic clock with an adjustable millisecond offset, injected into a
/// replica through [`zkserver::ZkReplica::with_clock`] so a scenario can
/// skew one member's idea of time (session expiry sweeps run against this
/// clock) without touching the others.
///
/// The offset can move backwards between reads; the replica's session
/// bookkeeping must tolerate that — which is exactly what the clock-skew
/// scenario asserts.
#[derive(Debug, Default)]
pub struct SkewedClock {
    inner: MonotonicClock,
    offset_ms: AtomicI64,
}

impl SkewedClock {
    /// A skew-free clock (offset zero).
    pub fn new() -> Self {
        SkewedClock::default()
    }

    /// Sets the offset added to every subsequent reading.
    pub fn set_skew_ms(&self, offset_ms: i64) {
        self.offset_ms.store(offset_ms, Ordering::Relaxed);
    }

    /// The currently configured offset.
    pub fn skew_ms(&self) -> i64 {
        self.offset_ms.load(Ordering::Relaxed)
    }
}

impl Clock for SkewedClock {
    fn now_ms(&self) -> i64 {
        self.inner.now_ms().saturating_add(self.offset_ms.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_shifts_readings_and_can_reverse() {
        let clock = SkewedClock::new();
        let base = clock.now_ms();
        clock.set_skew_ms(5_000);
        assert!(clock.now_ms() >= base + 5_000);
        clock.set_skew_ms(-5_000);
        assert!(clock.now_ms() <= base + 100);
        assert_eq!(clock.skew_ms(), -5_000);
    }
}
