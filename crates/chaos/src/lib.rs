//! Deterministic fault injection and linearizability checking for the
//! replicated ensemble.
//!
//! Everything random in this crate flows from one `u64` seed through
//! [`rng::ChaosRng`] (a SplitMix64 stream with labelled forking), so a
//! failing run is re-runnable from its seed alone:
//!
//! - [`plane::FaultPlane`] rules on every peer frame — drop, duplicate,
//!   delay, or deliver — with an independent deterministic stream per
//!   directed link, plus partition sets layered on top;
//! - [`transport::FaultyTransport`] applies those rulings at the
//!   [`zkserver::PeerTransport`] seam, under the *unmodified* protocol
//!   code;
//! - [`clock::SkewedClock`] skews one member's time through the replica's
//!   `Clock` seam;
//! - [`history::HistoryRecorder`] collects a concurrent register history
//!   which [`checker::check`] verifies for linearizability (polynomial,
//!   thanks to znode versions totally ordering the writes);
//! - [`scenario`] names the seeded fault schedules, runs them against real
//!   TCP ensembles (plain or SecureKeeper), and verifies convergence,
//!   byte-identical replica trees, multi atomicity, single-leader-per-epoch,
//!   and session durability;
//! - [`shrink`] minimises a failing schedule to a small counterexample.
//!
//! The `chaos` binary fronts all of it: `chaos list`, `chaos run --scenario
//! leader-partition --seed 7`, `chaos run --all --mode secure`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod clock;
pub mod history;
pub mod plane;
pub mod rng;
pub mod scenario;
pub mod shrink;
pub mod transport;

pub use checker::{check, Violation};
pub use clock::SkewedClock;
pub use history::{HistoryRecorder, OpKind, OpRecord, Outcome};
pub use plane::{FaultPlane, LinkFaults};
pub use rng::ChaosRng;
pub use scenario::{
    catalogue, find, run_scenario, run_schedule, EnsembleSpec, FaultAction, FaultEvent, RunOptions,
    RunReport, Scenario,
};
pub use shrink::{shrink_schedule, ShrinkOutcome};
pub use transport::FaultyTransport;
