//! A polynomial consistency checker for the versioned-register model,
//! verifying the ensemble's actual contract (ZooKeeper's):
//!
//! * **writes are linearizable** — the register's version order must be a
//!   legal linearization of all successful writes against real time;
//! * **reads are session-consistent** — a read is served by whichever
//!   replica the client is attached to and may therefore lag other
//!   clients' completed writes (follower reads are *allowed* to be stale),
//!   but each session's view must be monotonic and include the session's
//!   own completed writes, even across failover reconnects (the client
//!   announces its observation floor via `lastZxidSeen`, and a lagging
//!   replica refuses the attach).
//!
//! The general Wing–Gong / linear-scan search is exponential in history
//! width; this checker avoids it by exploiting two properties the chaos
//! workload guarantees:
//!
//! * every write carries a **globally unique value**, so a read identifies
//!   exactly which write it observed;
//! * every successful write returns the register **version** it produced,
//!   so successful writes arrive totally ordered — the linearization order
//!   of writes is not searched, it is *given*, and the checker only has to
//!   validate that order (and every read) against real time.
//!
//! Indeterminate operations (connection loss mid-write) are handled the
//! standard way: they may have taken effect at any point from their
//! invocation onwards (their interval is open-ended — the effect can land
//! after the client gave up), or never. A read observing an indeterminate
//! write's value *binds* it into the order at the observed version.
//!
//! Every reported violation is a definite one: the checker only flags
//! behaviours impossible under any linearization, so a failing seed is a
//! true counterexample, never harness noise.

use std::collections::HashMap;

use crate::history::{OpKind, OpRecord, Outcome};

/// Response timestamp standing in for "never completed" (indeterminate
/// operations can linearize arbitrarily late).
const OPEN_ENDED: u64 = u64::MAX;

/// One definite linearizability violation, with a human-readable account of
/// the contradicting operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// What real-time/order contradiction was found.
    pub description: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.description)
    }
}

/// A write placed in the version order (determinate, or indeterminate and
/// bound by a read that observed it).
#[derive(Debug, Clone, Copy)]
struct OrderedWrite {
    version: i32,
    value: u64,
    invoke_ns: u64,
    response_ns: u64,
    client: u32,
}

/// Checks one register history for linearizability.
///
/// `initial` is the `(version, value)` state the register held before the
/// first recorded operation (the creation write), anchoring reads that
/// observed the pre-workload state.
pub fn check(history: &[OpRecord], initial: (i32, u64)) -> Vec<Violation> {
    let mut violations = Vec::new();
    // Phase 1: collect determinate writes, keyed by version.
    let mut by_version: HashMap<i32, OrderedWrite> = HashMap::new();
    by_version.insert(
        initial.0,
        OrderedWrite {
            version: initial.0,
            value: initial.1,
            invoke_ns: 0,
            response_ns: 0,
            client: u32::MAX,
        },
    );
    let mut indeterminate: HashMap<u64, (u64, u32)> = HashMap::new(); // value -> (invoke, client)
    let mut bound: HashMap<u64, i32> = HashMap::new(); // indeterminate value -> bound version
    for op in history {
        let value = match op.kind {
            OpKind::Write { value } | OpKind::Cas { value, .. } => value,
            OpKind::Read => continue,
        };
        match &op.outcome {
            Outcome::WriteOk { version } => {
                let write = OrderedWrite {
                    version: *version,
                    value,
                    invoke_ns: op.invoke_ns,
                    response_ns: op.response_ns,
                    client: op.client,
                };
                if let Some(previous) = by_version.insert(*version, write) {
                    violations.push(Violation {
                        description: format!(
                            "two successful writes produced version {}: value {:#x} \
                             (client {}) and value {:#x} (client {}) — replicas diverged",
                            version, previous.value, previous.client, value, op.client
                        ),
                    });
                }
            }
            Outcome::Indeterminate => {
                indeterminate.insert(value, (op.invoke_ns, op.client));
            }
            Outcome::CasFail | Outcome::Rejected => {}
            Outcome::ReadOk { .. } => {}
        }
    }
    // Phase 2: bind reads. Each read must observe a known write's value at a
    // consistent version.
    for op in history {
        if op.kind != OpKind::Read {
            continue;
        }
        let Outcome::ReadOk { version, value } = &op.outcome else { continue };
        let Some(value) = value else {
            violations.push(Violation {
                description: format!(
                    "client {} read malformed register data at version {} — \
                     the register only ever holds 8-byte write tags",
                    op.client, version
                ),
            });
            continue;
        };
        if let Some(write) = by_version.get(version) {
            if write.value != *value {
                violations.push(Violation {
                    description: format!(
                        "client {} read value {:#x} at version {version}, but version \
                         {version} was produced by value {:#x}",
                        op.client, value, write.value
                    ),
                });
            }
        } else if let Some(&(invoke_ns, client)) = indeterminate.get(value) {
            match bound.get(value) {
                Some(&v) if v != *version => violations.push(Violation {
                    description: format!(
                        "indeterminate write of value {:#x} was observed at two distinct \
                         versions ({v} and {version}) — a single write took effect twice",
                        value
                    ),
                }),
                Some(_) => {}
                None => {
                    bound.insert(*value, *version);
                    by_version.insert(
                        *version,
                        OrderedWrite {
                            version: *version,
                            value: *value,
                            invoke_ns,
                            response_ns: OPEN_ENDED,
                            client,
                        },
                    );
                }
            }
        } else {
            violations.push(Violation {
                description: format!(
                    "client {} read value {:#x} at version {} that no recorded write \
                     (successful or indeterminate) ever wrote — phantom state",
                    op.client, value, version
                ),
            });
        }
    }
    // Phase 3: the write order (by version) must respect real time — a
    // write that completed strictly before another was invoked cannot be
    // ordered after it.
    let mut writes: Vec<OrderedWrite> = by_version.values().copied().collect();
    writes.sort_by_key(|w| w.version);
    let mut prefix_max_invoke: u64 = 0;
    let mut prefix_holder: Option<OrderedWrite> = None;
    for write in &writes {
        if write.response_ns != OPEN_ENDED && prefix_max_invoke > write.response_ns {
            let holder = prefix_holder.expect("a prefix max implies a holder");
            violations.push(Violation {
                description: format!(
                    "write of {:#x} (version {}) responded at {}ns, before the \
                     lower-versioned write of {:#x} (version {}) was even invoked at {}ns",
                    write.value,
                    write.version,
                    write.response_ns,
                    holder.value,
                    holder.version,
                    holder.invoke_ns
                ),
            });
        }
        if write.invoke_ns >= prefix_max_invoke {
            prefix_max_invoke = write.invoke_ns;
            prefix_holder = Some(*write);
        }
    }
    // Phase 4: every read must not have *finished* before the write that
    // produced its value was even invoked — impossible under any model.
    // (Reads lagging newer completed writes are NOT flagged: follower
    // reads are allowed to be stale under the contract.)
    for op in history {
        if op.kind != OpKind::Read {
            continue;
        }
        let Outcome::ReadOk { version, .. } = &op.outcome else { continue };
        let Ok(index) = writes.binary_search_by_key(version, |w| w.version) else {
            continue; // phantom, already reported in phase 2
        };
        let write = writes[index];
        if op.response_ns < write.invoke_ns {
            violations.push(Violation {
                description: format!(
                    "client {} finished reading version {} at {}ns, before the write \
                     that produced it was invoked at {}ns",
                    op.client, version, op.response_ns, write.invoke_ns
                ),
            });
        }
    }
    // Phase 5: session order. Each client is single-threaded, so its ops
    // in invocation order are its program order. The session's observed
    // version floor (from its reads *and* its own completed writes) must
    // never move backwards — monotonic reads plus read-your-writes, the
    // guarantees that must survive failover reconnects.
    let mut sessions: HashMap<u32, Vec<&OpRecord>> = HashMap::new();
    for op in history {
        sessions.entry(op.client).or_default().push(op);
    }
    for (client, mut ops) in sessions {
        ops.sort_by_key(|op| op.invoke_ns);
        let mut floor: Option<(i32, &'static str, u64)> = None; // (version, how, when)
        for op in ops {
            let observed = match &op.outcome {
                Outcome::WriteOk { version } => (*version, "write"),
                Outcome::ReadOk { version, .. } => {
                    if let Some((held, how, at_ns)) = floor {
                        if *version < held {
                            violations.push(Violation {
                                description: format!(
                                    "client {client} invoked a read at {}ns and observed \
                                     version {version}, after its own {how} had already \
                                     established version {held} at {at_ns}ns — the session \
                                     read backwards",
                                    op.invoke_ns
                                ),
                            });
                        }
                    }
                    (*version, "read")
                }
                _ => continue,
            };
            if floor.is_none_or(|(held, _, _)| observed.0 > held) {
                floor = Some((observed.0, observed.1, op.response_ns));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{OpKind, OpRecord, Outcome};

    const INITIAL: (i32, u64) = (0, 0);

    fn write(client: u32, invoke: u64, resp: u64, value: u64, version: i32) -> OpRecord {
        OpRecord {
            client,
            invoke_ns: invoke,
            response_ns: resp,
            kind: OpKind::Write { value },
            outcome: Outcome::WriteOk { version },
        }
    }

    fn lost_write(client: u32, invoke: u64, resp: u64, value: u64) -> OpRecord {
        OpRecord {
            client,
            invoke_ns: invoke,
            response_ns: resp,
            kind: OpKind::Write { value },
            outcome: Outcome::Indeterminate,
        }
    }

    fn read(client: u32, invoke: u64, resp: u64, value: u64, version: i32) -> OpRecord {
        OpRecord {
            client,
            invoke_ns: invoke,
            response_ns: resp,
            kind: OpKind::Read,
            outcome: Outcome::ReadOk { version, value: Some(value) },
        }
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let history = vec![
            write(1, 10, 20, 0x1_0000_0001, 1),
            read(2, 30, 40, 0x1_0000_0001, 1),
            write(2, 50, 60, 0x2_0000_0001, 2),
            read(1, 70, 80, 0x2_0000_0001, 2),
        ];
        assert_eq!(check(&history, INITIAL), vec![]);
    }

    #[test]
    fn concurrent_overlapping_writes_and_reads_are_linearizable() {
        // Two overlapping writes resolved by their returned versions, and a
        // read overlapping both that saw the first.
        let history = vec![
            write(1, 10, 50, 0xA, 1),
            write(2, 15, 45, 0xB, 2),
            read(3, 20, 60, 0xA, 1),
            read(3, 70, 80, 0xB, 2),
        ];
        assert_eq!(check(&history, INITIAL), vec![]);
    }

    #[test]
    fn initial_state_reads_are_linearizable() {
        let history = vec![read(1, 5, 9, 0, 0), write(1, 10, 20, 0xA, 1)];
        assert_eq!(check(&history, INITIAL), vec![]);
    }

    #[test]
    fn cross_client_stale_read_is_allowed() {
        // Client 2's replica lags: it reads version 1 long after client 1's
        // write of version 2 completed. Follower reads may be stale — the
        // contract only promises linearizable writes, not linearizable
        // reads — so this is legal.
        let history =
            vec![write(1, 10, 20, 0xA, 1), write(1, 30, 40, 0xB, 2), read(2, 100, 110, 0xA, 1)];
        assert_eq!(check(&history, INITIAL), vec![]);
    }

    #[test]
    fn session_reading_before_its_own_write_is_flagged() {
        // Client 1 completed its own write of version 2, then read version 1
        // back — read-your-writes broken (e.g. a failover reconnect landed
        // on a lagging replica that should have refused the attach).
        let history =
            vec![write(1, 10, 20, 0xA, 1), write(1, 30, 40, 0xB, 2), read(1, 100, 110, 0xA, 1)];
        let violations = check(&history, INITIAL);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].description.contains("session read backwards"), "{violations:?}");
    }

    #[test]
    fn read_from_the_future_is_flagged() {
        // The read finished before the write producing its value started.
        let history = vec![read(2, 10, 20, 0xA, 1), write(1, 50, 60, 0xA, 1)];
        let violations = check(&history, INITIAL);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].description.contains("before the write"), "{violations:?}");
    }

    #[test]
    fn phantom_value_is_flagged() {
        let history = vec![write(1, 10, 20, 0xA, 1), read(2, 30, 40, 0xDEAD, 2)];
        let violations = check(&history, INITIAL);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].description.contains("phantom"), "{violations:?}");
    }

    #[test]
    fn duplicate_versions_are_flagged_as_divergence() {
        let history = vec![write(1, 10, 20, 0xA, 1), write(2, 30, 40, 0xB, 1)];
        let violations = check(&history, INITIAL);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].description.contains("diverged"), "{violations:?}");
    }

    #[test]
    fn version_order_contradicting_real_time_is_flagged() {
        // 0xB finished (resp 20) before 0xA was invoked (30), yet 0xB got
        // the higher version — impossible for a single register.
        let history = vec![write(1, 30, 40, 0xA, 1), write(2, 10, 20, 0xB, 2)];
        let violations = check(&history, INITIAL);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].description.contains("before the lower-versioned"), "{violations:?}");
    }

    #[test]
    fn session_reads_going_backwards_are_flagged() {
        // Both observed versions exist and each read is individually
        // plausible against the (open-ended) writes, but the *same* session
        // saw the older version after observing the newer one.
        let history = vec![
            lost_write(1, 10, 15, 0xA),
            lost_write(1, 16, 21, 0xB),
            read(2, 30, 40, 0xB, 2),
            read(2, 50, 60, 0xA, 1),
        ];
        let violations = check(&history, INITIAL);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].description.contains("session read backwards"), "{violations:?}");
    }

    #[test]
    fn different_sessions_may_observe_different_orders_of_lag() {
        // Two sessions attached to differently-lagged replicas: one already
        // sees version 2 while the other still sees version 1. Legal.
        let history = vec![
            lost_write(1, 10, 15, 0xA),
            lost_write(1, 16, 21, 0xB),
            read(2, 30, 40, 0xB, 2),
            read(3, 50, 60, 0xA, 1),
        ];
        assert_eq!(check(&history, INITIAL), vec![]);
    }

    #[test]
    fn observed_indeterminate_write_is_bound_not_flagged() {
        // The write timed out client-side but took effect; the read binds it
        // at version 1. Legal.
        let history = vec![lost_write(1, 10, 20, 0xA), read(2, 100, 110, 0xA, 1)];
        assert_eq!(check(&history, INITIAL), vec![]);
    }

    #[test]
    fn unobserved_indeterminate_write_is_legal_either_way() {
        // The lost write may simply never have happened; a later read seeing
        // the old state is fine because nothing newer provably completed.
        let history =
            vec![write(1, 10, 20, 0xA, 1), lost_write(1, 30, 40, 0xB), read(2, 50, 60, 0xA, 1)];
        assert_eq!(check(&history, INITIAL), vec![]);
    }

    #[test]
    fn indeterminate_write_observed_at_two_versions_is_flagged() {
        let history =
            vec![lost_write(1, 10, 20, 0xA), read(2, 30, 40, 0xA, 1), read(3, 50, 60, 0xA, 3)];
        let violations = check(&history, INITIAL);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].description.contains("took effect twice"), "{violations:?}");
    }

    #[test]
    fn late_landing_indeterminate_write_causes_no_false_positive() {
        // The indeterminate write's client gave up at 20ns but the effect
        // landed later, after a determinate write invoked at 30ns. Binding
        // it open-endedly must not trip the real-time write-order check.
        let history =
            vec![lost_write(1, 10, 20, 0xB), write(2, 30, 40, 0xA, 1), read(3, 50, 60, 0xB, 2)];
        assert_eq!(check(&history, INITIAL), vec![]);
    }

    #[test]
    fn failed_cas_is_a_no_op() {
        let history = vec![
            write(1, 10, 20, 0xA, 1),
            OpRecord {
                client: 2,
                invoke_ns: 30,
                response_ns: 40,
                kind: OpKind::Cas { value: 0xB, expected_version: 0 },
                outcome: Outcome::CasFail,
            },
            read(3, 50, 60, 0xA, 1),
        ];
        assert_eq!(check(&history, INITIAL), vec![]);
    }
}
