//! Operation histories: what concurrent clients invoked against the
//! replicated register and what came back, with real-time intervals.
//!
//! The chaos workload drives a single *versioned register* — one znode
//! whose data is an 8-byte unique write tag and whose `set_data` responses
//! return the znode version. Those versions are what make linearizability
//! checking polynomial instead of exponential: a successful write's version
//! totally orders it against every other successful write, so the checker
//! (see [`crate::checker`]) only has to validate that order against real
//! time rather than search for one.

use std::time::Instant;

use parking_lot::Mutex;

/// What one operation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// An unconditional `set_data` of a unique value.
    Write {
        /// The globally unique value written (`client << 32 | seq`).
        value: u64,
    },
    /// A version-conditioned `set_data` (compare-and-swap).
    Cas {
        /// The globally unique value written on success.
        value: u64,
        /// The version the writer required.
        expected_version: i32,
    },
    /// A `get_data` of the register.
    Read,
}

/// How one operation completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The write (or CAS) succeeded and produced this register version.
    WriteOk {
        /// Version returned in the response `Stat`.
        version: i32,
    },
    /// The read returned this version/value pair.
    ReadOk {
        /// Version from the response `Stat`.
        version: i32,
        /// The 8-byte value decoded from the znode data, if well-formed.
        value: Option<u64>,
    },
    /// The CAS failed with `BadVersion`: a definite no-op.
    CasFail,
    /// A connection-level failure: the operation *may or may not* have
    /// taken effect (the classic indeterminate result).
    Indeterminate,
    /// A definite server-side rejection other than `BadVersion` (still a
    /// no-op on the register).
    Rejected,
}

/// One completed operation with its real-time interval, measured in
/// nanoseconds from the recorder's origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// The issuing workload client.
    pub client: u32,
    /// Invocation instant (ns since recorder start).
    pub invoke_ns: u64,
    /// Response instant (ns since recorder start).
    pub response_ns: u64,
    /// What was attempted.
    pub kind: OpKind,
    /// What came back.
    pub outcome: Outcome,
}

/// Thread-safe collector the workload clients append to.
#[derive(Debug)]
pub struct HistoryRecorder {
    origin: Instant,
    ops: Mutex<Vec<OpRecord>>,
}

impl Default for HistoryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl HistoryRecorder {
    /// An empty history whose time origin is now.
    pub fn new() -> Self {
        HistoryRecorder { origin: Instant::now(), ops: Mutex::new(Vec::new()) }
    }

    /// Nanoseconds elapsed since the recorder's origin (for timestamping an
    /// invocation before the call is made).
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Appends one completed operation.
    pub fn record(&self, op: OpRecord) {
        self.ops.lock().push(op);
    }

    /// Takes the full history recorded so far.
    pub fn take(&self) -> Vec<OpRecord> {
        std::mem::take(&mut self.ops.lock())
    }
}

/// Encodes a write tag as the register's 8-byte payload.
pub fn encode_value(value: u64) -> Vec<u8> {
    value.to_be_bytes().to_vec()
}

/// Decodes the register payload back into a write tag.
pub fn decode_value(data: &[u8]) -> Option<u64> {
    Some(u64::from_be_bytes(data.try_into().ok()?))
}
