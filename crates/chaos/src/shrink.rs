//! Counterexample shrinking: reduce a failing fault schedule to a minimal
//! one that still fails.
//!
//! Because a schedule is plain data (a `Vec<FaultEvent>`), shrinking is
//! delta-debugging lite: first try dropping whole halves, then individual
//! events (newest first — late events are most often incidental), re-running
//! the deterministic executor each time and keeping any smaller schedule
//! that still reproduces a failure. The rerun budget is bounded, so a
//! shrink costs at most `budget` extra scenario executions.

use crate::scenario::{run_schedule, EnsembleSpec, FaultEvent, RunFailure, RunOptions};

/// Result of a shrink pass.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The smallest schedule found that still fails.
    pub schedule: Vec<FaultEvent>,
    /// The failure that minimal schedule produces.
    pub failure: RunFailure,
    /// How many reruns the search spent.
    pub reruns: usize,
}

/// Shrinks `schedule` (which is known to fail under `spec`/`options`) to a
/// locally minimal failing schedule, spending at most `budget` reruns.
pub fn shrink_schedule(
    spec: EnsembleSpec,
    schedule: &[FaultEvent],
    options: &RunOptions,
    original_failure: RunFailure,
    budget: usize,
) -> ShrinkOutcome {
    let mut current = schedule.to_vec();
    let mut failure = original_failure;
    let mut reruns = 0;

    let try_candidate = |candidate: &[FaultEvent], reruns: &mut usize| -> Option<RunFailure> {
        *reruns += 1;
        run_schedule(spec, candidate, options).err()
    };

    // Phase 1: halves. Cheap big cuts while the schedule is long.
    while current.len() > 2 && reruns < budget {
        let mid = current.len() / 2;
        let front: Vec<FaultEvent> = current[..mid].to_vec();
        if let Some(f) = try_candidate(&front, &mut reruns) {
            current = front;
            failure = f;
            continue;
        }
        if reruns >= budget {
            break;
        }
        let back: Vec<FaultEvent> = current[mid..].to_vec();
        if let Some(f) = try_candidate(&back, &mut reruns) {
            current = back;
            failure = f;
            continue;
        }
        break;
    }

    // Phase 2: single removals, newest event first, restarting after every
    // successful cut until a fixpoint or the budget runs out.
    let mut changed = true;
    while changed && reruns < budget {
        changed = false;
        for index in (0..current.len()).rev() {
            if reruns >= budget {
                break;
            }
            let mut candidate = current.clone();
            candidate.remove(index);
            if let Some(f) = try_candidate(&candidate, &mut reruns) {
                current = candidate;
                failure = f;
                changed = true;
                break;
            }
        }
    }

    ShrinkOutcome { schedule: current, failure, reruns }
}
