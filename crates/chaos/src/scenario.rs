//! The scenario harness: real ensembles under seeded fault schedules, with
//! end-to-end verification.
//!
//! A scenario is `(ensemble spec, fault schedule)` where the schedule is a
//! plain list of timestamped [`FaultAction`]s — data, not code, so a
//! failing schedule can be shrunk event-by-event (see [`crate::shrink`])
//! and printed as the counterexample. The executor ([`run_schedule`]):
//!
//! 1. starts a real TCP ensemble whose members run over fault-injecting
//!    transports sharing one seeded [`FaultPlane`];
//! 2. drives a concurrent register workload (reads, unique-value writes,
//!    CAS, atomic multis) while walking the schedule;
//! 3. heals everything, restarts dead durable members, and verifies:
//!    no same-epoch split leaders were ever observed, all replicas
//!    converge to **byte-identical** trees, multi mirror znodes agree
//!    (atomicity), the recorded history is linearizable
//!    ([`crate::checker`]), and — after a power cycle — at least one
//!    client re-attached to its pre-outage session.
//!
//! Fault model: in-memory members are crash-stop (a kill is permanent);
//! only durable members may restart, because an amnesiac rejoin (empty log
//! under a previously used node id) is outside ZAB's crash-recovery model
//! and genuinely unsafe — the same rule ZooKeeper itself imposes on its
//! ensemble members.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use jute::records::{CreateMode, SetDataRequest, Stat};
use securekeeper::integration::{SecureKeeperConfig, SecureKeeperInterceptor, SecureKeeperNamer};
use securekeeper::{CounterEnclave, ReplayableSessionCredentials};
use zab::{NodeId, Role, TcpNetwork};
use zkserver::client::{RetryPolicy, ZkTcpClient};
use zkserver::ensemble::{EnsembleConfig, ZkEnsembleServer};
use zkserver::net::{PlainCredentials, SessionCredentials};
use zkserver::persist::{PersistConfig, ReplicaPersistence};
use zkserver::pipeline::RequestInterceptor;
use zkserver::{Op, ZkError, ZkReplica};

use crate::checker::{self, Violation};
use crate::clock::SkewedClock;
use crate::history::{decode_value, encode_value, HistoryRecorder, OpKind, OpRecord, Outcome};
use crate::plane::{FaultPlane, LinkFaults};
use crate::rng::ChaosRng;
use crate::transport::FaultyTransport;

/// The register znode every client hammers.
const REGISTER: &str = "/chaos/reg";
/// Mirror znodes written only by atomic multis (always together, always the
/// same value) — byte-equal mirrors prove multi atomicity survived.
const MIRROR_A: &str = "/chaos/m1";
const MIRROR_B: &str = "/chaos/m2";

/// Shape of the ensemble a scenario runs against.
#[derive(Debug, Clone, Copy)]
pub struct EnsembleSpec {
    /// Number of members.
    pub size: usize,
    /// Whether members run with a disk-backed WAL + snapshot store (and may
    /// therefore be restarted).
    pub durable: bool,
    /// Snapshot cadence for durable members (transactions applied between
    /// snapshots); small values force snapshot-based rejoins.
    pub snapshot_every: u64,
}

impl EnsembleSpec {
    /// An in-memory (crash-stop) ensemble.
    pub fn in_memory(size: usize) -> Self {
        EnsembleSpec { size, durable: false, snapshot_every: u64::MAX }
    }

    /// A durable (crash-recovery) ensemble.
    pub fn durable(size: usize, snapshot_every: u64) -> Self {
        EnsembleSpec { size, durable: true, snapshot_every }
    }
}

/// One fault primitive a schedule can fire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Replace the probabilistic per-frame fault mix on all links.
    SetFaults(LinkFaults),
    /// Partition the ensemble into groups (links across groups drop).
    Partition(Vec<Vec<NodeId>>),
    /// Cut one member off from everyone.
    Isolate(NodeId),
    /// Block the single direction `from → to`.
    BlockOneWay(NodeId, NodeId),
    /// Remove all partition blocks.
    Heal,
    /// Crash member `index` (0-based). Permanent for in-memory members.
    Kill(usize),
    /// Restart member `index` from its data directory (durable only).
    Restart(usize),
    /// Flip bits in the killed member's on-disk WAL segments (models disk
    /// rot between crash and reboot). No-op while the member is alive.
    CorruptStorage(usize),
    /// Kill **every** member, then restart them all from disk — a full
    /// power outage (durable only).
    PowerCycle,
    /// Skew member `index`'s clock by the given offset.
    SkewClock(usize, i64),
    /// Gracefully drain member `index`: readiness flips to unready, new
    /// writes are refused, leadership (if held) is handed to a peer. The
    /// member keeps running — this models a rolling-restart takeout, not a
    /// crash. The executor asserts the probe flip and that the member's
    /// `mntr` counters stay monotonic through the handoff.
    Drain(usize),
}

/// A timestamped fault, relative to workload start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the action fires.
    pub at: Duration,
    /// What happens.
    pub action: FaultAction,
}

/// Millisecond shorthand for schedule literals.
pub fn ms(millis: u64) -> Duration {
    Duration::from_millis(millis)
}

/// A named, seeded chaos scenario.
#[derive(Clone)]
pub struct Scenario {
    /// Stable identifier (`chaos run --scenario <name>`).
    pub name: &'static str,
    /// One-line description of the fault pattern.
    pub summary: &'static str,
    /// Ensemble shape.
    pub spec: EnsembleSpec,
    /// Total workload duration (faults live inside it).
    pub duration: Duration,
    /// Builds the seeded fault schedule.
    pub schedule: fn(u64) -> Vec<FaultEvent>,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario").field("name", &self.name).field("spec", &self.spec).finish()
    }
}

/// Execution knobs shared by every scenario run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Seed of all randomness (fault plane, workload mix, schedule).
    pub seed: u64,
    /// Run the ensemble with the SecureKeeper interceptor and secure client
    /// credentials.
    pub secure: bool,
    /// Total workload duration.
    pub duration: Duration,
    /// Concurrent workload clients.
    pub clients: usize,
}

/// What a passing run did — the numbers that prove the run exercised
/// something (a chaos run with zero injected faults proves nothing).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Operations completed by the workload.
    pub ops: u64,
    /// Recorded history length (register operations).
    pub history_len: usize,
    /// Frames the fault plane ruled on.
    pub frames: u64,
    /// Frames dropped.
    pub dropped: u64,
    /// Frames duplicated.
    pub duplicated: u64,
    /// Frames delayed.
    pub delayed: u64,
    /// Clients that re-attached to a pre-disconnect session.
    pub reattaches: u64,
    /// Highest protocol epoch observed.
    pub max_epoch: u32,
}

/// Why a run failed.
#[derive(Debug, Clone)]
pub struct RunFailure {
    /// Which verification tripped.
    pub reason: String,
    /// Linearizability violations, when the checker tripped.
    pub violations: Vec<Violation>,
}

impl std::fmt::Display for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.reason)?;
        for violation in &self.violations {
            writeln!(f, "  - {violation}")?;
        }
        Ok(())
    }
}

fn chaos_ensemble_config() -> EnsembleConfig {
    EnsembleConfig {
        heartbeat_interval: Duration::from_millis(20),
        election_timeout: Duration::from_millis(150),
        election_vote_window: Duration::from_millis(80),
        write_timeout: Duration::from_secs(1),
        poll_interval: Duration::from_millis(5),
        // Every member gets an ops endpoint so drain scenarios can assert
        // the probe flip from the outside, like an operator would.
        ops_addr: Some("127.0.0.1:0".parse().expect("loopback literal always parses")),
        ..EnsembleConfig::default()
    }
}

fn unique_dir(seed: u64) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "zk-chaos-{}-{seed}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A live ensemble under fault injection: the members, their shared fault
/// plane, per-member skewable clocks, and (for durable specs) the data
/// directories that survive kills.
struct ChaosEnsemble {
    spec: EnsembleSpec,
    secure: Option<SecureKeeperConfig>,
    plane: Arc<FaultPlane>,
    peer_addrs: HashMap<NodeId, SocketAddr>,
    members: Arc<Mutex<Vec<Option<ZkEnsembleServer>>>>,
    clocks: Vec<Arc<SkewedClock>>,
    client_addrs: Arc<Mutex<Vec<Option<SocketAddr>>>>,
    data_root: Option<PathBuf>,
}

impl ChaosEnsemble {
    fn start(spec: EnsembleSpec, options: &RunOptions) -> std::io::Result<Self> {
        let data_root = spec.durable.then(|| unique_dir(options.seed));
        let transports: Vec<TcpNetwork> = (1..=spec.size as u32)
            .map(|i| TcpNetwork::bind(NodeId(i), "127.0.0.1:0"))
            .collect::<std::io::Result<_>>()?;
        let peer_addrs: HashMap<NodeId, SocketAddr> =
            transports.iter().map(|t| (t.id(), t.local_addr())).collect();
        let mut ensemble = ChaosEnsemble {
            spec,
            secure: options
                .secure
                .then(|| SecureKeeperConfig::with_label(&format!("chaos-{}", options.seed))),
            plane: Arc::new(FaultPlane::new(options.seed)),
            peer_addrs,
            members: Arc::new(Mutex::new((0..spec.size).map(|_| None).collect())),
            clocks: (0..spec.size).map(|_| Arc::new(SkewedClock::new())).collect(),
            client_addrs: Arc::new(Mutex::new(vec![None; spec.size])),
            data_root,
        };
        for transport in transports {
            let index = transport.id().0 as usize - 1;
            ensemble.start_member(index, transport)?;
        }
        Ok(ensemble)
    }

    fn build_replica(&self, index: usize) -> Arc<ZkReplica> {
        let id = index as u32 + 1;
        let clock = Arc::clone(&self.clocks[index]);
        match &self.secure {
            None => Arc::new(ZkReplica::new(id).with_clock(clock)),
            Some(config) => {
                // `secure_ensemble_replica` hard-wires a monotonic clock;
                // rebuild the same stack around the skewable one.
                let interceptor = Arc::new(SecureKeeperInterceptor::new(config));
                let counter = Arc::new(
                    CounterEnclave::new(
                        interceptor.epc(),
                        &config.storage_key,
                        config.cost_model.clone(),
                    )
                    .expect("a fresh EPC always fits one counter enclave"),
                );
                Arc::new(
                    ZkReplica::new(id)
                        .with_interceptor(interceptor as Arc<dyn RequestInterceptor>)
                        .with_namer(Arc::new(SecureKeeperNamer::new(counter)))
                        .with_clock(clock),
                )
            }
        }
    }

    fn start_member(&mut self, index: usize, transport: TcpNetwork) -> std::io::Result<()> {
        self.clocks[index].set_skew_ms(0);
        let faulty = Arc::new(FaultyTransport::new(Arc::new(transport), Arc::clone(&self.plane)));
        let persistence = match &self.data_root {
            Some(root) => Some(ReplicaPersistence::open(
                root.join(format!("m{}", index + 1)),
                PersistConfig { snapshot_every: self.spec.snapshot_every, ..Default::default() },
            )?),
            None => None,
        };
        let server = ZkEnsembleServer::start_custom(
            faulty,
            self.peer_addrs.clone(),
            "127.0.0.1:0",
            self.build_replica(index),
            chaos_ensemble_config(),
            persistence,
        )?;
        self.client_addrs.lock()[index] = Some(server.client_addr());
        self.members.lock()[index] = Some(server);
        Ok(())
    }

    fn kill(&mut self, index: usize) {
        self.client_addrs.lock()[index] = None;
        let server = self.members.lock()[index].take();
        if let Some(server) = server {
            server.shutdown();
        }
    }

    /// Restarts a killed *durable* member from its data directory, rebinding
    /// the same peer address. In-memory members stay dead (crash-stop).
    fn restart(&mut self, index: usize) -> std::io::Result<()> {
        if !self.spec.durable {
            return Ok(());
        }
        if self.members.lock()[index].is_some() {
            return Ok(());
        }
        let id = NodeId(index as u32 + 1);
        let addr = self.peer_addrs[&id];
        // The old listener may take a moment to fully release the port.
        let deadline = Instant::now() + Duration::from_secs(5);
        let transport = loop {
            match TcpNetwork::bind(id, addr) {
                Ok(transport) => break transport,
                Err(err) if Instant::now() < deadline => {
                    let _ = err;
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(err) => return Err(err),
            }
        };
        self.start_member(index, transport)
    }

    fn power_cycle(&mut self) -> std::io::Result<()> {
        for index in 0..self.spec.size {
            self.kill(index);
        }
        for index in 0..self.spec.size {
            self.restart(index)?;
        }
        Ok(())
    }

    /// Flips a few bits across the killed member's WAL segments.
    fn corrupt_storage(&mut self, index: usize, rng: &mut ChaosRng) {
        if self.members.lock()[index].is_some() {
            return; // only rot disks of dead members
        }
        let Some(root) = &self.data_root else { return };
        let log_dir = root.join(format!("m{}", index + 1)).join("log");
        let Ok(entries) = std::fs::read_dir(&log_dir) else { return };
        for entry in entries.flatten() {
            let path = entry.path();
            let Ok(mut bytes) = std::fs::read(&path) else { continue };
            if bytes.is_empty() {
                continue;
            }
            for _ in 0..1 + rng.next_below(3) {
                let at = rng.next_below(bytes.len() as u64) as usize;
                bytes[at] ^= 1 << rng.next_below(8);
            }
            let _ = std::fs::write(&path, &bytes);
        }
    }

    /// Gracefully drains a live member and asserts the operator-visible
    /// contract from the outside: the readiness probe flips to 503/draining
    /// while liveness stays green, leadership (if held) hands off, and every
    /// monotone `mntr` counter survives the handoff without going backwards.
    fn drain_member(&mut self, index: usize) -> std::io::Result<()> {
        use std::io::{Error, ErrorKind};
        let members = self.members.lock();
        let Some(server) = members[index].as_ref() else { return Ok(()) };
        let client_addr = server.client_addr();
        let ops_addr = server
            .ops_addr()
            .ok_or_else(|| Error::new(ErrorKind::InvalidInput, "no ops endpoint configured"))?;
        let before = mntr_counters(client_addr)?;

        // Generous budget: elections settle in well under a second on an idle
        // machine, but chaos runs share the host with sibling ensembles and a
        // starved debug build can stretch the handoff.
        let report = server.drain(Duration::from_secs(10));
        if report.was_leader && !report.handed_off {
            return Err(Error::new(
                ErrorKind::TimedOut,
                format!("drain never handed leadership off: {report:?}"),
            ));
        }

        let (code, body) = opsplane::http::http_get(ops_addr, "/health/ready")?;
        if code != 503 || !body.contains("draining") {
            return Err(Error::new(
                ErrorKind::InvalidData,
                format!("drained member still ready: {code} {body:?}"),
            ));
        }
        let (code, _) = opsplane::http::http_get(ops_addr, "/health/live")?;
        if code != 200 {
            return Err(Error::new(
                ErrorKind::InvalidData,
                "drained member must stay live (it is unready, not dead)",
            ));
        }
        let after = mntr_counters(client_addr)?;
        for (key, value_before) in &before {
            let value_after = after.get(key).copied().unwrap_or(-1.0);
            if value_after < *value_before {
                return Err(Error::new(
                    ErrorKind::InvalidData,
                    format!("mntr counter {key} went backwards: {value_before} -> {value_after}"),
                ));
            }
        }
        Ok(())
    }

    fn node_ids(&self) -> Vec<NodeId> {
        (1..=self.spec.size as u32).map(NodeId).collect()
    }

    fn apply(&mut self, action: &FaultAction, rng: &mut ChaosRng) -> std::io::Result<()> {
        match action {
            FaultAction::SetFaults(faults) => self.plane.set_faults(*faults),
            FaultAction::Partition(groups) => self.plane.partition(groups),
            FaultAction::Isolate(node) => self.plane.isolate(*node, &self.node_ids()),
            FaultAction::BlockOneWay(from, to) => self.plane.block_one_way(*from, *to),
            FaultAction::Heal => self.plane.heal(),
            FaultAction::Kill(index) => {
                if *index < self.spec.size {
                    self.kill(*index);
                }
            }
            FaultAction::Restart(index) => {
                if *index < self.spec.size {
                    self.restart(*index)?;
                }
            }
            FaultAction::CorruptStorage(index) => {
                if *index < self.spec.size {
                    self.corrupt_storage(*index, rng);
                }
            }
            FaultAction::PowerCycle => self.power_cycle()?,
            FaultAction::SkewClock(index, offset_ms) => {
                if *index < self.spec.size {
                    self.clocks[*index].set_skew_ms(*offset_ms);
                }
            }
            FaultAction::Drain(index) => {
                if *index < self.spec.size {
                    self.drain_member(*index)?;
                }
            }
        }
        Ok(())
    }

    /// Clears every standing fault and revives every dead durable member —
    /// the precondition of verification.
    fn restore(&mut self) -> std::io::Result<()> {
        self.plane.heal();
        self.plane.set_faults(LinkFaults::none());
        for clock in &self.clocks {
            clock.set_skew_ms(0);
        }
        if self.spec.durable {
            for index in 0..self.spec.size {
                self.restart(index)?;
            }
        }
        Ok(())
    }
}

impl Drop for ChaosEnsemble {
    fn drop(&mut self) {
        let members: Vec<_> = self.members.lock().drain(..).collect();
        for server in members.into_iter().flatten() {
            server.shutdown();
        }
        if let Some(root) = &self.data_root {
            let _ = std::fs::remove_dir_all(root);
        }
    }
}

/// Scrapes a member's monotone counters through the `mntr` admin word (the
/// `_total` families plus histogram `_count`s — everything that must never
/// go backwards within one process lifetime).
fn mntr_counters(client_addr: SocketAddr) -> std::io::Result<HashMap<String, f64>> {
    let reply = opsplane::words::send_word(client_addr, "mntr")?;
    let mut counters = HashMap::new();
    for line in reply.lines() {
        let Some((key, value)) = line.split_once('\t') else { continue };
        if !(key.contains("_total") || key.contains("_count")) {
            continue;
        }
        if let Ok(value) = value.parse::<f64>() {
            counters.insert(key.to_string(), value);
        }
    }
    Ok(counters)
}

fn credentials(secure: bool) -> Arc<dyn SessionCredentials> {
    if secure {
        Arc::new(ReplayableSessionCredentials::generate())
    } else {
        Arc::new(PlainCredentials)
    }
}

/// Connects to any live member, retrying until `deadline`.
fn connect_any(
    addrs: &Arc<Mutex<Vec<Option<SocketAddr>>>>,
    secure: bool,
    deadline: Instant,
) -> Result<ZkTcpClient, String> {
    loop {
        let live: Vec<SocketAddr> = addrs.lock().iter().flatten().copied().collect();
        if !live.is_empty() {
            match ZkTcpClient::connect_ensemble_with(
                &live,
                credentials(secure),
                10_000,
                RetryPolicy::no_retries(),
            ) {
                Ok(client) => return Ok(client),
                Err(err) => {
                    if Instant::now() >= deadline {
                        return Err(format!("no member reachable: {err}"));
                    }
                }
            }
        } else if Instant::now() >= deadline {
            return Err("no member alive to connect to".into());
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Per-worker tallies.
#[derive(Debug, Default, Clone, Copy)]
struct WorkerStats {
    ops: u64,
    reattaches: u64,
}

/// Classification of a write/CAS result into the history model.
fn classify_write(result: &Result<Stat, ZkError>, cas: bool) -> (Outcome, bool) {
    match result {
        Ok(stat) => (Outcome::WriteOk { version: stat.version }, false),
        Err(ZkError::BadVersion { .. }) if cas => (Outcome::CasFail, false),
        // Connection-level failures leave the write in limbo: it may commit
        // after the client gave up.
        Err(ZkError::ConnectionLoss { .. }) | Err(ZkError::Marshalling { .. }) => {
            (Outcome::Indeterminate, true)
        }
        // Everything else was rejected before entering agreement.
        Err(ZkError::SessionExpired { .. }) => (Outcome::Rejected, true),
        Err(_) => (Outcome::Rejected, false),
    }
}

/// One workload client: random reads/writes/CAS/multis against the register,
/// reconnecting (with session re-attach) through failures.
#[allow(clippy::too_many_lines)]
fn worker_loop(
    index: u32,
    mut rng: ChaosRng,
    addrs: Arc<Mutex<Vec<Option<SocketAddr>>>>,
    recorder: Arc<HistoryRecorder>,
    stop: Arc<AtomicBool>,
    secure: bool,
) -> WorkerStats {
    let mut stats = WorkerStats::default();
    let creds = credentials(secure);
    let mut client: Option<ZkTcpClient> = None;
    let mut seq: u64 = 0;
    let mut last_version: i32 = 0;
    // The consistency guarantees under test are per *session*: a fresh
    // session legitimately starts with a fresh observation floor, so each
    // session gets its own client id in the history (generation in the
    // high bits, worker index in the low byte).
    let mut generation: u32 = 0;
    let mut last_session: Option<i64> = None;
    // Member slot (index into the addr table) this client's session lives
    // on. Sessions are local to the member that created them; after that
    // member restarts on a fresh port, the slot still identifies it, so a
    // re-attach must go there first.
    let mut home: Option<usize> = None;

    while !stop.load(Ordering::Relaxed) {
        let Some(active) = client.as_mut() else {
            let live: Vec<SocketAddr> = addrs.lock().iter().flatten().copied().collect();
            if !live.is_empty() {
                let pick = rng.next_below(live.len() as u64) as usize;
                let rotated: Vec<SocketAddr> =
                    live.iter().skip(pick).chain(live.iter().take(pick)).copied().collect();
                if let Ok(fresh) = ZkTcpClient::connect_ensemble_with(
                    &rotated,
                    Arc::clone(&creds),
                    10_000,
                    RetryPolicy::no_retries(),
                ) {
                    if last_session.is_some_and(|id| id != fresh.session_id()) {
                        generation += 1;
                    }
                    last_session = Some(fresh.session_id());
                    home = addrs.lock().iter().position(|slot| *slot == Some(fresh.addr()));
                    client = Some(fresh);
                    continue;
                }
            }
            std::thread::sleep(Duration::from_millis(20));
            continue;
        };

        let roll = rng.next_below(100);
        let invoke_ns = recorder.now_ns();
        let (kind, outcome, lost) = if roll < 40 {
            // Read.
            let result = active.get_data(REGISTER, false);
            match result {
                Ok((data, stat)) => (
                    OpKind::Read,
                    Outcome::ReadOk { version: stat.version, value: decode_value(&data) },
                    false,
                ),
                Err(ZkError::ConnectionLoss { .. }) | Err(ZkError::Marshalling { .. }) => {
                    (OpKind::Read, Outcome::Indeterminate, true)
                }
                Err(ZkError::SessionExpired { .. }) => (OpKind::Read, Outcome::Rejected, true),
                Err(_) => (OpKind::Read, Outcome::Rejected, false),
            }
        } else if roll < 70 {
            // Unconditional write of a fresh unique value.
            seq += 1;
            let value = (u64::from(index + 1) << 32) | seq;
            let result = active.set_data(REGISTER, encode_value(value), -1);
            let (outcome, lost) = classify_write(&result, false);
            (OpKind::Write { value }, outcome, lost)
        } else if roll < 85 {
            // CAS on the most recently observed version.
            seq += 1;
            let value = (u64::from(index + 1) << 32) | seq;
            let expected = last_version;
            let result = active.set_data(REGISTER, encode_value(value), expected);
            let (outcome, lost) = classify_write(&result, true);
            (OpKind::Cas { value, expected_version: expected }, outcome, lost)
        } else {
            // Atomic multi: register + both mirrors, one transaction.
            seq += 1;
            let value = (u64::from(index + 1) << 32) | seq;
            let ops = vec![
                Op::SetData(SetDataRequest {
                    path: REGISTER.into(),
                    data: encode_value(value),
                    version: -1,
                }),
                Op::SetData(SetDataRequest {
                    path: MIRROR_A.into(),
                    data: encode_value(value),
                    version: -1,
                }),
                Op::SetData(SetDataRequest {
                    path: MIRROR_B.into(),
                    data: encode_value(value),
                    version: -1,
                }),
            ];
            match active.multi(ops) {
                Ok(results) => match results.first() {
                    Some(jute::multi::OpResult::SetData { stat }) => {
                        (OpKind::Write { value }, Outcome::WriteOk { version: stat.version }, false)
                    }
                    // The batch aborted atomically — a definite no-op.
                    _ => (OpKind::Write { value }, Outcome::Rejected, false),
                },
                Err(ZkError::ConnectionLoss { .. }) | Err(ZkError::Marshalling { .. }) => {
                    (OpKind::Write { value }, Outcome::Indeterminate, true)
                }
                Err(ZkError::SessionExpired { .. }) => {
                    (OpKind::Write { value }, Outcome::Rejected, true)
                }
                Err(_) => (OpKind::Write { value }, Outcome::Rejected, false),
            }
        };
        let response_ns = recorder.now_ns();
        if let Outcome::WriteOk { version } = &outcome {
            last_version = *version;
        }
        if let Outcome::ReadOk { version, .. } = &outcome {
            last_version = *version;
        }
        recorder.record(OpRecord {
            client: (generation << 8) | index,
            invoke_ns,
            response_ns,
            kind,
            outcome,
        });
        stats.ops += 1;

        if lost {
            // Try to re-attach the session on a live member, retrying for a
            // bounded window (a full power cycle takes a while to bring the
            // first member back). Only after the budget runs out fall back
            // to a fresh connection — and thus a fresh session — at the top
            // of the loop.
            let old_session = active.session_id();
            let budget = Instant::now() + Duration::from_secs(3);
            // Sessions live on the member that created them, so for the
            // first part of the budget only that member is retried (it may
            // be rebooting onto a fresh port); other members — which would
            // answer with a *fresh* session — are a late fallback.
            let home_only_until = Instant::now() + Duration::from_millis(1500);
            let mut revived = false;
            'revive: while Instant::now() < budget && !stop.load(Ordering::Relaxed) {
                let slots: Vec<Option<SocketAddr>> = addrs.lock().clone();
                let mut sweep: Vec<(usize, SocketAddr)> = Vec::new();
                if let Some(h) = home {
                    if let Some(Some(addr)) = slots.get(h) {
                        sweep.push((h, *addr));
                    }
                }
                if home.is_none() || Instant::now() >= home_only_until {
                    for (slot, addr) in slots.iter().enumerate() {
                        if Some(slot) != home {
                            if let Some(addr) = addr {
                                sweep.push((slot, *addr));
                            }
                        }
                    }
                }
                for (slot, addr) in sweep {
                    if active.reconnect_to(addr).is_ok() {
                        if active.session_id() == old_session {
                            stats.reattaches += 1;
                        } else {
                            // The re-attach fell back to a fresh session.
                            generation += 1;
                        }
                        last_session = Some(active.session_id());
                        home = Some(slot);
                        revived = true;
                        break 'revive;
                    }
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            if !revived {
                client = None;
            }
        }
    }
    stats
}

/// Creates the register and mirror znodes (idempotently). Generic over the
/// unified client trait so the same setup runs against any transport.
fn setup_paths<C: zkserver::ZooKeeper<Error = ZkError>>(client: &mut C) -> Result<(), String> {
    for (path, data) in [
        ("/chaos", Vec::new()),
        (REGISTER, encode_value(0)),
        (MIRROR_A, encode_value(0)),
        (MIRROR_B, encode_value(0)),
    ] {
        match client.create(path, data, CreateMode::Persistent) {
            Ok(_) | Err(ZkError::NodeExists { .. }) => {}
            Err(err) => return Err(format!("setup create {path}: {err}")),
        }
    }
    Ok(())
}

fn fail(reason: impl Into<String>) -> RunFailure {
    RunFailure { reason: reason.into(), violations: Vec::new() }
}

/// Runs one fault schedule end-to-end. See the module docs for the phases;
/// returns the run's fault/ops tallies, or the first verification failure.
///
/// # Errors
///
/// Fails on linearizability violations, replica divergence, same-epoch
/// split leaders, torn multis, a missed post-power-cycle session re-attach,
/// or harness-level trouble (members that cannot start, no quorum after
/// healing).
#[allow(clippy::too_many_lines)]
pub fn run_schedule(
    spec: EnsembleSpec,
    schedule: &[FaultEvent],
    options: &RunOptions,
) -> Result<RunReport, RunFailure> {
    let mut rng = ChaosRng::new(options.seed ^ 0xC4A0_5C4A);
    let mut ensemble =
        ChaosEnsemble::start(spec, options).map_err(|e| fail(format!("ensemble start: {e}")))?;

    // Wait for the bootstrap leader, then create the register.
    let deadline = Instant::now() + Duration::from_secs(5);
    {
        let mut client = connect_any(&ensemble.client_addrs, options.secure, deadline)
            .map_err(|e| fail(format!("initial connect: {e}")))?;
        let mut last = Err("never attempted".to_string());
        while Instant::now() < deadline {
            last = setup_paths(&mut client);
            if last.is_ok() {
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
            if let Ok(fresh) = connect_any(&ensemble.client_addrs, options.secure, deadline) {
                client = fresh;
            }
        }
        last.map_err(|e| fail(format!("register setup: {e}")))?;
        client.close();
    }

    // Split-brain watchdog: two members claiming leadership of the *same*
    // epoch at once is the safety hole the grant election closes.
    let stop = Arc::new(AtomicBool::new(false));
    let split_brain: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let max_epoch = Arc::new(std::sync::atomic::AtomicU32::new(0));
    let watchdog = {
        let members = Arc::clone(&ensemble.members);
        let stop = Arc::clone(&stop);
        let split_brain = Arc::clone(&split_brain);
        let max_epoch = Arc::clone(&max_epoch);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let mut leaders: HashMap<u32, Vec<NodeId>> = HashMap::new();
                {
                    let members = members.lock();
                    for server in members.iter().flatten() {
                        let epoch = server.epoch();
                        max_epoch.fetch_max(epoch, Ordering::Relaxed);
                        if server.role() == Role::Leader {
                            leaders.entry(epoch).or_default().push(server.id());
                        }
                    }
                }
                for (epoch, ids) in leaders {
                    if ids.len() > 1 {
                        split_brain.lock().push(format!("members {ids:?} both led epoch {epoch}"));
                    }
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        })
    };

    // Workload.
    let recorder = Arc::new(HistoryRecorder::new());
    let workers: Vec<_> = (0..options.clients as u32)
        .map(|i| {
            let rng = ChaosRng::new(options.seed).fork(u64::from(i) | 0x8000_0000);
            let addrs = Arc::clone(&ensemble.client_addrs);
            let recorder = Arc::clone(&recorder);
            let stop = Arc::clone(&stop);
            let secure = options.secure;
            std::thread::spawn(move || worker_loop(i, rng, addrs, recorder, stop, secure))
        })
        .collect();

    // Walk the schedule.
    let started = Instant::now();
    let mut events: Vec<&FaultEvent> = schedule.iter().collect();
    events.sort_by_key(|e| e.at);
    let mut harness_error = None;
    for event in events {
        let due = started + event.at;
        while Instant::now() < due {
            std::thread::sleep(Duration::from_millis(2).min(due - Instant::now()));
        }
        if let Err(err) = ensemble.apply(&event.action, &mut rng) {
            harness_error = Some(format!("applying {:?}: {err}", event.action));
            break;
        }
    }
    if harness_error.is_none() {
        while started.elapsed() < options.duration {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    // Heal, revive, and let the workload breathe on the healthy ensemble so
    // the tail of the history contains post-heal operations.
    if let Err(err) = ensemble.restore() {
        harness_error.get_or_insert(format!("restore: {err}"));
    }
    std::thread::sleep(Duration::from_millis(600));
    stop.store(true, Ordering::Relaxed);
    let mut stats = WorkerStats::default();
    for worker in workers {
        if let Ok(ws) = worker.join() {
            stats.ops += ws.ops;
            stats.reattaches += ws.reattaches;
        }
    }
    let _ = watchdog.join();
    if let Some(err) = harness_error {
        return Err(fail(format!("harness: {err}")));
    }

    // Barrier write + convergence: every surviving member must reach the
    // same zxid and hold a byte-identical tree.
    let verify_deadline = Instant::now() + Duration::from_secs(15);
    let mut client = connect_any(&ensemble.client_addrs, options.secure, verify_deadline)
        .map_err(|e| fail(format!("post-heal connect: {e}")))?;
    let barrier = loop {
        match client.set_data(REGISTER, encode_value(u64::MAX), -1) {
            Ok(stat) => break stat,
            Err(_) if Instant::now() < verify_deadline => {
                std::thread::sleep(Duration::from_millis(50));
                if let Ok(fresh) =
                    connect_any(&ensemble.client_addrs, options.secure, verify_deadline)
                {
                    client = fresh;
                }
            }
            Err(err) => return Err(fail(format!("barrier write never committed: {err}"))),
        }
    };
    let _ = barrier;
    loop {
        let zxids: Vec<i64> = {
            let members = ensemble.members.lock();
            members.iter().flatten().map(|s| s.last_applied_zxid()).collect()
        };
        let converged = !zxids.is_empty() && zxids.iter().all(|&z| z == zxids[0]);
        if converged {
            break;
        }
        if Instant::now() >= verify_deadline {
            return Err(fail(format!("replicas never converged after healing: zxids {zxids:?}")));
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    {
        let members = ensemble.members.lock();
        let snapshots: Vec<(NodeId, Vec<u8>)> = members
            .iter()
            .flatten()
            .map(|s| {
                let replica = s.replica();
                let tree = replica.tree();
                (s.id(), zkserver::persist::encode_snapshot(&tree, &[]))
            })
            .collect();
        if let Some(((first_id, reference), rest)) = snapshots.split_first() {
            for (id, bytes) in rest {
                if bytes != reference {
                    return Err(fail(format!(
                        "replica state diverged after heal: {id} differs from {first_id} \
                         ({} vs {} snapshot bytes)",
                        bytes.len(),
                        reference.len()
                    )));
                }
            }
        }
    }

    // Multi atomicity: the mirrors are only ever written together.
    let mirror_a =
        client.get_data(MIRROR_A, false).map_err(|e| fail(format!("mirror read: {e}")))?;
    let mirror_b =
        client.get_data(MIRROR_B, false).map_err(|e| fail(format!("mirror read: {e}")))?;
    if mirror_a.0 != mirror_b.0 {
        return Err(fail(format!(
            "multi atomicity torn: mirrors hold {:?} vs {:?}",
            mirror_a.0, mirror_b.0
        )));
    }
    client.close();

    // Split-brain observations.
    let observed = split_brain.lock().clone();
    if !observed.is_empty() {
        return Err(fail(format!("same-epoch split leaders observed: {observed:?}")));
    }

    // Linearizability.
    let history = recorder.take();
    let violations = checker::check(&history, (0, 0));
    if !violations.is_empty() {
        return Err(RunFailure {
            reason: format!(
                "{} consistency violation(s) in a history of {} operations",
                violations.len(),
                history.len()
            ),
            violations,
        });
    }

    // Power-cycle runs must demonstrate session durability: at least one
    // client re-attached to a session that predates the full outage.
    let power_cycled = schedule.iter().any(|e| e.action == FaultAction::PowerCycle);
    if power_cycled && stats.reattaches == 0 {
        return Err(fail(
            "no client re-attached to its pre-outage session after the power cycle \
             (session table not recovered from disk)",
        ));
    }

    Ok(RunReport {
        ops: stats.ops,
        history_len: history.len(),
        frames: ensemble.plane.frames(),
        dropped: ensemble.plane.dropped(),
        duplicated: ensemble.plane.duplicated(),
        delayed: ensemble.plane.delayed(),
        reattaches: stats.reattaches,
        max_epoch: max_epoch.load(Ordering::Relaxed),
    })
}

/// Runs a named scenario with its own spec/duration.
///
/// # Errors
///
/// Propagates [`run_schedule`] failures.
pub fn run_scenario(scenario: &Scenario, seed: u64, secure: bool) -> Result<RunReport, RunFailure> {
    let options = RunOptions { seed, secure, duration: scenario.duration, clients: 3 };
    run_schedule(scenario.spec, &(scenario.schedule)(seed), &options)
}

/// The named scenario matrix (`chaos list` prints it).
pub fn catalogue() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "leader-partition",
            summary: "bootstrap leader cut off from the majority mid-load, later healed",
            spec: EnsembleSpec::in_memory(3),
            duration: ms(2500),
            schedule: |_| {
                vec![
                    FaultEvent {
                        at: ms(400),
                        action: FaultAction::Partition(vec![
                            vec![NodeId(1)],
                            vec![NodeId(2), NodeId(3)],
                        ]),
                    },
                    FaultEvent { at: ms(1500), action: FaultAction::Heal },
                ]
            },
        },
        Scenario {
            name: "leader-partition-mid-multi",
            summary: "seeded-time leader partition landing while atomic multis are in flight",
            spec: EnsembleSpec::in_memory(3),
            duration: ms(2500),
            schedule: |seed| {
                let mut rng = ChaosRng::new(seed ^ 0x11D);
                let at = 300 + rng.next_below(600);
                vec![
                    FaultEvent {
                        at: ms(at),
                        action: FaultAction::Partition(vec![
                            vec![NodeId(1)],
                            vec![NodeId(2), NodeId(3)],
                        ]),
                    },
                    FaultEvent { at: ms(at + 900), action: FaultAction::Heal },
                ]
            },
        },
        Scenario {
            name: "follower-isolation",
            summary: "one follower cut off from everyone, rejoining after heal",
            spec: EnsembleSpec::in_memory(3),
            duration: ms(2500),
            schedule: |_| {
                vec![
                    FaultEvent { at: ms(400), action: FaultAction::Isolate(NodeId(3)) },
                    FaultEvent { at: ms(1500), action: FaultAction::Heal },
                ]
            },
        },
        Scenario {
            name: "asymmetric-partition-election",
            summary: "a one-way link break during the election after a leader crash",
            spec: EnsembleSpec::durable(3, 1024),
            duration: ms(3000),
            schedule: |_| {
                vec![
                    FaultEvent {
                        at: ms(300),
                        action: FaultAction::BlockOneWay(NodeId(2), NodeId(3)),
                    },
                    FaultEvent { at: ms(500), action: FaultAction::Kill(0) },
                    FaultEvent { at: ms(1500), action: FaultAction::Heal },
                    FaultEvent { at: ms(1700), action: FaultAction::Restart(0) },
                ]
            },
        },
        Scenario {
            name: "message-chaos",
            summary: "background drop + duplicate + delay on every link for the whole run",
            spec: EnsembleSpec::in_memory(3),
            duration: ms(2800),
            schedule: |_| {
                vec![
                    FaultEvent {
                        at: ms(0),
                        action: FaultAction::SetFaults(LinkFaults {
                            drop_permille: 80,
                            duplicate_permille: 40,
                            delay_permille: 80,
                            max_delay: ms(30),
                        }),
                    },
                    FaultEvent { at: ms(2000), action: FaultAction::SetFaults(LinkFaults::none()) },
                ]
            },
        },
        Scenario {
            name: "duplicate-storm",
            summary: "forty percent of all peer frames delivered twice",
            spec: EnsembleSpec::in_memory(3),
            duration: ms(2600),
            schedule: |_| {
                vec![
                    FaultEvent {
                        at: ms(0),
                        action: FaultAction::SetFaults(LinkFaults {
                            duplicate_permille: 400,
                            ..LinkFaults::none()
                        }),
                    },
                    FaultEvent { at: ms(2000), action: FaultAction::SetFaults(LinkFaults::none()) },
                ]
            },
        },
        Scenario {
            name: "delay-reorder",
            summary: "heavy random delays reordering nearly half of all peer frames",
            spec: EnsembleSpec::in_memory(3),
            duration: ms(2600),
            schedule: |_| {
                vec![
                    FaultEvent {
                        at: ms(0),
                        action: FaultAction::SetFaults(LinkFaults {
                            delay_permille: 450,
                            max_delay: ms(60),
                            ..LinkFaults::none()
                        }),
                    },
                    FaultEvent { at: ms(2000), action: FaultAction::SetFaults(LinkFaults::none()) },
                ]
            },
        },
        Scenario {
            name: "leader-crash-restart",
            summary: "durable leader killed under load, restarted from its WAL",
            spec: EnsembleSpec::durable(3, 64),
            duration: ms(3000),
            schedule: |_| {
                vec![
                    FaultEvent { at: ms(600), action: FaultAction::Kill(0) },
                    FaultEvent { at: ms(1400), action: FaultAction::Restart(0) },
                ]
            },
        },
        Scenario {
            name: "follower-corrupt-rejoin",
            summary: "follower killed, its WAL bit-rotted on disk, then restarted",
            spec: EnsembleSpec::durable(3, 32),
            duration: ms(3000),
            schedule: |_| {
                vec![
                    FaultEvent { at: ms(500), action: FaultAction::Kill(2) },
                    FaultEvent { at: ms(550), action: FaultAction::CorruptStorage(2) },
                    FaultEvent { at: ms(900), action: FaultAction::Restart(2) },
                ]
            },
        },
        Scenario {
            name: "power-cycle",
            summary: "full-ensemble outage and disk recovery; sessions must survive",
            spec: EnsembleSpec::durable(3, 8),
            duration: ms(3200),
            schedule: |_| vec![FaultEvent { at: ms(1000), action: FaultAction::PowerCycle }],
        },
        Scenario {
            name: "split-leader-window",
            summary: "five members, election frames dropped during failover — the \
                      configuration where announcement-based election could crown two leaders",
            spec: EnsembleSpec::durable(5, 1024),
            duration: ms(3500),
            schedule: |_| {
                vec![
                    FaultEvent {
                        at: ms(300),
                        action: FaultAction::SetFaults(LinkFaults {
                            drop_permille: 250,
                            ..LinkFaults::none()
                        }),
                    },
                    FaultEvent { at: ms(500), action: FaultAction::Kill(0) },
                    FaultEvent { at: ms(1600), action: FaultAction::SetFaults(LinkFaults::none()) },
                    FaultEvent { at: ms(1800), action: FaultAction::Restart(0) },
                ]
            },
        },
        Scenario {
            name: "graceful-leader-drain",
            summary: "bootstrap leader drained mid-load: sub-second handoff, probe flip, \
                      monotone counters, no acknowledged write lost",
            spec: EnsembleSpec::in_memory(3),
            duration: ms(2500),
            schedule: |_| vec![FaultEvent { at: ms(800), action: FaultAction::Drain(0) }],
        },
        Scenario {
            name: "clock-skew-sessions",
            summary: "members disagree about time by seconds; session expiry must not fork state",
            spec: EnsembleSpec::in_memory(3),
            duration: ms(2800),
            schedule: |_| {
                vec![
                    FaultEvent { at: ms(300), action: FaultAction::SkewClock(1, 4_000) },
                    FaultEvent { at: ms(600), action: FaultAction::SkewClock(2, -4_000) },
                    FaultEvent { at: ms(900), action: FaultAction::SkewClock(0, 2_500) },
                    FaultEvent { at: ms(1900), action: FaultAction::SkewClock(0, 0) },
                    FaultEvent { at: ms(1900), action: FaultAction::SkewClock(1, 0) },
                    FaultEvent { at: ms(1900), action: FaultAction::SkewClock(2, 0) },
                ]
            },
        },
    ]
}

/// Looks a scenario up by name.
pub fn find(name: &str) -> Option<Scenario> {
    catalogue().into_iter().find(|s| s.name == name)
}
