//! The harness's own deterministic random source.
//!
//! Every random decision in the chaos plane — drop/duplicate/delay rolls,
//! partition timings, workload operation mixes — flows from a [`ChaosRng`]
//! derived from the scenario seed, so a failing run is reproducible from
//! its seed alone. SplitMix64 is used directly (rather than a `rand`
//! dependency) because the fault plane needs a splittable generator whose
//! streams stay stable across library upgrades: the seed *is* the bug
//! report.

/// A SplitMix64 generator: tiny state, full 64-bit period over the seed
/// space, and cheap deterministic forking per label.
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// Creates a generator for `seed`. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        ChaosRng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value uniform in `0..bound` (`bound` zero yields zero).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift reduction: bias is < 2^-64 per draw, irrelevant for
        // fault scheduling and — unlike modulo — branch-free.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// True with probability `permille`/1000 (values ≥ 1000 are always true).
    pub fn chance(&mut self, permille: u32) -> bool {
        self.next_below(1000) < u64::from(permille)
    }

    /// A child generator whose stream is a pure function of this seed and
    /// `label` — independent streams for independent subsystems (one per
    /// network link, one per workload client) without cross-talk: drawing
    /// more values on one link never shifts another link's decisions.
    pub fn fork(&self, label: u64) -> ChaosRng {
        let mut mixer = ChaosRng { state: self.state ^ label.rotate_left(17) };
        // Burn one output so forks of adjacent labels decorrelate.
        let seed = mixer.next_u64();
        ChaosRng { state: seed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = ChaosRng::new(42);
        let mut b = ChaosRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let parent = ChaosRng::new(7);
        let mut fork_before = parent.fork(3);
        let mut burned = parent.clone();
        let _ = burned.next_u64();
        // Forking is keyed on the *seed state*, not on how many values the
        // fork's sibling streams have drawn.
        let mut fork_after = parent.fork(3);
        assert_eq!(fork_before.next_u64(), fork_after.next_u64());
        assert_ne!(parent.fork(3).next_u64(), parent.fork(4).next_u64());
        let _ = burned;
    }

    #[test]
    fn next_below_stays_in_range() {
        let mut rng = ChaosRng::new(99);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
        assert_eq!(rng.next_below(0), 0);
    }
}
