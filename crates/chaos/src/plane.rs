//! The fault plane: one shared, seeded decision authority for every
//! peer-to-peer link of an ensemble under test.
//!
//! Each directed link `(from, to)` owns an independent random stream forked
//! from the plane's seed, and every frame crossing the link consumes exactly
//! one decision from that stream — so a link's fault pattern is a pure
//! function of `(seed, from, to, per-link frame index)`, independent of how
//! the OS interleaves the other links. Partitions are modelled separately
//! as hard directed blocks layered over the probabilistic faults.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;
use zab::NodeId;

use crate::rng::ChaosRng;

/// Probabilistic per-frame faults, applied uniformly to every unblocked
/// link. All probabilities are in permille (units of 0.1%).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkFaults {
    /// Chance a frame is silently dropped.
    pub drop_permille: u32,
    /// Chance a frame is delivered twice.
    pub duplicate_permille: u32,
    /// Chance a frame is held back before delivery (which reorders it past
    /// frames sent after it).
    pub delay_permille: u32,
    /// Upper bound of an injected delay, drawn uniformly per delayed frame.
    pub max_delay: Duration,
}

impl LinkFaults {
    /// No probabilistic faults (hard partitions still apply).
    pub fn none() -> Self {
        LinkFaults::default()
    }
}

/// What the plane decided for one frame on one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Deliver the frame normally.
    Deliver,
    /// Silently discard the frame.
    Drop,
    /// Deliver the frame twice.
    Duplicate,
    /// Deliver the frame after the given hold-back.
    Delay(Duration),
}

/// Seeded fault-decision authority shared by all [`FaultyTransport`]
/// wrappers of one ensemble under test.
///
/// [`FaultyTransport`]: crate::transport::FaultyTransport
#[derive(Debug)]
pub struct FaultPlane {
    root: ChaosRng,
    faults: Mutex<LinkFaults>,
    links: Mutex<HashMap<(NodeId, NodeId), ChaosRng>>,
    blocked: Mutex<HashSet<(NodeId, NodeId)>>,
    frames: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
}

impl FaultPlane {
    /// A plane with no faults configured, rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlane {
            root: ChaosRng::new(seed),
            faults: Mutex::new(LinkFaults::none()),
            links: Mutex::new(HashMap::new()),
            blocked: Mutex::new(HashSet::new()),
            frames: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
        }
    }

    /// Replaces the probabilistic fault configuration for all links.
    pub fn set_faults(&self, faults: LinkFaults) {
        *self.faults.lock() = faults;
    }

    /// Blocks frames in the single direction `from → to` (the asymmetric
    /// half of a partition).
    pub fn block_one_way(&self, from: NodeId, to: NodeId) {
        self.blocked.lock().insert((from, to));
    }

    /// Partitions the ensemble into the given groups: every link that
    /// crosses a group boundary is blocked in both directions. Previously
    /// installed blocks stay in place.
    pub fn partition(&self, groups: &[Vec<NodeId>]) {
        let mut blocked = self.blocked.lock();
        for (i, a) in groups.iter().enumerate() {
            for b in groups.iter().skip(i + 1) {
                for &x in a {
                    for &y in b {
                        blocked.insert((x, y));
                        blocked.insert((y, x));
                    }
                }
            }
        }
    }

    /// Cuts `node` off from every other member, both directions.
    pub fn isolate(&self, node: NodeId, all: &[NodeId]) {
        let mut blocked = self.blocked.lock();
        for &other in all {
            if other != node {
                blocked.insert((node, other));
                blocked.insert((other, node));
            }
        }
    }

    /// Removes every partition block (probabilistic faults keep applying
    /// until [`set_faults`](Self::set_faults) clears them too).
    pub fn heal(&self) {
        self.blocked.lock().clear();
    }

    /// Decides the fate of the next frame on the directed link `from → to`,
    /// consuming one decision from the link's deterministic stream.
    pub fn decide(&self, from: NodeId, to: NodeId) -> Decision {
        self.frames.fetch_add(1, Ordering::Relaxed);
        if self.blocked.lock().contains(&(from, to)) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Decision::Drop;
        }
        let faults = *self.faults.lock();
        let mut links = self.links.lock();
        let rng = links
            .entry((from, to))
            .or_insert_with(|| self.root.fork((u64::from(from.0) << 32) | u64::from(to.0)));
        // Draw the three rolls unconditionally so a link's stream position
        // depends only on its frame count, not on the fault configuration
        // that happened to be active earlier in the run.
        let drop = rng.chance(faults.drop_permille);
        let duplicate = rng.chance(faults.duplicate_permille);
        let delay = rng.chance(faults.delay_permille);
        let delay_ms = rng.next_below(faults.max_delay.as_millis().max(1) as u64);
        if drop {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            Decision::Drop
        } else if duplicate {
            self.duplicated.fetch_add(1, Ordering::Relaxed);
            Decision::Duplicate
        } else if delay {
            self.delayed.fetch_add(1, Ordering::Relaxed);
            Decision::Delay(Duration::from_millis(delay_ms))
        } else {
            Decision::Deliver
        }
    }

    /// Total frames the plane has ruled on.
    pub fn frames(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    /// Frames dropped (probabilistically or by a partition block).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Frames delivered twice.
    pub fn duplicated(&self) -> u64 {
        self.duplicated.load(Ordering::Relaxed)
    }

    /// Frames held back before delivery.
    pub fn delayed(&self) -> u64 {
        self.delayed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_seed_and_link() {
        let faults = LinkFaults {
            drop_permille: 300,
            duplicate_permille: 200,
            delay_permille: 200,
            max_delay: Duration::from_millis(50),
        };
        let run = |seed| {
            let plane = FaultPlane::new(seed);
            plane.set_faults(faults);
            (0..200).map(|_| plane.decide(NodeId(1), NodeId(2))).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ somewhere");
    }

    #[test]
    fn link_streams_are_independent() {
        let faults = LinkFaults {
            drop_permille: 500,
            duplicate_permille: 0,
            delay_permille: 0,
            max_delay: Duration::ZERO,
        };
        // Interleaving traffic on a second link must not shift the first
        // link's decision stream.
        let quiet = FaultPlane::new(3);
        quiet.set_faults(faults);
        let alone: Vec<_> = (0..100).map(|_| quiet.decide(NodeId(1), NodeId(2))).collect();
        let busy = FaultPlane::new(3);
        busy.set_faults(faults);
        let interleaved: Vec<_> = (0..100)
            .map(|_| {
                let _ = busy.decide(NodeId(2), NodeId(1));
                let _ = busy.decide(NodeId(3), NodeId(1));
                busy.decide(NodeId(1), NodeId(2))
            })
            .collect();
        assert_eq!(alone, interleaved);
    }

    #[test]
    fn partitions_block_and_heal() {
        let plane = FaultPlane::new(0);
        plane.partition(&[vec![NodeId(1)], vec![NodeId(2), NodeId(3)]]);
        assert_eq!(plane.decide(NodeId(1), NodeId(2)), Decision::Drop);
        assert_eq!(plane.decide(NodeId(3), NodeId(1)), Decision::Drop);
        assert_eq!(plane.decide(NodeId(2), NodeId(3)), Decision::Deliver);
        plane.heal();
        assert_eq!(plane.decide(NodeId(1), NodeId(2)), Decision::Deliver);
    }

    #[test]
    fn one_way_blocks_are_asymmetric() {
        let plane = FaultPlane::new(0);
        plane.block_one_way(NodeId(1), NodeId(2));
        assert_eq!(plane.decide(NodeId(1), NodeId(2)), Decision::Drop);
        assert_eq!(plane.decide(NodeId(2), NodeId(1)), Decision::Deliver);
    }
}
