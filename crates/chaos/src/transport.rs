//! A fault-injecting decorator over the ensemble's peer transport.
//!
//! [`FaultyTransport`] wraps any [`PeerTransport`] (in practice
//! [`zab::TcpNetwork`]) and consults the shared [`FaultPlane`] for every
//! outgoing frame. Broadcasts are decomposed into per-peer sends first, so
//! a partition can cut one recipient out of a broadcast while the others
//! still receive it — exactly what a switch dropping one port would do.
//! Delayed frames are re-injected by a background scheduler thread, which
//! also reorders them past later traffic.

use std::collections::BinaryHeap;
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use zab::{Envelope, NodeId, ZabMessage, ZabTransport};
use zkserver::PeerTransport;

use crate::plane::{Decision, FaultPlane};

/// A frame held back by the delay scheduler.
struct DelayedFrame {
    due: Instant,
    seq: u64,
    from: NodeId,
    to: NodeId,
    message: ZabMessage,
}

impl PartialEq for DelayedFrame {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for DelayedFrame {}
impl PartialOrd for DelayedFrame {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DelayedFrame {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest due frame wins.
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}

/// Fault-injecting wrapper around a real peer transport. Ensemble members
/// built over one of these (via [`ZkEnsembleServer::start_custom`]) run the
/// unmodified protocol code; only their view of the network is filtered.
///
/// [`ZkEnsembleServer::start_custom`]: zkserver::ZkEnsembleServer::start_custom
pub struct FaultyTransport {
    inner: Arc<dyn PeerTransport>,
    plane: Arc<FaultPlane>,
    delay_tx: Mutex<Option<Sender<DelayedFrame>>>,
    scheduler: Mutex<Option<JoinHandle<()>>>,
    seq: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for FaultyTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyTransport")
            .field("id", &PeerTransport::id(self.inner.as_ref()))
            .finish()
    }
}

impl FaultyTransport {
    /// Wraps `inner`, routing every outgoing frame through `plane`.
    pub fn new(inner: Arc<dyn PeerTransport>, plane: Arc<FaultPlane>) -> Self {
        let (tx, rx) = mpsc::channel::<DelayedFrame>();
        let scheduler_inner = Arc::clone(&inner);
        let scheduler = std::thread::spawn(move || {
            let mut heap: BinaryHeap<DelayedFrame> = BinaryHeap::new();
            loop {
                let wait = heap
                    .peek()
                    .map(|f| f.due.saturating_duration_since(Instant::now()))
                    .unwrap_or(Duration::from_secs(3600));
                match rx.recv_timeout(wait) {
                    Ok(frame) => heap.push(frame),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return,
                }
                while heap.peek().is_some_and(|f| f.due <= Instant::now()) {
                    let frame = heap.pop().expect("peeked above");
                    scheduler_inner.send(frame.from, frame.to, frame.message);
                }
            }
        });
        FaultyTransport {
            inner,
            plane,
            delay_tx: Mutex::new(Some(tx)),
            scheduler: Mutex::new(Some(scheduler)),
            seq: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The shared fault plane this transport consults.
    pub fn plane(&self) -> &Arc<FaultPlane> {
        &self.plane
    }

    fn send_with_faults(&self, from: NodeId, to: NodeId, message: ZabMessage) {
        match self.plane.decide(from, to) {
            Decision::Deliver => self.inner.send(from, to, message),
            Decision::Drop => {}
            Decision::Duplicate => {
                self.inner.send(from, to, message.clone());
                self.inner.send(from, to, message);
            }
            Decision::Delay(hold) => {
                let seq = self.seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let frame = DelayedFrame { due: Instant::now() + hold, seq, from, to, message };
                // After shutdown the scheduler is gone; dropping the frame
                // matches what the dead socket would have done.
                if let Some(tx) = self.delay_tx.lock().as_ref() {
                    let _ = tx.send(frame);
                }
            }
        }
    }
}

impl ZabTransport for FaultyTransport {
    fn send(&self, from: NodeId, to: NodeId, message: ZabMessage) {
        self.send_with_faults(from, to, message);
    }

    fn broadcast(&self, from: NodeId, message: &ZabMessage) {
        // Decompose: each recipient gets its own per-link fault decision.
        for peer in self.inner.peer_ids() {
            self.send_with_faults(from, peer, message.clone());
        }
    }

    fn receive(&self, node: NodeId) -> Option<Envelope> {
        self.inner.receive(node)
    }
}

impl PeerTransport for FaultyTransport {
    fn id(&self) -> NodeId {
        PeerTransport::id(self.inner.as_ref())
    }

    fn local_addr(&self) -> std::net::SocketAddr {
        self.inner.local_addr()
    }

    fn peer_ids(&self) -> Vec<NodeId> {
        self.inner.peer_ids()
    }

    fn set_peers(&self, peers: std::collections::HashMap<NodeId, std::net::SocketAddr>) {
        self.inner.set_peers(peers);
    }

    fn receive_timeout(&self, timeout: Duration) -> Option<Envelope> {
        self.inner.receive_timeout(timeout)
    }

    fn shutdown(&self) {
        // Dropping the sender disconnects the scheduler's channel; it exits
        // after flushing nothing further. Join so no frame is re-injected
        // into a transport the caller believes dead.
        drop(self.delay_tx.lock().take());
        if let Some(handle) = self.scheduler.lock().take() {
            let _ = handle.join();
        }
        self.inner.shutdown();
    }
}
