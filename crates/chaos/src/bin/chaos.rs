//! The chaos matrix runner.
//!
//! ```text
//! chaos list
//! chaos run --scenario leader-partition --seed 7
//! chaos run --all --mode both --seed 42
//! chaos run --scenario power-cycle --mode secure --no-shrink
//! ```
//!
//! Exit code 0 when every selected run passes all verifications, 1 when any
//! fails (the failing seed, mode, and — unless `--no-shrink` — a minimised
//! fault schedule are printed).

use std::process::ExitCode;

use chaos::scenario::{catalogue, find, run_schedule, RunOptions, Scenario};
use chaos::shrink::shrink_schedule;

struct Args {
    command: String,
    scenario: Option<String>,
    all: bool,
    seed: u64,
    modes: Vec<bool>, // secure flags to run
    no_shrink: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  chaos list\n  chaos run (--scenario NAME | --all) [--seed N] \
         [--mode plain|secure|both] [--no-shrink]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else { usage() };
    let mut args = Args {
        command,
        scenario: None,
        all: false,
        seed: 42,
        modes: vec![false],
        no_shrink: false,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--scenario" => args.scenario = Some(argv.next().unwrap_or_else(|| usage())),
            "--all" => args.all = true,
            "--seed" => {
                args.seed = argv.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--mode" => {
                args.modes = match argv.next().as_deref() {
                    Some("plain") => vec![false],
                    Some("secure") => vec![true],
                    Some("both") => vec![false, true],
                    _ => usage(),
                }
            }
            "--no-shrink" => args.no_shrink = true,
            _ => usage(),
        }
    }
    args
}

fn mode_name(secure: bool) -> &'static str {
    if secure {
        "secure"
    } else {
        "plain"
    }
}

fn run_one(scenario: &Scenario, seed: u64, secure: bool, no_shrink: bool) -> bool {
    let options = RunOptions { seed, secure, duration: scenario.duration, clients: 3 };
    let schedule = (scenario.schedule)(seed);
    print!("{:<32} seed={seed:<6} mode={:<6} ... ", scenario.name, mode_name(secure));
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match run_schedule(scenario.spec, &schedule, &options) {
        Ok(report) => {
            println!(
                "ok  ({} ops, {} history, epoch {}, frames {} [{} dropped / {} dup / {} delayed], \
                 {} re-attaches)",
                report.ops,
                report.history_len,
                report.max_epoch,
                report.frames,
                report.dropped,
                report.duplicated,
                report.delayed,
                report.reattaches,
            );
            true
        }
        Err(failure) => {
            println!("FAILED");
            println!("  {failure}");
            if !no_shrink {
                println!("  shrinking the fault schedule (budget 12 reruns)...");
                let outcome = shrink_schedule(scenario.spec, &schedule, &options, failure, 12);
                println!(
                    "  minimal failing schedule after {} rerun(s) — reproduce with \
                     --scenario {} --seed {seed} --mode {}:",
                    outcome.reruns,
                    scenario.name,
                    mode_name(secure),
                );
                for event in &outcome.schedule {
                    println!("    at {:>6?}: {:?}", event.at, event.action);
                }
                println!("  minimal failure: {}", outcome.failure);
            }
            false
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    match args.command.as_str() {
        "list" => {
            for scenario in catalogue() {
                println!(
                    "{:<32} {}-node {:<9} {:>5}ms  {}",
                    scenario.name,
                    scenario.spec.size,
                    if scenario.spec.durable { "durable" } else { "in-memory" },
                    scenario.duration.as_millis(),
                    scenario.summary,
                );
            }
            ExitCode::SUCCESS
        }
        "run" => {
            let selected: Vec<Scenario> = if args.all {
                catalogue()
            } else {
                match args.scenario.as_deref().and_then(find) {
                    Some(scenario) => vec![scenario],
                    None => {
                        eprintln!(
                            "unknown or missing --scenario (use `chaos list`); or pass --all"
                        );
                        return ExitCode::from(2);
                    }
                }
            };
            let mut failures = 0u32;
            for scenario in &selected {
                for &secure in &args.modes {
                    if !run_one(scenario, args.seed, secure, args.no_shrink) {
                        failures += 1;
                    }
                }
            }
            let total = selected.len() * args.modes.len();
            println!("{}/{total} runs passed", total as u32 - failures);
            if failures == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
