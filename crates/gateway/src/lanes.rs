//! Packing per-shard zxids into the single `i64` the wire protocol carries.
//!
//! Clients track one `last_zxid` and the protocol has one header slot for
//! it, but behind the gateway each shard advances an independent zxid
//! stream. The [`LaneCodec`] folds the per-shard values into one 62-bit
//! vector of fixed-width *lanes* (shard 0 in the lowest lane). Ensemble
//! zxids are `(epoch << 32) | counter`, far too wide for a narrow lane, so
//! each lane stores saturating sub-fields for epoch and counter with these
//! guarantees:
//!
//! - **Monotone**: `z1 <= z2` implies `encode(z1) <= encode(z2)`, and the
//!   merged vector is numerically monotone in every component — so the
//!   client's habit of keeping the max of all observed header zxids keeps
//!   exactly the latest vector.
//! - **Safe floor**: `decode(encode(z)) <= z`. On reconnect the gateway
//!   splits the client-presented vector back into per-shard floors; a
//!   floor that never exceeds what the shard actually committed can never
//!   make a backend refuse the session for being "from the future".
//! - **Exact while unsaturated**: until a shard's epoch or counter
//!   overflows its sub-field, `decode(encode(z)) == z`.
//!
//! With one shard the codec is the identity, so a 1-shard gateway is
//! wire-for-wire transparent.

/// Splits the protocol's 62 usable zxid bits into equal lanes, one per
/// shard.
#[derive(Debug, Clone, Copy)]
pub struct LaneCodec {
    shards: u32,
    /// Bits per lane (62 / shards); 64 in the 1-shard identity case.
    width: u32,
    /// High sub-field of a lane: the zxid's epoch, saturating.
    epoch_bits: u32,
    /// Low sub-field: the zxid's counter, saturating.
    counter_bits: u32,
}

impl LaneCodec {
    /// A codec for `shards` lanes. Panics if `shards` is 0 or needs lanes
    /// too narrow to be useful (more than 15 shards).
    pub fn new(shards: usize) -> LaneCodec {
        assert!(shards >= 1, "a lane codec needs at least one shard");
        assert!(shards <= 15, "62-bit zxid vectors support at most 15 shards");
        let shards = shards as u32;
        if shards == 1 {
            return LaneCodec { shards: 1, width: 64, epoch_bits: 32, counter_bits: 32 };
        }
        let width = 62 / shards;
        let epoch_bits = (width / 2).min(10);
        LaneCodec { shards, width, epoch_bits, counter_bits: width - epoch_bits }
    }

    /// Number of lanes.
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// Bits of a lane that hold the zxid's epoch.
    pub fn epoch_bits(&self) -> u32 {
        self.epoch_bits
    }

    /// Bits of a lane that hold the zxid's counter.
    pub fn counter_bits(&self) -> u32 {
        self.counter_bits
    }

    fn lane_max(&self) -> u64 {
        if self.shards == 1 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Compresses one shard's zxid into its lane representation.
    pub fn encode(&self, zxid: i64) -> u64 {
        if self.shards == 1 {
            return zxid as u64;
        }
        if zxid <= 0 {
            return 0;
        }
        let z = zxid as u64;
        let epoch = z >> 32;
        let counter = z & 0xffff_ffff;
        let epoch_max = (1u64 << self.epoch_bits) - 1;
        let counter_max = (1u64 << self.counter_bits) - 1;
        if epoch >= epoch_max {
            // Epoch overflow saturates the whole lane: still monotone, and
            // decode maps it back to the highest representable floor.
            return self.lane_max();
        }
        (epoch << self.counter_bits) | counter.min(counter_max)
    }

    /// Expands a lane back to a zxid lower bound (exact while unsaturated).
    pub fn decode(&self, lane: u64) -> i64 {
        if self.shards == 1 {
            return lane as i64;
        }
        if lane >= self.lane_max() {
            let epoch_max = (1u64 << self.epoch_bits) - 1;
            return (epoch_max << 32) as i64;
        }
        let counter_mask = (1u64 << self.counter_bits) - 1;
        let epoch = lane >> self.counter_bits;
        let counter = lane & counter_mask;
        ((epoch << 32) | counter) as i64
    }

    /// Merges per-shard zxids into the single header value.
    pub fn merge(&self, per_shard: &[i64]) -> i64 {
        assert_eq!(per_shard.len(), self.shards as usize);
        if self.shards == 1 {
            return per_shard[0];
        }
        let mut merged = 0u64;
        for (shard, &zxid) in per_shard.iter().enumerate() {
            merged |= self.encode(zxid) << (shard as u32 * self.width);
        }
        merged as i64
    }

    /// Splits a merged header value back into per-shard floors.
    pub fn split(&self, merged: i64) -> Vec<i64> {
        if self.shards == 1 {
            return vec![merged];
        }
        let merged = merged as u64;
        let lane_mask = self.lane_max();
        (0..self.shards)
            .map(|shard| self.decode((merged >> (shard * self.width)) & lane_mask))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zxid(epoch: u64, counter: u64) -> i64 {
        ((epoch << 32) | counter) as i64
    }

    #[test]
    fn one_shard_is_the_identity() {
        let codec = LaneCodec::new(1);
        for z in [0, 1, zxid(3, 77), i64::MAX] {
            assert_eq!(codec.merge(&[z]), z);
            assert_eq!(codec.split(z), vec![z]);
        }
    }

    #[test]
    fn roundtrip_is_exact_while_unsaturated() {
        for shards in [2usize, 3, 4, 8] {
            let codec = LaneCodec::new(shards);
            // The largest unsaturated epoch/counter for this lane width.
            let epoch_top = (1u64 << codec.epoch_bits()) - 2;
            let counter_top = (1u64 << codec.counter_bits()) - 1;
            let samples =
                [0, 1, zxid(1, 0), zxid(1, counter_top.min(9)), zxid(epoch_top, counter_top)];
            for z in samples {
                let per_shard: Vec<i64> = (0..shards).map(|s| z.max(s as i64)).collect();
                assert_eq!(codec.split(codec.merge(&per_shard)), per_shard, "{shards} shards");
            }
        }
    }

    #[test]
    fn decode_never_exceeds_the_original() {
        let codec = LaneCodec::new(4);
        for z in [0, 1, zxid(1, 5), zxid(1023, 7), zxid(1024, 7), zxid(4000, u32::MAX as u64)] {
            assert!(codec.decode(codec.encode(z)) <= z, "zxid {z:#x}");
        }
    }

    #[test]
    fn encoding_is_monotone_per_lane_and_merged() {
        let codec = LaneCodec::new(4);
        let samples = [0, 1, 2, zxid(1, 0), zxid(1, 1), zxid(2, 0), zxid(1023, 0), zxid(2000, 9)];
        for pair in samples.windows(2) {
            assert!(codec.encode(pair[0]) <= codec.encode(pair[1]), "{pair:?}");
        }
        // Componentwise growth ⇒ numeric growth of the merged vector.
        let low = codec.merge(&[zxid(1, 5), 0, zxid(1, 1), 0]);
        let high = codec.merge(&[zxid(1, 6), 0, zxid(1, 1), 0]);
        assert!(high > low);
    }

    #[test]
    fn saturation_yields_a_safe_floor() {
        let codec = LaneCodec::new(8); // narrow lanes: 7 bits, 3-bit epochs
        let huge = zxid(i32::MAX as u64, u32::MAX as u64); // largest positive zxid
        let floor = codec.decode(codec.encode(huge));
        assert!(floor <= huge);
        assert!(floor > 0, "saturated lanes still witness progress");
    }

    #[test]
    fn lanes_do_not_interfere() {
        let codec = LaneCodec::new(4);
        let merged = codec.merge(&[zxid(1, 2), 0, zxid(3, 4), 7]);
        let split = codec.split(merged);
        assert_eq!(split, vec![zxid(1, 2), 0, zxid(3, 4), 7]);
    }
}
