//! The gateway's front-port service: terminate client sessions, route each
//! request to its shard, and splice the per-shard reply streams back into
//! the strict FIFO stream the client protocol demands.
//!
//! # Session model
//!
//! A gateway session lives exactly as long as its front TCP connection —
//! the gateway is a stateless tier, so nothing about a session survives
//! the connection (or a gateway restart). On reconnect a client presents
//! its session id and last-seen zxid as usual; the gateway honours the id
//! and splits the zxid back into per-shard floors (see
//! [`crate::lanes::LaneCodec`]), so zxid-floor guarantees survive a
//! gateway restart even though ephemerals and watches (connection state
//! everywhere in this workspace) do not.
//!
//! # Reply ordering
//!
//! The client requires responses in submission order on one connection,
//! but shards answer independently. The session keeps a FIFO of
//! `(xid, shard)` in submission order plus a stow map of replies that
//! arrived early; a reply is released only when its xid reaches the FIFO
//! head. Watch notifications carry no xid and bypass the FIFO.
//!
//! # Thread census
//!
//! The front reactor runs `O(cores)` event-loop shards. Each backend link
//! adds one blocking reader thread for the life of its front session, so a
//! gateway serving `S` sessions each touching `K` shards runs `S × K`
//! reader threads. Backend connects happen inline on the reactor thread
//! (bounded by the shard's connect timeout) — acceptable for this
//! reproduction, noted here because it briefly stalls one event-loop
//! shard.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use jute::records::{
    ConnectRequest, ConnectResponse, ErrorCode, OpCode, ReplyHeader, RequestHeader,
    NOTIFICATION_XID,
};
use jute::trace_envelope;
use jute::{framing, InputArchive, OutputArchive, Request, Response};
use netcore::{Conn, Reactor, ReactorConfig, Service};
use opsplane::{words, MetricsRegistry, RateLimitConfig, TenantRateLimiter};
use parking_lot::Mutex;
use trace::{SpanRecord, Stage};

use crate::backend::{BackendLink, GATEWAY_XID};
use crate::lanes::LaneCodec;
use crate::metrics::GatewayMetrics;
use crate::shardmap::{RouteError, ShardMap};

/// Session timeout granted when a client requests none.
const DEFAULT_SESSION_TIMEOUT_MS: i32 = 40_000;

/// Everything a gateway needs to start serving.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// The routing table (sealed prefixes in secure deployments).
    pub map: ShardMap,
    /// Member addresses per shard, indexed by shard id.
    pub shard_addrs: Vec<Vec<SocketAddr>>,
    /// Per-tenant admission control; `None` admits everything.
    pub rate_limit: Option<RateLimitConfig>,
    /// Front reactor tuning.
    pub reactor: ReactorConfig,
}

impl GatewayConfig {
    /// A config routing everything by `map` to `shard_addrs`, with default
    /// reactor settings and no rate limiting.
    pub fn new(map: ShardMap, shard_addrs: Vec<Vec<SocketAddr>>) -> GatewayConfig {
        GatewayConfig { map, shard_addrs, rate_limit: None, reactor: ReactorConfig::default() }
    }
}

/// Where a front connection is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for the `ConnectRequest` frame.
    Handshake,
    /// Session established; routing requests.
    Active,
    /// `CloseSession` acknowledged; draining the outbound queue.
    Closing,
}

/// One entry of the submission-order FIFO.
#[derive(Debug)]
struct PendingReply {
    xid: i32,
    /// The shard answering this xid, or `None` for replies the gateway
    /// produces itself (ping, errors, the close ack).
    shard: Option<usize>,
    submitted: Instant,
}

/// Mutable state of one front session.
struct FrontState {
    phase: Phase,
    session_id: i64,
    timeout_ms: i32,
    /// Per-shard zxid floors presented at handshake, used when a link to
    /// that shard is first opened.
    floors: Vec<i64>,
    /// One lazily opened backend session per touched shard.
    links: Vec<Option<Arc<BackendLink>>>,
    /// Highest zxid observed from each shard (shared with reader threads).
    lanes: Arc<Vec<AtomicI64>>,
    pending: VecDeque<PendingReply>,
    stowed: HashMap<i32, Vec<u8>>,
    /// The xid whose release finishes a graceful close (drain then part).
    close_after: Option<i32>,
}

/// Per-connection state slot handed to the reactor.
pub struct FrontSlot {
    inner: Mutex<FrontState>,
}

/// What a backend reader thread needs besides its connection: shared
/// instruments and the (Copy) lane codec.
#[derive(Clone)]
struct ReaderCtx {
    metrics: Arc<GatewayMetrics>,
    codec: LaneCodec,
}

impl ReaderCtx {
    fn merged_zxid(&self, lanes: &[AtomicI64]) -> i64 {
        let per_shard: Vec<i64> = lanes.iter().map(|l| l.load(Ordering::Acquire)).collect();
        self.codec.merge(&per_shard)
    }

    /// Releases every reply whose xid has reached the FIFO head and has
    /// its frame ready, rebasing each zxid as it goes out. When the close
    /// ack is released, starts the drain-and-part.
    fn drain_ready(&self, conn: &Arc<Conn<FrontSlot>>, lanes: &[AtomicI64]) {
        loop {
            let mut state = conn.state.inner.lock();
            let ready = match state.pending.front() {
                Some(next) if state.stowed.contains_key(&next.xid) => {
                    let next = state.pending.pop_front().expect("head exists");
                    let frame = state.stowed.remove(&next.xid).expect("checked above");
                    Some((next, frame))
                }
                _ => None,
            };
            let close_after = state.close_after;
            drop(state);
            let Some((entry, mut frame)) = ready else { break };
            rebase_zxid(&mut frame, self.merged_zxid(lanes));
            let _ = conn.send_framed(|_| Ok(()), frame);
            if let Some(shard) = entry.shard {
                self.metrics.request_latency[shard].observe_duration(entry.submitted.elapsed());
            }
            if close_after == Some(entry.xid) {
                conn.close_after_flush();
                break;
            }
        }
    }

    /// Blocking read loop for one backend link: folds every reply's zxid
    /// into the shard's lane, forwards watch events immediately, and
    /// releases request replies in submission order.
    fn run(
        &self,
        conn: &Arc<Conn<FrontSlot>>,
        link: &BackendLink,
        lanes: &[AtomicI64],
        reader: &mut TcpStream,
        shard: usize,
    ) {
        while let Ok(Some(frame)) = framing::read_frame(reader) {
            if frame.len() < 16 {
                break;
            }
            let xid = i32::from_be_bytes(frame[0..4].try_into().expect("peeked length"));
            let zxid = i64::from_be_bytes(frame[4..12].try_into().expect("peeked length"));
            lanes[shard].fetch_max(zxid, Ordering::AcqRel);
            if xid == GATEWAY_XID {
                continue; // Gateway-originated keepalive; the lane update was the point.
            }
            if xid == NOTIFICATION_XID {
                let mut frame = frame;
                rebase_zxid(&mut frame, self.merged_zxid(lanes));
                if conn.send_framed(|_| Ok(()), frame).is_ok() {
                    self.metrics.watch_events[shard].inc();
                }
                continue;
            }
            let mut state = conn.state.inner.lock();
            if !state.pending.iter().any(|entry| entry.xid == xid) {
                drop(state);
                conn.close(); // Unsolicited reply: the stream is out of sync.
                break;
            }
            state.stowed.insert(xid, frame);
            drop(state);
            self.drain_ready(conn, lanes);
        }
        // EOF with the link still live means the backend died mid-session;
        // drop the front connection so the client runs its reconnect path.
        if !link.is_closed() {
            conn.close();
        }
    }
}

/// The [`netcore::Service`] implementation behind [`Gateway`].
pub struct GatewayService {
    map: ShardMap,
    codec: LaneCodec,
    shard_addrs: Vec<Vec<SocketAddr>>,
    limiter: Option<TenantRateLimiter>,
    metrics: Arc<GatewayMetrics>,
    next_session: AtomicI64,
}

impl GatewayService {
    fn new(config: &GatewayConfig) -> GatewayService {
        let shards = config.map.shards();
        assert_eq!(
            shards,
            config.shard_addrs.len(),
            "the shard map addresses {shards} shards but {} address lists were given",
            config.shard_addrs.len()
        );
        // Seed session ids from the clock so ids stay distinct across
        // gateway restarts (a reconnecting client keeps its old id; fresh
        // clients must not collide with it).
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as i64)
            .unwrap_or(1)
            & 0x7fff_ffff_ffff;
        GatewayService {
            map: config.map.clone(),
            codec: LaneCodec::new(shards),
            shard_addrs: config.shard_addrs.clone(),
            limiter: config.rate_limit.map(TenantRateLimiter::new),
            metrics: Arc::new(GatewayMetrics::new(shards)),
            next_session: AtomicI64::new(seed.max(1)),
        }
    }

    fn reader_ctx(&self) -> ReaderCtx {
        ReaderCtx { metrics: Arc::clone(&self.metrics), codec: self.codec }
    }

    /// Enqueues a gateway-produced reply (errors, ping, the close ack)
    /// through the same FIFO as backend replies, so a pipelining client
    /// still sees responses in strict submission order. The zxid is
    /// rebased at release time like every other frame.
    fn enqueue_local_reply(
        &self,
        conn: &Arc<Conn<FrontSlot>>,
        xid: i32,
        response: &Response,
        closes: bool,
    ) {
        let bytes = response.to_bytes(&ReplyHeader { xid, zxid: 0, err: ErrorCode::Ok });
        let lanes = {
            let mut state = conn.state.inner.lock();
            state.pending.push_back(PendingReply { xid, shard: None, submitted: Instant::now() });
            state.stowed.insert(xid, bytes);
            if closes {
                state.close_after = Some(xid);
            }
            Arc::clone(&state.lanes)
        };
        self.reader_ctx().drain_ready(conn, &lanes);
    }

    fn handle_handshake(&self, conn: &Arc<Conn<FrontSlot>>, frame: &[u8]) {
        let mut input = InputArchive::new(frame);
        let request = match ConnectRequest::deserialize(&mut input)
            .and_then(|r| input.expect_exhausted().map(|()| r))
        {
            Ok(request) => request,
            Err(_) => {
                conn.close();
                return;
            }
        };
        let timeout_ms =
            if request.timeout_ms <= 0 { DEFAULT_SESSION_TIMEOUT_MS } else { request.timeout_ms };
        // Honour a presented session id (re-attach through a restarted
        // gateway); the zxid the client tracked is a lane vector, so split
        // it back into per-shard floors for the backend handshakes.
        let (session_id, floors) = if request.session_id != 0 {
            (request.session_id, self.codec.split(request.last_zxid_seen))
        } else {
            (self.next_session.fetch_add(1, Ordering::Relaxed), vec![0; self.codec.shards()])
        };
        {
            let mut state = conn.state.inner.lock();
            state.phase = Phase::Active;
            state.session_id = session_id;
            state.timeout_ms = timeout_ms;
            state.floors = floors;
        }
        let response = ConnectResponse {
            protocol_version: 0,
            timeout_ms,
            session_id,
            password: session_password(session_id),
        };
        let mut out = OutputArchive::with_capacity(64);
        response.serialize(&mut out);
        if conn.send_framed(|_| Ok(()), out.into_bytes()).is_ok() {
            self.metrics.handshakes.inc();
            self.metrics.front_sessions.add(1);
        }
    }

    /// Opens the shard link if this session has none yet, spawning its
    /// reader thread. Runs with the state lock held (blocks only this
    /// session). Returns `None` when no member of the shard is reachable.
    fn ensure_link(
        &self,
        conn: &Arc<Conn<FrontSlot>>,
        state: &mut FrontState,
        shard: usize,
    ) -> Option<Arc<BackendLink>> {
        if let Some(link) = &state.links[shard] {
            return Some(Arc::clone(link));
        }
        let (link, mut reader) = BackendLink::connect(
            shard,
            &self.shard_addrs[shard],
            state.floors[shard],
            state.timeout_ms,
        )
        .ok()?;
        let link = Arc::new(link);
        state.links[shard] = Some(Arc::clone(&link));
        self.metrics.backend_links.add(1);
        let ctx = self.reader_ctx();
        let thread_conn = Arc::clone(conn);
        let thread_link = Arc::clone(&link);
        let lanes = Arc::clone(&state.lanes);
        std::thread::Builder::new()
            .name(format!("gw-shard{shard}-reader"))
            .spawn(move || ctx.run(&thread_conn, &thread_link, &lanes, &mut reader, shard))
            .expect("spawning a backend reader thread");
        Some(link)
    }

    fn handle_request(&self, conn: &Arc<Conn<FrontSlot>>, mut frame: Vec<u8>) {
        // The gateway is keyless by design: the trace envelope is the only
        // part of the frame it may rewrite, and the jute body — sealed in
        // secure deployments — is parsed at an offset and forwarded intact.
        let route_start = trace::now_ns();
        let client_ctx = trace_envelope::peek(&frame);
        let body = match client_ctx {
            Some(_) => &frame[trace_envelope::ENVELOPE_LEN..],
            None => frame.as_slice(),
        };
        let (header, request) = match Request::from_bytes(body) {
            Ok(decoded) => decoded,
            Err(_) => {
                conn.close();
                return;
            }
        };
        match request {
            Request::Connect(_) => {
                conn.close(); // A second handshake on a live session is a protocol violation.
                return;
            }
            Request::Ping => {
                self.handle_ping(conn, header.xid);
                return;
            }
            Request::CloseSession => {
                self.handle_close_session(conn, header.xid);
                return;
            }
            _ => {}
        }
        if header.xid <= 0 {
            conn.close(); // Client xids are strictly positive.
            return;
        }
        if let Some(limiter) = &self.limiter {
            let tenant_path = match &request {
                Request::Multi(multi) => multi.ops.first().map(jute::Op::path),
                _ => request.path(),
            };
            if let Some(path) = tenant_path {
                if !limiter.try_acquire(path) {
                    self.metrics.throttled.inc();
                    self.enqueue_local_reply(
                        conn,
                        header.xid,
                        &Response::Error(ErrorCode::Throttled),
                        false,
                    );
                    return;
                }
            }
        }
        let shard = match self.map.route_request(&request) {
            Ok(Some(shard)) => shard,
            Ok(None) => {
                conn.close(); // Unroutable opcode that is not Ping/Close: out of protocol.
                return;
            }
            Err(RouteError::CrossShard(_)) => {
                self.metrics.cross_shard_rejections.inc();
                self.enqueue_local_reply(
                    conn,
                    header.xid,
                    &Response::Error(ErrorCode::CrossShard),
                    false,
                );
                return;
            }
        };
        let mut state = conn.state.inner.lock();
        if state.phase != Phase::Active {
            return;
        }
        let Some(link) = self.ensure_link(conn, &mut state, shard) else {
            drop(state);
            conn.close(); // Shard unreachable: surface as connection loss.
            return;
        };
        state.pending.push_back(PendingReply {
            xid: header.xid,
            shard: Some(shard),
            submitted: Instant::now(),
        });
        drop(state);
        self.metrics.requests[shard].inc();
        if let Some(ctx) = client_ctx {
            // Open the gateway's own span and splice its id into the
            // envelope so the shard's spans parent under this hop — the
            // rewrite touches only the 21-byte prefix, never the body.
            let route_span = trace::new_id();
            trace_envelope::rewrite_span_id(&mut frame, route_span);
            trace::record(SpanRecord {
                trace_id: ctx.trace_id,
                span_id: route_span,
                parent_span_id: ctx.span_id,
                stage: Stage::GwRoute,
                flags: ctx.flags,
                start_ns: route_start,
                end_ns: trace::now_ns(),
                detail: shard as u64,
            });
        }
        self.metrics
            .route_duration
            .observe(trace::now_ns().saturating_sub(route_start) as f64 / 1e9);
        if link.send_frame(&frame).is_err() {
            conn.close();
        }
    }

    /// Pings are answered locally (the gateway owns the session) and
    /// fanned out to every open backend link with the gateway's own xid so
    /// the backend sessions stay alive and each lane picks up the shard's
    /// current zxid.
    fn handle_ping(&self, conn: &Arc<Conn<FrontSlot>>, xid: i32) {
        let keepalive =
            Request::Ping.to_bytes(&RequestHeader { xid: GATEWAY_XID, op: OpCode::Ping });
        let links = conn.state.inner.lock().links.clone();
        for link in links.into_iter().flatten() {
            let _ = link.send_frame(&keepalive);
        }
        self.enqueue_local_reply(conn, xid, &Response::Ping, false);
    }

    /// Fans the close out to every backend session (so ephemerals are
    /// reaped promptly rather than waiting for the timeout sweep) and
    /// queues the ack behind any still-pending replies; releasing the ack
    /// starts the connection drain. Links are only *marked* closed here —
    /// their reader threads keep draining the replies the backends owe us,
    /// then exit silently on the EOF each backend sends after processing
    /// its `CloseSession`.
    fn handle_close_session(&self, conn: &Arc<Conn<FrontSlot>>, xid: i32) {
        let close = Request::CloseSession
            .to_bytes(&RequestHeader { xid: GATEWAY_XID, op: OpCode::CloseSession });
        let links = {
            let mut state = conn.state.inner.lock();
            state.phase = Phase::Closing;
            state.links.clone()
        };
        for link in links.into_iter().flatten() {
            let _ = link.send_frame(&close);
            link.mark_closed();
        }
        self.enqueue_local_reply(conn, xid, &Response::CloseSession, true);
    }

    fn gateway_info(&self) -> words::ServerInfo {
        let sessions = self.metrics.front_sessions.get().max(0) as u64;
        words::ServerInfo {
            version: format!("securekeeper-repro {}", env!("CARGO_PKG_VERSION")),
            member_id: 0,
            role: "gateway".to_string(),
            epoch: 0,
            leader: None,
            last_zxid: 0,
            znode_count: 0,
            approx_memory_bytes: 0,
            session_count: sessions,
            connection_count: sessions,
            watch_count: 0,
            ready: true,
            draining: false,
            secure: false,
            clients: Vec::new(),
            data_dirs: None,
        }
    }

    /// Answers `dirs` by querying one reachable member of every shard and
    /// concatenating their per-member reports under shard headings. Runs
    /// on a spawned thread: it does real network round-trips.
    fn serve_dirs(&self, conn: &Arc<Conn<FrontSlot>>) {
        let shard_addrs = self.shard_addrs.clone();
        let conn = Arc::clone(conn);
        std::thread::Builder::new()
            .name("gw-dirs".to_string())
            .spawn(move || {
                let mut out = String::new();
                for (shard, addrs) in shard_addrs.iter().enumerate() {
                    out.push_str(&format!("Shard {shard}:\n"));
                    let reply = addrs
                        .iter()
                        .find_map(|addr| words::send_word(addr, "dirs").ok())
                        .unwrap_or_else(|| "unreachable\n".to_string());
                    out.push_str(&reply);
                }
                let _ = conn.send_raw(out.as_bytes());
                conn.close_after_flush();
            })
            .expect("spawning the dirs aggregation thread");
    }
}

impl Service for GatewayService {
    type State = FrontSlot;

    fn make_state(&self, _peer: SocketAddr) -> FrontSlot {
        let shards = self.codec.shards();
        FrontSlot {
            inner: Mutex::new(FrontState {
                phase: Phase::Handshake,
                session_id: 0,
                timeout_ms: DEFAULT_SESSION_TIMEOUT_MS,
                floors: vec![0; shards],
                links: vec![None; shards],
                lanes: Arc::new((0..shards).map(|_| AtomicI64::new(0)).collect()),
                pending: VecDeque::new(),
                stowed: HashMap::new(),
                close_after: None,
            }),
        }
    }

    fn on_frame(&self, conn: &Arc<Conn<FrontSlot>>, frame: Vec<u8>) {
        let phase = conn.state.inner.lock().phase;
        match phase {
            Phase::Handshake => self.handle_handshake(conn, &frame),
            Phase::Active => self.handle_request(conn, frame),
            Phase::Closing => {}
        }
    }

    fn on_word(&self, conn: &Arc<Conn<FrontSlot>>, word: [u8; 4]) {
        self.metrics.admin_commands.inc();
        let Some(word) = words::parse_word(&word) else {
            conn.close();
            return;
        };
        if word == "dirs" {
            self.serve_dirs(conn);
            return;
        }
        match words::respond(word, &self.gateway_info(), &self.metrics.registry()) {
            Some(reply) => {
                let _ = conn.send_raw(reply.as_bytes());
                conn.close_after_flush();
            }
            None => conn.close(),
        }
    }

    fn on_closed(&self, conn: &Arc<Conn<FrontSlot>>) {
        let (links, was_attached) = {
            let mut state = conn.state.inner.lock();
            let was_attached = state.phase != Phase::Handshake;
            (std::mem::take(&mut state.links), was_attached)
        };
        for link in links.into_iter().flatten() {
            link.shutdown();
            self.metrics.backend_links.add(-1);
        }
        if was_attached {
            self.metrics.front_sessions.add(-1);
        }
    }
}

/// Overwrites the zxid field (bytes 4..12 of the reply header) in place.
fn rebase_zxid(frame: &mut [u8], merged: i64) {
    frame[4..12].copy_from_slice(&merged.to_be_bytes());
}

/// The opaque session password the gateway grants. Derived from the
/// session id (splitmix64) so a restarted gateway re-derives the same
/// password for a re-attaching session; it is a routing-tier token, not a
/// secret — backend authority never rests on it.
fn session_password(session_id: i64) -> Vec<u8> {
    let mut z = (session_id as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut out = Vec::with_capacity(16);
    for _ in 0..2 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        out.extend_from_slice(&z.to_be_bytes());
    }
    out
}

/// A running gateway: the front reactor plus its service.
pub struct Gateway {
    reactor: Reactor<GatewayService>,
    service: Arc<GatewayService>,
}

impl Gateway {
    /// Binds the front port and starts routing.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the reactor.
    ///
    /// # Panics
    ///
    /// Panics if `config.shard_addrs` does not cover every shard of the
    /// map — that is a deployment bug, not a runtime condition.
    pub fn bind(addr: impl std::net::ToSocketAddrs, config: GatewayConfig) -> io::Result<Gateway> {
        let reactor_config = config.reactor.clone();
        let service = Arc::new(GatewayService::new(&config));
        let reactor = Reactor::bind(addr, Arc::clone(&service), reactor_config)?;
        Ok(Gateway { reactor, service })
    }

    /// The front address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.reactor.local_addr()
    }

    /// The gateway's metric families.
    pub fn metrics(&self) -> &GatewayMetrics {
        &self.service.metrics
    }

    /// The registry behind [`Gateway::metrics`], for an
    /// [`opsplane::OpsServer`] or scrape test.
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        self.service.metrics.registry()
    }

    /// Stops accepting and tears down the event loops. Live backend links
    /// are torn down by each connection's close callback.
    pub fn shutdown(self) {
        self.reactor.shutdown();
    }
}
