//! A stateless routing gateway fronting a sharded, multi-ensemble
//! namespace.
//!
//! SecureKeeper's coordination tree is a single replicated namespace; this
//! crate scales its write path horizontally by partitioning the tree
//! across N independent ensembles (*shards*) behind a thin routing tier
//! that still speaks the ordinary client protocol:
//!
//! - [`ShardMap`] — longest-prefix subtree → shard routing table, loadable
//!   from a [`jute::shardmap::ShardMapConfig`] record. In secure
//!   deployments its prefixes are *sealed* (deterministically encrypted
//!   per path component), so the gateway routes on ciphertext and never
//!   holds a key — it stays outside the TCB exactly like the untrusted
//!   ZooKeeper core in the paper.
//! - [`Gateway`] — a [`netcore::Reactor`] service that terminates client
//!   sessions on its front port, opens one backend session per touched
//!   shard, correlates replies back into the client's strict FIFO order,
//!   and folds per-shard zxids into a single lane vector
//!   ([`LaneCodec`]) the unmodified client already tolerates.
//! - Cross-shard `multi` transactions are refused with the typed
//!   [`jute::records::ErrorCode::CrossShard`] error; a `multi` confined to
//!   one shard passes through with its atomicity intact.
//! - Per-tenant admission control ([`opsplane::TenantRateLimiter`]) and
//!   `gw_`-prefixed metrics make the tier operable on its own.

pub mod backend;
pub mod lanes;
pub mod metrics;
pub mod service;
pub mod shardmap;

pub use backend::BackendLink;
pub use lanes::LaneCodec;
pub use metrics::GatewayMetrics;
pub use service::{Gateway, GatewayConfig, GatewayService};
pub use shardmap::{RouteError, ShardMap};
