//! Longest-prefix subtree routing.
//!
//! A [`ShardMap`] assigns every znode path to exactly one shard by matching
//! the path's leading components against configured subtree prefixes; the
//! longest matching prefix wins. Matching is **purely byte-wise per
//! component**, which is what lets the same code route plaintext paths and
//! sealed paths: SecureKeeper's path encryption is deterministic per
//! component, so a map whose prefixes were sealed with the storage key
//! ([`ShardMap::sealed_with`]) routes ciphertext exactly as the plaintext
//! map routes plaintext — without the gateway ever holding a key.

use jute::shardmap::{ShardMapConfig, ShardMapEntry};
use jute::{MultiRequest, Request};

/// Why a request cannot be routed to a single shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// A `multi` whose sub-operations map to different shards. Carries the
    /// first path that left the transaction's shard.
    CrossShard(String),
}

/// The routing table: subtree prefix → shard index, longest prefix wins.
#[derive(Debug, Clone)]
pub struct ShardMap {
    shards: usize,
    /// Prefix components (empty for `/`) and the owning shard, kept in
    /// configuration order for deterministic tie-breaking.
    entries: Vec<(Vec<String>, usize)>,
}

impl ShardMap {
    /// Builds a map from prefix/shard pairs.
    ///
    /// # Errors
    ///
    /// Rejects a map with zero shards, a shard index out of range, or no
    /// `/` entry (every path must route somewhere — totality is a
    /// configuration invariant, not a runtime surprise).
    pub fn new(shards: usize, rules: &[(&str, usize)]) -> Result<Self, String> {
        if shards == 0 {
            return Err("a shard map needs at least one shard".into());
        }
        let mut entries = Vec::with_capacity(rules.len());
        let mut has_root = false;
        for (prefix, shard) in rules {
            if *shard >= shards {
                return Err(format!(
                    "prefix {prefix} routes to shard {shard}, but only {shards} shards exist"
                ));
            }
            let components: Vec<String> =
                prefix.split('/').filter(|c| !c.is_empty()).map(str::to_string).collect();
            has_root |= components.is_empty();
            entries.push((components, *shard));
        }
        if !has_root {
            return Err("a shard map must contain a `/` entry so every path routes".into());
        }
        Ok(ShardMap { shards, entries })
    }

    /// Builds a map from its wire-format configuration record.
    ///
    /// # Errors
    ///
    /// Propagates the validation failures of [`ShardMap::new`].
    pub fn from_config(config: &ShardMapConfig) -> Result<Self, String> {
        if config.shards <= 0 {
            return Err("a shard map needs at least one shard".into());
        }
        let rules: Vec<(&str, usize)> =
            config.entries.iter().map(|e| (e.prefix.as_str(), e.shard.max(0) as usize)).collect();
        Self::new(config.shards as usize, &rules)
    }

    /// Renders the map back into its wire-format configuration record.
    pub fn to_config(&self) -> ShardMapConfig {
        ShardMapConfig {
            shards: self.shards as i32,
            entries: self
                .entries
                .iter()
                .map(|(components, shard)| ShardMapEntry {
                    prefix: if components.is_empty() {
                        "/".to_string()
                    } else {
                        format!("/{}", components.join("/"))
                    },
                    shard: *shard as i32,
                })
                .collect(),
        }
    }

    /// Number of shards this map addresses.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// A copy of this map whose prefixes were rewritten by `seal` (the
    /// deployment tool passes a closure over the storage key's path cipher;
    /// the gateway itself only ever sees the sealed output). The `/` entry
    /// stays `/` — deterministic path encryption maps the root to itself.
    pub fn sealed_with(&self, mut seal: impl FnMut(&str) -> String) -> ShardMap {
        let entries = self
            .entries
            .iter()
            .map(|(components, shard)| {
                if components.is_empty() {
                    return (Vec::new(), *shard);
                }
                let sealed = seal(&format!("/{}", components.join("/")));
                let sealed_components: Vec<String> =
                    sealed.split('/').filter(|c| !c.is_empty()).map(str::to_string).collect();
                (sealed_components, *shard)
            })
            .collect();
        ShardMap { shards: self.shards, entries }
    }

    /// The shard owning `path`: the entry with the most leading components
    /// in common wins; among equal-length matches the earliest configured
    /// entry wins (deterministic tie-break). Total because construction
    /// requires a `/` entry.
    pub fn route(&self, path: &str) -> usize {
        let components: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        let mut best: Option<(usize, usize)> = None; // (match length, shard)
        for (prefix, shard) in &self.entries {
            if prefix.len() > components.len() {
                continue;
            }
            if prefix.iter().zip(&components).all(|(p, c)| p == c) {
                let better = match best {
                    Some((len, _)) => prefix.len() > len,
                    None => true,
                };
                if better {
                    best = Some((prefix.len(), *shard));
                }
            }
        }
        best.map(|(_, shard)| shard).expect("shard maps are total by construction")
    }

    /// Routes a whole request: `Ok(Some(shard))` for anything with a path,
    /// `Ok(None)` for pathless ops the gateway answers itself (ping,
    /// close), and [`RouteError::CrossShard`] for a `multi` spanning
    /// shards. A single-shard `multi` routes like a single op — it stays
    /// atomic on its one ensemble.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::CrossShard`] when a `multi`'s sub-operations
    /// map to more than one shard.
    pub fn route_request(&self, request: &Request) -> Result<Option<usize>, RouteError> {
        if let Some(path) = request.path() {
            return Ok(Some(self.route(path)));
        }
        if let Request::Multi(multi) = request {
            return self.route_multi(multi).map(Some);
        }
        Ok(None)
    }

    /// Routes a `multi`: every sub-operation must land on one shard.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::CrossShard`] with the first escaping path.
    pub fn route_multi(&self, multi: &MultiRequest) -> Result<usize, RouteError> {
        let mut ops = multi.ops.iter();
        let first = match ops.next() {
            Some(op) => op,
            // An empty multi touches nothing; route it to the root's shard.
            None => return Ok(self.route("/")),
        };
        let shard = self.route(first.path());
        for op in ops {
            if self.route(op.path()) != shard {
                return Err(RouteError::CrossShard(op.path().to_string()));
            }
        }
        Ok(shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jute::records::{CreateMode, CreateRequest};
    use jute::Op;

    fn map() -> ShardMap {
        ShardMap::new(3, &[("/", 0), ("/app", 1), ("/app/orders", 2)]).unwrap()
    }

    #[test]
    fn longest_prefix_wins() {
        let map = map();
        assert_eq!(map.route("/other/x"), 0);
        assert_eq!(map.route("/app/users/42"), 1);
        assert_eq!(map.route("/app/orders/9"), 2);
        assert_eq!(map.route("/app/orders"), 2, "the boundary path itself belongs to the subtree");
        assert_eq!(map.route("/app"), 1);
        assert_eq!(map.route("/"), 0, "root routes via the `/` entry");
    }

    #[test]
    fn equal_length_ties_break_to_the_earliest_entry() {
        let map = ShardMap::new(2, &[("/", 0), ("/a/b", 1), ("/a/b", 0)]).unwrap();
        assert_eq!(map.route("/a/b/c"), 1, "first configured entry wins the tie");
    }

    #[test]
    fn totality_and_bounds_are_validated() {
        assert!(ShardMap::new(0, &[("/", 0)]).is_err());
        assert!(ShardMap::new(2, &[("/a", 1)]).is_err(), "no `/` entry");
        assert!(ShardMap::new(2, &[("/", 5)]).is_err(), "shard out of range");
    }

    #[test]
    fn config_roundtrip_preserves_routing() {
        let original = map();
        let rebuilt = ShardMap::from_config(&original.to_config()).unwrap();
        for path in ["/", "/app", "/app/orders/1", "/zzz"] {
            assert_eq!(original.route(path), rebuilt.route(path), "{path}");
        }
    }

    #[test]
    fn sealed_map_routes_sealed_paths_identically() {
        // A toy deterministic "cipher": reverse each component. The real
        // deployment uses PathCipher; only determinism matters here.
        let seal = |path: &str| -> String {
            let sealed: Vec<String> = path
                .split('/')
                .filter(|c| !c.is_empty())
                .map(|c| c.chars().rev().collect())
                .collect();
            format!("/{}", sealed.join("/"))
        };
        let plain = map();
        let sealed = plain.sealed_with(seal);
        for path in ["/app/users/7", "/app/orders/1", "/elsewhere", "/"] {
            assert_eq!(plain.route(path), sealed.route(&seal(path)), "{path}");
        }
    }

    #[test]
    fn cross_shard_multi_is_rejected_with_the_escaping_path() {
        let map = map();
        let op = |path: &str| {
            Op::Create(CreateRequest {
                path: path.into(),
                data: vec![],
                mode: CreateMode::Persistent,
            })
        };
        let single = MultiRequest::new(vec![op("/app/users/a"), op("/app/users/b")]);
        assert_eq!(map.route_multi(&single), Ok(1));
        let mixed = MultiRequest::new(vec![op("/app/users/a"), op("/app/orders/b")]);
        assert_eq!(map.route_multi(&mixed), Err(RouteError::CrossShard("/app/orders/b".into())));
        assert_eq!(map.route_multi(&MultiRequest::new(vec![])), Ok(0), "empty multi → root shard");
    }
}
