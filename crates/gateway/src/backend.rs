//! Backend links: one plain-protocol session per (front session, shard).
//!
//! A link is a blocking `TcpStream` to any member of the shard's ensemble
//! (followers forward writes to their leader, so member choice only
//! affects latency, not correctness). The write half lives behind a mutex
//! and carries request frames verbatim; the read half is cloned off to a
//! reader thread owned by the gateway service, which correlates replies
//! and rebases zxids. Links are connection state, exactly like the front
//! session that owns them: when either side dies, the whole front
//! connection is torn down and the client re-attaches through the normal
//! reconnect path.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};

use jute::records::{ConnectRequest, ConnectResponse};
use jute::{framing, InputArchive, OutputArchive};
use parking_lot::Mutex;

/// The xid the gateway stamps on traffic it originates toward a backend
/// (keepalive pings, close-session fan-out). Reader threads swallow replies
/// carrying it after folding their zxid into the shard's lane; real client
/// xids are strictly positive, so the namespaces cannot collide.
pub const GATEWAY_XID: i32 = -2;

/// The write half of one backend session.
#[derive(Debug)]
pub struct BackendLink {
    shard: usize,
    session_id: i64,
    writer: Mutex<TcpStream>,
    closed: AtomicBool,
}

impl BackendLink {
    /// Dials the first reachable member of `addrs` and performs the plain
    /// session handshake with `last_zxid_seen` as the replay floor (the
    /// lane codec guarantees the floor never exceeds what the shard
    /// committed, so the handshake cannot be refused as "from the
    /// future"). Returns the link plus the read-half clone for the
    /// caller's reader thread.
    ///
    /// # Errors
    ///
    /// Returns the last connection or handshake error when no member of
    /// the shard is reachable.
    pub fn connect(
        shard: usize,
        addrs: &[SocketAddr],
        last_zxid_seen: i64,
        timeout_ms: i32,
    ) -> io::Result<(BackendLink, TcpStream)> {
        let mut last_error =
            io::Error::new(io::ErrorKind::AddrNotAvailable, "shard has no member addresses");
        for &addr in addrs {
            match Self::handshake(addr, last_zxid_seen, timeout_ms) {
                Ok((stream, response)) => {
                    let reader = stream.try_clone()?;
                    let link = BackendLink {
                        shard,
                        session_id: response.session_id,
                        writer: Mutex::new(stream),
                        closed: AtomicBool::new(false),
                    };
                    return Ok((link, reader));
                }
                Err(err) => last_error = err,
            }
        }
        Err(last_error)
    }

    fn handshake(
        addr: SocketAddr,
        last_zxid_seen: i64,
        timeout_ms: i32,
    ) -> io::Result<(TcpStream, ConnectResponse)> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let request = ConnectRequest {
            protocol_version: 0,
            last_zxid_seen,
            timeout_ms,
            session_id: 0,
            password: Vec::new(),
        };
        let mut out = OutputArchive::with_capacity(64);
        request.serialize(&mut out);
        framing::write_frame(&mut stream, &out.into_bytes())?;
        let frame = framing::read_frame(&mut stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::ConnectionReset, "backend refused the session handshake")
        })?;
        let mut input = InputArchive::new(&frame);
        let response = ConnectResponse::deserialize(&mut input)
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
        Ok((stream, response))
    }

    /// The shard this link serves.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The backend-granted session id (distinct per shard; never exposed
    /// to the client, which only sees its gateway session id).
    pub fn session_id(&self) -> i64 {
        self.session_id
    }

    /// Forwards one already-encoded request frame (header + body) verbatim.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; the caller tears the front session down.
    pub fn send_frame(&self, frame: &[u8]) -> io::Result<()> {
        let mut writer = self.writer.lock();
        framing::write_frame(&mut *writer, frame)
    }

    /// Whether this link has been marked or torn down.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Marks the link as deliberately closing without touching the socket:
    /// the reader thread treats the coming EOF as expected while it drains
    /// the replies the backend still owes.
    pub fn mark_closed(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// Closes both stream halves; the reader thread unblocks with EOF.
    pub fn shutdown(&self) {
        if self.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        let writer = self.writer.lock();
        let _ = writer.shutdown(std::net::Shutdown::Both);
    }
}
