//! The gateway's metric families.
//!
//! All families use the `gw_` prefix — deliberately disjoint from the
//! ensemble members' `zk_` namespace so a scrape of the gateway and a
//! scrape of a member never collide, and so the members' docs/metrics
//! equality test (which audits `zk_` rows) is unaffected.

use std::sync::Arc;

use opsplane::metrics::{
    Counter, Gauge, Histogram, MetricsRegistry, READ_LATENCY_BUCKETS, STAGE_DURATION_BUCKETS,
};

/// Instruments one gateway process.
pub struct GatewayMetrics {
    registry: Arc<MetricsRegistry>,
    /// Requests routed to each shard (`gw_requests_total{shard=...}`).
    pub requests: Vec<Counter>,
    /// End-to-end gateway latency per shard: forward → reply released.
    pub request_latency: Vec<Histogram>,
    /// Watch events rebased and forwarded per shard.
    pub watch_events: Vec<Counter>,
    /// `multi` requests refused for spanning shards.
    pub cross_shard_rejections: Counter,
    /// Requests refused by the per-tenant rate limiter.
    pub throttled: Counter,
    /// Client sessions currently attached to the gateway.
    pub front_sessions: Gauge,
    /// Backend links currently open across all sessions and shards.
    pub backend_links: Gauge,
    /// Front handshakes accepted (new sessions and re-attaches).
    pub handshakes: Counter,
    /// Four-letter admin words served on the front port.
    pub admin_commands: Counter,
    /// Time spent deciding and forwarding one request
    /// (`gw_stage_duration_seconds{stage="route"}`), the gateway's slice of
    /// the end-to-end trace taxonomy.
    pub route_duration: Histogram,
}

impl GatewayMetrics {
    /// Registers the gateway families for `shards` shards on a fresh
    /// registry.
    pub fn new(shards: usize) -> GatewayMetrics {
        let registry = Arc::new(MetricsRegistry::new());
        let shard_label = |s: usize| [("shard", format!("{s}"))];
        let mut requests = Vec::with_capacity(shards);
        let mut request_latency = Vec::with_capacity(shards);
        let mut watch_events = Vec::with_capacity(shards);
        for shard in 0..shards {
            let labels = shard_label(shard);
            let labels: Vec<(&str, &str)> = labels.iter().map(|(k, v)| (*k, v.as_str())).collect();
            requests.push(registry.counter_with(
                "gw_requests_total",
                &labels,
                "Requests routed to this shard",
            ));
            request_latency.push(registry.histogram_with(
                "gw_request_latency_seconds",
                &labels,
                "Gateway-observed latency of routed requests",
                &READ_LATENCY_BUCKETS,
            ));
            watch_events.push(registry.counter_with(
                "gw_watch_events_total",
                &labels,
                "Watch notifications rebased and forwarded from this shard",
            ));
        }
        GatewayMetrics {
            cross_shard_rejections: registry.counter(
                "gw_cross_shard_rejections_total",
                "Multi requests refused because their operations span shards",
            ),
            throttled: registry
                .counter("gw_throttled_total", "Requests refused by the per-tenant rate limiter"),
            front_sessions: registry
                .gauge("gw_front_sessions", "Client sessions currently attached"),
            backend_links: registry
                .gauge("gw_backend_links", "Open backend links across all sessions and shards"),
            handshakes: registry
                .counter("gw_handshakes_total", "Front handshakes accepted (new and re-attach)"),
            admin_commands: registry
                .counter("gw_admin_commands_total", "Four-letter admin words served"),
            route_duration: registry.histogram_with(
                "gw_stage_duration_seconds",
                &[("stage", "route")],
                "Gateway pipeline stage duration in seconds, by stage",
                &STAGE_DURATION_BUCKETS,
            ),
            registry,
            requests,
            request_latency,
            watch_events,
        }
    }

    /// The registry backing these families (serve it via
    /// [`opsplane::OpsServer`] for `/metrics` scrapes).
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_use_the_gw_prefix_exclusively() {
        let metrics = GatewayMetrics::new(3);
        metrics.requests[1].inc();
        metrics.throttled.inc();
        let names = metrics.registry().family_names();
        assert!(!names.is_empty());
        for name in &names {
            assert!(name.starts_with("gw_"), "{name} escapes the gateway namespace");
        }
        let rendered = metrics.registry().render();
        assert!(rendered.contains("gw_requests_total{shard=\"1\"} 1"), "{rendered}");
    }
}
