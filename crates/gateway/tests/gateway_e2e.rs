//! End-to-end tests of the sharded-namespace gateway over real TCP:
//! single-member ensembles per shard, an unmodified [`ZkTcpClient`] in
//! front, and the gateway in between. CI runs this file in the
//! `sharding-e2e` job.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gateway::{Gateway, GatewayConfig, ShardMap};
use jute::multi::{Op, OpResult};
use jute::records::{CheckVersionRequest, CreateMode, CreateRequest, SetDataRequest};
use opsplane::RateLimitConfig;
use zkserver::client::ZkTcpClient;
use zkserver::ensemble::{EnsembleConfig, ZkEnsembleServer};
use zkserver::{ZkError, ZkReplica};

/// Aggressive timers so single-member "ensembles" are ready instantly.
fn shard_ensemble_config(subtree_root: Option<&str>) -> EnsembleConfig {
    let mut config = EnsembleConfig {
        heartbeat_interval: Duration::from_millis(20),
        election_timeout: Duration::from_millis(150),
        election_vote_window: Duration::from_millis(80),
        write_timeout: Duration::from_secs(2),
        poll_interval: Duration::from_millis(5),
        ..EnsembleConfig::default()
    };
    config.net.subtree_root = subtree_root.map(str::to_string);
    config
}

/// The shortest prefix each shard owns — used as the member-side subtree
/// guard (`NetConfig::subtree_root`), which must admit the shard's whole
/// routed subtree plus the ancestor chain the bootstrap creates.
fn shard_roots(rules: &[(&str, usize)], shards: usize) -> Vec<Option<String>> {
    let mut roots: Vec<Option<String>> = vec![None; shards];
    for (prefix, shard) in rules {
        let depth = prefix.split('/').filter(|c| !c.is_empty()).count();
        let current_depth =
            roots[*shard].as_deref().map(|r| r.split('/').filter(|c| !c.is_empty()).count());
        if current_depth.is_none() || current_depth.unwrap() > depth {
            roots[*shard] = Some((*prefix).to_string());
        }
    }
    roots
}

struct ShardedFixture {
    shards: Vec<Vec<ZkEnsembleServer>>,
    rules: Vec<(String, usize)>,
    gateway: Option<Gateway>,
}

impl ShardedFixture {
    /// Boots one ensemble per shard (with subtree guards), creates each
    /// shard's prefix ancestor chain directly on its members, and starts a
    /// gateway over the lot.
    fn start(rules: &[(&str, usize)], members_per_shard: usize) -> ShardedFixture {
        Self::start_with(rules, members_per_shard, None)
    }

    fn start_with(
        rules: &[(&str, usize)],
        members_per_shard: usize,
        rate_limit: Option<RateLimitConfig>,
    ) -> ShardedFixture {
        let shard_count = rules.iter().map(|(_, s)| s + 1).max().unwrap_or(1);
        let roots = shard_roots(rules, shard_count);
        let shards: Vec<Vec<ZkEnsembleServer>> = (0..shard_count)
            .map(|shard| {
                let config = shard_ensemble_config(roots[shard].as_deref());
                ZkEnsembleServer::start_local_ensemble(members_per_shard, &config, |id| {
                    Arc::new(ZkReplica::new(id))
                })
                .expect("bind shard ensemble")
            })
            .collect();
        let mut fixture = ShardedFixture {
            shards,
            rules: rules.iter().map(|(p, s)| ((*p).to_string(), *s)).collect(),
            gateway: None,
        };
        fixture.bootstrap_prefixes();
        let gateway =
            Gateway::bind("127.0.0.1:0", fixture.gateway_config(rate_limit)).expect("bind gateway");
        fixture.gateway = Some(gateway);
        fixture
    }

    fn gateway_config(&self, rate_limit: Option<RateLimitConfig>) -> GatewayConfig {
        let rules: Vec<(&str, usize)> = self.rules.iter().map(|(p, s)| (p.as_str(), *s)).collect();
        let map = ShardMap::new(self.shards.len(), &rules).expect("valid map");
        let mut config = GatewayConfig::new(map, self.shard_addrs());
        config.rate_limit = rate_limit;
        config
    }

    fn shard_addrs(&self) -> Vec<Vec<SocketAddr>> {
        self.shards
            .iter()
            .map(|members| members.iter().map(ZkEnsembleServer::client_addr).collect())
            .collect()
    }

    /// Creates, per shard, the ancestor chain of every prefix it owns —
    /// directly against the shard (the gateway would route ancestor
    /// creates elsewhere). The member-side guard admits ancestors of its
    /// subtree root for exactly this purpose.
    fn bootstrap_prefixes(&self) {
        for (prefix, shard) in &self.rules {
            let components: Vec<&str> = prefix.split('/').filter(|c| !c.is_empty()).collect();
            if components.is_empty() {
                continue;
            }
            let mut client =
                ZkTcpClient::connect(self.shards[*shard][0].client_addr()).expect("bootstrap");
            let mut path = String::new();
            for component in components {
                path.push('/');
                path.push_str(component);
                match client.create(&path, Vec::new(), CreateMode::Persistent) {
                    Ok(_) | Err(ZkError::NodeExists { .. }) => {}
                    Err(err) => panic!("bootstrap of {path} on shard {shard}: {err}"),
                }
            }
            client.close();
        }
    }

    fn gateway(&self) -> &Gateway {
        self.gateway.as_ref().expect("gateway running")
    }

    fn connect(&self) -> ZkTcpClient {
        ZkTcpClient::connect(self.gateway().local_addr()).expect("connect via gateway")
    }

    fn connect_direct(&self, shard: usize) -> ZkTcpClient {
        ZkTcpClient::connect(self.shards[shard][0].client_addr()).expect("connect direct")
    }
}

const RULES: &[(&str, usize)] = &[("/", 0), ("/app", 1)];

#[test]
fn single_path_ops_route_to_their_shards() {
    let fixture = ShardedFixture::start(RULES, 1);
    let mut client = fixture.connect();

    client.create("/other", b"root-shard".to_vec(), CreateMode::Persistent).unwrap();
    client.create("/app/users", b"app-shard".to_vec(), CreateMode::Persistent).unwrap();

    let (data, _) = client.get_data("/other", false).unwrap();
    assert_eq!(data, b"root-shard");
    let (data, _) = client.get_data("/app/users", false).unwrap();
    assert_eq!(data, b"app-shard");

    // Each write landed on exactly its shard: shard 0's tree has /other
    // but no /app/users, and vice versa (shard 0 accepts any path — its
    // guard root is `/` — so a miss there is a genuine miss).
    let mut direct0 = fixture.connect_direct(0);
    assert!(direct0.exists("/other", false).unwrap().is_some());
    assert!(direct0.exists("/app/users", false).unwrap().is_none());
    let mut direct1 = fixture.connect_direct(1);
    assert!(direct1.exists("/app/users", false).unwrap().is_some());

    // The merged zxid vector grows with writes on either shard.
    let before = client.last_zxid();
    client.set_data("/other", b"again".to_vec(), -1).unwrap();
    assert!(client.last_zxid() > before, "a root-shard write must advance the merged zxid");
    let before = client.last_zxid();
    client.set_data("/app/users", b"again".to_vec(), -1).unwrap();
    assert!(client.last_zxid() > before, "an app-shard write must advance the merged zxid");

    client.close();
}

#[test]
fn root_and_boundary_path_ops_work() {
    let fixture = ShardedFixture::start(RULES, 1);
    let mut client = fixture.connect();

    // `/` routes to the root shard and always exists.
    assert!(client.exists("/", false).unwrap().is_some());
    client.create("/seen-from-root", Vec::new(), CreateMode::Persistent).unwrap();
    let children = client.get_children("/", false).unwrap();
    assert!(children.contains(&"seen-from-root".to_string()), "{children:?}");

    // The boundary path `/app` itself belongs to the subtree it names:
    // writes on it go to shard 1, where the bootstrap created it.
    client.set_data("/app", b"boundary".to_vec(), -1).unwrap();
    let (data, _) = client.get_data("/app", false).unwrap();
    assert_eq!(data, b"boundary");
    let mut direct1 = fixture.connect_direct(1);
    let (data, _) = direct1.get_data("/app", false).unwrap();
    assert_eq!(data, b"boundary", "the boundary write must live on shard 1");

    client.close();
}

#[test]
fn cross_shard_multi_is_refused_and_single_shard_multi_is_atomic() {
    let fixture = ShardedFixture::start(RULES, 1);
    let mut client = fixture.connect();

    // A transaction confined to one shard commits atomically.
    let results = client
        .multi(vec![
            Op::Create(CreateRequest {
                path: "/app/a".into(),
                data: b"1".to_vec(),
                mode: CreateMode::Persistent,
            }),
            Op::SetData(SetDataRequest { path: "/app/a".into(), data: b"2".to_vec(), version: -1 }),
        ])
        .unwrap();
    assert_eq!(results.len(), 2);
    assert!(matches!(results[0], OpResult::Create { .. }));
    let (data, _) = client.get_data("/app/a", false).unwrap();
    assert_eq!(data, b"2");

    // A transaction spanning shards is refused with the typed error and
    // leaves no partial state behind on either shard.
    let err = client
        .multi(vec![
            Op::Create(CreateRequest {
                path: "/solo".into(),
                data: Vec::new(),
                mode: CreateMode::Persistent,
            }),
            Op::Check(CheckVersionRequest { path: "/app/a".into(), version: -1 }),
        ])
        .unwrap_err();
    assert!(matches!(err, ZkError::CrossShard { .. }), "got {err:?}");
    assert!(client.exists("/solo", false).unwrap().is_none(), "no partial cross-shard state");
    assert_eq!(fixture.gateway().metrics().cross_shard_rejections.get(), 1);

    client.close();
}

#[test]
fn per_tenant_throttling_answers_in_band() {
    let limit = RateLimitConfig { capacity: 4, refill_per_sec: 1 };
    let fixture = ShardedFixture::start_with(RULES, 1, Some(limit));
    let mut client = fixture.connect();

    // Exhaust tenant "app"'s burst; the next request is refused in-band.
    client.create("/app/t", Vec::new(), CreateMode::Persistent).unwrap();
    let mut throttled = false;
    for _ in 0..8 {
        match client.set_data("/app/t", b"x".to_vec(), -1) {
            Ok(_) => {}
            Err(ZkError::Throttled) => {
                throttled = true;
                break;
            }
            Err(err) => panic!("unexpected error {err:?}"),
        }
    }
    assert!(throttled, "tenant burst never hit the limiter");
    assert!(fixture.gateway().metrics().throttled.get() >= 1);

    // Another tenant's bucket is unaffected: the connection survives the
    // throttle (in-band error, not a disconnect) and other paths work.
    client.create("/unthrottled-tenant", Vec::new(), CreateMode::Persistent).unwrap();

    client.close();
}

#[test]
fn watches_fire_through_the_gateway_with_merged_zxids() {
    let fixture = ShardedFixture::start(RULES, 1);
    let mut watcher = fixture.connect();
    let mut writer = fixture.connect();

    watcher.create("/app/watched", b"v0".to_vec(), CreateMode::Persistent).unwrap();
    let (_, _) = watcher.get_data("/app/watched", true).unwrap();
    let zxid_floor = watcher.last_zxid();

    writer.set_data("/app/watched", b"v1".to_vec(), -1).unwrap();

    let events = watcher.poll_events(Duration::from_secs(5)).unwrap();
    assert_eq!(events.len(), 1, "{events:?}");
    assert_eq!(events[0].path, "/app/watched");
    assert!(
        events[0].zxid > zxid_floor,
        "the event zxid ({}) must be rebased above the watcher's floor ({zxid_floor})",
        events[0].zxid
    );
    assert!(fixture.gateway().metrics().watch_events[1].get() >= 1);

    watcher.close();
    writer.close();
}

#[test]
fn pipelined_submissions_across_shards_release_in_order() {
    let fixture = ShardedFixture::start(RULES, 1);
    let mut client = fixture.connect();
    client.create("/p0", b"s0".to_vec(), CreateMode::Persistent).unwrap();
    client.create("/app/p1", b"s1".to_vec(), CreateMode::Persistent).unwrap();

    // Interleave reads against both shards without waiting, then redeem in
    // submission order: the gateway must splice the two backend reply
    // streams back into FIFO (the client itself errors on any violation).
    let mut tickets = Vec::new();
    for i in 0..20 {
        let path = if i % 2 == 0 { "/p0" } else { "/app/p1" };
        let request = jute::Request::GetData(jute::records::GetDataRequest {
            path: path.into(),
            watch: false,
        });
        tickets.push(client.submit(&request).unwrap());
    }
    for (i, ticket) in tickets.into_iter().enumerate() {
        let response = client.wait(ticket).unwrap();
        match response {
            jute::Response::GetData(get) => {
                let expected: &[u8] = if i % 2 == 0 { b"s0" } else { b"s1" };
                assert_eq!(get.data, expected, "ticket {i}");
            }
            other => panic!("ticket {i}: unexpected response {other:?}"),
        }
    }
    client.close();
}

#[test]
fn gateway_restart_mid_session_reattaches_with_floors_intact() {
    let mut fixture = ShardedFixture::start(RULES, 1);
    let mut client = fixture.connect();

    client.create("/before", b"r0".to_vec(), CreateMode::Persistent).unwrap();
    client.create("/app/before", b"r1".to_vec(), CreateMode::Persistent).unwrap();
    let session_before = client.session_id();
    let zxid_before = client.last_zxid();
    assert!(zxid_before > 0);

    // Kill the gateway (the stateless tier) and start a fresh one over the
    // same shards.
    fixture.gateway.take().expect("gateway running").shutdown();
    let replacement = Gateway::bind("127.0.0.1:0", fixture.gateway_config(None))
        .expect("bind replacement gateway");
    let replacement_addr = replacement.local_addr();
    fixture.gateway = Some(replacement);

    // The client re-attaches: same session id, zxid floor presented and
    // accepted (the lane codec's floors never exceed what each shard
    // committed, so no backend refuses the re-attach).
    client.reconnect_to(replacement_addr).expect("re-attach through the new gateway");
    assert_eq!(client.session_id(), session_before, "the gateway honours the presented id");
    assert!(client.last_zxid() >= zxid_before, "the zxid floor survives the restart");

    // Both shards are reachable again and pre-restart data is intact.
    let (data, _) = client.get_data("/before", false).unwrap();
    assert_eq!(data, b"r0");
    let (data, _) = client.get_data("/app/before", false).unwrap();
    assert_eq!(data, b"r1");
    client.set_data("/app/before", b"r2".to_vec(), -1).unwrap();

    client.close();
}

#[test]
fn backend_subtree_guard_rejects_requests_outside_its_shard() {
    let fixture = ShardedFixture::start(RULES, 1);

    // Shard 1 guards the `/app` subtree: a direct client asking for a
    // sibling path gets the typed cross-shard error (defence in depth
    // under a misconfigured or bypassed gateway).
    let mut direct1 = fixture.connect_direct(1);
    let err = direct1.create("/not-app", Vec::new(), CreateMode::Persistent).unwrap_err();
    assert!(matches!(err, ZkError::CrossShard { .. }), "got {err:?}");

    // Paths inside the guarded subtree — and ancestors of its root, which
    // the bootstrap needs — stay addressable.
    assert!(direct1.exists("/app", false).unwrap().is_some());
    assert!(direct1.exists("/", false).unwrap().is_some());

    direct1.close();
}

#[test]
fn admin_words_are_served_and_dirs_aggregates_all_shards() {
    let fixture = ShardedFixture::start(RULES, 1);
    let addr = fixture.gateway().local_addr();

    assert_eq!(opsplane::send_word(addr, "ruok").unwrap(), "imok\n");

    let srvr = opsplane::send_word(addr, "srvr").unwrap();
    assert!(srvr.contains("Mode: gateway"), "{srvr}");

    // `dirs` fans out to one member of every shard and concatenates the
    // per-member reports under shard headings (in-memory members report
    // their lack of a data dir).
    let dirs = opsplane::send_word(addr, "dirs").unwrap();
    assert!(dirs.contains("Shard 0:"), "{dirs}");
    assert!(dirs.contains("Shard 1:"), "{dirs}");
    assert!(dirs.contains("none (in-memory)"), "{dirs}");

    // The words also work on the shard members directly.
    let member_dirs = opsplane::send_word(fixture.shards[0][0].client_addr(), "dirs").unwrap();
    assert!(member_dirs.contains("Data dir:"), "{member_dirs}");
}

#[test]
fn gateway_metrics_scrape_with_gw_prefix() {
    let fixture = ShardedFixture::start(RULES, 1);
    let mut client = fixture.connect();
    client.create("/m", Vec::new(), CreateMode::Persistent).unwrap();
    client.create("/app/m", Vec::new(), CreateMode::Persistent).unwrap();
    client.close();

    let registry = fixture.gateway().registry();
    for name in registry.family_names() {
        assert!(name.starts_with("gw_"), "{name} escapes the gateway metric namespace");
    }
    let rendered = registry.render();
    assert!(rendered.contains("gw_requests_total{shard=\"0\"}"), "{rendered}");
    assert!(rendered.contains("gw_requests_total{shard=\"1\"}"), "{rendered}");

    let metrics = fixture.gateway().metrics();
    assert!(metrics.requests[0].get() >= 1);
    assert!(metrics.requests[1].get() >= 1);
    assert_eq!(metrics.front_sessions.get(), 0, "closed sessions leave the gauge at zero");

    // Session close reached every touched backend: ephemera aside, the
    // backend sessions wind down rather than lingering until timeout.
    let deadline = Instant::now() + Duration::from_secs(5);
    while fixture.gateway().metrics().backend_links.get() > 0 {
        assert!(Instant::now() < deadline, "backend links never wound down");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn longest_prefix_ties_resolve_to_the_first_configured_entry() {
    // Two identical prefixes on different shards: the earliest entry wins
    // deterministically, end to end.
    let rules: &[(&str, usize)] = &[("/", 0), ("/dup", 1), ("/dup", 0)];
    let fixture = ShardedFixture::start(rules, 1);
    let mut client = fixture.connect();
    client.create("/dup/x", b"tie".to_vec(), CreateMode::Persistent).unwrap();
    let mut direct1 = fixture.connect_direct(1);
    assert!(direct1.exists("/dup/x", false).unwrap().is_some(), "first entry (shard 1) wins");
    client.close();
}

#[test]
fn documented_gateway_metrics_match_exported_set() {
    use std::collections::BTreeSet;

    // A live scrape through a real ops endpoint, mirroring the member-side
    // guard in `crates/zkserver/tests/ops_e2e.rs` for the `gw_` table.
    let fixture = ShardedFixture::start(RULES, 1);
    let ops = opsplane::OpsServer::bind(
        "127.0.0.1:0",
        fixture.gateway().registry(),
        Arc::new(opsplane::ProbeState::new()),
    )
    .expect("bind gateway ops endpoint");
    let (code, text) = opsplane::http_get(ops.local_addr(), "/metrics").unwrap();
    assert_eq!(code, 200);
    let exported: BTreeSet<String> = text
        .lines()
        .filter_map(|line| line.strip_prefix("# TYPE "))
        .filter_map(|rest| rest.split_whitespace().next())
        .map(str::to_string)
        .collect();
    assert!(!exported.is_empty());

    let doc_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/METRICS.md");
    let doc = std::fs::read_to_string(&doc_path).expect("docs/METRICS.md exists");
    let documented: BTreeSet<String> = doc
        .lines()
        .filter_map(|line| line.strip_prefix("| `gw_"))
        .filter_map(|rest| rest.split('`').next())
        .map(|name| format!("gw_{name}"))
        .collect();

    let undocumented: Vec<&String> = exported.difference(&documented).collect();
    assert!(
        undocumented.is_empty(),
        "gateway families missing from docs/METRICS.md: {undocumented:?}"
    );
    let phantom: Vec<&String> = documented.difference(&exported).collect();
    assert!(
        phantom.is_empty(),
        "docs/METRICS.md documents unexported gateway families: {phantom:?}"
    );
}
