//! Secure-mode end-to-end tests: a [`SealedClient`] seals paths and
//! payloads with the storage key before they leave the client process,
//! the gateway routes byte-wise over ciphertext prefixes using a shard
//! map sealed with the same deterministic path cipher, and the backend
//! shards store ciphertext verbatim. The gateway holds no keys at any
//! point — these tests prove it (and the shards) never observe the
//! plaintext markers the client writes.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use gateway::{Gateway, GatewayConfig, ShardMap};
use jute::multi::Op;
use jute::records::{CheckVersionRequest, CreateMode, CreateRequest};
use securekeeper::path_crypto::PathCipher;
use securekeeper::SealedClient;
use zkcrypto::keys::StorageKey;
use zkserver::ensemble::{EnsembleConfig, ZkEnsembleServer};
use zkserver::{ZkError, ZkReplica};

/// Plaintext fragments that must never appear on the untrusted side.
const MARKERS: &[&str] = &["app", "orders", "invoice", "customer-record", "tenant"];

fn shard_ensemble_config(subtree_root: Option<&str>) -> EnsembleConfig {
    let mut config = EnsembleConfig {
        heartbeat_interval: Duration::from_millis(20),
        election_timeout: Duration::from_millis(150),
        election_vote_window: Duration::from_millis(80),
        write_timeout: Duration::from_secs(2),
        poll_interval: Duration::from_millis(5),
        ..EnsembleConfig::default()
    };
    config.net.subtree_root = subtree_root.map(str::to_string);
    config
}

struct SecureFixture {
    shards: Vec<Vec<ZkEnsembleServer>>,
    gateway: Gateway,
    key: StorageKey,
    plain_map: ShardMap,
    sealed_map: ShardMap,
}

const PLAIN_RULES: &[(&str, usize)] = &[("/", 0), ("/app", 1)];

impl SecureFixture {
    /// Seals the shard-map prefixes with the storage key's path cipher,
    /// boots one shard ensemble per rule (guarding the *sealed* subtree),
    /// bootstraps the sealed prefix chain, and fronts it with a gateway
    /// configured from ciphertext only.
    fn start() -> SecureFixture {
        let key = StorageKey::derive_from_label("sharding-e2e");
        let cipher = PathCipher::new(&key);
        let seal = |path: &str| cipher.encrypt_path(path).expect("seal prefix");

        let plain_map = ShardMap::new(2, PLAIN_RULES).expect("plain map");
        let sealed_map = plain_map.sealed_with(|p| seal(p));

        // Shard 0 guards `/` (everything); shard 1 guards the sealed /app.
        let guards = [None, Some(seal("/app"))];
        let shards: Vec<Vec<ZkEnsembleServer>> = guards
            .iter()
            .map(|guard| {
                let config = shard_ensemble_config(guard.as_deref());
                ZkEnsembleServer::start_local_ensemble(1, &config, |id| {
                    Arc::new(ZkReplica::new(id))
                })
                .expect("bind shard ensemble")
            })
            .collect();

        // Bootstrap the sealed `/app` node directly on shard 1, through the
        // sealing client (so its payload is valid ciphertext too).
        let mut boot = SealedClient::connect(shards[1][0].client_addr(), &key, 40_000)
            .expect("bootstrap client");
        boot.create("/app", Vec::new(), CreateMode::Persistent).expect("bootstrap /app");
        boot.close();

        let shard_addrs: Vec<Vec<SocketAddr>> = shards
            .iter()
            .map(|members| members.iter().map(ZkEnsembleServer::client_addr).collect())
            .collect();
        let gateway =
            Gateway::bind("127.0.0.1:0", GatewayConfig::new(sealed_map.clone(), shard_addrs))
                .expect("bind gateway");

        SecureFixture { shards, gateway, key, plain_map, sealed_map }
    }

    fn connect(&self) -> SealedClient {
        SealedClient::connect(self.gateway.local_addr(), &self.key, 40_000)
            .expect("connect sealed client via gateway")
    }

    /// Asserts no plaintext marker appears anywhere in a shard's tree —
    /// the backend (and therefore the gateway, which only ever relayed
    /// these same bytes) never observed client plaintext.
    fn assert_no_plaintext(&self, shard: usize) {
        let replica = self.shards[shard][0].replica();
        let tree = replica.tree();
        for path in tree.paths() {
            for marker in MARKERS {
                assert!(!path.contains(marker), "plaintext path leaked on shard {shard}: {path}");
            }
            if path != "/" {
                let rendered =
                    String::from_utf8_lossy(tree.get(&path).unwrap().data()).into_owned();
                for marker in MARKERS {
                    assert!(
                        !rendered.contains(marker),
                        "plaintext payload leaked on shard {shard} at {path}"
                    );
                }
            }
        }
    }
}

#[test]
fn sealed_sessions_route_read_and_write_through_the_gateway() {
    let fixture = SecureFixture::start();
    let mut client = fixture.connect();

    client.create("/tenant-ledger", b"customer-record 1".to_vec(), CreateMode::Persistent).unwrap();
    client.create("/app/orders", b"invoice 17".to_vec(), CreateMode::Persistent).unwrap();
    client.create("/app/orders/first", b"invoice 18".to_vec(), CreateMode::Persistent).unwrap();

    let (data, _) = client.get_data("/tenant-ledger", false).unwrap();
    assert_eq!(data, b"customer-record 1");
    let (data, _) = client.get_data("/app/orders/first", false).unwrap();
    assert_eq!(data, b"invoice 18");

    let children = client.get_children("/app/orders", false).unwrap();
    assert_eq!(children, vec!["first".to_string()], "child names decrypt back to plaintext");

    // The writes landed on the shards the *plaintext* rules prescribe,
    // even though the gateway only ever saw ciphertext.
    let shard1 = fixture.shards[1][0].replica();
    assert!(shard1.tree().paths().len() > 1, "the /app subtree lives on shard 1");
    fixture.assert_no_plaintext(0);
    fixture.assert_no_plaintext(1);

    // Sanity: what actually crossed the wire was not the plaintext path.
    let sealed = client.seal_path("/app/orders").unwrap();
    assert_ne!(sealed, "/app/orders");
    assert!(!sealed.contains("orders"));

    client.close();
}

#[test]
fn sealed_map_routes_exactly_like_the_plain_map() {
    let fixture = SecureFixture::start();
    let client = fixture.connect();

    // Routing equivalence with the real deterministic, prefix-preserving
    // path cipher: for every probe, sealing the path and routing it on the
    // sealed map picks the same shard as routing the plaintext on the
    // plain map.
    let probes = [
        "/",
        "/app",
        "/app/orders",
        "/app/orders/deep/leaf",
        "/apple",
        "/tenant-ledger",
        "/other/app",
    ];
    for probe in probes {
        let sealed = client.seal_path(probe).unwrap();
        assert_eq!(
            fixture.sealed_map.route(&sealed),
            fixture.plain_map.route(probe),
            "sealed routing diverges for {probe} (sealed: {sealed})"
        );
    }
    client.close();
}

#[test]
fn sealed_cross_shard_multi_is_refused_and_sequentials_are_rejected_client_side() {
    let fixture = SecureFixture::start();
    let mut client = fixture.connect();

    client.create("/app/tx", b"invoice base".to_vec(), CreateMode::Persistent).unwrap();
    let err = client
        .multi(vec![
            Op::Create(CreateRequest {
                path: "/tenant-span".into(),
                data: Vec::new(),
                mode: CreateMode::Persistent,
            }),
            Op::Check(CheckVersionRequest { path: "/app/tx".into(), version: -1 }),
        ])
        .unwrap_err();
    assert!(matches!(err, ZkError::CrossShard { .. }), "got {err:?}");

    // Sequential creates need the server-side counter enclave, which the
    // plain backends behind the gateway do not run — refused before any
    // bytes leave the client.
    let err = client.create("/app/seq-", Vec::new(), CreateMode::PersistentSequential).unwrap_err();
    assert!(matches!(err, ZkError::BadArguments { .. }), "got {err:?}");

    fixture.assert_no_plaintext(0);
    fixture.assert_no_plaintext(1);
    client.close();
}

#[test]
fn sealed_watches_decrypt_their_event_paths() {
    let fixture = SecureFixture::start();
    let mut watcher = fixture.connect();
    let mut writer = fixture.connect();

    watcher.create("/app/watched", b"invoice v0".to_vec(), CreateMode::Persistent).unwrap();
    watcher.get_data("/app/watched", true).unwrap();
    writer.set_data("/app/watched", b"invoice v1".to_vec(), -1).unwrap();

    let events = watcher.poll_events(Duration::from_secs(5)).unwrap();
    assert_eq!(events.len(), 1, "{events:?}");
    assert_eq!(events[0].path, "/app/watched", "the event path decrypts back to plaintext");

    watcher.close();
    writer.close();
}
