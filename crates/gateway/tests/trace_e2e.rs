//! Trace-plane acceptance tests for the sharded gateway deployment: one
//! secure-mode write must come out of the flight recorder as a single
//! trace whose spans cross all three tiers — client (`client_call`),
//! gateway (`gw_route`), and shard member (queue/agreement/WAL/apply
//! stages) — correctly parented across both wire hops, and the trace
//! plane must keep working across a gateway restart. CI runs this file in
//! the `trace-e2e` job.
//!
//! Client, gateway and shards share this test process, so the global
//! recorder holds every tier's spans and the full tree is assertable in
//! one place; in a real deployment each process exports its own slice
//! and a collector joins them by trace id.

use std::collections::{BTreeSet, HashMap};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gateway::{Gateway, GatewayConfig, ShardMap};
use jute::records::{CreateMode, CreateRequest};
use jute::Request;
use securekeeper::path_crypto::PathCipher;
use securekeeper::SealedClient;
use trace::Stage;
use zab::{NodeId, TcpNetwork};
use zkcrypto::keys::StorageKey;
use zkserver::client::ZkTcpClient;
use zkserver::ensemble::{EnsembleConfig, ZkEnsembleServer};
use zkserver::persist::{PersistConfig, ReplicaPersistence};
use zkserver::ZkReplica;

const PLAIN_RULES: &[(&str, usize)] = &[("/", 0), ("/app", 1)];

fn shard_ensemble_config(subtree_root: Option<&str>) -> EnsembleConfig {
    let mut config = EnsembleConfig {
        heartbeat_interval: Duration::from_millis(20),
        election_timeout: Duration::from_millis(150),
        election_vote_window: Duration::from_millis(80),
        write_timeout: Duration::from_secs(2),
        poll_interval: Duration::from_millis(5),
        ..EnsembleConfig::default()
    };
    config.net.subtree_root = subtree_root.map(str::to_string);
    config
}

/// Boots one *durable* single-member shard ensemble — the acceptance
/// trace must attribute a real `wal_fsync`, which an in-memory member
/// never records.
fn start_durable_member(config: &EnsembleConfig, data_dir: &PathBuf) -> ZkEnsembleServer {
    let transport = TcpNetwork::bind(NodeId(1), "127.0.0.1:0").expect("bind peer transport");
    let peer_addrs: HashMap<NodeId, SocketAddr> =
        HashMap::from([(NodeId(1), transport.local_addr())]);
    let persistence =
        ReplicaPersistence::open(data_dir, PersistConfig::default()).expect("open shard data dir");
    ZkEnsembleServer::start_custom(
        Arc::new(transport),
        peer_addrs,
        "127.0.0.1:0",
        Arc::new(ZkReplica::new(1)),
        config.clone(),
        Some(persistence),
    )
    .expect("start durable shard member")
}

fn wait_until(what: &str, mut condition: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !condition() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn stage_names(trace_id: u64) -> BTreeSet<&'static str> {
    trace::spans_for(trace_id).iter().map(|span| span.stage.name()).collect()
}

/// Two durable shards behind a ciphertext-routing gateway: the
/// deployment of the acceptance criterion.
struct SecureCell {
    shards: Vec<ZkEnsembleServer>,
    gateway: Option<Gateway>,
    key: StorageKey,
    data_dirs: Vec<PathBuf>,
}

impl SecureCell {
    fn start() -> SecureCell {
        static SEQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let key = StorageKey::derive_from_label("trace-acceptance");
        let cipher = PathCipher::new(&key);
        let seal = |path: &str| cipher.encrypt_path(path).expect("seal prefix");
        let sealed_map = ShardMap::new(2, PLAIN_RULES).expect("plain map").sealed_with(|p| seal(p));

        let guards = [None, Some(seal("/app"))];
        let data_dirs: Vec<PathBuf> = (0..guards.len())
            .map(|shard| {
                std::env::temp_dir()
                    .join(format!("gw-trace-e2e-{}-{seq}-s{shard}", std::process::id()))
            })
            .collect();
        let shards: Vec<ZkEnsembleServer> = guards
            .iter()
            .zip(&data_dirs)
            .map(|(guard, dir)| start_durable_member(&shard_ensemble_config(guard.as_deref()), dir))
            .collect();

        // Bootstrap the sealed /app node directly on its shard.
        let mut boot =
            SealedClient::connect(shards[1].client_addr(), &key, 40_000).expect("bootstrap");
        boot.create("/app", Vec::new(), CreateMode::Persistent).expect("bootstrap /app");
        boot.close();

        let shard_addrs: Vec<Vec<SocketAddr>> =
            shards.iter().map(|member| vec![member.client_addr()]).collect();
        let gateway = Gateway::bind("127.0.0.1:0", GatewayConfig::new(sealed_map, shard_addrs))
            .expect("bind gateway");
        SecureCell { shards, gateway: Some(gateway), key, data_dirs }
    }

    fn gateway(&self) -> &Gateway {
        self.gateway.as_ref().expect("gateway running")
    }
}

impl Drop for SecureCell {
    fn drop(&mut self) {
        if let Some(gateway) = self.gateway.take() {
            gateway.shutdown();
        }
        for shard in self.shards.drain(..) {
            shard.shutdown();
        }
        for dir in &self.data_dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// The PR's acceptance criterion: a single secure-mode create through
/// the gateway yields one trace with at least six named stages spanning
/// all three tiers, monotone timestamps, and the quorum round and WAL
/// fsync attributed to it.
#[test]
fn secure_create_through_the_gateway_traces_every_tier() {
    let cell = SecureCell::start();
    let mut client =
        SealedClient::connect(cell.gateway().local_addr(), &cell.key, 40_000).expect("connect");

    // The client-sealed pipeline runs plaintext transport over sealed
    // fields, so the backend interceptor is passthrough: no enclave
    // `open`/`seal` spans, and everything else must be present.
    let expected: BTreeSet<&'static str> = [
        "client_call",
        "gw_route",
        "queue_wait",
        "propose",
        "quorum_ack",
        "wal_fsync",
        "apply",
        "reply_flush",
    ]
    .into_iter()
    .collect();

    // Retried only for the group-commit race (the driver thread can fsync
    // a write's WAL entry before the writer thread reaches its own sync
    // barrier, leaving that one trace without a `wal_fsync` span).
    let mut trace_id = 0;
    let mut traced_path = String::new();
    let mut names: BTreeSet<&'static str> = BTreeSet::new();
    'attempts: for attempt in 0..20 {
        traced_path = format!("/app/traced{attempt}");
        client
            .create(&traced_path, b"sealed".to_vec(), CreateMode::Persistent)
            .expect("traced create");
        trace_id = client.last_trace_id();
        for _ in 0..50 {
            names = stage_names(trace_id);
            if expected.is_subset(&names) {
                break 'attempts;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    assert!(
        expected.is_subset(&names),
        "no trace carried all of {expected:?} after 20 writes; last saw {names:?}"
    );
    assert!(names.len() >= 6, "acceptance floor: at least six named stages");

    let spans = trace::spans_for(trace_id);
    let root = spans.iter().find(|span| span.stage == Stage::ClientCall).expect("client_call root");
    let route = spans.iter().find(|span| span.stage == Stage::GwRoute).expect("gw_route span");

    // Tier linkage across both wire hops: client → gateway → shard. The
    // gateway re-parents the envelope, so every member-side leaf hangs
    // off gw_route, which hangs off the client root.
    assert_eq!(root.parent_span_id, 0);
    assert_eq!(route.parent_span_id, root.span_id, "gw_route is the client's child");
    assert_ne!(route.span_id, 0, "gw_route parents the member spans");
    for span in &spans {
        if span.stage == Stage::ClientCall || span.stage == Stage::GwRoute {
            continue;
        }
        assert_eq!(
            span.parent_span_id,
            route.span_id,
            "{} must hang off gw_route, not the client root",
            span.stage.name()
        );
    }

    // Monotone: the client starts first, the gateway routes before the
    // member sees the frame, and every start lands inside the root
    // window. (Ends can cross threads — see the zkserver trace tests.)
    assert!(root.start_ns <= route.start_ns);
    for span in &spans {
        assert!(span.end_ns >= span.start_ns, "{} runs backwards", span.stage.name());
        assert!(
            span.start_ns >= root.start_ns && span.start_ns <= root.end_ns,
            "{} start escapes the client_call window",
            span.stage.name()
        );
        if span.stage != Stage::ClientCall && span.stage != Stage::GwRoute {
            assert!(
                span.start_ns >= route.start_ns,
                "{} starts before the gateway routed it",
                span.stage.name()
            );
        }
    }

    // Quorum and fsync are attributed with their agreement artifacts:
    // both carry the committed zxid / batch detail, never a path.
    let quorum = spans.iter().find(|span| span.stage == Stage::QuorumAck).expect("quorum_ack span");
    assert_ne!(quorum.detail, 0, "quorum_ack carries the committed zxid");

    // The sealed path: the routing decision picked the /app shard from
    // ciphertext, and the root's detail is the hash of the *sealed* path
    // — the trace plane never holds plaintext.
    assert_eq!(route.detail, 1, "/app routes to shard 1");
    let sealed = client.seal_path(&traced_path).expect("seal");
    assert_eq!(
        root.detail,
        trace::path_hash(&sealed),
        "client_call hashes exactly what crossed the wire — the sealed path"
    );
    assert_ne!(
        root.detail,
        trace::path_hash(&traced_path),
        "client_call must not hash the plaintext path"
    );

    // The gateway's slice also feeds its stage histogram.
    let rendered = cell.gateway().registry().render();
    let line = rendered
        .lines()
        .find(|line| line.starts_with("gw_stage_duration_seconds_count{stage=\"route\"}"))
        .expect("route stage histogram exported");
    let count: f64 = line.rsplit(' ').next().unwrap().parse().expect("sample");
    assert!(count >= 1.0, "{line}");

    // And the assembled trace exports as one rooted JSON line.
    let hex = format!("{trace_id:016x}");
    let exported = trace::export_json_lines();
    let line = exported
        .lines()
        .find(|line| line.contains(&hex))
        .unwrap_or_else(|| panic!("trace {hex} missing from export"));
    assert!(line.contains("\"orphan\":false"), "{line}");
    for stage in &expected {
        assert!(line.contains(&format!("\"stage\":\"{stage}\"")), "{stage} missing: {line}");
    }

    client.close();
}

/// Satellite: a gateway restart neither breaks propagation for the
/// re-attached session nor silently drops the spans of requests whose
/// replies died with the old gateway — those surface as orphan traces.
#[test]
fn gateway_restart_reattaches_tracing_and_orphans_severed_replies() {
    let config = shard_ensemble_config(None);
    let shards =
        ZkEnsembleServer::start_local_ensemble(1, &config, |id| Arc::new(ZkReplica::new(id)))
            .expect("bind shard");
    let shard_addrs = vec![vec![shards[0].client_addr()]];
    let map = || ShardMap::new(1, &[("/", 0)]).expect("map");
    let gateway = Gateway::bind("127.0.0.1:0", GatewayConfig::new(map(), shard_addrs.clone()))
        .expect("bind gateway");
    let mut client = ZkTcpClient::connect(gateway.local_addr()).expect("connect via gateway");

    // Submit a write and let it commit on the shard, but kill the gateway
    // before redeeming the reply: the response dies with the gateway's
    // front connection.
    let request = Request::Create(CreateRequest {
        path: "/severed".into(),
        data: b"v".to_vec(),
        mode: CreateMode::Persistent,
    });
    let _ticket = client.submit(&request).expect("submit");
    let severed_trace = client.last_trace_id();
    wait_until("severed write applied on the shard", || {
        trace::spans_for(severed_trace).iter().any(|span| span.stage == Stage::Apply)
    });
    gateway.shutdown();

    // Re-front the same shard with a fresh gateway and re-attach.
    let gateway = Gateway::bind("127.0.0.1:0", GatewayConfig::new(map(), shard_addrs))
        .expect("rebind gateway");
    wait_until("re-attach through the new gateway", || {
        client.reconnect_to(gateway.local_addr()).is_ok()
    });

    // The severed request's spans (gateway hop included) survive as an
    // orphan trace — flagged, never silently dropped.
    let severed = trace::spans_for(severed_trace);
    assert!(severed.iter().any(|span| span.stage == Stage::GwRoute));
    assert!(!severed.iter().any(|span| span.stage == Stage::ClientCall));
    let view = trace::collect_traces()
        .into_iter()
        .find(|view| view.trace_id == severed_trace)
        .expect("severed trace exports");
    assert!(view.orphan, "a reply severed by the restart must flag its trace orphan");

    // Post-restart, the re-attached session traces end to end again,
    // including the (new) gateway's hop.
    client.create("/after-restart", b"v".to_vec(), CreateMode::Persistent).expect("create");
    let fresh = client.last_trace_id();
    assert_ne!(fresh, severed_trace);
    wait_until("post-restart trace completes", || {
        let names = stage_names(fresh);
        ["client_call", "gw_route", "queue_wait", "apply", "reply_flush"]
            .iter()
            .all(|stage| names.contains(stage))
    });
    let view = trace::collect_traces()
        .into_iter()
        .find(|view| view.trace_id == fresh)
        .expect("fresh trace exports");
    assert!(!view.orphan);

    client.close();
    gateway.shutdown();
    for shard in shards {
        shard.shutdown();
    }
}
