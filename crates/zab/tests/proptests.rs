//! Property-based tests for the agreement protocol: safety (agreement, total
//! order, durability of committed writes) holds under arbitrary interleavings
//! of writes, crashes and recoveries, as long as a quorum survives.

use proptest::prelude::*;

use zab::message::{Txn, ZabMessage};
use zab::wire::{decode_envelope, encode_envelope};
use zab::{Envelope, NodeId, ZabCluster, Zxid};

/// A step of a randomly generated cluster schedule.
#[derive(Debug, Clone)]
enum Step {
    /// Submit a write with the given payload byte.
    Write(u8),
    /// Crash the replica with this index (modulo cluster size).
    Crash(usize),
    /// Recover the replica with this index (modulo cluster size).
    Recover(usize),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => any::<u8>().prop_map(Step::Write),
        1 => (0usize..5).prop_map(Step::Crash),
        1 => (0usize..5).prop_map(Step::Recover),
    ]
}

/// Applies a schedule, never letting the cluster lose its quorum (the paper's
/// fault model: a minority of crash faults).
fn run_schedule(size: usize, steps: &[Step]) -> (ZabCluster, Vec<(Zxid, u8)>) {
    let mut cluster = ZabCluster::new(size);
    let ids: Vec<NodeId> = cluster.node_ids().to_vec();
    let quorum = size / 2 + 1;
    let mut committed = Vec::new();

    for step in steps {
        match step {
            Step::Write(payload) => {
                if let Some(zxid) = cluster.broadcast(vec![*payload]) {
                    committed.push((zxid, *payload));
                }
            }
            Step::Crash(index) => {
                let id = ids[index % ids.len()];
                if !cluster.is_crashed(id) && cluster.alive_count() > quorum {
                    cluster.crash(id);
                }
            }
            Step::Recover(index) => {
                let id = ids[index % ids.len()];
                if cluster.is_crashed(id) {
                    cluster.recover(id);
                }
            }
        }
    }
    (cluster, committed)
}

fn arb_zxid() -> impl Strategy<Value = Zxid> {
    (any::<u32>(), any::<u32>()).prop_map(|(epoch, counter)| Zxid { epoch, counter })
}

fn arb_txn() -> impl Strategy<Value = Txn> {
    (arb_zxid(), proptest::collection::vec(any::<u8>(), 0..256))
        .prop_map(|(zxid, payload)| Txn { zxid, payload })
}

/// Every [`ZabMessage`] variant, with arbitrary field values.
fn arb_message() -> impl Strategy<Value = ZabMessage> {
    prop_oneof![
        (arb_txn(), arb_zxid()).prop_map(|(txn, prev)| ZabMessage::Proposal { txn, prev }),
        (arb_zxid(), any::<u32>())
            .prop_map(|(zxid, from)| ZabMessage::Ack { zxid, from: NodeId(from) }),
        arb_zxid().prop_map(|zxid| ZabMessage::Commit { zxid }),
        (any::<u32>(), proptest::collection::vec(arb_txn(), 0..8))
            .prop_map(|(epoch, txns)| ZabMessage::NewLeaderSync { epoch, txns }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(from, epoch)| ZabMessage::SyncAck { from: NodeId(from), epoch }),
        any::<u32>().prop_map(|epoch| ZabMessage::Heartbeat { epoch }),
        (any::<u32>(), any::<u64>(), proptest::collection::vec(any::<u8>(), 0..256)).prop_map(
            |(origin, request_id, payload)| ZabMessage::ForwardWrite {
                origin: NodeId(origin),
                request_id,
                payload,
            }
        ),
        (any::<u32>(), arb_zxid()).prop_map(|(from, last_logged)| ZabMessage::SyncRequest {
            from: NodeId(from),
            last_logged,
        }),
        (any::<u32>(), arb_zxid(), any::<u32>()).prop_map(|(epoch, last_logged, from)| {
            ZabMessage::Election { epoch, last_logged, from: NodeId(from) }
        }),
        (
            any::<u32>(),
            arb_zxid(),
            any::<u32>(),
            any::<bool>(),
            proptest::collection::vec(any::<u8>(), 0..512)
        )
            .prop_map(|(epoch, snapshot_zxid, seq, last, bytes)| {
                ZabMessage::SnapshotChunk { epoch, snapshot_zxid, seq, last, bytes }
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn wire_codec_roundtrips_every_message_variant(
        from in any::<u32>(),
        message in arb_message(),
    ) {
        let envelope = Envelope { from: NodeId(from), message };
        let bytes = encode_envelope(&envelope);
        prop_assert_eq!(decode_envelope(&bytes).unwrap(), envelope);
    }

    #[test]
    fn wire_codec_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Decoding arbitrary bytes must fail cleanly, never panic; and when it
        // does decode, re-encoding reproduces the input exactly.
        if let Ok(envelope) = decode_envelope(&bytes) {
            prop_assert_eq!(encode_envelope(&envelope), bytes);
        }
    }

    #[test]
    fn committed_writes_are_totally_ordered_and_durable(
        steps in proptest::collection::vec(arb_step(), 1..60)
    ) {
        let (mut cluster, committed) = run_schedule(3, &steps);

        // Zxids of successful broadcasts are strictly increasing: total order.
        for window in committed.windows(2) {
            prop_assert!(window[1].0 > window[0].0, "{:?} !> {:?}", window[1].0, window[0].0);
        }

        // Bring everyone back and let them synchronize.
        for id in cluster.node_ids().to_vec() {
            if cluster.is_crashed(id) {
                cluster.recover(id);
            }
        }

        // Every replica's committed log contains every acknowledged write, in
        // the same order (agreement + durability).
        let expected: Vec<(u64, u8)> = committed.iter().map(|(z, p)| (z.as_u64(), *p)).collect();
        for id in cluster.node_ids().to_vec() {
            let log: Vec<(u64, u8)> = cluster
                .node(id)
                .log()
                .committed()
                .map(|txn| (txn.zxid.as_u64(), txn.payload[0]))
                .collect();
            // The replica may have committed everything we saw acknowledged…
            for entry in &expected {
                prop_assert!(log.contains(entry), "{id} is missing {entry:?}");
            }
            // …and whatever it committed is a superset ordered consistently.
            let mut sorted = log.clone();
            sorted.sort_by_key(|(z, _)| *z);
            prop_assert_eq!(&log, &sorted, "commit order on {}", id);
        }
    }

    #[test]
    fn replicas_never_diverge_even_while_some_are_down(
        steps in proptest::collection::vec(arb_step(), 1..60)
    ) {
        let (cluster, _) = run_schedule(3, &steps);
        // Among the replicas that are currently alive, any two committed logs
        // must be prefixes of one another (no forks).
        let alive: Vec<NodeId> =
            cluster.node_ids().iter().copied().filter(|&id| !cluster.is_crashed(id)).collect();
        for &a in &alive {
            for &b in &alive {
                let log_a: Vec<u64> = cluster.node(a).log().committed().map(|t| t.zxid.as_u64()).collect();
                let log_b: Vec<u64> = cluster.node(b).log().committed().map(|t| t.zxid.as_u64()).collect();
                let shorter = log_a.len().min(log_b.len());
                prop_assert_eq!(&log_a[..shorter], &log_b[..shorter], "fork between {} and {}", a, b);
            }
        }
    }

    #[test]
    fn leadership_changes_never_lose_quorum_acknowledged_writes(
        crash_after in 1usize..10,
        writes in 2usize..12,
    ) {
        let mut cluster = ZabCluster::new(5);
        let mut acknowledged = Vec::new();
        for i in 0..writes {
            if let Some(zxid) = cluster.broadcast(vec![i as u8]) {
                acknowledged.push(zxid);
            }
            if i == crash_after % writes {
                let leader = cluster.leader_id();
                cluster.crash(leader);
            }
        }
        // After the dust settles the current leader holds every acknowledged write.
        let leader = cluster.leader_id();
        let log: Vec<u64> = cluster.node(leader).log().committed().map(|t| t.zxid.as_u64()).collect();
        for zxid in acknowledged {
            prop_assert!(log.contains(&zxid.as_u64()), "leader lost {zxid}");
        }
    }
}
