//! Per-replica transaction log.

use crate::message::{Txn, Zxid};

/// An in-memory, append-only log of transactions with a commit watermark.
///
/// Proposals are appended when received; they become visible to the state
/// machine only once committed. This mirrors ZooKeeper's behaviour where a
/// follower logs a proposal to disk before acknowledging it and applies it to
/// its database only on commit.
#[derive(Debug, Clone, Default)]
pub struct TxnLog {
    entries: Vec<Txn>,
    committed_up_to: Zxid,
}

impl TxnLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a proposed transaction.
    ///
    /// Out-of-order or duplicate appends are ignored (idempotent), which keeps
    /// recovery simple: a replica may receive the same proposal again during
    /// leader synchronization.
    pub fn append(&mut self, txn: Txn) {
        if self.entries.last().is_none_or(|last| txn.zxid > last.zxid) {
            self.entries.push(txn);
        }
    }

    /// Marks every entry up to and including `zxid` as committed and returns
    /// the newly committed transactions in order.
    ///
    /// The watermark never advances past the last *logged* entry: a commit
    /// referencing transactions this replica has not received yet (lost
    /// frames on a real network) commits only the local prefix, so the
    /// missing entries can still be delivered and applied by a later resync
    /// instead of being silently skipped.
    pub fn commit_up_to(&mut self, zxid: Zxid) -> Vec<Txn> {
        let target = zxid.min(self.last_logged());
        let newly: Vec<Txn> = self
            .entries
            .iter()
            .filter(|t| t.zxid > self.committed_up_to && t.zxid <= target)
            .cloned()
            .collect();
        if target > self.committed_up_to {
            self.committed_up_to = target;
        }
        newly
    }

    /// The zxid of the last appended proposal (committed or not).
    pub fn last_logged(&self) -> Zxid {
        self.entries.last().map_or(Zxid::ZERO, |t| t.zxid)
    }

    /// The zxid up to which transactions have been committed.
    pub fn last_committed(&self) -> Zxid {
        self.committed_up_to
    }

    /// All committed transactions in order.
    pub fn committed(&self) -> impl Iterator<Item = &Txn> {
        self.entries.iter().filter(move |t| t.zxid <= self.committed_up_to)
    }

    /// All transactions (committed or not) strictly newer than `after`.
    pub fn entries_after(&self, after: Zxid) -> Vec<Txn> {
        self.entries.iter().filter(|t| t.zxid > after).cloned().collect()
    }

    /// Discards uncommitted entries from a stale epoch. A replica that
    /// rejoins after a new leader was elected must drop proposals that were
    /// never committed under the old epoch.
    pub fn truncate_uncommitted(&mut self) {
        let committed = self.committed_up_to;
        self.entries.retain(|t| t.zxid <= committed);
    }

    /// Number of logged entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entry has ever been appended.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(epoch: u32, counter: u32) -> Txn {
        Txn { zxid: Zxid { epoch, counter }, payload: vec![counter as u8] }
    }

    #[test]
    fn append_and_commit_in_order() {
        let mut log = TxnLog::new();
        log.append(txn(1, 1));
        log.append(txn(1, 2));
        log.append(txn(1, 3));
        assert_eq!(log.last_logged(), Zxid { epoch: 1, counter: 3 });
        assert_eq!(log.last_committed(), Zxid::ZERO);

        let committed = log.commit_up_to(Zxid { epoch: 1, counter: 2 });
        assert_eq!(committed.len(), 2);
        assert_eq!(log.last_committed(), Zxid { epoch: 1, counter: 2 });
        assert_eq!(log.committed().count(), 2);
    }

    #[test]
    fn duplicate_and_stale_appends_are_ignored() {
        let mut log = TxnLog::new();
        log.append(txn(1, 1));
        log.append(txn(1, 1));
        log.append(txn(1, 2));
        log.append(txn(1, 1)); // stale
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn commit_is_idempotent_and_monotonic() {
        let mut log = TxnLog::new();
        log.append(txn(1, 1));
        log.append(txn(1, 2));
        assert_eq!(log.commit_up_to(Zxid { epoch: 1, counter: 2 }).len(), 2);
        assert!(log.commit_up_to(Zxid { epoch: 1, counter: 2 }).is_empty());
        assert!(log.commit_up_to(Zxid { epoch: 1, counter: 1 }).is_empty());
        assert_eq!(log.last_committed(), Zxid { epoch: 1, counter: 2 });
    }

    #[test]
    fn entries_after_returns_suffix() {
        let mut log = TxnLog::new();
        for i in 1..=5 {
            log.append(txn(1, i));
        }
        let suffix = log.entries_after(Zxid { epoch: 1, counter: 3 });
        assert_eq!(suffix.len(), 2);
        assert_eq!(suffix[0].zxid.counter, 4);
    }

    #[test]
    fn truncate_uncommitted_drops_pending_entries() {
        let mut log = TxnLog::new();
        log.append(txn(1, 1));
        log.append(txn(1, 2));
        log.commit_up_to(Zxid { epoch: 1, counter: 1 });
        log.truncate_uncommitted();
        assert_eq!(log.len(), 1);
        assert_eq!(log.last_logged(), Zxid { epoch: 1, counter: 1 });
    }

    #[test]
    fn truncated_tail_can_be_replaced_by_new_epoch_entries() {
        // A follower that logged proposals the old leader never committed
        // must drop them on truncation and accept the new leader's history
        // in their place (ZAB's "trailing edge" recovery case).
        let mut log = TxnLog::new();
        log.append(txn(1, 1));
        log.append(txn(1, 2));
        log.append(txn(1, 3));
        log.commit_up_to(Zxid { epoch: 1, counter: 1 });
        log.truncate_uncommitted();
        assert_eq!(log.len(), 1);
        assert_eq!(log.last_logged(), Zxid { epoch: 1, counter: 1 });
        assert_eq!(log.last_committed(), Zxid { epoch: 1, counter: 1 });

        // The new leader's divergent history for the same slots arrives.
        log.append(Txn { zxid: Zxid { epoch: 2, counter: 1 }, payload: b"new".to_vec() });
        let committed = log.commit_up_to(Zxid { epoch: 2, counter: 1 });
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].payload, b"new");
        // The truncated entries never resurface.
        assert_eq!(log.committed().count(), 2);
    }

    #[test]
    fn truncation_with_nothing_committed_empties_the_log() {
        let mut log = TxnLog::new();
        log.append(txn(1, 1));
        log.append(txn(1, 2));
        log.truncate_uncommitted();
        assert!(log.is_empty());
        assert_eq!(log.last_logged(), Zxid::ZERO);
        // Appending after a full truncation starts cleanly.
        log.append(txn(2, 1));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn epoch_rollover_keeps_ordering_and_commits_across_the_boundary() {
        let mut log = TxnLog::new();
        log.append(txn(1, 1));
        log.append(txn(1, 2));
        // Epoch rolls over: the counter resets but zxids keep increasing
        // because ordering is epoch-major.
        log.append(txn(2, 1));
        log.append(txn(2, 2));
        assert_eq!(log.len(), 4);
        assert_eq!(log.last_logged(), Zxid { epoch: 2, counter: 2 });

        // One commit watermark in the new epoch commits the old-epoch tail too.
        let committed = log.commit_up_to(Zxid { epoch: 2, counter: 1 });
        let zxids: Vec<Zxid> = committed.iter().map(|t| t.zxid).collect();
        assert_eq!(
            zxids,
            vec![
                Zxid { epoch: 1, counter: 1 },
                Zxid { epoch: 1, counter: 2 },
                Zxid { epoch: 2, counter: 1 },
            ]
        );
        // entries_after spans the boundary as well.
        let suffix = log.entries_after(Zxid { epoch: 1, counter: 2 });
        assert_eq!(suffix.len(), 2);
        assert_eq!(suffix[0].zxid, Zxid { epoch: 2, counter: 1 });
    }

    #[test]
    fn counter_restart_in_a_new_epoch_is_not_a_stale_append() {
        // epoch 2 counter 1 sorts *after* epoch 1 counter 100: the append
        // must be accepted even though the raw counter went backwards.
        let mut log = TxnLog::new();
        log.append(txn(1, 100));
        log.append(txn(2, 1));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn duplicate_commit_replay_is_idempotent() {
        // A replica that receives the same NewLeaderSync twice (e.g. the new
        // leader retries after a lost SyncAck) must end up with each
        // transaction committed exactly once.
        let mut log = TxnLog::new();
        for i in 1..=3 {
            log.append(txn(1, i));
        }
        let first = log.commit_up_to(Zxid { epoch: 1, counter: 3 });
        assert_eq!(first.len(), 3);

        // Replay: identical appends are ignored, the commit returns nothing.
        for i in 1..=3 {
            log.append(txn(1, i));
        }
        assert!(log.commit_up_to(Zxid { epoch: 1, counter: 3 }).is_empty());
        assert_eq!(log.len(), 3);
        assert_eq!(log.committed().count(), 3);
        // A lower replayed watermark does not move `last_committed` back.
        assert!(log.commit_up_to(Zxid { epoch: 1, counter: 1 }).is_empty());
        assert_eq!(log.last_committed(), Zxid { epoch: 1, counter: 3 });
    }

    #[test]
    fn commit_never_advances_past_the_logged_tip() {
        // A commit referencing entries this replica never received (lost
        // frames) commits only the local prefix; the watermark stays at the
        // tip so a resync can still deliver and commit the missing entries.
        let mut log = TxnLog::new();
        log.append(txn(1, 1));
        log.append(txn(1, 2));
        let committed = log.commit_up_to(Zxid { epoch: 1, counter: 5 });
        assert_eq!(committed.len(), 2);
        assert_eq!(log.last_committed(), Zxid { epoch: 1, counter: 2 });

        // The resync arrives: the previously referenced entries commit now.
        for i in 3..=5 {
            log.append(txn(1, i));
        }
        let committed = log.commit_up_to(Zxid { epoch: 1, counter: 5 });
        assert_eq!(committed.len(), 3);
        assert_eq!(log.last_committed(), Zxid { epoch: 1, counter: 5 });
    }

    #[test]
    fn empty_log_properties() {
        let log = TxnLog::new();
        assert!(log.is_empty());
        assert_eq!(log.last_logged(), Zxid::ZERO);
        assert_eq!(log.last_committed(), Zxid::ZERO);
        assert!(log.entries_after(Zxid::ZERO).is_empty());
    }
}
