//! Per-replica transaction log.

use crate::message::{Txn, Zxid};

/// An in-memory, append-only log of transactions with a commit watermark.
///
/// Proposals are appended when received; they become visible to the state
/// machine only once committed. This mirrors ZooKeeper's behaviour where a
/// follower logs a proposal to disk before acknowledging it and applies it to
/// its database only on commit.
#[derive(Debug, Clone, Default)]
pub struct TxnLog {
    entries: Vec<Txn>,
    committed_up_to: Zxid,
}

impl TxnLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a proposed transaction.
    ///
    /// Out-of-order or duplicate appends are ignored (idempotent), which keeps
    /// recovery simple: a replica may receive the same proposal again during
    /// leader synchronization.
    pub fn append(&mut self, txn: Txn) {
        if self.entries.last().is_none_or(|last| txn.zxid > last.zxid) {
            self.entries.push(txn);
        }
    }

    /// Marks every entry up to and including `zxid` as committed and returns
    /// the newly committed transactions in order.
    pub fn commit_up_to(&mut self, zxid: Zxid) -> Vec<Txn> {
        let newly: Vec<Txn> = self
            .entries
            .iter()
            .filter(|t| t.zxid > self.committed_up_to && t.zxid <= zxid)
            .cloned()
            .collect();
        if zxid > self.committed_up_to {
            self.committed_up_to = zxid;
        }
        newly
    }

    /// The zxid of the last appended proposal (committed or not).
    pub fn last_logged(&self) -> Zxid {
        self.entries.last().map_or(Zxid::ZERO, |t| t.zxid)
    }

    /// The zxid up to which transactions have been committed.
    pub fn last_committed(&self) -> Zxid {
        self.committed_up_to
    }

    /// All committed transactions in order.
    pub fn committed(&self) -> impl Iterator<Item = &Txn> {
        self.entries.iter().filter(move |t| t.zxid <= self.committed_up_to)
    }

    /// All transactions (committed or not) strictly newer than `after`.
    pub fn entries_after(&self, after: Zxid) -> Vec<Txn> {
        self.entries.iter().filter(|t| t.zxid > after).cloned().collect()
    }

    /// Discards uncommitted entries from a stale epoch. A replica that
    /// rejoins after a new leader was elected must drop proposals that were
    /// never committed under the old epoch.
    pub fn truncate_uncommitted(&mut self) {
        let committed = self.committed_up_to;
        self.entries.retain(|t| t.zxid <= committed);
    }

    /// Number of logged entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entry has ever been appended.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(epoch: u32, counter: u32) -> Txn {
        Txn { zxid: Zxid { epoch, counter }, payload: vec![counter as u8] }
    }

    #[test]
    fn append_and_commit_in_order() {
        let mut log = TxnLog::new();
        log.append(txn(1, 1));
        log.append(txn(1, 2));
        log.append(txn(1, 3));
        assert_eq!(log.last_logged(), Zxid { epoch: 1, counter: 3 });
        assert_eq!(log.last_committed(), Zxid::ZERO);

        let committed = log.commit_up_to(Zxid { epoch: 1, counter: 2 });
        assert_eq!(committed.len(), 2);
        assert_eq!(log.last_committed(), Zxid { epoch: 1, counter: 2 });
        assert_eq!(log.committed().count(), 2);
    }

    #[test]
    fn duplicate_and_stale_appends_are_ignored() {
        let mut log = TxnLog::new();
        log.append(txn(1, 1));
        log.append(txn(1, 1));
        log.append(txn(1, 2));
        log.append(txn(1, 1)); // stale
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn commit_is_idempotent_and_monotonic() {
        let mut log = TxnLog::new();
        log.append(txn(1, 1));
        log.append(txn(1, 2));
        assert_eq!(log.commit_up_to(Zxid { epoch: 1, counter: 2 }).len(), 2);
        assert!(log.commit_up_to(Zxid { epoch: 1, counter: 2 }).is_empty());
        assert!(log.commit_up_to(Zxid { epoch: 1, counter: 1 }).is_empty());
        assert_eq!(log.last_committed(), Zxid { epoch: 1, counter: 2 });
    }

    #[test]
    fn entries_after_returns_suffix() {
        let mut log = TxnLog::new();
        for i in 1..=5 {
            log.append(txn(1, i));
        }
        let suffix = log.entries_after(Zxid { epoch: 1, counter: 3 });
        assert_eq!(suffix.len(), 2);
        assert_eq!(suffix[0].zxid.counter, 4);
    }

    #[test]
    fn truncate_uncommitted_drops_pending_entries() {
        let mut log = TxnLog::new();
        log.append(txn(1, 1));
        log.append(txn(1, 2));
        log.commit_up_to(Zxid { epoch: 1, counter: 1 });
        log.truncate_uncommitted();
        assert_eq!(log.len(), 1);
        assert_eq!(log.last_logged(), Zxid { epoch: 1, counter: 1 });
    }

    #[test]
    fn empty_log_properties() {
        let log = TxnLog::new();
        assert!(log.is_empty());
        assert_eq!(log.last_logged(), Zxid::ZERO);
        assert_eq!(log.last_committed(), Zxid::ZERO);
        assert!(log.entries_after(Zxid::ZERO).is_empty());
    }
}
