//! Per-replica transaction log.

use crate::message::{Txn, Zxid};

/// Durable backing of a [`TxnLog`]: everything the in-memory log does is
/// mirrored into an implementation of this trait (the `persist` crate's
/// write-ahead log) so a crashed replica can rejoin with its local history.
///
/// Implementations are expected to be *write-behind buffers with a sync
/// barrier*: `append_txn`/`mark_committed` may buffer, and [`DurableLog::
/// sync`] makes everything buffered durable (the driver issues one sync per
/// write-queue drain — group commit). Implementations should treat an I/O
/// failure as fatal for the replica, as ZooKeeper does.
pub trait DurableLog: Send {
    /// Persists one appended proposal.
    fn append_txn(&mut self, txn: &Txn);
    /// Records the advanced commit watermark.
    fn mark_committed(&mut self, zxid: Zxid);
    /// Drops every persisted transaction newer than `zxid` (always the
    /// commit watermark: become-follower truncation).
    fn truncate_after(&mut self, zxid: Zxid);
    /// Replaces the entire persisted history with a snapshot watermark at
    /// `zxid` (a leader-shipped snapshot superseded local history).
    fn reset_to(&mut self, zxid: Zxid);
    /// Makes everything buffered durable (one fsync, group commit).
    fn sync(&mut self);
}

/// An append-only log of transactions with a commit watermark.
///
/// Proposals are appended when received; they become visible to the state
/// machine only once committed. This mirrors ZooKeeper's behaviour where a
/// follower logs a proposal to disk before acknowledging it and applies it to
/// its database only on commit.
///
/// The log keeps its entries in memory for serving resyncs; an optional
/// [`DurableLog`] sink mirrors every mutation to disk, and
/// [`TxnLog::compact_through`] discards the in-memory prefix covered by a
/// snapshot — the *horizon*. Entries at or below the horizon can no longer
/// be served from the log; a follower that far behind needs the snapshot
/// itself (snapshot shipping, handled a layer above).
#[derive(Default)]
pub struct TxnLog {
    entries: Vec<Txn>,
    committed_up_to: Zxid,
    /// Snapshot boundary: entries at or below it have been compacted away.
    /// Also the floor reported by [`TxnLog::last_logged`] when the in-memory
    /// suffix is empty.
    horizon: Zxid,
    durable: Option<Box<dyn DurableLog>>,
}

impl std::fmt::Debug for TxnLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnLog")
            .field("entries", &self.entries.len())
            .field("committed_up_to", &self.committed_up_to)
            .field("horizon", &self.horizon)
            .field("durable", &self.durable.is_some())
            .finish()
    }
}

impl TxnLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a log from recovered state: `entries` (sorted, strictly
    /// above `horizon`), the recovered commit watermark, and the snapshot
    /// horizon the on-disk log was truncated at.
    pub fn recovered(entries: Vec<Txn>, committed: Zxid, horizon: Zxid) -> Self {
        let mut log = TxnLog {
            entries: entries.into_iter().filter(|t| t.zxid > horizon).collect(),
            committed_up_to: Zxid::ZERO,
            horizon,
            durable: None,
        };
        log.committed_up_to = committed.max(horizon).min(log.last_logged());
        log
    }

    /// Attaches the durable sink that mirrors every future mutation.
    pub fn attach_durable(&mut self, durable: Box<dyn DurableLog>) {
        self.durable = Some(durable);
    }

    /// Appends a proposed transaction.
    ///
    /// Out-of-order or duplicate appends are ignored (idempotent), which keeps
    /// recovery simple: a replica may receive the same proposal again during
    /// leader synchronization.
    pub fn append(&mut self, txn: Txn) {
        if txn.zxid > self.last_logged() {
            if let Some(durable) = &mut self.durable {
                durable.append_txn(&txn);
            }
            self.entries.push(txn);
        }
    }

    /// Marks every entry up to and including `zxid` as committed and returns
    /// the newly committed transactions in order.
    ///
    /// The watermark never advances past the last *logged* entry: a commit
    /// referencing transactions this replica has not received yet (lost
    /// frames on a real network) commits only the local prefix, so the
    /// missing entries can still be delivered and applied by a later resync
    /// instead of being silently skipped.
    pub fn commit_up_to(&mut self, zxid: Zxid) -> Vec<Txn> {
        let target = zxid.min(self.last_logged());
        let newly: Vec<Txn> = self
            .entries
            .iter()
            .filter(|t| t.zxid > self.committed_up_to && t.zxid <= target)
            .cloned()
            .collect();
        if target > self.committed_up_to {
            self.committed_up_to = target;
            if let Some(durable) = &mut self.durable {
                durable.mark_committed(target);
            }
        }
        newly
    }

    /// The zxid of the last appended proposal (committed or not). After
    /// compaction or snapshot install this floors at the horizon — the
    /// log's credential reflects the snapshotted state even when the
    /// in-memory suffix is empty.
    pub fn last_logged(&self) -> Zxid {
        self.entries.last().map_or(self.horizon, |t| t.zxid)
    }

    /// The snapshot boundary: entries at or below it were compacted away and
    /// can no longer be served from this log.
    pub fn horizon(&self) -> Zxid {
        self.horizon
    }

    /// Discards in-memory entries at or below `zxid` (which must be covered
    /// by a snapshot — only committed entries are compactable) and advances
    /// the horizon. Bounds leader memory on long-lived ensembles.
    pub fn compact_through(&mut self, zxid: Zxid) {
        let cut = zxid.min(self.committed_up_to);
        if cut <= self.horizon {
            return;
        }
        self.entries.retain(|t| t.zxid > cut);
        self.horizon = cut;
    }

    /// Resets the log to an installed snapshot: all entries are dropped, the
    /// watermark and horizon both move to `zxid`, and the durable backing is
    /// reset the same way.
    pub fn reset_to_snapshot(&mut self, zxid: Zxid) {
        self.entries.clear();
        self.committed_up_to = zxid;
        self.horizon = zxid;
        if let Some(durable) = &mut self.durable {
            durable.reset_to(zxid);
        }
    }

    /// Forces buffered durable writes to disk (one fsync — group commit).
    /// A no-op for a purely in-memory log.
    pub fn sync(&mut self) {
        if let Some(durable) = &mut self.durable {
            durable.sync();
        }
    }

    /// The zxid up to which transactions have been committed.
    pub fn last_committed(&self) -> Zxid {
        self.committed_up_to
    }

    /// All committed transactions in order.
    pub fn committed(&self) -> impl Iterator<Item = &Txn> {
        self.entries.iter().filter(move |t| t.zxid <= self.committed_up_to)
    }

    /// All transactions (committed or not) strictly newer than `after`.
    pub fn entries_after(&self, after: Zxid) -> Vec<Txn> {
        self.entries.iter().filter(|t| t.zxid > after).cloned().collect()
    }

    /// Discards uncommitted entries from a stale epoch. A replica that
    /// rejoins after a new leader was elected must drop proposals that were
    /// never committed under the old epoch.
    pub fn truncate_uncommitted(&mut self) {
        let committed = self.committed_up_to;
        if self.entries.last().is_some_and(|t| t.zxid > committed) {
            if let Some(durable) = &mut self.durable {
                durable.truncate_after(committed);
            }
        }
        self.entries.retain(|t| t.zxid <= committed);
    }

    /// Number of logged entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entry has ever been appended.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(epoch: u32, counter: u32) -> Txn {
        Txn { zxid: Zxid { epoch, counter }, payload: vec![counter as u8] }
    }

    #[test]
    fn append_and_commit_in_order() {
        let mut log = TxnLog::new();
        log.append(txn(1, 1));
        log.append(txn(1, 2));
        log.append(txn(1, 3));
        assert_eq!(log.last_logged(), Zxid { epoch: 1, counter: 3 });
        assert_eq!(log.last_committed(), Zxid::ZERO);

        let committed = log.commit_up_to(Zxid { epoch: 1, counter: 2 });
        assert_eq!(committed.len(), 2);
        assert_eq!(log.last_committed(), Zxid { epoch: 1, counter: 2 });
        assert_eq!(log.committed().count(), 2);
    }

    #[test]
    fn duplicate_and_stale_appends_are_ignored() {
        let mut log = TxnLog::new();
        log.append(txn(1, 1));
        log.append(txn(1, 1));
        log.append(txn(1, 2));
        log.append(txn(1, 1)); // stale
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn commit_is_idempotent_and_monotonic() {
        let mut log = TxnLog::new();
        log.append(txn(1, 1));
        log.append(txn(1, 2));
        assert_eq!(log.commit_up_to(Zxid { epoch: 1, counter: 2 }).len(), 2);
        assert!(log.commit_up_to(Zxid { epoch: 1, counter: 2 }).is_empty());
        assert!(log.commit_up_to(Zxid { epoch: 1, counter: 1 }).is_empty());
        assert_eq!(log.last_committed(), Zxid { epoch: 1, counter: 2 });
    }

    #[test]
    fn entries_after_returns_suffix() {
        let mut log = TxnLog::new();
        for i in 1..=5 {
            log.append(txn(1, i));
        }
        let suffix = log.entries_after(Zxid { epoch: 1, counter: 3 });
        assert_eq!(suffix.len(), 2);
        assert_eq!(suffix[0].zxid.counter, 4);
    }

    #[test]
    fn truncate_uncommitted_drops_pending_entries() {
        let mut log = TxnLog::new();
        log.append(txn(1, 1));
        log.append(txn(1, 2));
        log.commit_up_to(Zxid { epoch: 1, counter: 1 });
        log.truncate_uncommitted();
        assert_eq!(log.len(), 1);
        assert_eq!(log.last_logged(), Zxid { epoch: 1, counter: 1 });
    }

    #[test]
    fn truncated_tail_can_be_replaced_by_new_epoch_entries() {
        // A follower that logged proposals the old leader never committed
        // must drop them on truncation and accept the new leader's history
        // in their place (ZAB's "trailing edge" recovery case).
        let mut log = TxnLog::new();
        log.append(txn(1, 1));
        log.append(txn(1, 2));
        log.append(txn(1, 3));
        log.commit_up_to(Zxid { epoch: 1, counter: 1 });
        log.truncate_uncommitted();
        assert_eq!(log.len(), 1);
        assert_eq!(log.last_logged(), Zxid { epoch: 1, counter: 1 });
        assert_eq!(log.last_committed(), Zxid { epoch: 1, counter: 1 });

        // The new leader's divergent history for the same slots arrives.
        log.append(Txn { zxid: Zxid { epoch: 2, counter: 1 }, payload: b"new".to_vec() });
        let committed = log.commit_up_to(Zxid { epoch: 2, counter: 1 });
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].payload, b"new");
        // The truncated entries never resurface.
        assert_eq!(log.committed().count(), 2);
    }

    #[test]
    fn truncation_with_nothing_committed_empties_the_log() {
        let mut log = TxnLog::new();
        log.append(txn(1, 1));
        log.append(txn(1, 2));
        log.truncate_uncommitted();
        assert!(log.is_empty());
        assert_eq!(log.last_logged(), Zxid::ZERO);
        // Appending after a full truncation starts cleanly.
        log.append(txn(2, 1));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn epoch_rollover_keeps_ordering_and_commits_across_the_boundary() {
        let mut log = TxnLog::new();
        log.append(txn(1, 1));
        log.append(txn(1, 2));
        // Epoch rolls over: the counter resets but zxids keep increasing
        // because ordering is epoch-major.
        log.append(txn(2, 1));
        log.append(txn(2, 2));
        assert_eq!(log.len(), 4);
        assert_eq!(log.last_logged(), Zxid { epoch: 2, counter: 2 });

        // One commit watermark in the new epoch commits the old-epoch tail too.
        let committed = log.commit_up_to(Zxid { epoch: 2, counter: 1 });
        let zxids: Vec<Zxid> = committed.iter().map(|t| t.zxid).collect();
        assert_eq!(
            zxids,
            vec![
                Zxid { epoch: 1, counter: 1 },
                Zxid { epoch: 1, counter: 2 },
                Zxid { epoch: 2, counter: 1 },
            ]
        );
        // entries_after spans the boundary as well.
        let suffix = log.entries_after(Zxid { epoch: 1, counter: 2 });
        assert_eq!(suffix.len(), 2);
        assert_eq!(suffix[0].zxid, Zxid { epoch: 2, counter: 1 });
    }

    #[test]
    fn counter_restart_in_a_new_epoch_is_not_a_stale_append() {
        // epoch 2 counter 1 sorts *after* epoch 1 counter 100: the append
        // must be accepted even though the raw counter went backwards.
        let mut log = TxnLog::new();
        log.append(txn(1, 100));
        log.append(txn(2, 1));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn duplicate_commit_replay_is_idempotent() {
        // A replica that receives the same NewLeaderSync twice (e.g. the new
        // leader retries after a lost SyncAck) must end up with each
        // transaction committed exactly once.
        let mut log = TxnLog::new();
        for i in 1..=3 {
            log.append(txn(1, i));
        }
        let first = log.commit_up_to(Zxid { epoch: 1, counter: 3 });
        assert_eq!(first.len(), 3);

        // Replay: identical appends are ignored, the commit returns nothing.
        for i in 1..=3 {
            log.append(txn(1, i));
        }
        assert!(log.commit_up_to(Zxid { epoch: 1, counter: 3 }).is_empty());
        assert_eq!(log.len(), 3);
        assert_eq!(log.committed().count(), 3);
        // A lower replayed watermark does not move `last_committed` back.
        assert!(log.commit_up_to(Zxid { epoch: 1, counter: 1 }).is_empty());
        assert_eq!(log.last_committed(), Zxid { epoch: 1, counter: 3 });
    }

    #[test]
    fn commit_never_advances_past_the_logged_tip() {
        // A commit referencing entries this replica never received (lost
        // frames) commits only the local prefix; the watermark stays at the
        // tip so a resync can still deliver and commit the missing entries.
        let mut log = TxnLog::new();
        log.append(txn(1, 1));
        log.append(txn(1, 2));
        let committed = log.commit_up_to(Zxid { epoch: 1, counter: 5 });
        assert_eq!(committed.len(), 2);
        assert_eq!(log.last_committed(), Zxid { epoch: 1, counter: 2 });

        // The resync arrives: the previously referenced entries commit now.
        for i in 3..=5 {
            log.append(txn(1, i));
        }
        let committed = log.commit_up_to(Zxid { epoch: 1, counter: 5 });
        assert_eq!(committed.len(), 3);
        assert_eq!(log.last_committed(), Zxid { epoch: 1, counter: 5 });
    }

    #[test]
    fn empty_log_properties() {
        let log = TxnLog::new();
        assert!(log.is_empty());
        assert_eq!(log.last_logged(), Zxid::ZERO);
        assert_eq!(log.last_committed(), Zxid::ZERO);
        assert!(log.entries_after(Zxid::ZERO).is_empty());
    }

    #[test]
    fn compaction_moves_the_horizon_and_floors_the_credential() {
        let mut log = TxnLog::new();
        for i in 1..=6 {
            log.append(txn(1, i));
        }
        log.commit_up_to(Zxid { epoch: 1, counter: 4 });
        // Only the committed prefix is compactable.
        log.compact_through(Zxid { epoch: 1, counter: 5 });
        assert_eq!(log.horizon(), Zxid { epoch: 1, counter: 4 });
        assert_eq!(log.len(), 2, "entries above the horizon survive");
        assert_eq!(log.last_logged(), Zxid { epoch: 1, counter: 6 });
        // Compacting everything leaves an empty log that still reports the
        // snapshotted credential.
        log.commit_up_to(Zxid { epoch: 1, counter: 6 });
        log.compact_through(Zxid { epoch: 1, counter: 6 });
        assert!(log.is_empty());
        assert_eq!(log.last_logged(), Zxid { epoch: 1, counter: 6 });
        assert_eq!(log.last_committed(), Zxid { epoch: 1, counter: 6 });
        // Appends chain on top of the floor.
        log.append(txn(1, 7));
        assert_eq!(log.commit_up_to(Zxid { epoch: 1, counter: 7 }).len(), 1);
    }

    #[test]
    fn recovered_log_resumes_where_the_disk_left_off() {
        let entries = vec![txn(2, 5), txn(2, 6), txn(2, 7)];
        let committed = Zxid { epoch: 2, counter: 6 };
        let horizon = Zxid { epoch: 2, counter: 4 };
        let mut log = TxnLog::recovered(entries, committed, horizon);
        assert_eq!(log.last_logged(), Zxid { epoch: 2, counter: 7 });
        assert_eq!(log.last_committed(), committed);
        assert_eq!(log.horizon(), horizon);
        // Entries at or below the horizon are filtered out on construction.
        let log2 = TxnLog::recovered(vec![txn(2, 3), txn(2, 5)], committed, horizon);
        assert_eq!(log2.len(), 1);
        // The uncommitted tail commits normally.
        assert_eq!(log.commit_up_to(Zxid { epoch: 2, counter: 7 }).len(), 1);
    }

    #[test]
    fn reset_to_snapshot_supersedes_local_history() {
        let mut log = TxnLog::new();
        for i in 1..=3 {
            log.append(txn(1, i));
        }
        log.reset_to_snapshot(Zxid { epoch: 3, counter: 50 });
        assert!(log.is_empty());
        assert_eq!(log.last_logged(), Zxid { epoch: 3, counter: 50 });
        assert_eq!(log.last_committed(), Zxid { epoch: 3, counter: 50 });
        assert_eq!(log.horizon(), Zxid { epoch: 3, counter: 50 });
        // The suffix after the snapshot appends and commits cleanly.
        log.append(txn(3, 51));
        assert_eq!(log.commit_up_to(Zxid { epoch: 3, counter: 51 }).len(), 1);
    }

    /// Records every durable call for ordering assertions.
    #[derive(Default)]
    struct SpyDurable(std::sync::Arc<parking_lot::Mutex<Vec<String>>>);

    impl DurableLog for SpyDurable {
        fn append_txn(&mut self, txn: &Txn) {
            self.0.lock().push(format!("append {}", txn.zxid));
        }
        fn mark_committed(&mut self, zxid: Zxid) {
            self.0.lock().push(format!("commit {zxid}"));
        }
        fn truncate_after(&mut self, zxid: Zxid) {
            self.0.lock().push(format!("truncate {zxid}"));
        }
        fn reset_to(&mut self, zxid: Zxid) {
            self.0.lock().push(format!("reset {zxid}"));
        }
        fn sync(&mut self) {
            self.0.lock().push("sync".into());
        }
    }

    #[test]
    fn durable_sink_mirrors_every_mutation_exactly_once() {
        let calls = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut log = TxnLog::new();
        log.attach_durable(Box::new(SpyDurable(std::sync::Arc::clone(&calls))));
        log.append(txn(1, 1));
        log.append(txn(1, 1)); // duplicate: ignored, not persisted twice
        log.append(txn(1, 2));
        log.commit_up_to(Zxid { epoch: 1, counter: 1 });
        log.commit_up_to(Zxid { epoch: 1, counter: 1 }); // idempotent: no mark
        log.sync();
        log.truncate_uncommitted();
        log.truncate_uncommitted(); // nothing left to truncate: no call
        log.reset_to_snapshot(Zxid { epoch: 2, counter: 9 });
        assert_eq!(
            *calls.lock(),
            vec![
                "append 0x0000000100000001",
                "append 0x0000000100000002",
                "commit 0x0000000100000001",
                "sync",
                "truncate 0x0000000100000001",
                "reset 0x0000000200000009",
            ]
        );
    }
}
