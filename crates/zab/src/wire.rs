//! Wire codec for replica-to-replica [`ZabMessage`]s.
//!
//! The networked transport ([`crate::tcp::TcpNetwork`]) exchanges envelopes
//! as length-prefixed frames (the same 4-byte framing as the client protocol,
//! [`jute::framing`]); this module defines the frame body: a one-byte variant
//! tag followed by the jute-encoded fields. Zxids travel packed into 64 bits
//! (epoch high, counter low), exactly the representation ZooKeeper uses.

use jute::{InputArchive, JuteError, OutputArchive};

use crate::message::{NodeId, Txn, ZabMessage, Zxid};
use crate::network::Envelope;

const TAG_PROPOSAL: u8 = 1;
const TAG_ACK: u8 = 2;
const TAG_COMMIT: u8 = 3;
const TAG_NEW_LEADER_SYNC: u8 = 4;
const TAG_SYNC_ACK: u8 = 5;
const TAG_HEARTBEAT: u8 = 6;
const TAG_FORWARD_WRITE: u8 = 7;
const TAG_ELECTION: u8 = 8;
const TAG_SYNC_REQUEST: u8 = 9;
const TAG_SNAPSHOT_CHUNK: u8 = 10;
const TAG_VOTE_GRANT: u8 = 11;
const TAG_TRANSFER_LEADERSHIP: u8 = 12;

fn write_node(out: &mut OutputArchive, node: NodeId) {
    out.write_i32(node.0 as i32);
}

fn read_node(input: &mut InputArchive<'_>, what: &'static str) -> Result<NodeId, JuteError> {
    Ok(NodeId(input.read_i32(what)? as u32))
}

fn write_zxid(out: &mut OutputArchive, zxid: Zxid) {
    out.write_i64(zxid.as_u64() as i64);
}

fn read_zxid(input: &mut InputArchive<'_>, what: &'static str) -> Result<Zxid, JuteError> {
    Ok(Zxid::from_u64(input.read_i64(what)? as u64))
}

fn write_epoch(out: &mut OutputArchive, epoch: u32) {
    out.write_i32(epoch as i32);
}

fn read_epoch(input: &mut InputArchive<'_>, what: &'static str) -> Result<u32, JuteError> {
    Ok(input.read_i32(what)? as u32)
}

fn write_txn(out: &mut OutputArchive, txn: &Txn) {
    write_zxid(out, txn.zxid);
    out.write_buffer(&txn.payload);
}

fn read_txn(input: &mut InputArchive<'_>) -> Result<Txn, JuteError> {
    let zxid = read_zxid(input, "txn zxid")?;
    let payload = input.read_buffer("txn payload")?;
    Ok(Txn { zxid, payload })
}

/// Serializes an envelope into a frame body (sender, tag, fields).
pub fn encode_envelope(envelope: &Envelope) -> Vec<u8> {
    let mut out = OutputArchive::with_capacity(32);
    write_node(&mut out, envelope.from);
    match &envelope.message {
        ZabMessage::Proposal { txn, prev } => {
            out.write_u8(TAG_PROPOSAL);
            write_txn(&mut out, txn);
            write_zxid(&mut out, *prev);
        }
        ZabMessage::Ack { zxid, from } => {
            out.write_u8(TAG_ACK);
            write_zxid(&mut out, *zxid);
            write_node(&mut out, *from);
        }
        ZabMessage::Commit { zxid } => {
            out.write_u8(TAG_COMMIT);
            write_zxid(&mut out, *zxid);
        }
        ZabMessage::NewLeaderSync { epoch, txns } => {
            out.write_u8(TAG_NEW_LEADER_SYNC);
            write_epoch(&mut out, *epoch);
            out.write_i32(txns.len() as i32);
            for txn in txns {
                write_txn(&mut out, txn);
            }
        }
        ZabMessage::SyncAck { from, epoch } => {
            out.write_u8(TAG_SYNC_ACK);
            write_node(&mut out, *from);
            write_epoch(&mut out, *epoch);
        }
        ZabMessage::Heartbeat { epoch } => {
            out.write_u8(TAG_HEARTBEAT);
            write_epoch(&mut out, *epoch);
        }
        ZabMessage::ForwardWrite { origin, request_id, payload } => {
            out.write_u8(TAG_FORWARD_WRITE);
            write_node(&mut out, *origin);
            out.write_i64(*request_id as i64);
            out.write_buffer(payload);
        }
        ZabMessage::SyncRequest { from, last_logged } => {
            out.write_u8(TAG_SYNC_REQUEST);
            write_node(&mut out, *from);
            write_zxid(&mut out, *last_logged);
        }
        ZabMessage::Election { epoch, last_logged, from } => {
            out.write_u8(TAG_ELECTION);
            write_epoch(&mut out, *epoch);
            write_zxid(&mut out, *last_logged);
            write_node(&mut out, *from);
        }
        ZabMessage::VoteGrant { epoch, from, last_logged } => {
            out.write_u8(TAG_VOTE_GRANT);
            write_epoch(&mut out, *epoch);
            write_node(&mut out, *from);
            write_zxid(&mut out, *last_logged);
        }
        ZabMessage::SnapshotChunk { epoch, snapshot_zxid, seq, last, bytes } => {
            out.write_u8(TAG_SNAPSHOT_CHUNK);
            write_epoch(&mut out, *epoch);
            write_zxid(&mut out, *snapshot_zxid);
            out.write_i32(*seq as i32);
            out.write_bool(*last);
            out.write_buffer(bytes);
        }
        ZabMessage::TransferLeadership { epoch } => {
            out.write_u8(TAG_TRANSFER_LEADERSHIP);
            write_epoch(&mut out, *epoch);
        }
    }
    out.into_bytes()
}

/// Decodes a frame body produced by [`encode_envelope`].
///
/// # Errors
///
/// Returns [`JuteError`] on truncated input, trailing bytes, or an unknown
/// variant tag.
pub fn decode_envelope(bytes: &[u8]) -> Result<Envelope, JuteError> {
    let mut input = InputArchive::new(bytes);
    let from = read_node(&mut input, "envelope sender")?;
    let tag = input.read_u8("message tag")?;
    let message = match tag {
        TAG_PROPOSAL => ZabMessage::Proposal {
            txn: read_txn(&mut input)?,
            prev: read_zxid(&mut input, "proposal prev")?,
        },
        TAG_ACK => ZabMessage::Ack {
            zxid: read_zxid(&mut input, "ack zxid")?,
            from: read_node(&mut input, "ack sender")?,
        },
        TAG_COMMIT => ZabMessage::Commit { zxid: read_zxid(&mut input, "commit zxid")? },
        TAG_NEW_LEADER_SYNC => {
            let epoch = read_epoch(&mut input, "sync epoch")?;
            let count = input.read_i32("sync txn count")?;
            if count < 0 {
                return Err(JuteError::InvalidLength {
                    what: "sync txn count",
                    length: count.into(),
                });
            }
            let mut txns = Vec::with_capacity((count as usize).min(1024));
            for _ in 0..count {
                txns.push(read_txn(&mut input)?);
            }
            ZabMessage::NewLeaderSync { epoch, txns }
        }
        TAG_SYNC_ACK => ZabMessage::SyncAck {
            from: read_node(&mut input, "sync-ack sender")?,
            epoch: read_epoch(&mut input, "sync-ack epoch")?,
        },
        TAG_HEARTBEAT => {
            ZabMessage::Heartbeat { epoch: read_epoch(&mut input, "heartbeat epoch")? }
        }
        TAG_FORWARD_WRITE => ZabMessage::ForwardWrite {
            origin: read_node(&mut input, "forward origin")?,
            request_id: input.read_i64("forward request id")? as u64,
            payload: input.read_buffer("forward payload")?,
        },
        TAG_SYNC_REQUEST => ZabMessage::SyncRequest {
            from: read_node(&mut input, "sync-request sender")?,
            last_logged: read_zxid(&mut input, "sync-request tip")?,
        },
        TAG_ELECTION => ZabMessage::Election {
            epoch: read_epoch(&mut input, "election epoch")?,
            last_logged: read_zxid(&mut input, "election credential")?,
            from: read_node(&mut input, "election candidate")?,
        },
        TAG_VOTE_GRANT => ZabMessage::VoteGrant {
            epoch: read_epoch(&mut input, "vote-grant epoch")?,
            from: read_node(&mut input, "vote-grant voter")?,
            last_logged: read_zxid(&mut input, "vote-grant tip")?,
        },
        TAG_SNAPSHOT_CHUNK => ZabMessage::SnapshotChunk {
            epoch: read_epoch(&mut input, "snapshot epoch")?,
            snapshot_zxid: read_zxid(&mut input, "snapshot zxid")?,
            seq: input.read_i32("snapshot chunk seq")? as u32,
            last: input.read_bool("snapshot chunk last")?,
            bytes: input.read_buffer("snapshot chunk bytes")?,
        },
        TAG_TRANSFER_LEADERSHIP => {
            ZabMessage::TransferLeadership { epoch: read_epoch(&mut input, "transfer epoch")? }
        }
        other => {
            return Err(JuteError::InvalidLength { what: "message tag", length: other.into() });
        }
    };
    input.expect_exhausted()?;
    Ok(Envelope { from, message })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(message: ZabMessage) {
        let envelope = Envelope { from: NodeId(3), message };
        let bytes = encode_envelope(&envelope);
        assert_eq!(decode_envelope(&bytes).unwrap(), envelope);
    }

    #[test]
    fn every_variant_roundtrips() {
        let zxid = Zxid { epoch: 7, counter: 123_456 };
        roundtrip(ZabMessage::Proposal {
            txn: Txn { zxid, payload: b"create /a".to_vec() },
            prev: Zxid { epoch: 7, counter: 123_455 },
        });
        roundtrip(ZabMessage::Ack { zxid, from: NodeId(2) });
        roundtrip(ZabMessage::Commit { zxid });
        roundtrip(ZabMessage::NewLeaderSync {
            epoch: 8,
            txns: vec![
                Txn { zxid, payload: vec![] },
                Txn { zxid: zxid.next(), payload: vec![0xff; 100] },
            ],
        });
        roundtrip(ZabMessage::SyncAck { from: NodeId(1), epoch: 8 });
        roundtrip(ZabMessage::Heartbeat { epoch: u32::MAX });
        roundtrip(ZabMessage::ForwardWrite {
            origin: NodeId(9),
            request_id: u64::MAX,
            payload: b"set /x".to_vec(),
        });
        roundtrip(ZabMessage::SyncRequest { from: NodeId(2), last_logged: zxid });
        roundtrip(ZabMessage::Election { epoch: 2, last_logged: Zxid::ZERO, from: NodeId(5) });
        roundtrip(ZabMessage::VoteGrant { epoch: 3, last_logged: zxid, from: NodeId(4) });
        roundtrip(ZabMessage::SnapshotChunk {
            epoch: 9,
            snapshot_zxid: zxid,
            seq: 3,
            last: true,
            bytes: vec![0xAB; 4096],
        });
        roundtrip(ZabMessage::SnapshotChunk {
            epoch: 1,
            snapshot_zxid: Zxid::ZERO,
            seq: 0,
            last: false,
            bytes: Vec::new(),
        });
        roundtrip(ZabMessage::TransferLeadership { epoch: 11 });
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut out = OutputArchive::new();
        out.write_i32(1);
        out.write_u8(42);
        assert!(decode_envelope(&out.into_bytes()).is_err());
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let envelope = Envelope {
            from: NodeId(1),
            message: ZabMessage::Commit { zxid: Zxid { epoch: 1, counter: 1 } },
        };
        let bytes = encode_envelope(&envelope);
        for len in 0..bytes.len() {
            assert!(decode_envelope(&bytes[..len]).is_err(), "prefix of {len} bytes decoded");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let envelope = Envelope { from: NodeId(1), message: ZabMessage::Heartbeat { epoch: 1 } };
        let mut bytes = encode_envelope(&envelope);
        bytes.push(0);
        assert!(decode_envelope(&bytes).is_err());
    }

    #[test]
    fn negative_sync_count_is_rejected() {
        let mut out = OutputArchive::new();
        write_node(&mut out, NodeId(1));
        out.write_u8(TAG_NEW_LEADER_SYNC);
        write_epoch(&mut out, 1);
        out.write_i32(-4);
        assert!(decode_envelope(&out.into_bytes()).is_err());
    }
}
