//! Replica-to-replica transports.
//!
//! The protocol state machine ([`crate::node::ZabNode`]) is transport
//! agnostic: it sends and receives [`ZabMessage`]s through the
//! [`ZabTransport`] trait. Two implementations exist:
//!
//! * [`SimNetwork`] (this module) — per-destination FIFO queues driven
//!   deterministically in-process, with crash injection. This matches the
//!   fault model of the paper's evaluation (replica crashes, no Byzantine
//!   behaviour, no partitions) and powers the simulation experiments;
//! * [`crate::tcp::TcpNetwork`] — real sockets between replica processes,
//!   used by the networked ensemble.

use std::collections::{HashMap, HashSet, VecDeque};

use parking_lot::Mutex;
use std::sync::Arc;

use crate::message::{NodeId, ZabMessage};

/// An envelope carrying a message and its sender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending replica.
    pub from: NodeId,
    /// The protocol message.
    pub message: ZabMessage,
}

/// A point-to-point message transport connecting the replicas of an ensemble.
///
/// Delivery between a pair of live endpoints is FIFO; messages to unreachable
/// peers may be dropped (ZAB tolerates loss — an out-of-date replica catches
/// up through [`ZabMessage::NewLeaderSync`]).
pub trait ZabTransport: Send + Sync {
    /// Sends `message` from `from` to `to`. Best-effort: undeliverable
    /// messages are dropped.
    fn send(&self, from: NodeId, to: NodeId, message: ZabMessage);

    /// Sends `message` from `from` to every other member of the ensemble.
    fn broadcast(&self, from: NodeId, message: &ZabMessage);

    /// Removes and returns the next message queued for `node`, if any.
    fn receive(&self, node: NodeId) -> Option<Envelope>;
}

#[derive(Debug, Default)]
struct NetworkState {
    queues: HashMap<NodeId, VecDeque<Envelope>>,
    crashed: HashSet<NodeId>,
    delivered: u64,
    dropped: u64,
}

/// A handle to the shared simulated network.
#[derive(Debug, Clone, Default)]
pub struct SimNetwork {
    state: Arc<Mutex<NetworkState>>,
}

impl SimNetwork {
    /// Creates a network connecting `nodes`.
    pub fn new(nodes: &[NodeId]) -> Self {
        let mut queues = HashMap::new();
        for &node in nodes {
            queues.insert(node, VecDeque::new());
        }
        SimNetwork {
            state: Arc::new(Mutex::new(NetworkState { queues, ..NetworkState::default() })),
        }
    }

    /// Sends `message` from `from` to `to`. Messages to or from crashed nodes
    /// are silently dropped (counted in [`SimNetwork::dropped`]).
    pub fn send(&self, from: NodeId, to: NodeId, message: ZabMessage) {
        let mut state = self.state.lock();
        if state.crashed.contains(&from) || state.crashed.contains(&to) {
            state.dropped += 1;
            return;
        }
        if let Some(queue) = state.queues.get_mut(&to) {
            queue.push_back(Envelope { from, message });
        } else {
            state.dropped += 1;
        }
    }

    /// Broadcasts `message` from `from` to every other node.
    pub fn broadcast(&self, from: NodeId, message: &ZabMessage) {
        let targets: Vec<NodeId> = {
            let state = self.state.lock();
            state.queues.keys().copied().filter(|&n| n != from).collect()
        };
        for to in targets {
            self.send(from, to, message.clone());
        }
    }

    /// Removes and returns the next message queued for `node`, if any.
    pub fn receive(&self, node: NodeId) -> Option<Envelope> {
        let mut state = self.state.lock();
        if state.crashed.contains(&node) {
            return None;
        }
        let envelope = state.queues.get_mut(&node)?.pop_front();
        if envelope.is_some() {
            state.delivered += 1;
        }
        envelope
    }

    /// Marks `node` as crashed: its queue is cleared and it stops exchanging
    /// messages until [`SimNetwork::recover`] is called.
    pub fn crash(&self, node: NodeId) {
        let mut state = self.state.lock();
        state.crashed.insert(node);
        if let Some(queue) = state.queues.get_mut(&node) {
            queue.clear();
        }
    }

    /// Recovers a crashed node (with an empty inbox).
    pub fn recover(&self, node: NodeId) {
        self.state.lock().crashed.remove(&node);
    }

    /// True if `node` is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.state.lock().crashed.contains(&node)
    }

    /// All nodes that are not crashed.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        let state = self.state.lock();
        let mut alive: Vec<NodeId> =
            state.queues.keys().copied().filter(|n| !state.crashed.contains(n)).collect();
        alive.sort();
        alive
    }

    /// Total number of messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.state.lock().delivered
    }

    /// Total number of messages dropped (crashed endpoints or unknown nodes).
    pub fn dropped(&self) -> u64 {
        self.state.lock().dropped
    }

    /// Number of messages waiting in `node`'s inbox.
    pub fn pending(&self, node: NodeId) -> usize {
        self.state.lock().queues.get(&node).map_or(0, |q| q.len())
    }
}

impl ZabTransport for SimNetwork {
    fn send(&self, from: NodeId, to: NodeId, message: ZabMessage) {
        SimNetwork::send(self, from, to, message);
    }

    fn broadcast(&self, from: NodeId, message: &ZabMessage) {
        SimNetwork::broadcast(self, from, message);
    }

    fn receive(&self, node: NodeId) -> Option<Envelope> {
        SimNetwork::receive(self, node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Zxid;

    fn nodes() -> Vec<NodeId> {
        vec![NodeId(1), NodeId(2), NodeId(3)]
    }

    fn heartbeat() -> ZabMessage {
        ZabMessage::Heartbeat { epoch: 1 }
    }

    #[test]
    fn send_and_receive_fifo() {
        let net = SimNetwork::new(&nodes());
        net.send(NodeId(1), NodeId(2), ZabMessage::Commit { zxid: Zxid { epoch: 1, counter: 1 } });
        net.send(NodeId(1), NodeId(2), ZabMessage::Commit { zxid: Zxid { epoch: 1, counter: 2 } });
        let first = net.receive(NodeId(2)).unwrap();
        let second = net.receive(NodeId(2)).unwrap();
        assert!(matches!(first.message, ZabMessage::Commit { zxid } if zxid.counter == 1));
        assert!(matches!(second.message, ZabMessage::Commit { zxid } if zxid.counter == 2));
        assert!(net.receive(NodeId(2)).is_none());
        assert_eq!(net.delivered(), 2);
    }

    #[test]
    fn broadcast_reaches_everyone_but_sender() {
        let net = SimNetwork::new(&nodes());
        net.broadcast(NodeId(1), &heartbeat());
        assert_eq!(net.pending(NodeId(1)), 0);
        assert_eq!(net.pending(NodeId(2)), 1);
        assert_eq!(net.pending(NodeId(3)), 1);
    }

    #[test]
    fn crashed_node_is_isolated() {
        let net = SimNetwork::new(&nodes());
        net.crash(NodeId(2));
        assert!(net.is_crashed(NodeId(2)));
        net.send(NodeId(1), NodeId(2), heartbeat());
        net.send(NodeId(2), NodeId(3), heartbeat());
        assert_eq!(net.dropped(), 2);
        assert_eq!(net.pending(NodeId(3)), 0);
        assert!(net.receive(NodeId(2)).is_none());
        assert_eq!(net.alive_nodes(), vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn recovery_restores_connectivity_with_empty_inbox() {
        let net = SimNetwork::new(&nodes());
        net.send(NodeId(1), NodeId(2), heartbeat());
        net.crash(NodeId(2));
        net.recover(NodeId(2));
        // The message queued before the crash is gone.
        assert!(net.receive(NodeId(2)).is_none());
        net.send(NodeId(1), NodeId(2), heartbeat());
        assert!(net.receive(NodeId(2)).is_some());
    }

    #[test]
    fn unknown_destination_counts_as_dropped() {
        let net = SimNetwork::new(&nodes());
        net.send(NodeId(1), NodeId(99), heartbeat());
        assert_eq!(net.dropped(), 1);
    }
}
