//! Cluster orchestration: message pumping, leader election, crash injection.

use std::collections::HashMap;

use crate::message::{NodeId, Txn, ZabMessage, Zxid};
use crate::network::SimNetwork;
use crate::node::{Role, ZabNode};

/// A complete ZAB ensemble driven deterministically in-process.
///
/// The cluster steps every node's inbox until quiescence after each operation,
/// so a call to [`ZabCluster::broadcast`] returns only once the transaction is
/// committed on every reachable replica (or not at all, if no quorum exists).
///
/// # Example
///
/// ```
/// use zab::ZabCluster;
///
/// let mut cluster = ZabCluster::new(3);
/// let zxid = cluster.broadcast(b"create /config".to_vec()).expect("quorum available");
/// assert_eq!(zxid.counter, 1);
/// let applied = cluster.take_committed(cluster.leader_id());
/// assert_eq!(applied.len(), 1);
/// ```
#[derive(Debug)]
pub struct ZabCluster {
    nodes: HashMap<NodeId, ZabNode>,
    order: Vec<NodeId>,
    network: SimNetwork,
    leader: NodeId,
    epoch: u32,
    elections: u32,
}

impl ZabCluster {
    /// Creates a cluster of `size` replicas (at least 1) with replica 1 as the
    /// initial leader in epoch 1.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size >= 1, "a cluster needs at least one replica");
        let order: Vec<NodeId> = (1..=size as u32).map(NodeId).collect();
        let network = SimNetwork::new(&order);
        let mut nodes = HashMap::new();
        let leader = order[0];
        for &id in &order {
            let mut node = ZabNode::new(id, size);
            if id == leader {
                node.become_leader(1);
            } else {
                node.become_follower(1, leader);
            }
            nodes.insert(id, node);
        }
        ZabCluster { nodes, order, network, leader, epoch: 1, elections: 0 }
    }

    /// Identifiers of all replicas, in creation order.
    pub fn node_ids(&self) -> &[NodeId] {
        &self.order
    }

    /// The current leader.
    pub fn leader_id(&self) -> NodeId {
        self.leader
    }

    /// The current epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Number of leader elections run so far (excluding the initial one).
    pub fn elections(&self) -> u32 {
        self.elections
    }

    /// Access to the underlying network (for fault injection in tests).
    pub fn network(&self) -> &SimNetwork {
        &self.network
    }

    /// Read access to a replica's protocol state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a member of the cluster.
    pub fn node(&self, id: NodeId) -> &ZabNode {
        &self.nodes[&id]
    }

    /// True if `id` is currently crashed.
    pub fn is_crashed(&self, id: NodeId) -> bool {
        self.network.is_crashed(id)
    }

    /// Number of replicas currently alive.
    pub fn alive_count(&self) -> usize {
        self.network.alive_nodes().len()
    }

    /// True if a majority of replicas is alive (writes can commit).
    pub fn has_quorum(&self) -> bool {
        self.alive_count() > self.order.len() / 2
    }

    /// Submits a write for total ordering. Returns the zxid it committed at,
    /// or `None` if no quorum is currently reachable.
    pub fn broadcast(&mut self, payload: Vec<u8>) -> Option<Zxid> {
        if !self.has_quorum() || self.network.is_crashed(self.leader) {
            return None;
        }
        let zxid = {
            let leader = self.nodes.get_mut(&self.leader).expect("leader exists");
            leader.propose(payload, &self.network)
        };
        self.run_until_quiet();
        let committed = self.nodes[&self.leader].log().last_committed() >= zxid;
        committed.then_some(zxid)
    }

    /// Delivers queued messages until every inbox is empty.
    pub fn run_until_quiet(&mut self) {
        loop {
            let mut delivered = false;
            for &id in &self.order {
                if let Some(envelope) = self.network.receive(id) {
                    if let Some(node) = self.nodes.get_mut(&id) {
                        node.handle(envelope, &self.network);
                        delivered = true;
                    }
                }
            }
            if !delivered {
                break;
            }
        }
    }

    /// Drains the committed transactions a replica has not yet applied to its
    /// state machine.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a member of the cluster.
    pub fn take_committed(&mut self, id: NodeId) -> Vec<Txn> {
        self.nodes.get_mut(&id).expect("member").take_committed()
    }

    /// Crashes a replica. If it was the leader, an election is run among the
    /// survivors (provided a quorum remains).
    pub fn crash(&mut self, id: NodeId) {
        self.network.crash(id);
        if id == self.leader && self.has_quorum() {
            self.elect();
        }
    }

    /// Recovers a crashed replica and synchronizes it from the current leader.
    pub fn recover(&mut self, id: NodeId) {
        self.network.recover(id);
        if id == self.leader {
            // The old leader returns as a follower of the current leader.
            if let Some(node) = self.nodes.get_mut(&id) {
                node.become_follower(self.epoch, self.leader);
            }
        }
        let missing = {
            let target_committed = self.nodes[&id].log().last_committed();
            self.nodes[&self.leader].log().entries_after(target_committed)
        };
        self.network.send(
            self.leader,
            id,
            ZabMessage::NewLeaderSync { epoch: self.epoch, txns: missing },
        );
        self.run_until_quiet();
    }

    /// Runs a leader election among alive replicas: the node with the most
    /// advanced log wins (ties broken by the highest id, as in ZooKeeper's
    /// fast leader election).
    pub fn elect(&mut self) {
        let alive = self.network.alive_nodes();
        let quorum = self.order.len() / 2 + 1;
        if alive.len() < quorum {
            return;
        }
        for &id in &alive {
            if let Some(node) = self.nodes.get_mut(&id) {
                node.start_election();
            }
        }
        let winner = *alive
            .iter()
            .max_by_key(|&&id| {
                let node = &self.nodes[&id];
                (node.log().last_logged(), id)
            })
            .expect("at least one alive node");

        self.epoch += 1;
        self.elections += 1;
        self.leader = winner;
        if let Some(node) = self.nodes.get_mut(&winner) {
            node.become_leader(self.epoch);
        }

        // Synchronize every other alive replica from the new leader's log.
        for &id in &alive {
            if id == winner {
                continue;
            }
            let missing = {
                let follower_committed = self.nodes[&id].log().last_committed();
                self.nodes[&winner].log().entries_after(follower_committed)
            };
            self.network.send(
                winner,
                id,
                ZabMessage::NewLeaderSync { epoch: self.epoch, txns: missing },
            );
        }
        self.run_until_quiet();
    }

    /// Roles of every replica, for observability.
    pub fn roles(&self) -> HashMap<NodeId, Role> {
        self.order.iter().map(|&id| (id, self.nodes[&id].role())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_commit_on_every_replica() {
        let mut cluster = ZabCluster::new(3);
        for i in 0..20u8 {
            assert!(cluster.broadcast(vec![i]).is_some());
        }
        for &id in &cluster.node_ids().to_vec() {
            let committed = cluster.take_committed(id);
            assert_eq!(committed.len(), 20, "{id}");
            let payloads: Vec<u8> = committed.iter().map(|t| t.payload[0]).collect();
            assert_eq!(payloads, (0..20u8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn follower_crash_does_not_block_writes() {
        let mut cluster = ZabCluster::new(3);
        cluster.crash(NodeId(3));
        assert!(cluster.broadcast(b"x".to_vec()).is_some());
        assert_eq!(cluster.take_committed(NodeId(1)).len(), 1);
        assert_eq!(cluster.take_committed(NodeId(3)).len(), 0);
        assert_eq!(cluster.leader_id(), NodeId(1));
    }

    #[test]
    fn leader_crash_triggers_election_and_writes_continue() {
        let mut cluster = ZabCluster::new(3);
        cluster.broadcast(b"before".to_vec()).unwrap();
        let old_leader = cluster.leader_id();
        cluster.crash(old_leader);
        assert_ne!(cluster.leader_id(), old_leader);
        assert_eq!(cluster.epoch(), 2);
        assert_eq!(cluster.elections(), 1);

        let zxid = cluster.broadcast(b"after".to_vec()).unwrap();
        assert_eq!(zxid.epoch, 2);
        // Survivors see both transactions exactly once.
        let survivor = cluster.leader_id();
        let committed = cluster.take_committed(survivor);
        assert_eq!(committed.len(), 2);
        assert_eq!(committed[0].payload, b"before".to_vec());
        assert_eq!(committed[1].payload, b"after".to_vec());
    }

    #[test]
    fn no_quorum_no_progress() {
        let mut cluster = ZabCluster::new(3);
        cluster.crash(NodeId(2));
        cluster.crash(NodeId(3));
        assert!(!cluster.has_quorum());
        assert!(cluster.broadcast(b"x".to_vec()).is_none());
    }

    #[test]
    fn five_replica_cluster_tolerates_two_failures() {
        let mut cluster = ZabCluster::new(5);
        cluster.broadcast(b"a".to_vec()).unwrap();
        cluster.crash(NodeId(4));
        cluster.crash(NodeId(1)); // the leader
        assert!(cluster.has_quorum());
        assert!(cluster.broadcast(b"b".to_vec()).is_some());
        let leader = cluster.leader_id();
        assert!(leader != NodeId(1) && leader != NodeId(4));
        assert_eq!(cluster.take_committed(leader).len(), 2);
    }

    #[test]
    fn recovered_replica_catches_up() {
        let mut cluster = ZabCluster::new(3);
        cluster.crash(NodeId(3));
        for i in 0..5u8 {
            cluster.broadcast(vec![i]).unwrap();
        }
        cluster.recover(NodeId(3));
        let committed = cluster.take_committed(NodeId(3));
        assert_eq!(committed.len(), 5);
        // And it participates in new writes again.
        cluster.broadcast(b"new".to_vec()).unwrap();
        assert_eq!(cluster.take_committed(NodeId(3)).len(), 1);
    }

    #[test]
    fn recovered_leader_rejoins_as_follower() {
        let mut cluster = ZabCluster::new(3);
        cluster.broadcast(b"a".to_vec()).unwrap();
        cluster.crash(NodeId(1));
        cluster.broadcast(b"b".to_vec()).unwrap();
        cluster.recover(NodeId(1));
        assert_ne!(cluster.leader_id(), NodeId(1));
        assert_eq!(cluster.roles()[&NodeId(1)], Role::Follower);
        // The recovered replica catches up on the write it missed.
        let committed = cluster.take_committed(NodeId(1));
        assert_eq!(committed.len(), 2);
    }

    #[test]
    fn committed_writes_survive_leader_failover() {
        // A transaction committed before the crash must be visible after the
        // new leader takes over (ZAB safety).
        let mut cluster = ZabCluster::new(3);
        let zxid = cluster.broadcast(b"durable".to_vec()).unwrap();
        cluster.crash(cluster.leader_id());
        let new_leader = cluster.leader_id();
        assert!(cluster.node(new_leader).log().last_committed() >= zxid);
        let payloads: Vec<Vec<u8>> =
            cluster.node(new_leader).log().committed().map(|t| t.payload.clone()).collect();
        assert!(payloads.contains(&b"durable".to_vec()));
    }

    #[test]
    fn single_node_cluster_works() {
        let mut cluster = ZabCluster::new(1);
        assert!(cluster.broadcast(b"x".to_vec()).is_some());
        assert_eq!(cluster.take_committed(NodeId(1)).len(), 1);
    }

    #[test]
    fn zxids_are_strictly_increasing_across_epochs() {
        let mut cluster = ZabCluster::new(3);
        let z1 = cluster.broadcast(b"a".to_vec()).unwrap();
        cluster.crash(cluster.leader_id());
        let z2 = cluster.broadcast(b"b".to_vec()).unwrap();
        assert!(z2 > z1);
    }
}
