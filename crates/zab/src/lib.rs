//! A ZooKeeper Atomic Broadcast (ZAB) style agreement protocol.
//!
//! ZooKeeper orders all write requests through its leader replica using the
//! ZAB protocol [Junqueira et al., DSN 2011]: the leader wraps each state
//! change in a *transaction* identified by a monotonically increasing `zxid`,
//! proposes it to the followers, collects acknowledgements, and commits the
//! transaction once a quorum (majority) has acknowledged it. When the leader
//! fails, the remaining replicas elect a new leader — the replica with the
//! most up-to-date transaction log — and a new epoch begins.
//!
//! SecureKeeper does not modify ZAB at all; it only relies on the properties
//! above (total order of writes, FIFO per client, leader-side hook for
//! sequential-node numbering, and crash fault tolerance). This crate provides
//! a deterministic, in-process implementation of those properties that the
//! `zkserver` crate builds on and that the fault-tolerance experiment
//! (Figure 12) exercises:
//!
//! * [`message::Zxid`], [`message::Txn`], [`message::ZabMessage`] — the
//!   protocol vocabulary;
//! * [`log::TxnLog`] — the per-replica committed transaction log;
//! * [`network::ZabTransport`] — the replica-to-replica transport seam, with
//!   [`network::SimNetwork`] (a reliable in-process FIFO bus with crash
//!   injection) and [`tcp::TcpNetwork`] (real sockets between replica
//!   processes) as interchangeable implementations;
//! * [`wire`] — the length-prefixed jute codec the TCP transport frames
//!   [`message::ZabMessage`]s with;
//! * [`node::ZabNode`] — the per-replica protocol state machine;
//! * [`cluster::ZabCluster`] — glue that steps all nodes, runs leader
//!   election, and exposes a simple `broadcast` API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod log;
pub mod message;
pub mod network;
pub mod node;
pub mod tcp;
pub mod wire;

pub use cluster::ZabCluster;
pub use log::{DurableLog, TxnLog};
pub use message::{NodeId, Txn, ZabMessage, Zxid};
pub use network::{Envelope, ZabTransport};
pub use node::{send_sync, Role, ZabNode};
pub use tcp::TcpNetwork;
