//! Protocol vocabulary: identifiers, transactions and messages.

/// Identifier of a replica participating in the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replica{}", self.0)
    }
}

/// A ZooKeeper transaction id: the high 32 bits hold the leader epoch, the low
/// 32 bits a counter that resets with each new epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Zxid {
    /// Leader epoch.
    pub epoch: u32,
    /// Per-epoch counter, starting at 1 for the first proposal of an epoch.
    pub counter: u32,
}

impl Zxid {
    /// The zero zxid (no transaction seen yet).
    pub const ZERO: Zxid = Zxid { epoch: 0, counter: 0 };

    /// Builds a zxid from its packed 64-bit representation.
    pub fn from_u64(raw: u64) -> Self {
        Zxid { epoch: (raw >> 32) as u32, counter: raw as u32 }
    }

    /// Packs the zxid into 64 bits (epoch high, counter low).
    pub fn as_u64(&self) -> u64 {
        (u64::from(self.epoch) << 32) | u64::from(self.counter)
    }

    /// The next zxid within the same epoch.
    pub fn next(&self) -> Zxid {
        Zxid { epoch: self.epoch, counter: self.counter + 1 }
    }

    /// The first zxid of the following epoch.
    pub fn next_epoch(&self) -> Zxid {
        Zxid { epoch: self.epoch + 1, counter: 0 }
    }

    /// True when this zxid is a legal immediate successor of `prev` in ZAB's
    /// numbering: the next counter within the same epoch, or the *first*
    /// proposal (counter 1) of a later epoch (intervening epochs may be
    /// empty). Receivers use this to refuse history that would open a
    /// silent gap in their log.
    pub fn follows(&self, prev: Zxid) -> bool {
        if self.epoch == prev.epoch {
            self.counter == prev.counter.wrapping_add(1)
        } else {
            self.epoch > prev.epoch && self.counter == 1
        }
    }
}

impl std::fmt::Display for Zxid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:08x}{:08x}", self.epoch, self.counter)
    }
}

/// A state-machine command to be totally ordered. The payload is opaque to the
/// protocol; `zkserver` stores a serialized write request in it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Txn {
    /// The zxid assigned by the leader.
    pub zxid: Zxid,
    /// Opaque command payload.
    pub payload: Vec<u8>,
}

/// Messages exchanged between replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZabMessage {
    /// Leader → follower: please accept this transaction.
    Proposal {
        /// The proposed transaction.
        txn: Txn,
        /// The zxid of the log entry immediately preceding `txn` on the
        /// leader. A follower accepts the proposal only when its own log tip
        /// matches, so a lost frame on a real network can never open a
        /// silent gap in a follower's log (it requests a resync instead).
        prev: Zxid,
    },
    /// Follower → leader: transaction logged, ready to commit.
    Ack {
        /// zxid being acknowledged.
        zxid: Zxid,
        /// Acknowledging replica.
        from: NodeId,
    },
    /// Leader → follower: a quorum acknowledged, apply the transaction.
    Commit {
        /// zxid to commit.
        zxid: Zxid,
    },
    /// New leader → follower: synchronize missing transactions after election.
    NewLeaderSync {
        /// The new epoch.
        epoch: u32,
        /// Transactions the follower is missing.
        txns: Vec<Txn>,
    },
    /// Follower → new leader: synchronization acknowledged.
    SyncAck {
        /// The follower.
        from: NodeId,
        /// The new epoch.
        epoch: u32,
    },
    /// Periodic heartbeat from the leader (used for failure detection).
    Heartbeat {
        /// Current epoch.
        epoch: u32,
    },
    /// Follower → leader: a client write received by a follower, forwarded to
    /// the current leader for proposal (ZooKeeper's request forwarding). The
    /// `origin`/`request_id` pair lets the origin replica correlate the
    /// eventual commit with the waiting client connection.
    ForwardWrite {
        /// Replica the client is connected to.
        origin: NodeId,
        /// Origin-local identifier of the pending client request.
        request_id: u64,
        /// The opaque transaction payload to propose.
        payload: Vec<u8>,
    },
    /// Follower → leader: this replica's log does not extend to what the
    /// leader references (a proposal's `prev` did not match, or a commit
    /// pointed past the local tip — lost frames on a real network). The
    /// leader answers with a [`ZabMessage::NewLeaderSync`] carrying the
    /// committed entries after `last_logged`.
    SyncRequest {
        /// The replica requesting the resync.
        from: NodeId,
        /// Its current log tip.
        last_logged: Zxid,
    },
    /// Broadcast during leader election: the sender's candidacy for `epoch`
    /// with its log credential. The node with the most advanced log (ties
    /// broken by the highest id) wins, as in ZooKeeper's fast leader election.
    Election {
        /// The epoch being elected.
        epoch: u32,
        /// The sender's most advanced logged zxid.
        last_logged: Zxid,
        /// The candidate.
        from: NodeId,
    },
    /// Voter → candidate: one vote granted for `epoch`. A member grants at
    /// most one vote per epoch (persisted before the grant leaves the node
    /// on durable members), and only to a candidate whose announced log
    /// credential is at least as advanced as its own — so two same-epoch
    /// leaders would need two intersecting quorums of single-use grants,
    /// which cannot exist.
    VoteGrant {
        /// The epoch the vote is granted for.
        epoch: u32,
        /// The granting member.
        from: NodeId,
        /// The granter's own log tip, so the winning candidate can ship
        /// exactly the suffix this voter is missing.
        last_logged: Zxid,
    },
    /// Leader → follower: one chunk of a serialized state snapshot, shipped
    /// when the follower has fallen behind the leader's log truncation
    /// horizon and the missing range can no longer be replayed from the log.
    /// Chunks of one snapshot travel in `seq` order over the FIFO link; the
    /// frame with `last` set completes the transfer, after which the leader
    /// follows up with a [`ZabMessage::NewLeaderSync`] carrying the log
    /// suffix after `snapshot_zxid`. The payload bytes are opaque to the
    /// protocol (and ciphertext throughout in secure mode).
    SnapshotChunk {
        /// The shipping leader's epoch.
        epoch: u32,
        /// The zxid the snapshot was taken at.
        snapshot_zxid: Zxid,
        /// Position of this chunk in the transfer, starting at 0.
        seq: u32,
        /// True on the final chunk.
        last: bool,
        /// The chunk's payload bytes.
        bytes: Vec<u8>,
    },
    /// Draining leader → chosen successor: start a candidacy now instead of
    /// waiting for the leader's heartbeats to time out. Sent after the
    /// draining leader has shipped its committed log suffix to the
    /// successor, so the successor's election credential is at least as
    /// advanced as every voter's and the handoff completes in one
    /// sub-second round instead of a full failure-detection cycle. Purely
    /// an optimization hint: a lost or ignored transfer degrades to an
    /// ordinary timeout-driven election.
    TransferLeadership {
        /// The draining leader's current epoch; the successor campaigns at
        /// a strictly higher one.
        epoch: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zxid_ordering_is_epoch_major() {
        let a = Zxid { epoch: 1, counter: 100 };
        let b = Zxid { epoch: 2, counter: 1 };
        assert!(b > a);
        assert!(Zxid::ZERO < a);
    }

    #[test]
    fn zxid_packing_roundtrip() {
        let z = Zxid { epoch: 7, counter: 123_456 };
        assert_eq!(Zxid::from_u64(z.as_u64()), z);
        assert_eq!(z.as_u64() >> 32, 7);
    }

    #[test]
    fn zxid_next_and_next_epoch() {
        let z = Zxid { epoch: 3, counter: 9 };
        assert_eq!(z.next(), Zxid { epoch: 3, counter: 10 });
        assert_eq!(z.next_epoch(), Zxid { epoch: 4, counter: 0 });
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(2).to_string(), "replica2");
        assert_eq!(Zxid { epoch: 1, counter: 2 }.to_string(), "0x0000000100000002");
    }
}
