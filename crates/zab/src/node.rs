//! The per-replica ZAB state machine.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::log::TxnLog;
use crate::message::{NodeId, Txn, ZabMessage, Zxid};
use crate::network::{Envelope, ZabTransport};
use trace::Stage;

/// Upper bound on the serialized payload carried by one `NewLeaderSync`
/// frame. Histories longer than this are shipped as a sequence of sync
/// frames (FIFO links keep them ordered; the receiver commits each chunk
/// incrementally), so a resync can never exceed the transport's frame limit
/// no matter how far a replica lags.
const SYNC_CHUNK_BYTES: usize = 1 << 20;

/// Sends `txns` to `to` as one or more [`ZabMessage::NewLeaderSync`] frames,
/// each bounded by `SYNC_CHUNK_BYTES` (1 MiB) of payload. Always sends at least
/// one frame — the sync doubles as the leadership announcement.
pub fn send_sync(net: &dyn ZabTransport, from: NodeId, to: NodeId, epoch: u32, txns: Vec<Txn>) {
    let mut chunk: Vec<Txn> = Vec::new();
    let mut chunk_bytes = 0usize;
    let mut sent_any = false;
    for txn in txns {
        if !chunk.is_empty() && chunk_bytes + txn.payload.len() > SYNC_CHUNK_BYTES {
            net.send(
                from,
                to,
                ZabMessage::NewLeaderSync { epoch, txns: std::mem::take(&mut chunk) },
            );
            chunk_bytes = 0;
            sent_any = true;
        }
        chunk_bytes += txn.payload.len();
        chunk.push(txn);
    }
    if !chunk.is_empty() || !sent_any {
        net.send(from, to, ZabMessage::NewLeaderSync { epoch, txns: chunk });
    }
}

/// The role a replica currently plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Orders writes and drives commits.
    Leader,
    /// Accepts proposals from the leader and serves reads.
    Follower,
    /// Between leaders: participating in an election.
    Electing,
}

/// One replica's protocol state.
#[derive(Debug)]
pub struct ZabNode {
    id: NodeId,
    role: Role,
    epoch: u32,
    leader: Option<NodeId>,
    cluster_size: usize,
    log: TxnLog,
    /// zxid of the last proposal issued (leader only).
    last_proposed: Zxid,
    /// Outstanding acks per proposal (leader only).
    pending_acks: HashMap<Zxid, HashSet<NodeId>>,
    /// Recently proposed forwarded request ids per origin (leader only): a
    /// retransmitted [`ZabMessage::ForwardWrite`] must not be proposed a
    /// second time, or one client write commits at two zxids.
    forward_dedup: HashMap<NodeId, (HashSet<u64>, VecDeque<u64>)>,
    /// Committed transactions not yet consumed by the state machine above.
    committed_outbox: Vec<Txn>,
}

/// Per-origin size of the leader's forwarded-write dedup window. Origins
/// allocate request ids from a process-unique counter, so a window this deep
/// only ever drops true retransmissions.
const FORWARD_DEDUP_WINDOW: usize = 512;

impl ZabNode {
    /// Creates a follower node in epoch 0.
    pub fn new(id: NodeId, cluster_size: usize) -> Self {
        Self::with_log(id, cluster_size, TxnLog::new())
    }

    /// Creates a follower node in epoch 0 on top of an existing log —
    /// recovery from a durable log rejoins with local history instead of an
    /// empty credential.
    pub fn with_log(id: NodeId, cluster_size: usize, log: TxnLog) -> Self {
        ZabNode {
            id,
            role: Role::Follower,
            epoch: 0,
            leader: None,
            cluster_size,
            log,
            last_proposed: Zxid::ZERO,
            pending_acks: HashMap::new(),
            forward_dedup: HashMap::new(),
            committed_outbox: Vec::new(),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// The current epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The node this replica believes is the leader.
    pub fn leader(&self) -> Option<NodeId> {
        self.leader
    }

    /// Read access to the transaction log.
    pub fn log(&self) -> &TxnLog {
        &self.log
    }

    /// Size of the quorum (majority of the cluster).
    pub fn quorum(&self) -> usize {
        self.cluster_size / 2 + 1
    }

    /// Promotes this node to leader of `epoch`, committing everything it has
    /// logged (ZAB guarantees logged-on-a-quorum transactions survive, and the
    /// election picks the node with the longest log).
    pub fn become_leader(&mut self, epoch: u32) {
        self.role = Role::Leader;
        self.epoch = epoch;
        self.leader = Some(self.id);
        self.pending_acks.clear();
        self.forward_dedup.clear();
        let newly = self.log.commit_up_to(self.log.last_logged());
        self.committed_outbox.extend(newly);
        self.last_proposed = Zxid { epoch, counter: 0 };
    }

    /// Demotes this node to follower of `leader` in `epoch`.
    pub fn become_follower(&mut self, epoch: u32, leader: NodeId) {
        self.role = Role::Follower;
        self.epoch = epoch;
        self.leader = Some(leader);
        self.pending_acks.clear();
        self.forward_dedup.clear();
        self.log.truncate_uncommitted();
    }

    /// Marks the node as participating in an election.
    pub fn start_election(&mut self) {
        self.role = Role::Electing;
        self.leader = None;
    }

    /// Adopts a leader-shipped snapshot taken at `zxid`: this node becomes a
    /// follower of `leader` in `epoch`, and its log — local history now
    /// superseded wholesale — resets to the snapshot watermark. The state
    /// machine above must have installed the snapshot contents already; the
    /// suffix after `zxid` arrives as an ordinary [`ZabMessage::NewLeaderSync`].
    pub fn install_snapshot(&mut self, epoch: u32, leader: NodeId, zxid: Zxid) {
        self.role = Role::Follower;
        self.epoch = epoch;
        self.leader = Some(leader);
        self.pending_acks.clear();
        self.forward_dedup.clear();
        self.committed_outbox.clear();
        self.log.reset_to_snapshot(zxid);
    }

    /// Drops in-memory log entries covered by a snapshot at `zxid` (bounds
    /// leader memory; the disk log is purged separately at segment
    /// granularity).
    pub fn compact_log_through(&mut self, zxid: Zxid) {
        self.log.compact_through(zxid);
    }

    /// Forces buffered durable log writes to disk (group commit barrier).
    pub fn sync_log(&mut self) {
        self.log.sync();
    }

    /// Leader only: assigns a zxid to `payload`, logs it locally, and
    /// broadcasts the proposal. Returns the assigned zxid.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-leader; the cluster wrapper routes proposals
    /// to the current leader.
    pub fn propose(&mut self, payload: Vec<u8>, net: &dyn ZabTransport) -> Zxid {
        assert_eq!(self.role, Role::Leader, "only the leader proposes");
        let propose_start = trace::now_ns();
        self.last_proposed = if self.last_proposed.epoch == self.epoch {
            self.last_proposed.next()
        } else {
            Zxid { epoch: self.epoch, counter: 1 }
        };
        let prev = self.log.last_logged();
        let txn = Txn { zxid: self.last_proposed, payload };
        self.log.append(txn.clone());
        // The leader's own log entry counts as its ack.
        self.pending_acks.entry(txn.zxid).or_default().insert(self.id);
        net.broadcast(self.id, &ZabMessage::Proposal { txn, prev });
        // The proposal broadcast, attributed to whichever traced request
        // the driver has made ambient. This is the single choke point
        // both leader-local and forwarded writes pass through.
        trace::record_current(Stage::Propose, propose_start, self.last_proposed.as_u64());
        self.maybe_commit(self.last_proposed, net);
        self.last_proposed
    }

    /// Processes one incoming message, possibly sending replies via `net`.
    pub fn handle(&mut self, envelope: Envelope, net: &dyn ZabTransport) {
        match envelope.message {
            ZabMessage::Proposal { txn, prev } => self.on_proposal(envelope.from, txn, prev, net),
            ZabMessage::Ack { zxid, from } => self.on_ack(zxid, from, net),
            ZabMessage::Commit { zxid } => self.on_commit(zxid, net),
            ZabMessage::NewLeaderSync { epoch, txns } => {
                self.on_new_leader_sync(envelope.from, epoch, txns, net)
            }
            ZabMessage::SyncRequest { from, last_logged } => {
                self.on_sync_request(from, last_logged, net)
            }
            ZabMessage::ForwardWrite { origin, request_id, payload } => {
                self.on_forward_write(origin, request_id, payload, net)
            }
            // Heartbeats and election announcements carry failure-detection
            // state, which lives in the driver above the state machine (the
            // simulated cluster has global knowledge; the networked ensemble
            // runs timers around `handle`). Snapshot chunks carry state the
            // protocol core cannot install (the serialized tree); the
            // ensemble layer assembles them and calls
            // [`ZabNode::install_snapshot`]. Leadership transfers likewise
            // trigger a driver-level candidacy.
            ZabMessage::SyncAck { .. }
            | ZabMessage::Heartbeat { .. }
            | ZabMessage::Election { .. }
            | ZabMessage::VoteGrant { .. }
            | ZabMessage::SnapshotChunk { .. }
            | ZabMessage::TransferLeadership { .. } => {}
        }
    }

    /// A client write forwarded by a follower: the leader proposes it, anyone
    /// else re-forwards it to the leader it currently follows (covering stale
    /// leader hints during failover). Without a known leader it is dropped and
    /// the origin's client times out and retries.
    fn on_forward_write(
        &mut self,
        origin: NodeId,
        request_id: u64,
        payload: Vec<u8>,
        net: &dyn ZabTransport,
    ) {
        if self.role == Role::Leader {
            // Transports may retransmit: proposing a duplicated forward
            // again would commit the same client write at two zxids. Dedup
            // against a bounded window of recently proposed ids per origin.
            let (seen, order) = self.forward_dedup.entry(origin).or_default();
            if !seen.insert(request_id) {
                return;
            }
            order.push_back(request_id);
            if order.len() > FORWARD_DEDUP_WINDOW {
                if let Some(evicted) = order.pop_front() {
                    seen.remove(&evicted);
                }
            }
            self.propose(payload, net);
        } else if let Some(leader) = self.leader {
            if leader != self.id {
                net.send(self.id, leader, ZabMessage::ForwardWrite { origin, request_id, payload });
            }
        }
    }

    fn on_proposal(&mut self, from: NodeId, txn: Txn, prev: Zxid, net: &dyn ZabTransport) {
        if self.role != Role::Follower {
            return;
        }
        // Reject proposals from stale epochs.
        if txn.zxid.epoch < self.epoch {
            return;
        }
        let zxid = txn.zxid;
        if zxid <= self.log.last_logged() {
            // Already logged (redelivery after a resync); re-ack so the
            // leader's quorum accounting is not starved by a lost ack.
            net.send(self.id, from, ZabMessage::Ack { zxid, from: self.id });
            return;
        }
        if self.log.last_logged() != prev {
            // This replica's log does not extend to the entry the leader
            // chained this proposal onto — frames were lost. Accepting would
            // open a silent gap; request the missing range instead.
            net.send(
                self.id,
                from,
                ZabMessage::SyncRequest { from: self.id, last_logged: self.log.last_logged() },
            );
            return;
        }
        self.log.append(txn);
        net.send(self.id, from, ZabMessage::Ack { zxid, from: self.id });
    }

    fn on_ack(&mut self, zxid: Zxid, from: NodeId, net: &dyn ZabTransport) {
        if self.role != Role::Leader || zxid.epoch != self.epoch {
            return;
        }
        self.pending_acks.entry(zxid).or_default().insert(from);
        self.maybe_commit(zxid, net);
    }

    fn maybe_commit(&mut self, zxid: Zxid, net: &dyn ZabTransport) {
        let quorum = self.quorum();
        let reached = self.pending_acks.get(&zxid).map_or(0, |acks| acks.len()) >= quorum;
        if reached && zxid > self.log.last_committed() {
            let newly = self.log.commit_up_to(zxid);
            self.committed_outbox.extend(newly);
            net.broadcast(self.id, &ZabMessage::Commit { zxid });
            self.pending_acks.retain(|&z, _| z > zxid);
        }
    }

    fn on_commit(&mut self, zxid: Zxid, net: &dyn ZabTransport) {
        if self.role != Role::Follower {
            return;
        }
        let newly = self.log.commit_up_to(zxid);
        self.committed_outbox.extend(newly);
        if self.log.last_committed() < zxid {
            // The commit points past this replica's log tip: the proposals
            // in between were lost. Ask the leader for the missing range.
            if let Some(leader) = self.leader {
                net.send(
                    self.id,
                    leader,
                    ZabMessage::SyncRequest { from: self.id, last_logged: self.log.last_logged() },
                );
            }
        }
    }

    /// Leader only: answers a follower whose log fell behind (lost frames)
    /// with the committed entries after its tip, then *retransmits* the
    /// uncommitted in-flight tail as ordinary proposals chained from the
    /// committed watermark. The retransmission is what keeps in-flight
    /// writes live: a follower that refused a gapped proposal could
    /// otherwise never ack it, and a proposal still short of its quorum
    /// would wedge forever (sync ships only committed entries, because the
    /// receiver commits everything a sync carries).
    fn on_sync_request(&mut self, from: NodeId, last_logged: Zxid, net: &dyn ZabTransport) {
        if self.role != Role::Leader {
            return;
        }
        if last_logged < self.log.horizon() {
            // The requested range was compacted into a snapshot; this state
            // machine cannot serve it. The ensemble layer intercepts this
            // case and ships the snapshot itself (see `zkserver::ensemble`).
            return;
        }
        let txns: Vec<Txn> =
            self.log.committed().filter(|t| t.zxid > last_logged).cloned().collect();
        send_sync(net, self.id, from, self.epoch, txns);
        let mut prev = self.log.last_committed();
        for txn in self.log.entries_after(prev) {
            net.send(self.id, from, ZabMessage::Proposal { txn: txn.clone(), prev });
            prev = txn.zxid;
        }
    }

    fn on_new_leader_sync(
        &mut self,
        from: NodeId,
        epoch: u32,
        txns: Vec<Txn>,
        net: &dyn ZabTransport,
    ) {
        if epoch < self.epoch {
            return;
        }
        // A repair sync from the leader already being followed must not
        // truncate acked-but-uncommitted proposals (they may be one ack away
        // from their quorum); truncation is for genuine leadership changes,
        // where the divergent tail has to go.
        let adopted =
            !(self.role == Role::Follower && self.epoch == epoch && self.leader == Some(from));
        if adopted {
            self.become_follower(epoch, from);
        }
        let announcement_only = txns.is_empty();
        let mut max_zxid = self.log.last_committed();
        let mut gapped = false;
        for txn in txns {
            if txn.zxid <= self.log.last_logged() {
                // Redelivery of history this log already holds.
                continue;
            }
            if !txn.zxid.follows(self.log.last_logged()) {
                // The shipped range starts past this log's tip. That happens
                // when the leader judged this node by a stale credential — a
                // restarted replica announces its logged tip, then truncates
                // the uncommitted part of it on adoption, so the "suffix"
                // the leader shipped no longer chains. Appending would open
                // a silent, permanent gap; re-request from the real tip
                // instead.
                gapped = true;
                break;
            }
            max_zxid = max_zxid.max(txn.zxid);
            self.log.append(txn);
        }
        // Everything the new leader ships is already committed on its side.
        let newly = self.log.commit_up_to(max_zxid);
        self.committed_outbox.extend(newly);
        if gapped || (adopted && announcement_only) {
            // Either the shipped range does not chain onto this log, or the
            // new leader announced itself without history (it did not know
            // this node's tip). Answer with the real tip so the leader can
            // ship exactly the missing range — or a snapshot if this log
            // fell behind its truncation horizon. A repair sync from the
            // current leader that happens to be empty acks normally, so the
            // announce/req exchange always terminates.
            net.send(
                self.id,
                from,
                ZabMessage::SyncRequest { from: self.id, last_logged: self.log.last_logged() },
            );
        } else {
            net.send(self.id, from, ZabMessage::SyncAck { from: self.id, epoch });
        }
    }

    /// Drains committed transactions that the replicated state machine (the
    /// ZooKeeper data tree) has not applied yet.
    pub fn take_committed(&mut self) -> Vec<Txn> {
        std::mem::take(&mut self.committed_outbox)
    }

    /// Number of committed-but-not-yet-applied transactions.
    pub fn committed_backlog(&self) -> usize {
        self.committed_outbox.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::SimNetwork;

    fn three_nodes() -> (SimNetwork, ZabNode, ZabNode, ZabNode) {
        let ids = [NodeId(1), NodeId(2), NodeId(3)];
        let net = SimNetwork::new(&ids);
        let mut leader = ZabNode::new(NodeId(1), 3);
        leader.become_leader(1);
        let mut f2 = ZabNode::new(NodeId(2), 3);
        f2.become_follower(1, NodeId(1));
        let mut f3 = ZabNode::new(NodeId(3), 3);
        f3.become_follower(1, NodeId(1));
        (net, leader, f2, f3)
    }

    fn pump(net: &dyn ZabTransport, nodes: &mut [&mut ZabNode]) {
        // Deliver until all queues drain.
        loop {
            let mut any = false;
            for node in nodes.iter_mut() {
                if let Some(envelope) = net.receive(node.id()) {
                    node.handle(envelope, net);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
    }

    #[test]
    fn proposal_commits_after_quorum() {
        let (net, mut leader, mut f2, mut f3) = three_nodes();
        let zxid = leader.propose(b"create /a".to_vec(), &net);
        assert_eq!(zxid, Zxid { epoch: 1, counter: 1 });
        pump(&net, &mut [&mut leader, &mut f2, &mut f3]);

        assert_eq!(leader.take_committed().len(), 1);
        assert_eq!(f2.take_committed().len(), 1);
        assert_eq!(f3.take_committed().len(), 1);
        assert_eq!(leader.log().last_committed(), zxid);
    }

    #[test]
    fn commits_preserve_proposal_order() {
        let (net, mut leader, mut f2, mut f3) = three_nodes();
        for i in 0..10u8 {
            leader.propose(vec![i], &net);
        }
        pump(&net, &mut [&mut leader, &mut f2, &mut f3]);
        let committed = f2.take_committed();
        assert_eq!(committed.len(), 10);
        for (i, txn) in committed.iter().enumerate() {
            assert_eq!(txn.payload, vec![i as u8]);
            assert_eq!(txn.zxid.counter, i as u32 + 1);
        }
    }

    #[test]
    fn commit_happens_with_one_follower_down() {
        let (net, mut leader, mut f2, mut f3) = three_nodes();
        net.crash(NodeId(3));
        leader.propose(b"x".to_vec(), &net);
        pump(&net, &mut [&mut leader, &mut f2, &mut f3]);
        assert_eq!(leader.take_committed().len(), 1);
        assert_eq!(f2.take_committed().len(), 1);
        assert_eq!(f3.take_committed().len(), 0);
    }

    #[test]
    fn no_commit_without_quorum() {
        let (net, mut leader, mut f2, mut f3) = three_nodes();
        net.crash(NodeId(2));
        net.crash(NodeId(3));
        leader.propose(b"x".to_vec(), &net);
        pump(&net, &mut [&mut leader, &mut f2, &mut f3]);
        assert_eq!(leader.take_committed().len(), 0);
        assert_eq!(leader.log().last_committed(), Zxid::ZERO);
    }

    #[test]
    fn follower_ignores_stale_epoch_proposals() {
        let (net, _leader, mut f2, _f3) = three_nodes();
        f2.become_follower(2, NodeId(3));
        let stale = Txn { zxid: Zxid { epoch: 1, counter: 5 }, payload: vec![] };
        f2.handle(
            Envelope {
                from: NodeId(1),
                message: ZabMessage::Proposal { txn: stale, prev: Zxid::ZERO },
            },
            &net,
        );
        assert!(f2.log().is_empty());
    }

    #[test]
    fn new_leader_sync_brings_follower_up_to_date() {
        let (net, mut leader, mut f2, mut f3) = three_nodes();
        leader.propose(b"a".to_vec(), &net);
        leader.propose(b"b".to_vec(), &net);
        pump(&net, &mut [&mut leader, &mut f2, &mut f3]);
        f2.take_committed();

        // A fresh replica joins via sync.
        let mut f4 = ZabNode::new(NodeId(3), 3);
        let txns = leader.log().entries_after(Zxid::ZERO);
        f4.handle(
            Envelope { from: NodeId(1), message: ZabMessage::NewLeaderSync { epoch: 2, txns } },
            &net,
        );
        assert_eq!(f4.take_committed().len(), 2);
        assert_eq!(f4.epoch(), 2);
        assert_eq!(f4.leader(), Some(NodeId(1)));
    }

    #[test]
    fn lost_proposal_triggers_resync_instead_of_a_silent_gap() {
        let (net, mut leader, mut f2, mut f3) = three_nodes();
        leader.propose(b"a".to_vec(), &net);
        pump(&net, &mut [&mut leader, &mut f2, &mut f3]);

        // The next proposal is lost on the way to f2 (a broken TCP link).
        leader.propose(b"b".to_vec(), &net);
        let dropped = net.receive(NodeId(2)).expect("f2's copy of the proposal");
        assert!(matches!(dropped.message, ZabMessage::Proposal { .. }));
        // The write still commits through f3's ack; f2 sees only the commit.
        pump(&net, &mut [&mut leader, &mut f3]);

        // A later proposal reaches f2 with a `prev` its log cannot match, so
        // f2 must refuse it and request a resync — never ack across a gap.
        leader.propose(b"c".to_vec(), &net);
        pump(&net, &mut [&mut leader, &mut f2, &mut f3]);

        assert_eq!(f2.log().last_committed(), leader.log().last_committed());
        let payloads: Vec<Vec<u8>> = f2.log().committed().map(|t| t.payload.clone()).collect();
        assert_eq!(payloads, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn lost_commit_is_repaired_by_the_next_commit_watermark() {
        let (net, mut leader, mut f2, mut f3) = three_nodes();
        leader.propose(b"a".to_vec(), &net);
        // f2 logs and acks the proposal but its Commit frame is lost.
        let proposal = net.receive(NodeId(2)).expect("proposal");
        f2.handle(proposal, &net);
        pump(&net, &mut [&mut leader, &mut f3]);
        while net.receive(NodeId(2)).is_some() {}
        assert_eq!(f2.log().last_committed(), Zxid::ZERO);

        // The next write's commit carries a higher watermark, which commits
        // the earlier transaction on f2 too (commit covers the prefix).
        leader.propose(b"b".to_vec(), &net);
        pump(&net, &mut [&mut leader, &mut f2, &mut f3]);
        assert_eq!(f2.log().last_committed(), leader.log().last_committed());
        assert_eq!(f2.log().committed().count(), 2);
    }

    #[test]
    fn in_flight_proposal_lost_to_every_follower_still_commits_after_resync() {
        // The wedge case: a proposal that reached *no* follower cannot
        // gather a quorum, and the followers refuse every later proposal
        // (prev mismatch). The leader's sync response must retransmit its
        // uncommitted tail or the write — and all writes after it — would
        // hang forever.
        let (net, mut leader, mut f2, mut f3) = three_nodes();
        leader.propose(b"a".to_vec(), &net);
        pump(&net, &mut [&mut leader, &mut f2, &mut f3]);

        // Both followers lose the next proposal.
        leader.propose(b"b".to_vec(), &net);
        assert!(net.receive(NodeId(2)).is_some());
        assert!(net.receive(NodeId(3)).is_some());
        assert_eq!(leader.log().last_committed(), Zxid { epoch: 1, counter: 1 });

        // The next proposal is refused by both (gap); their sync requests
        // must revive the lost in-flight write.
        leader.propose(b"c".to_vec(), &net);
        pump(&net, &mut [&mut leader, &mut f2, &mut f3]);
        assert_eq!(leader.log().last_committed(), Zxid { epoch: 1, counter: 3 });
        for node in [&f2, &f3] {
            let payloads: Vec<Vec<u8>> =
                node.log().committed().map(|t| t.payload.clone()).collect();
            assert_eq!(payloads, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
        }
    }

    #[test]
    fn gapped_new_leader_sync_is_refused_and_refetched() {
        // A restarted replica announced credential {1,3} in an election, but
        // entry 3 was uncommitted locally and gets truncated when it adopts
        // the winner — so the winner's "suffix after 3" no longer chains.
        // Appending it would silently lose txn 3 forever; the node must
        // re-request from its real tip instead (the bug a durable restart
        // under write load exposed).
        let net = SimNetwork::new(&[NodeId(1), NodeId(2)]);
        let mut node = ZabNode::new(NodeId(2), 3);
        node.become_follower(1, NodeId(1));
        for i in 1..=3 {
            node.log.append(Txn { zxid: Zxid { epoch: 1, counter: i }, payload: vec![i as u8] });
        }
        node.log.commit_up_to(Zxid { epoch: 1, counter: 2 });
        node.take_committed();

        // New leader (epoch 2) ships the suffix after the *announced* tip 3;
        // adoption truncates entry 3 first.
        node.handle(
            Envelope {
                from: NodeId(1),
                message: ZabMessage::NewLeaderSync {
                    epoch: 2,
                    txns: vec![
                        Txn { zxid: Zxid { epoch: 1, counter: 4 }, payload: vec![4] },
                        Txn { zxid: Zxid { epoch: 1, counter: 5 }, payload: vec![5] },
                    ],
                },
            },
            &net,
        );
        // Nothing past the gap was accepted, and the node asked for the
        // missing range from its post-truncation tip.
        assert_eq!(node.log().last_logged(), Zxid { epoch: 1, counter: 2 });
        assert!(node.take_committed().is_empty());
        let reply = net.receive(NodeId(1)).expect("a reply to the leader");
        assert_eq!(
            reply.message,
            ZabMessage::SyncRequest { from: NodeId(2), last_logged: Zxid { epoch: 1, counter: 2 } }
        );

        // The leader answers with the complete suffix, which chains and
        // commits — including the previously truncated slot.
        node.handle(
            Envelope {
                from: NodeId(1),
                message: ZabMessage::NewLeaderSync {
                    epoch: 2,
                    txns: (3..=5)
                        .map(|i| Txn {
                            zxid: Zxid { epoch: 1, counter: i },
                            payload: vec![i as u8],
                        })
                        .collect(),
                },
            },
            &net,
        );
        assert_eq!(node.log().last_committed(), Zxid { epoch: 1, counter: 5 });
        let payloads: Vec<Vec<u8>> = node.take_committed().into_iter().map(|t| t.payload).collect();
        assert_eq!(payloads, vec![vec![3], vec![4], vec![5]]);
    }

    #[test]
    fn become_leader_commits_logged_entries() {
        let mut node = ZabNode::new(NodeId(2), 3);
        node.become_follower(1, NodeId(1));
        node.log.append(Txn { zxid: Zxid { epoch: 1, counter: 1 }, payload: b"x".to_vec() });
        node.become_leader(2);
        assert_eq!(node.take_committed().len(), 1);
        assert_eq!(node.role(), Role::Leader);
        assert_eq!(node.quorum(), 2);
    }
}
