//! The per-replica ZAB state machine.

use std::collections::{HashMap, HashSet};

use crate::log::TxnLog;
use crate::message::{NodeId, Txn, ZabMessage, Zxid};
use crate::network::{Envelope, SimNetwork};

/// The role a replica currently plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Orders writes and drives commits.
    Leader,
    /// Accepts proposals from the leader and serves reads.
    Follower,
    /// Between leaders: participating in an election.
    Electing,
}

/// One replica's protocol state.
#[derive(Debug)]
pub struct ZabNode {
    id: NodeId,
    role: Role,
    epoch: u32,
    leader: Option<NodeId>,
    cluster_size: usize,
    log: TxnLog,
    /// zxid of the last proposal issued (leader only).
    last_proposed: Zxid,
    /// Outstanding acks per proposal (leader only).
    pending_acks: HashMap<Zxid, HashSet<NodeId>>,
    /// Committed transactions not yet consumed by the state machine above.
    committed_outbox: Vec<Txn>,
}

impl ZabNode {
    /// Creates a follower node in epoch 0.
    pub fn new(id: NodeId, cluster_size: usize) -> Self {
        ZabNode {
            id,
            role: Role::Follower,
            epoch: 0,
            leader: None,
            cluster_size,
            log: TxnLog::new(),
            last_proposed: Zxid::ZERO,
            pending_acks: HashMap::new(),
            committed_outbox: Vec::new(),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// The current epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The node this replica believes is the leader.
    pub fn leader(&self) -> Option<NodeId> {
        self.leader
    }

    /// Read access to the transaction log.
    pub fn log(&self) -> &TxnLog {
        &self.log
    }

    /// Size of the quorum (majority of the cluster).
    pub fn quorum(&self) -> usize {
        self.cluster_size / 2 + 1
    }

    /// Promotes this node to leader of `epoch`, committing everything it has
    /// logged (ZAB guarantees logged-on-a-quorum transactions survive, and the
    /// election picks the node with the longest log).
    pub fn become_leader(&mut self, epoch: u32) {
        self.role = Role::Leader;
        self.epoch = epoch;
        self.leader = Some(self.id);
        self.pending_acks.clear();
        let newly = self.log.commit_up_to(self.log.last_logged());
        self.committed_outbox.extend(newly);
        self.last_proposed = Zxid { epoch, counter: 0 };
    }

    /// Demotes this node to follower of `leader` in `epoch`.
    pub fn become_follower(&mut self, epoch: u32, leader: NodeId) {
        self.role = Role::Follower;
        self.epoch = epoch;
        self.leader = Some(leader);
        self.pending_acks.clear();
        self.log.truncate_uncommitted();
    }

    /// Marks the node as participating in an election.
    pub fn start_election(&mut self) {
        self.role = Role::Electing;
        self.leader = None;
    }

    /// Leader only: assigns a zxid to `payload`, logs it locally, and
    /// broadcasts the proposal. Returns the assigned zxid.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-leader; the cluster wrapper routes proposals
    /// to the current leader.
    pub fn propose(&mut self, payload: Vec<u8>, net: &SimNetwork) -> Zxid {
        assert_eq!(self.role, Role::Leader, "only the leader proposes");
        self.last_proposed = if self.last_proposed.epoch == self.epoch {
            self.last_proposed.next()
        } else {
            Zxid { epoch: self.epoch, counter: 1 }
        };
        let txn = Txn { zxid: self.last_proposed, payload };
        self.log.append(txn.clone());
        // The leader's own log entry counts as its ack.
        self.pending_acks.entry(txn.zxid).or_default().insert(self.id);
        net.broadcast(self.id, &ZabMessage::Proposal { txn });
        self.maybe_commit(self.last_proposed, net);
        self.last_proposed
    }

    /// Processes one incoming message, possibly sending replies via `net`.
    pub fn handle(&mut self, envelope: Envelope, net: &SimNetwork) {
        match envelope.message {
            ZabMessage::Proposal { txn } => self.on_proposal(envelope.from, txn, net),
            ZabMessage::Ack { zxid, from } => self.on_ack(zxid, from, net),
            ZabMessage::Commit { zxid } => self.on_commit(zxid),
            ZabMessage::NewLeaderSync { epoch, txns } => {
                self.on_new_leader_sync(envelope.from, epoch, txns, net)
            }
            ZabMessage::SyncAck { .. } | ZabMessage::Heartbeat { .. } => {}
        }
    }

    fn on_proposal(&mut self, from: NodeId, txn: Txn, net: &SimNetwork) {
        if self.role != Role::Follower {
            return;
        }
        // Reject proposals from stale epochs.
        if txn.zxid.epoch < self.epoch {
            return;
        }
        let zxid = txn.zxid;
        self.log.append(txn);
        net.send(self.id, from, ZabMessage::Ack { zxid, from: self.id });
    }

    fn on_ack(&mut self, zxid: Zxid, from: NodeId, net: &SimNetwork) {
        if self.role != Role::Leader || zxid.epoch != self.epoch {
            return;
        }
        self.pending_acks.entry(zxid).or_default().insert(from);
        self.maybe_commit(zxid, net);
    }

    fn maybe_commit(&mut self, zxid: Zxid, net: &SimNetwork) {
        let quorum = self.quorum();
        let reached = self.pending_acks.get(&zxid).map_or(0, |acks| acks.len()) >= quorum;
        if reached && zxid > self.log.last_committed() {
            let newly = self.log.commit_up_to(zxid);
            self.committed_outbox.extend(newly);
            net.broadcast(self.id, &ZabMessage::Commit { zxid });
            self.pending_acks.retain(|&z, _| z > zxid);
        }
    }

    fn on_commit(&mut self, zxid: Zxid) {
        if self.role != Role::Follower {
            return;
        }
        let newly = self.log.commit_up_to(zxid);
        self.committed_outbox.extend(newly);
    }

    fn on_new_leader_sync(&mut self, from: NodeId, epoch: u32, txns: Vec<Txn>, net: &SimNetwork) {
        if epoch < self.epoch {
            return;
        }
        self.become_follower(epoch, from);
        let mut max_zxid = self.log.last_committed();
        for txn in txns {
            max_zxid = max_zxid.max(txn.zxid);
            self.log.append(txn);
        }
        // Everything the new leader ships is already committed on its side.
        let newly = self.log.commit_up_to(max_zxid);
        self.committed_outbox.extend(newly);
        net.send(self.id, from, ZabMessage::SyncAck { from: self.id, epoch });
    }

    /// Drains committed transactions that the replicated state machine (the
    /// ZooKeeper data tree) has not applied yet.
    pub fn take_committed(&mut self) -> Vec<Txn> {
        std::mem::take(&mut self.committed_outbox)
    }

    /// Number of committed-but-not-yet-applied transactions.
    pub fn committed_backlog(&self) -> usize {
        self.committed_outbox.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_nodes() -> (SimNetwork, ZabNode, ZabNode, ZabNode) {
        let ids = [NodeId(1), NodeId(2), NodeId(3)];
        let net = SimNetwork::new(&ids);
        let mut leader = ZabNode::new(NodeId(1), 3);
        leader.become_leader(1);
        let mut f2 = ZabNode::new(NodeId(2), 3);
        f2.become_follower(1, NodeId(1));
        let mut f3 = ZabNode::new(NodeId(3), 3);
        f3.become_follower(1, NodeId(1));
        (net, leader, f2, f3)
    }

    fn pump(net: &SimNetwork, nodes: &mut [&mut ZabNode]) {
        // Deliver until all queues drain.
        loop {
            let mut any = false;
            for node in nodes.iter_mut() {
                if let Some(envelope) = net.receive(node.id()) {
                    node.handle(envelope, net);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
    }

    #[test]
    fn proposal_commits_after_quorum() {
        let (net, mut leader, mut f2, mut f3) = three_nodes();
        let zxid = leader.propose(b"create /a".to_vec(), &net);
        assert_eq!(zxid, Zxid { epoch: 1, counter: 1 });
        pump(&net, &mut [&mut leader, &mut f2, &mut f3]);

        assert_eq!(leader.take_committed().len(), 1);
        assert_eq!(f2.take_committed().len(), 1);
        assert_eq!(f3.take_committed().len(), 1);
        assert_eq!(leader.log().last_committed(), zxid);
    }

    #[test]
    fn commits_preserve_proposal_order() {
        let (net, mut leader, mut f2, mut f3) = three_nodes();
        for i in 0..10u8 {
            leader.propose(vec![i], &net);
        }
        pump(&net, &mut [&mut leader, &mut f2, &mut f3]);
        let committed = f2.take_committed();
        assert_eq!(committed.len(), 10);
        for (i, txn) in committed.iter().enumerate() {
            assert_eq!(txn.payload, vec![i as u8]);
            assert_eq!(txn.zxid.counter, i as u32 + 1);
        }
    }

    #[test]
    fn commit_happens_with_one_follower_down() {
        let (net, mut leader, mut f2, mut f3) = three_nodes();
        net.crash(NodeId(3));
        leader.propose(b"x".to_vec(), &net);
        pump(&net, &mut [&mut leader, &mut f2, &mut f3]);
        assert_eq!(leader.take_committed().len(), 1);
        assert_eq!(f2.take_committed().len(), 1);
        assert_eq!(f3.take_committed().len(), 0);
    }

    #[test]
    fn no_commit_without_quorum() {
        let (net, mut leader, mut f2, mut f3) = three_nodes();
        net.crash(NodeId(2));
        net.crash(NodeId(3));
        leader.propose(b"x".to_vec(), &net);
        pump(&net, &mut [&mut leader, &mut f2, &mut f3]);
        assert_eq!(leader.take_committed().len(), 0);
        assert_eq!(leader.log().last_committed(), Zxid::ZERO);
    }

    #[test]
    fn follower_ignores_stale_epoch_proposals() {
        let (net, _leader, mut f2, _f3) = three_nodes();
        f2.become_follower(2, NodeId(3));
        let stale = Txn { zxid: Zxid { epoch: 1, counter: 5 }, payload: vec![] };
        f2.handle(Envelope { from: NodeId(1), message: ZabMessage::Proposal { txn: stale } }, &net);
        assert!(f2.log().is_empty());
    }

    #[test]
    fn new_leader_sync_brings_follower_up_to_date() {
        let (net, mut leader, mut f2, mut f3) = three_nodes();
        leader.propose(b"a".to_vec(), &net);
        leader.propose(b"b".to_vec(), &net);
        pump(&net, &mut [&mut leader, &mut f2, &mut f3]);
        f2.take_committed();

        // A fresh replica joins via sync.
        let mut f4 = ZabNode::new(NodeId(3), 3);
        let txns = leader.log().entries_after(Zxid::ZERO);
        f4.handle(
            Envelope { from: NodeId(1), message: ZabMessage::NewLeaderSync { epoch: 2, txns } },
            &net,
        );
        assert_eq!(f4.take_committed().len(), 2);
        assert_eq!(f4.epoch(), 2);
        assert_eq!(f4.leader(), Some(NodeId(1)));
    }

    #[test]
    fn become_leader_commits_logged_entries() {
        let mut node = ZabNode::new(NodeId(2), 3);
        node.become_follower(1, NodeId(1));
        node.log.append(Txn { zxid: Zxid { epoch: 1, counter: 1 }, payload: b"x".to_vec() });
        node.become_leader(2);
        assert_eq!(node.take_committed().len(), 1);
        assert_eq!(node.role(), Role::Leader);
        assert_eq!(node.quorum(), 2);
    }
}
