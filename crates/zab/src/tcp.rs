//! Real-socket replica-to-replica transport.
//!
//! Each replica process owns one [`TcpNetwork`]: an inbound endpoint
//! accepting frames from its peers and a set of lazily established,
//! reconnecting outgoing links. Envelopes travel as length-prefixed frames
//! ([`jute::framing`]) encoded by [`crate::wire`]. Delivery is best-effort:
//! a send to a peer that is down (or whose link just broke) is retried once
//! with a fresh connection and then dropped — exactly the guarantee ZAB
//! needs, since replicas that miss messages catch up through
//! [`ZabMessage::NewLeaderSync`].
//!
//! The inbound side runs on a single-shard [`netcore`] readiness reactor
//! instead of one reader thread per peer connection, so an ensemble member's
//! peer mesh costs one event-loop thread regardless of ensemble size. The
//! outgoing links stay synchronous: senders may hold protocol locks, and the
//! dial-timeout/backoff budget below is what bounds their worst case.
//!
//! [`ZabMessage::NewLeaderSync`]: crate::message::ZabMessage::NewLeaderSync

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use netcore::{Conn, Reactor, ReactorConfig, Service};
use parking_lot::Mutex;

use crate::message::{NodeId, ZabMessage};
use crate::network::{Envelope, ZabTransport};
use crate::wire;

/// How long a peer that refused a connection is left alone before the next
/// dial attempt. Keeps a silently dead peer (no RST, e.g. a crashed host)
/// from inserting a connect timeout into every broadcast.
const DIAL_BACKOFF: Duration = Duration::from_millis(250);

/// Budget for one synchronous dial. Senders may hold protocol locks while
/// sending, so a blackholed peer must cost at most this (once per
/// [`DIAL_BACKOFF`] window) — far below the ensemble's election timeout.
const DIAL_TIMEOUT: Duration = Duration::from_millis(100);

/// One outgoing link. Each peer has its own mutex so a stalled or dead peer
/// never blocks sends (or dials) to the others.
struct PeerLink {
    stream: Option<TcpStream>,
    /// Do not dial before this instant (set after a failed connect).
    next_dial: Option<Instant>,
}

/// State shared between the reactor service and senders.
struct TcpShared {
    id: NodeId,
    peers: Mutex<HashMap<NodeId, SocketAddr>>,
    /// Established outgoing links, one per peer.
    links: Mutex<HashMap<NodeId, Arc<Mutex<PeerLink>>>>,
    running: AtomicBool,
    sent: AtomicU64,
    dropped: AtomicU64,
}

/// The inbound half: decodes envelopes off reactor-multiplexed peer
/// connections into the shared inbox. Malformed frames close the connection
/// (the peer will redial); peers never receive responses on these sockets.
struct ZabInbound {
    inbox_tx: Sender<Envelope>,
}

impl Service for ZabInbound {
    type State = ();

    fn make_state(&self, _peer: SocketAddr) -> Self::State {}

    fn on_frame(&self, conn: &Arc<Conn<()>>, frame: Vec<u8>) {
        match wire::decode_envelope(&frame) {
            Ok(envelope) => {
                if self.inbox_tx.send(envelope).is_err() {
                    conn.close();
                }
            }
            Err(_) => conn.close(),
        }
    }
}

/// One replica's endpoint of the ensemble's TCP mesh.
///
/// Dropping the network shuts it down: the listener and every link are closed
/// and all threads are joined.
pub struct TcpNetwork {
    shared: Arc<TcpShared>,
    local_addr: SocketAddr,
    inbox_rx: Mutex<Receiver<Envelope>>,
    reactor: Reactor<ZabInbound>,
}

impl std::fmt::Debug for TcpNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpNetwork")
            .field("id", &self.shared.id)
            .field("local_addr", &self.local_addr)
            .field("peers", &self.shared.peers.lock().len())
            .finish()
    }
}

impl TcpNetwork {
    /// Binds `id`'s endpoint to `addr` (use port 0 for an ephemeral port) and
    /// starts accepting peer connections. Peers are announced afterwards with
    /// [`TcpNetwork::set_peers`] — two-phase setup lets an ensemble bind every
    /// listener first and exchange the resulting addresses.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn bind(id: NodeId, addr: impl ToSocketAddrs) -> io::Result<Self> {
        let (inbox_tx, inbox_rx) = mpsc::channel();
        // Peer meshes are small (ensemble size), so one event-loop shard
        // multiplexes every inbound peer connection.
        let reactor = Reactor::bind(
            addr,
            Arc::new(ZabInbound { inbox_tx }),
            ReactorConfig { shards: 1, ..ReactorConfig::default() },
        )?;
        let local_addr = reactor.local_addr();
        let shared = Arc::new(TcpShared {
            id,
            peers: Mutex::new(HashMap::new()),
            links: Mutex::new(HashMap::new()),
            running: AtomicBool::new(true),
            sent: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        });
        Ok(TcpNetwork { shared, local_addr, inbox_rx: Mutex::new(inbox_rx), reactor })
    }

    /// The address this endpoint listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// This endpoint's replica id.
    pub fn id(&self) -> NodeId {
        self.shared.id
    }

    /// Installs the peer address map (own entry, if present, is ignored).
    pub fn set_peers(&self, peers: HashMap<NodeId, SocketAddr>) {
        let mut map = self.shared.peers.lock();
        *map = peers;
        map.remove(&self.shared.id);
    }

    /// Ids of the configured peers.
    pub fn peer_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.shared.peers.lock().keys().copied().collect();
        ids.sort();
        ids
    }

    /// Total envelopes successfully written to a link.
    pub fn sent(&self) -> u64 {
        self.shared.sent.load(Ordering::Relaxed)
    }

    /// Total envelopes dropped (unknown peer, or the link could not be
    /// (re-)established).
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Waits up to `timeout` for the next incoming envelope.
    pub fn receive_timeout(&self, timeout: Duration) -> Option<Envelope> {
        self.inbox_rx.lock().recv_timeout(timeout).ok()
    }

    /// Stops accepting, closes every link and joins all threads.
    pub fn shutdown(&self) {
        if !self.shared.running.swap(false, Ordering::SeqCst) {
            return;
        }
        // Tears down every accepted peer connection and joins the event
        // loop; no reader can stay blocked because none ever blocks.
        self.reactor.shutdown();
        for (_, link) in self.shared.links.lock().drain() {
            if let Some(stream) = link.lock().stream.take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
    }
}

impl Drop for TcpNetwork {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl ZabTransport for TcpNetwork {
    fn send(&self, from: NodeId, to: NodeId, message: ZabMessage) {
        debug_assert_eq!(from, self.shared.id, "a TcpNetwork endpoint only sends as itself");
        let frame = wire::encode_envelope(&Envelope { from, message });
        if send_frame(&self.shared, to, &frame) {
            self.shared.sent.fetch_add(1, Ordering::Relaxed);
        } else {
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn broadcast(&self, from: NodeId, message: &ZabMessage) {
        for peer in self.peer_ids() {
            self.send(from, peer, message.clone());
        }
    }

    fn receive(&self, node: NodeId) -> Option<Envelope> {
        debug_assert_eq!(node, self.shared.id, "a TcpNetwork endpoint only receives as itself");
        self.inbox_rx.lock().try_recv().ok()
    }
}

/// Writes one frame to the link for `to`, transparently (re-)dialling the
/// peer: a broken link is dropped and replaced with a fresh connection once.
/// Only the per-peer mutex is held across the dial and the write, so frames
/// from concurrent senders never interleave on a link yet a dead or stalled
/// peer cannot delay sends to the others (heartbeats to live followers keep
/// flowing while a crashed host blackholes its connect attempts).
fn send_frame(shared: &TcpShared, to: NodeId, frame: &[u8]) -> bool {
    let addr = match shared.peers.lock().get(&to) {
        Some(&addr) => addr,
        None => return false,
    };
    let link =
        Arc::clone(
            shared.links.lock().entry(to).or_insert_with(|| {
                Arc::new(Mutex::new(PeerLink { stream: None, next_dial: None }))
            }),
        );
    let mut link = link.lock();
    for attempt in 0..2 {
        if link.stream.is_none() {
            let now = Instant::now();
            if link.next_dial.is_some_and(|earliest| now < earliest) {
                return false;
            }
            match TcpStream::connect_timeout(&addr, DIAL_TIMEOUT) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    link.stream = Some(stream);
                    link.next_dial = None;
                }
                Err(_) => {
                    link.next_dial = Some(now + DIAL_BACKOFF);
                    return false;
                }
            }
        }
        match jute::framing::write_frame(link.stream.as_mut().expect("dialled above"), frame) {
            Ok(()) => return true,
            Err(_) => {
                // The link broke (peer restarted): discard it and redial.
                link.stream = None;
                if attempt > 0 {
                    return false;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Zxid;

    fn mesh(n: u32) -> Vec<TcpNetwork> {
        let nets: Vec<TcpNetwork> =
            (1..=n).map(|i| TcpNetwork::bind(NodeId(i), "127.0.0.1:0").unwrap()).collect();
        let addrs: HashMap<NodeId, SocketAddr> =
            nets.iter().map(|net| (net.id(), net.local_addr())).collect();
        for net in &nets {
            net.set_peers(addrs.clone());
        }
        nets
    }

    #[test]
    fn frames_travel_between_endpoints_in_order() {
        let nets = mesh(2);
        for counter in 1..=10 {
            nets[0].send(
                NodeId(1),
                NodeId(2),
                ZabMessage::Commit { zxid: Zxid { epoch: 1, counter } },
            );
        }
        for counter in 1..=10 {
            let envelope = nets[1].receive_timeout(Duration::from_secs(5)).expect("delivery");
            assert_eq!(envelope.from, NodeId(1));
            assert_eq!(envelope.message, ZabMessage::Commit { zxid: Zxid { epoch: 1, counter } });
        }
        assert_eq!(nets[0].sent(), 10);
    }

    #[test]
    fn broadcast_reaches_every_peer_but_not_self() {
        let nets = mesh(3);
        nets[0].broadcast(NodeId(1), &ZabMessage::Heartbeat { epoch: 1 });
        for net in &nets[1..] {
            let envelope = net.receive_timeout(Duration::from_secs(5)).expect("delivery");
            assert_eq!(envelope.message, ZabMessage::Heartbeat { epoch: 1 });
        }
        assert!(nets[0].receive(NodeId(1)).is_none());
    }

    #[test]
    fn sends_to_a_dead_peer_are_dropped_not_fatal() {
        let nets = mesh(2);
        nets[1].shutdown();
        // Give the link a moment to actually die, then send into the void.
        std::thread::sleep(Duration::from_millis(20));
        for _ in 0..3 {
            nets[0].send(NodeId(1), NodeId(2), ZabMessage::Heartbeat { epoch: 1 });
        }
        // At least the retries after the first broken write must be dropped.
        assert!(nets[0].dropped() > 0 || nets[0].sent() > 0);
        // The sender endpoint is still usable towards itself... nothing to
        // assert beyond "no panic, no deadlock".
    }

    #[test]
    fn link_reconnects_after_peer_restart() {
        let mut nets = mesh(2);
        nets[0].send(NodeId(1), NodeId(2), ZabMessage::Heartbeat { epoch: 1 });
        assert!(nets[1].receive_timeout(Duration::from_secs(5)).is_some());

        // Restart peer 2 on a fresh port and re-announce it to peer 1.
        let dead = nets.remove(1);
        drop(dead);
        let revived = TcpNetwork::bind(NodeId(2), "127.0.0.1:0").unwrap();
        let addrs: HashMap<NodeId, SocketAddr> =
            [(NodeId(1), nets[0].local_addr()), (NodeId(2), revived.local_addr())].into();
        nets[0].set_peers(addrs.clone());
        revived.set_peers(addrs);

        // The first send may be eaten by the stale link; the retry path must
        // re-establish the connection within a few attempts.
        let mut delivered = false;
        for _ in 0..5 {
            nets[0].send(NodeId(1), NodeId(2), ZabMessage::Heartbeat { epoch: 2 });
            if let Some(envelope) = revived.receive_timeout(Duration::from_millis(500)) {
                assert_eq!(envelope.message, ZabMessage::Heartbeat { epoch: 2 });
                delivered = true;
                break;
            }
        }
        assert!(delivered, "link did not reconnect after the peer restart");
    }

    #[test]
    fn garbage_frames_kill_the_connection_not_the_endpoint() {
        let nets = mesh(2);
        // Dial endpoint 2 directly and send a malformed frame.
        let mut rogue = TcpStream::connect(nets[1].local_addr()).unwrap();
        jute::framing::write_frame(&mut rogue, b"not an envelope").unwrap();
        // The endpoint stays healthy: a well-formed envelope still arrives.
        nets[0].send(NodeId(1), NodeId(2), ZabMessage::Heartbeat { epoch: 3 });
        let envelope = nets[1].receive_timeout(Duration::from_secs(5)).expect("healthy");
        assert_eq!(envelope.message, ZabMessage::Heartbeat { epoch: 3 });
    }

    #[test]
    fn peer_mesh_inbound_runs_on_one_event_loop() {
        // The scaling claim for the peer mesh: accepted connections are
        // multiplexed, so the endpoint's inbound side is one shard no matter
        // how many peers dial in.
        let nets = mesh(3);
        assert_eq!(nets[0].reactor.shard_count(), 1);
        for net in &nets {
            net.broadcast(net.id(), &ZabMessage::Heartbeat { epoch: 9 });
        }
        for net in &nets {
            for _ in 0..2 {
                assert!(net.receive_timeout(Duration::from_secs(5)).is_some());
            }
        }
    }
}
