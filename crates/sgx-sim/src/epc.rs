//! Enclave Page Cache (EPC) accounting.
//!
//! SGX backs enclave memory with a reserved range of system memory of at most
//! 128 MB, of which only about 92 MB are usable for enclave pages (the rest
//! holds SGX management structures). Once the sum of all enclave working sets
//! exceeds this limit, the (untrusted) kernel must page enclave pages out to
//! normal RAM after re-encryption, which is extremely slow.
//!
//! This module tracks allocations of all simulated enclaves against a shared
//! EPC and reports paging pressure so the cost model can charge for it.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use crate::enclave::EnclaveId;
use crate::error::SgxError;
use crate::PAGE_SIZE;

/// Nominal EPC size reserved by the BIOS (128 MB).
pub const EPC_TOTAL_BYTES: usize = 128 * 1024 * 1024;
/// Usable EPC size after SGX metadata overhead (~92 MB, measured in the paper).
pub const EPC_USABLE_BYTES: usize = 92 * 1024 * 1024;

/// Shared, thread-safe EPC tracker.
///
/// Cloning an [`Epc`] yields another handle to the same underlying state, so a
/// replica process can hand one handle to every enclave it hosts.
#[derive(Debug, Clone)]
pub struct Epc {
    inner: Arc<Mutex<EpcState>>,
}

#[derive(Debug)]
struct EpcState {
    usable_bytes: usize,
    allocations: HashMap<EnclaveId, usize>,
    /// Total number of page-out events charged so far.
    pages_evicted: u64,
}

/// A snapshot of EPC utilization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpcUsage {
    /// Bytes currently allocated across all enclaves.
    pub allocated_bytes: usize,
    /// Usable capacity in bytes.
    pub usable_bytes: usize,
    /// Number of enclaves holding allocations.
    pub enclaves: usize,
    /// Cumulative count of simulated page evictions.
    pub pages_evicted: u64,
}

impl EpcUsage {
    /// True when the working set exceeds usable EPC and paging is active.
    pub fn is_paging(&self) -> bool {
        self.allocated_bytes > self.usable_bytes
    }

    /// Utilization in the range `[0, ∞)`; values above 1.0 mean paging.
    pub fn utilization(&self) -> f64 {
        self.allocated_bytes as f64 / self.usable_bytes as f64
    }
}

impl Default for Epc {
    fn default() -> Self {
        Self::new()
    }
}

impl Epc {
    /// Creates an EPC with the default usable capacity of [`EPC_USABLE_BYTES`].
    pub fn new() -> Self {
        Self::with_usable_bytes(EPC_USABLE_BYTES)
    }

    /// Creates an EPC with a custom usable capacity (for experiments).
    pub fn with_usable_bytes(usable_bytes: usize) -> Self {
        Epc {
            inner: Arc::new(Mutex::new(EpcState {
                usable_bytes,
                allocations: HashMap::new(),
                pages_evicted: 0,
            })),
        }
    }

    /// Records that `enclave` now occupies `bytes` of EPC-backed memory.
    ///
    /// Unlike real hardware this never fails: exceeding the usable capacity
    /// simply turns on paging (with the associated cost), exactly as the
    /// kernel's EPC paging does. Enclave *creation* beyond the total EPC size
    /// is rejected by [`Epc::reserve`], mirroring the conservative upfront
    /// allocation the paper describes in Section 6.5.
    pub fn set_allocation(&self, enclave: EnclaveId, bytes: usize) {
        let mut state = self.inner.lock();
        state.allocations.insert(enclave, bytes);
    }

    /// Attempts to reserve `bytes` for a new enclave's ELRANGE.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::OutOfEpcMemory`] when the reservation alone exceeds
    /// the *total* EPC (such an enclave could never be fully resident and the
    /// SDK refuses to create it).
    pub fn reserve(&self, enclave: EnclaveId, bytes: usize) -> Result<(), SgxError> {
        if bytes > EPC_TOTAL_BYTES {
            return Err(SgxError::OutOfEpcMemory { requested: bytes, available: EPC_TOTAL_BYTES });
        }
        self.set_allocation(enclave, bytes);
        Ok(())
    }

    /// Releases all EPC pages owned by `enclave`.
    pub fn release(&self, enclave: EnclaveId) {
        let mut state = self.inner.lock();
        state.allocations.remove(&enclave);
    }

    /// Charges `accesses` random page accesses for `enclave` and returns the
    /// number of accesses that required paging (for statistics).
    pub fn charge_accesses(&self, _enclave: EnclaveId, accesses: u64) -> u64 {
        let mut state = self.inner.lock();
        let allocated: usize = state.allocations.values().sum();
        if allocated <= state.usable_bytes {
            return 0;
        }
        let paged_fraction = 1.0 - state.usable_bytes as f64 / allocated as f64;
        let paged = (accesses as f64 * paged_fraction).round() as u64;
        state.pages_evicted += paged;
        paged
    }

    /// Returns a snapshot of current usage.
    pub fn usage(&self) -> EpcUsage {
        let state = self.inner.lock();
        EpcUsage {
            allocated_bytes: state.allocations.values().sum(),
            usable_bytes: state.usable_bytes,
            enclaves: state.allocations.len(),
            pages_evicted: state.pages_evicted,
        }
    }

    /// Number of 4 KiB pages backing `bytes`.
    pub fn pages_for(bytes: usize) -> usize {
        bytes.div_ceil(PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> EnclaveId {
        EnclaveId::from_raw(n)
    }

    #[test]
    fn empty_epc_has_zero_usage() {
        let epc = Epc::new();
        let usage = epc.usage();
        assert_eq!(usage.allocated_bytes, 0);
        assert_eq!(usage.enclaves, 0);
        assert!(!usage.is_paging());
    }

    #[test]
    fn allocations_accumulate_across_enclaves() {
        let epc = Epc::new();
        epc.set_allocation(id(1), 580 * 1024);
        epc.set_allocation(id(2), 580 * 1024);
        epc.set_allocation(id(3), 397 * 1024);
        let usage = epc.usage();
        assert_eq!(usage.enclaves, 3);
        assert_eq!(usage.allocated_bytes, (580 + 580 + 397) * 1024);
        assert!(!usage.is_paging());
    }

    #[test]
    fn one_hundred_fifty_entry_enclaves_fit_without_paging() {
        // Paper §6.5: more than 150 entry enclaves (580 KB each) fit in the EPC.
        let epc = Epc::new();
        for i in 0..150u64 {
            epc.set_allocation(id(i), 580 * 1024);
        }
        assert!(!epc.usage().is_paging());
    }

    #[test]
    fn exceeding_usable_capacity_triggers_paging() {
        let epc = Epc::new();
        epc.set_allocation(id(1), 100 * 1024 * 1024);
        let usage = epc.usage();
        assert!(usage.is_paging());
        assert!(usage.utilization() > 1.0);
        let paged = epc.charge_accesses(id(1), 10_000);
        assert!(paged > 0);
        assert!(epc.usage().pages_evicted > 0);
    }

    #[test]
    fn reserve_rejects_elrange_larger_than_total_epc() {
        let epc = Epc::new();
        let err = epc.reserve(id(1), EPC_TOTAL_BYTES + 1).unwrap_err();
        assert!(matches!(err, SgxError::OutOfEpcMemory { .. }));
        assert!(epc.reserve(id(2), 64 * 1024 * 1024).is_ok());
    }

    #[test]
    fn release_frees_pages() {
        let epc = Epc::new();
        epc.set_allocation(id(1), 50 * 1024 * 1024);
        epc.set_allocation(id(2), 50 * 1024 * 1024);
        assert!(epc.usage().is_paging());
        epc.release(id(1));
        assert!(!epc.usage().is_paging());
        assert_eq!(epc.usage().enclaves, 1);
    }

    #[test]
    fn charge_accesses_below_limit_is_free() {
        let epc = Epc::new();
        epc.set_allocation(id(1), 1024 * 1024);
        assert_eq!(epc.charge_accesses(id(1), 1_000_000), 0);
    }

    #[test]
    fn clone_shares_state() {
        let epc = Epc::new();
        let handle = epc.clone();
        handle.set_allocation(id(1), 4096);
        assert_eq!(epc.usage().allocated_bytes, 4096);
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(Epc::pages_for(0), 0);
        assert_eq!(Epc::pages_for(1), 1);
        assert_eq!(Epc::pages_for(4096), 1);
        assert_eq!(Epc::pages_for(4097), 2);
    }
}
