//! Performance cost model for the simulated SGX runtime.
//!
//! All costs are expressed in nanoseconds of *simulated time*. The benchmark
//! harness in the `workload` crate adds these costs to a simulated clock
//! instead of sleeping, so experiments run quickly and deterministically while
//! preserving the relative overheads the paper reports.
//!
//! Default values are calibrated from published SGX measurements and from the
//! paper's own microbenchmarks:
//!
//! * an ecall/ocall round trip costs on the order of 8 000 cycles (~2.4 µs at
//!   3.4 GHz);
//! * AES-GCM with AES-NI style performance is roughly 1 ns/byte inside the
//!   enclave (the paper's enclaves use the SGX SDK crypto library);
//! * random page accesses are ~5.5× slower when the working set exceeds the
//!   8 MB L3 cache and another ~200× slower once EPC paging starts
//!   (paper Figure 3).

/// Cost model parameters, all in nanoseconds unless stated otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Fixed cost of entering an enclave (ecall) including the stack switch
    /// and parameter marshalling, one way.
    pub ecall_entry_ns: f64,
    /// Fixed cost of returning from an ecall (or performing an ocall), one way.
    pub ecall_exit_ns: f64,
    /// Per-byte cost of copying a buffer across the enclave boundary.
    pub boundary_copy_ns_per_byte: f64,
    /// Per-byte cost of AES-GCM encryption or decryption inside the enclave.
    pub aes_gcm_ns_per_byte: f64,
    /// Fixed per-message cost of AES-GCM (key schedule, J0, tag finalization).
    pub aes_gcm_fixed_ns: f64,
    /// Per-byte cost of SHA-256 hashing inside the enclave.
    pub sha256_ns_per_byte: f64,
    /// Per-byte cost of Base64 encoding/decoding.
    pub base64_ns_per_byte: f64,
    /// Cost of one random access to a page that hits the L1/L2/L3 caches.
    pub page_access_cached_ns: f64,
    /// Cost of one random access once the working set exceeds the L3 cache but
    /// still fits in the EPC (regular DRAM latency + MEE decryption).
    pub page_access_epc_ns: f64,
    /// Cost of one random access once EPC paging is required (page eviction,
    /// re-encryption and version-array bookkeeping).
    pub page_access_paged_ns: f64,
    /// L3 cache size in bytes (cliff #1 in Figure 3).
    pub l3_cache_bytes: usize,
    /// Usable EPC size in bytes (cliff #2 in Figure 3; the paper measures
    /// roughly 92 MB of the nominal 128 MB).
    pub epc_usable_bytes: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            ecall_entry_ns: 1_200.0,
            ecall_exit_ns: 1_200.0,
            boundary_copy_ns_per_byte: 0.25,
            aes_gcm_ns_per_byte: 1.0,
            aes_gcm_fixed_ns: 250.0,
            sha256_ns_per_byte: 1.5,
            base64_ns_per_byte: 0.4,
            page_access_cached_ns: 60.0,
            page_access_epc_ns: 330.0,
            page_access_paged_ns: 66_000.0,
            l3_cache_bytes: 8 * 1024 * 1024,
            epc_usable_bytes: 92 * 1024 * 1024,
        }
    }
}

impl CostModel {
    /// A cost model with all SGX-specific overheads set to zero.
    ///
    /// Used to model the *native* (non-enclave) execution baseline in the
    /// Figure 4 experiment and the vanilla/TLS ZooKeeper variants.
    pub fn native() -> Self {
        CostModel {
            ecall_entry_ns: 0.0,
            ecall_exit_ns: 0.0,
            boundary_copy_ns_per_byte: 0.0,
            page_access_epc_ns: 110.0,
            page_access_paged_ns: 110.0,
            ..CostModel::default()
        }
    }

    /// Cost of a full ecall round trip that copies `bytes_in` into the enclave
    /// and `bytes_out` back out.
    pub fn ecall_roundtrip_ns(&self, bytes_in: usize, bytes_out: usize) -> f64 {
        self.ecall_entry_ns
            + self.ecall_exit_ns
            + (bytes_in + bytes_out) as f64 * self.boundary_copy_ns_per_byte
    }

    /// Cost of AES-GCM over `bytes` (either direction).
    pub fn aes_gcm_ns(&self, bytes: usize) -> f64 {
        self.aes_gcm_fixed_ns + bytes as f64 * self.aes_gcm_ns_per_byte
    }

    /// Cost of hashing `bytes` with SHA-256.
    pub fn sha256_ns(&self, bytes: usize) -> f64 {
        bytes as f64 * self.sha256_ns_per_byte
    }

    /// Cost of Base64-encoding or decoding `bytes`.
    pub fn base64_ns(&self, bytes: usize) -> f64 {
        bytes as f64 * self.base64_ns_per_byte
    }

    /// Expected cost of a single random page access for a working set of
    /// `working_set_bytes` allocated inside an enclave.
    ///
    /// Models the two cliffs of Figure 3: L3 exhaustion and EPC exhaustion.
    /// Between the cliffs the cost is a weighted mix because part of the
    /// working set still hits the cache / resident EPC pages.
    pub fn random_access_ns(&self, working_set_bytes: usize) -> f64 {
        if working_set_bytes == 0 {
            return self.page_access_cached_ns;
        }
        let ws = working_set_bytes as f64;
        let l3 = self.l3_cache_bytes as f64;
        let epc = self.epc_usable_bytes as f64;
        if ws <= l3 {
            self.page_access_cached_ns
        } else if ws <= epc {
            // Fraction of accesses that still hit L3.
            let hit = l3 / ws;
            hit * self.page_access_cached_ns + (1.0 - hit) * self.page_access_epc_ns
        } else {
            // Fraction of accesses that hit resident EPC pages vs paged-out pages.
            let resident = epc / ws;
            let l3_hit = l3 / ws;
            l3_hit * self.page_access_cached_ns
                + (resident - l3_hit).max(0.0) * self.page_access_epc_ns
                + (1.0 - resident) * self.page_access_paged_ns
        }
    }

    /// Throughput in random page accesses per second for a given working set,
    /// the quantity plotted on the y-axis of Figure 3.
    pub fn random_accesses_per_second(&self, working_set_bytes: usize) -> f64 {
        1e9 / self.random_access_ns(working_set_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: usize = 1024 * 1024;

    #[test]
    fn default_model_has_positive_costs() {
        let m = CostModel::default();
        assert!(m.ecall_entry_ns > 0.0);
        assert!(m.page_access_paged_ns > m.page_access_epc_ns);
        assert!(m.page_access_epc_ns > m.page_access_cached_ns);
    }

    #[test]
    fn ecall_roundtrip_scales_with_buffer_size() {
        let m = CostModel::default();
        let small = m.ecall_roundtrip_ns(64, 64);
        let large = m.ecall_roundtrip_ns(4096, 4096);
        assert!(large > small);
        // The fixed transition cost dominates small messages.
        assert!(small > 2_000.0);
    }

    #[test]
    fn random_access_reproduces_figure3_cliffs() {
        let m = CostModel::default();
        let in_l3 = m.random_accesses_per_second(4 * MB);
        let in_epc = m.random_accesses_per_second(64 * MB);
        let paged = m.random_accesses_per_second(256 * MB);
        // Paper: ~5.5x slowdown past L3, ~200x slowdown past EPC, >1000x vs L3.
        let l3_over_epc = in_l3 / in_epc;
        let epc_over_paged = in_epc / paged;
        assert!(l3_over_epc > 3.0 && l3_over_epc < 10.0, "l3/epc = {l3_over_epc}");
        assert!(epc_over_paged > 50.0, "epc/paged = {epc_over_paged}");
        assert!(in_l3 / paged > 500.0, "l3/paged = {}", in_l3 / paged);
    }

    #[test]
    fn native_model_has_no_transition_cost_and_no_paging_cliff() {
        let m = CostModel::native();
        assert_eq!(m.ecall_roundtrip_ns(1024, 1024), 0.0);
        let below = m.random_accesses_per_second(64 * MB);
        let above = m.random_accesses_per_second(512 * MB);
        // Without SGX there is no EPC cliff; only the L3 effect remains.
        assert!(below / above < 2.0);
    }

    #[test]
    fn crypto_costs_scale_linearly() {
        let m = CostModel::default();
        let one_kb = m.aes_gcm_ns(1024);
        let four_kb = m.aes_gcm_ns(4096);
        assert!(four_kb > one_kb * 3.0 && four_kb < one_kb * 4.0);
        assert!(m.sha256_ns(0) == 0.0);
        assert!(m.base64_ns(300) > 0.0);
    }

    #[test]
    fn zero_working_set_is_cached() {
        let m = CostModel::default();
        assert_eq!(m.random_access_ns(0), m.page_access_cached_ns);
    }
}
