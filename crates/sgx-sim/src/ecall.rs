//! EDL-style ecall interface support.
//!
//! The Intel SGX SDK generates untrusted stubs from an EDL file; the paper's
//! entry enclave exposes exactly two ecalls (`ec_request`, `ec_response`, see
//! Listing 1) and the counter enclave exposes one. This module provides a
//! small registry that mimics that calling convention: an ecall receives a
//! mutable byte buffer (allocated slightly larger than the message by the
//! untrusted side), the current message length, and returns the new message
//! length. This reproduces the paper's solution to the "message grows inside
//! the enclave" problem (Section 5.1).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::enclave::Enclave;
use crate::error::SgxError;

/// Counters describing enclave boundary crossings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransitionStats {
    /// Number of ecalls performed.
    pub ecalls: u64,
    /// Number of ocalls performed.
    pub ocalls: u64,
    /// Total bytes marshalled into the enclave.
    pub bytes_in: u64,
    /// Total bytes marshalled out of the enclave.
    pub bytes_out: u64,
}

impl TransitionStats {
    /// Total number of boundary crossings (each call is one round trip).
    pub fn total_transitions(&self) -> u64 {
        self.ecalls + self.ocalls
    }
}

/// Handler signature for a buffer-style ecall.
///
/// Arguments are the message buffer and the current message length; the
/// result is the new message length (which must fit in the buffer).
pub type EcallHandler = dyn Fn(&mut Vec<u8>, usize) -> Result<usize, SgxError> + Send + Sync;

/// A registry of named ecalls for one enclave, mirroring an EDL interface.
#[derive(Clone)]
pub struct EcallRegistry {
    enclave: Enclave,
    handlers: Arc<Mutex<HashMap<String, Arc<EcallHandler>>>>,
}

impl std::fmt::Debug for EcallRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EcallRegistry")
            .field("enclave", &self.enclave.id())
            .field("ecalls", &self.handlers.lock().keys().cloned().collect::<Vec<_>>())
            .finish()
    }
}

impl EcallRegistry {
    /// Creates an empty registry bound to `enclave`.
    pub fn new(enclave: Enclave) -> Self {
        EcallRegistry { enclave, handlers: Arc::new(Mutex::new(HashMap::new())) }
    }

    /// The enclave this registry belongs to.
    pub fn enclave(&self) -> &Enclave {
        &self.enclave
    }

    /// Registers an ecall under `name`.
    pub fn register(
        &self,
        name: &str,
        handler: impl Fn(&mut Vec<u8>, usize) -> Result<usize, SgxError> + Send + Sync + 'static,
    ) {
        self.handlers.lock().insert(name.to_string(), Arc::new(handler));
    }

    /// Names of all registered ecalls (the attack surface, in the paper's terms).
    pub fn interface(&self) -> Vec<String> {
        let mut names: Vec<String> = self.handlers.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Invokes the ecall `name` on `buffer` containing a message of
    /// `msg_len` bytes, returning the new message length.
    ///
    /// # Errors
    ///
    /// * [`SgxError::UnknownEcall`] if `name` was never registered.
    /// * [`SgxError::BufferTooSmall`] if the handler produced a message larger
    ///   than the buffer capacity (mirrors the SDK's inability to grow
    ///   untrusted buffers from inside the enclave).
    /// * Any error returned by the handler itself.
    pub fn call(
        &self,
        name: &str,
        buffer: &mut Vec<u8>,
        msg_len: usize,
    ) -> Result<usize, SgxError> {
        let handler = self
            .handlers
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| SgxError::UnknownEcall { name: name.to_string() })?;
        let capacity = buffer.capacity().max(buffer.len());
        let new_len = self.enclave.ecall(msg_len, capacity, || handler(buffer, msg_len))?;
        if new_len > capacity {
            return Err(SgxError::BufferTooSmall { needed: new_len, capacity });
        }
        Ok(new_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::EnclaveBuilder;
    use crate::epc::Epc;

    fn registry() -> EcallRegistry {
        let epc = Epc::new();
        let enclave = EnclaveBuilder::new(b"test enclave".to_vec()).build(&epc).unwrap();
        EcallRegistry::new(enclave)
    }

    #[test]
    fn registered_ecall_is_invoked_with_buffer() {
        let reg = registry();
        reg.register("ec_request", |buffer, msg_len| {
            // Append four bytes, as storage encryption would.
            buffer.resize(msg_len, 0);
            buffer.extend_from_slice(b"MAC!");
            Ok(msg_len + 4)
        });
        let mut buffer = Vec::with_capacity(64);
        buffer.extend_from_slice(b"hello");
        let new_len = reg.call("ec_request", &mut buffer, 5).unwrap();
        assert_eq!(new_len, 9);
        assert_eq!(&buffer[..9], b"helloMAC!");
    }

    #[test]
    fn unknown_ecall_is_rejected() {
        let reg = registry();
        let mut buffer = vec![0u8; 8];
        let err = reg.call("ec_missing", &mut buffer, 8).unwrap_err();
        assert!(matches!(err, SgxError::UnknownEcall { .. }));
    }

    #[test]
    fn interface_lists_registered_calls_sorted() {
        let reg = registry();
        reg.register("ec_response", |_, n| Ok(n));
        reg.register("ec_request", |_, n| Ok(n));
        assert_eq!(reg.interface(), vec!["ec_request".to_string(), "ec_response".to_string()]);
    }

    #[test]
    fn handler_errors_propagate() {
        let reg = registry();
        reg.register("ec_request", |_, _| {
            Err(SgxError::EnclaveFault { message: "bad message".into() })
        });
        let mut buffer = vec![0u8; 4];
        let err = reg.call("ec_request", &mut buffer, 4).unwrap_err();
        assert!(matches!(err, SgxError::EnclaveFault { .. }));
    }

    #[test]
    fn oversized_result_is_rejected() {
        let reg = registry();
        reg.register("ec_request", |buffer, _| {
            let capacity = buffer.capacity().max(buffer.len());
            Ok(capacity + 100)
        });
        let mut buffer = Vec::with_capacity(16);
        buffer.resize(8, 0);
        let err = reg.call("ec_request", &mut buffer, 8).unwrap_err();
        assert!(matches!(err, SgxError::BufferTooSmall { .. }));
    }

    #[test]
    fn calls_update_enclave_stats() {
        let reg = registry();
        reg.register("ec_request", |_, n| Ok(n));
        let mut buffer = vec![0u8; 128];
        for _ in 0..5 {
            reg.call("ec_request", &mut buffer, 128).unwrap();
        }
        assert_eq!(reg.enclave().stats().ecalls, 5);
        assert!(reg.enclave().simulated_ns() > 0.0);
    }

    #[test]
    fn transition_stats_totals() {
        let stats = TransitionStats { ecalls: 3, ocalls: 2, bytes_in: 10, bytes_out: 20 };
        assert_eq!(stats.total_transitions(), 5);
    }
}
