//! Remote attestation and key provisioning.
//!
//! SecureKeeper's deployment model (Section 4.5): the administrator remotely
//! attests one entry enclave per replica; only after a successful attestation
//! is the cluster-wide storage key handed to the enclave, which then seals it
//! locally so further enclaves on the same replica can unseal it without
//! re-attestation.
//!
//! The simulation uses an HMAC keyed by a per-platform attestation key in
//! place of the EPID/quoting-enclave machinery: the *protocol* (quote over
//! measurement + report data, verification against an allow-list of expected
//! measurements, key release only on success) is the part the paper relies
//! on, and that is reproduced faithfully.

use zkcrypto::hmac::{constant_time_eq, hmac_sha256};
use zkcrypto::keys::StorageKey;

use crate::enclave::{Enclave, Measurement};
use crate::error::SgxError;
use crate::sealing::PlatformSecret;

/// An attestation quote: the enclave's measurement plus caller-chosen report
/// data, authenticated by the platform's quoting key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// Measurement of the quoted enclave.
    pub measurement: Measurement,
    /// 64 bytes of report data chosen by the enclave (e.g. a hash of the
    /// enclave's ephemeral public key).
    pub report_data: [u8; 64],
    signature: [u8; 32],
}

/// The platform-side quoting facility (stand-in for the quoting enclave).
#[derive(Debug, Clone)]
pub struct QuotingEnclave {
    platform: PlatformSecret,
}

impl QuotingEnclave {
    /// Creates the quoting facility for a platform.
    pub fn new(platform: PlatformSecret) -> Self {
        QuotingEnclave { platform }
    }

    /// Produces a quote for `enclave` carrying `report_data`.
    pub fn quote(&self, enclave: &Enclave, report_data: [u8; 64]) -> Quote {
        let measurement = enclave.measurement();
        let signature = self.sign(&measurement, &report_data);
        Quote { measurement, report_data, signature }
    }

    fn sign(&self, measurement: &Measurement, report_data: &[u8; 64]) -> [u8; 32] {
        let mut message = Vec::with_capacity(32 + 64);
        message.extend_from_slice(measurement.as_bytes());
        message.extend_from_slice(report_data);
        hmac_sha256(
            self.platform
                .sealing_key(measurement, "quoting", crate::sealing::SealingPolicy::MrSigner)
                .as_bytes(),
            &message,
        )
    }

    /// Verifies that `quote` was produced by this platform's quoting facility.
    pub fn verify(&self, quote: &Quote) -> bool {
        let expected = self.sign(&quote.measurement, &quote.report_data);
        constant_time_eq(&expected, &quote.signature)
    }
}

/// The SecureKeeper administrator's attestation service: verifies quotes and
/// releases the storage key to genuine entry enclaves.
#[derive(Debug)]
pub struct AttestationService {
    expected_measurements: Vec<Measurement>,
    storage_key: StorageKey,
    released: u64,
}

impl AttestationService {
    /// Creates a service that will release `storage_key` to enclaves whose
    /// measurement appears in `expected_measurements`.
    pub fn new(expected_measurements: Vec<Measurement>, storage_key: StorageKey) -> Self {
        AttestationService { expected_measurements, storage_key, released: 0 }
    }

    /// Number of times the storage key has been released.
    pub fn keys_released(&self) -> u64 {
        self.released
    }

    /// Verifies `quote` against the platform's quoting facility and the
    /// expected-measurement allow-list; on success returns the storage key.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::AttestationFailed`] if the quote signature is
    /// invalid or the measurement is not recognized.
    pub fn provision_storage_key(
        &mut self,
        quoting: &QuotingEnclave,
        quote: &Quote,
    ) -> Result<StorageKey, SgxError> {
        if !quoting.verify(quote) {
            return Err(SgxError::AttestationFailed {
                reason: "invalid quote signature".to_string(),
            });
        }
        if !self.expected_measurements.contains(&quote.measurement) {
            return Err(SgxError::AttestationFailed {
                reason: "measurement not in the expected set".to_string(),
            });
        }
        self.released += 1;
        Ok(self.storage_key.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::EnclaveBuilder;
    use crate::epc::Epc;

    fn setup() -> (Epc, PlatformSecret, Enclave) {
        let epc = Epc::new();
        let platform = PlatformSecret::derive_from_label("replica-1");
        let enclave = EnclaveBuilder::new(b"entry enclave image".to_vec()).build(&epc).unwrap();
        (epc, platform, enclave)
    }

    #[test]
    fn quote_verifies_on_same_platform() {
        let (_epc, platform, enclave) = setup();
        let quoting = QuotingEnclave::new(platform);
        let quote = quoting.quote(&enclave, [7u8; 64]);
        assert!(quoting.verify(&quote));
    }

    #[test]
    fn quote_from_other_platform_is_rejected() {
        let (_epc, platform, enclave) = setup();
        let quoting_a = QuotingEnclave::new(platform);
        let quoting_b = QuotingEnclave::new(PlatformSecret::derive_from_label("other"));
        let quote = quoting_a.quote(&enclave, [7u8; 64]);
        assert!(!quoting_b.verify(&quote));
    }

    #[test]
    fn tampered_report_data_is_rejected() {
        let (_epc, platform, enclave) = setup();
        let quoting = QuotingEnclave::new(platform);
        let mut quote = quoting.quote(&enclave, [7u8; 64]);
        quote.report_data[0] ^= 1;
        assert!(!quoting.verify(&quote));
    }

    #[test]
    fn attestation_service_releases_key_to_expected_enclave() {
        let (_epc, platform, enclave) = setup();
        let quoting = QuotingEnclave::new(platform);
        let storage_key = StorageKey::derive_from_label("cluster");
        let mut service = AttestationService::new(vec![enclave.measurement()], storage_key.clone());
        let quote = quoting.quote(&enclave, [0u8; 64]);
        let released = service.provision_storage_key(&quoting, &quote).unwrap();
        assert_eq!(released, storage_key);
        assert_eq!(service.keys_released(), 1);
    }

    #[test]
    fn attestation_service_rejects_unknown_measurement() {
        let (epc, platform, enclave) = setup();
        let rogue = EnclaveBuilder::new(b"rogue image".to_vec()).build(&epc).unwrap();
        let quoting = QuotingEnclave::new(platform);
        let mut service = AttestationService::new(
            vec![enclave.measurement()],
            StorageKey::derive_from_label("cluster"),
        );
        let quote = quoting.quote(&rogue, [0u8; 64]);
        let err = service.provision_storage_key(&quoting, &quote).unwrap_err();
        assert!(matches!(err, SgxError::AttestationFailed { .. }));
        assert_eq!(service.keys_released(), 0);
    }

    #[test]
    fn attestation_service_rejects_forged_quote() {
        let (_epc, platform, enclave) = setup();
        let quoting = QuotingEnclave::new(platform);
        let mut service = AttestationService::new(
            vec![enclave.measurement()],
            StorageKey::derive_from_label("cluster"),
        );
        let mut quote = quoting.quote(&enclave, [0u8; 64]);
        quote.report_data[63] ^= 0xff;
        assert!(service.provision_storage_key(&quoting, &quote).is_err());
    }
}
