//! Data sealing.
//!
//! SGX enclaves can encrypt ("seal") secrets for persistent storage with a
//! key derived from the CPU's fused secrets and the enclave's identity. In
//! SecureKeeper's deployment (Section 4.5) the storage key is provisioned to
//! one entry enclave per replica via remote attestation and then *sealed* to
//! disk so that subsequent entry enclaves on the same replica can unseal it
//! without another round of attestation.
//!
//! This module reproduces that mechanism: the sealing key is derived with
//! HMAC-SHA256 from a per-platform secret and the enclave measurement
//! (MRENCLAVE policy) or signer (MRSIGNER policy), and the blob is encrypted
//! with AES-128-GCM.

use rand::RngCore;
use zkcrypto::gcm::AesGcm128;
use zkcrypto::hmac::hmac_sha256;
use zkcrypto::keys::Key128;
use zkcrypto::NONCE_LEN;

use crate::enclave::Measurement;
use crate::error::SgxError;

/// The sealing identity policy, mirroring the SGX key-request policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealingPolicy {
    /// Key bound to the exact enclave measurement (MRENCLAVE): only bit-for-bit
    /// identical enclaves can unseal.
    MrEnclave,
    /// Key bound to the enclave signer (MRSIGNER): any enclave signed by the
    /// same vendor can unseal. SecureKeeper uses MRENCLAVE.
    MrSigner,
}

/// A per-machine secret standing in for the CPU's fused sealing root key.
#[derive(Clone)]
pub struct PlatformSecret {
    secret: [u8; 32],
}

impl std::fmt::Debug for PlatformSecret {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlatformSecret").field("secret", &"<redacted>").finish()
    }
}

impl PlatformSecret {
    /// Generates a fresh platform secret (one per simulated machine).
    pub fn generate() -> Self {
        let mut secret = [0u8; 32];
        rand::thread_rng().fill_bytes(&mut secret);
        PlatformSecret { secret }
    }

    /// Deterministic secret for tests and reproducible examples.
    pub fn derive_from_label(label: &str) -> Self {
        PlatformSecret { secret: hmac_sha256(b"platform-secret", label.as_bytes()) }
    }

    /// Derives the sealing key for an enclave identity under a policy.
    pub fn sealing_key(
        &self,
        measurement: &Measurement,
        signer: &str,
        policy: SealingPolicy,
    ) -> Key128 {
        let identity: &[u8] = match policy {
            SealingPolicy::MrEnclave => measurement.as_bytes(),
            SealingPolicy::MrSigner => signer.as_bytes(),
        };
        let digest = hmac_sha256(&self.secret, identity);
        let mut key = [0u8; 16];
        key.copy_from_slice(&digest[..16]);
        Key128::from_bytes(key)
    }
}

/// A sealed blob: nonce followed by AES-GCM ciphertext-and-tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlob {
    bytes: Vec<u8>,
}

impl SealedBlob {
    /// Raw bytes suitable for writing to untrusted storage.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Reconstructs a blob from raw bytes read from storage.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        SealedBlob { bytes }
    }

    /// Total size of the blob in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the blob holds no data at all (not even a header).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Seals `plaintext` for the given enclave identity.
pub fn seal(
    platform: &PlatformSecret,
    measurement: &Measurement,
    signer: &str,
    policy: SealingPolicy,
    plaintext: &[u8],
) -> SealedBlob {
    let key = platform.sealing_key(measurement, signer, policy);
    let cipher = AesGcm128::new(&key);
    let mut nonce = [0u8; NONCE_LEN];
    rand::thread_rng().fill_bytes(&mut nonce);
    let mut bytes = Vec::with_capacity(NONCE_LEN + plaintext.len() + 16);
    bytes.extend_from_slice(&nonce);
    bytes.extend_from_slice(&cipher.seal(&nonce, plaintext, b"sgx-sealed-blob"));
    SealedBlob { bytes }
}

/// Unseals a blob previously produced by [`seal`] for the same identity.
///
/// # Errors
///
/// Returns [`SgxError::UnsealingFailed`] when the blob is malformed, was
/// sealed on a different platform, or was sealed to a different enclave
/// identity under the chosen policy.
pub fn unseal(
    platform: &PlatformSecret,
    measurement: &Measurement,
    signer: &str,
    policy: SealingPolicy,
    blob: &SealedBlob,
) -> Result<Vec<u8>, SgxError> {
    if blob.bytes.len() < NONCE_LEN + 16 {
        return Err(SgxError::UnsealingFailed);
    }
    let key = platform.sealing_key(measurement, signer, policy);
    let cipher = AesGcm128::new(&key);
    let (nonce, ciphertext) = blob.bytes.split_at(NONCE_LEN);
    cipher.open(nonce, ciphertext, b"sgx-sealed-blob").map_err(|_| SgxError::UnsealingFailed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement(tag: &str) -> Measurement {
        Measurement::of_image(tag.as_bytes(), 64 * 1024, 64 * 1024)
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let platform = PlatformSecret::derive_from_label("replica-1");
        let m = measurement("entry enclave");
        let blob =
            seal(&platform, &m, "securekeeper", SealingPolicy::MrEnclave, b"storage key bytes");
        assert_eq!(
            unseal(&platform, &m, "securekeeper", SealingPolicy::MrEnclave, &blob).unwrap(),
            b"storage key bytes"
        );
    }

    #[test]
    fn different_measurement_cannot_unseal_under_mrenclave() {
        let platform = PlatformSecret::derive_from_label("replica-1");
        let genuine = measurement("entry enclave v1");
        let attacker = measurement("evil enclave");
        let blob = seal(&platform, &genuine, "signer", SealingPolicy::MrEnclave, b"secret");
        assert_eq!(
            unseal(&platform, &attacker, "signer", SealingPolicy::MrEnclave, &blob).unwrap_err(),
            SgxError::UnsealingFailed
        );
    }

    #[test]
    fn same_signer_can_unseal_under_mrsigner() {
        let platform = PlatformSecret::derive_from_label("replica-1");
        let v1 = measurement("entry enclave v1");
        let v2 = measurement("entry enclave v2");
        let blob = seal(&platform, &v1, "securekeeper", SealingPolicy::MrSigner, b"secret");
        assert_eq!(
            unseal(&platform, &v2, "securekeeper", SealingPolicy::MrSigner, &blob).unwrap(),
            b"secret"
        );
        // But a different signer cannot.
        assert!(unseal(&platform, &v2, "mallory", SealingPolicy::MrSigner, &blob).is_err());
    }

    #[test]
    fn blob_from_other_platform_fails() {
        let platform_a = PlatformSecret::derive_from_label("replica-1");
        let platform_b = PlatformSecret::derive_from_label("replica-2");
        let m = measurement("entry enclave");
        let blob = seal(&platform_a, &m, "s", SealingPolicy::MrEnclave, b"secret");
        assert!(unseal(&platform_b, &m, "s", SealingPolicy::MrEnclave, &blob).is_err());
    }

    #[test]
    fn tampered_blob_fails() {
        let platform = PlatformSecret::derive_from_label("replica-1");
        let m = measurement("entry enclave");
        let blob = seal(&platform, &m, "s", SealingPolicy::MrEnclave, b"secret");
        let mut tampered = blob.as_bytes().to_vec();
        let last = tampered.len() - 1;
        tampered[last] ^= 0x01;
        assert!(unseal(
            &platform,
            &m,
            "s",
            SealingPolicy::MrEnclave,
            &SealedBlob::from_bytes(tampered)
        )
        .is_err());
    }

    #[test]
    fn truncated_blob_fails_gracefully() {
        let platform = PlatformSecret::derive_from_label("replica-1");
        let m = measurement("entry enclave");
        assert_eq!(
            unseal(
                &platform,
                &m,
                "s",
                SealingPolicy::MrEnclave,
                &SealedBlob::from_bytes(vec![1, 2, 3])
            )
            .unwrap_err(),
            SgxError::UnsealingFailed
        );
    }

    #[test]
    fn sealing_is_randomized_but_stable() {
        let platform = PlatformSecret::derive_from_label("replica-1");
        let m = measurement("entry enclave");
        let a = seal(&platform, &m, "s", SealingPolicy::MrEnclave, b"secret");
        let b = seal(&platform, &m, "s", SealingPolicy::MrEnclave, b"secret");
        assert_ne!(a, b, "nonce must differ between sealings");
        assert_eq!(unseal(&platform, &m, "s", SealingPolicy::MrEnclave, &a).unwrap(), b"secret");
        assert_eq!(unseal(&platform, &m, "s", SealingPolicy::MrEnclave, &b).unwrap(), b"secret");
    }
}
