//! EPC paging microbenchmark models (paper Figures 3 and 4).
//!
//! Figure 3 measures the maximum number of random single-byte page accesses
//! per second as a function of the memory allocated inside an enclave; the
//! curve shows two cliffs (L3 cache at 8 MB, EPC at ~92 MB). Figure 4 runs a
//! small key-value store inside an enclave of growing size and measures
//! request throughput from a remote machine, comparing against native
//! execution.
//!
//! Both experiments are reproduced here on top of [`CostModel`]; the bench
//! binaries `fig03_epc_paging` and `fig04_enclave_kvs` print the series.

use crate::cost::CostModel;

/// Result of one point of the random-access experiment (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomAccessPoint {
    /// Allocated enclave memory in bytes.
    pub enclave_bytes: usize,
    /// Thousand page accesses per second for random reads.
    pub kilo_reads_per_sec: f64,
    /// Thousand page accesses per second for random writes.
    pub kilo_writes_per_sec: f64,
}

/// Runs the Figure 3 experiment for the given allocation sizes.
///
/// Writes are slightly more expensive than reads once paging starts because
/// dirty pages must be re-encrypted before eviction; the paper's figure shows
/// the same small gap.
pub fn random_access_sweep(model: &CostModel, sizes_bytes: &[usize]) -> Vec<RandomAccessPoint> {
    sizes_bytes
        .iter()
        .map(|&bytes| {
            let read_ns = model.random_access_ns(bytes);
            // Dirty-page eviction adds ~20% once the working set exceeds the EPC.
            let write_ns =
                if bytes > model.epc_usable_bytes { read_ns * 1.2 } else { read_ns * 1.05 };
            RandomAccessPoint {
                enclave_bytes: bytes,
                kilo_reads_per_sec: 1e9 / read_ns / 1e3,
                kilo_writes_per_sec: 1e9 / write_ns / 1e3,
            }
        })
        .collect()
}

/// Result of one point of the in-enclave key-value store experiment (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvsPoint {
    /// Size of the enclave memory range holding the KVS, in bytes.
    pub enclave_bytes: usize,
    /// Requests per second with the KVS running natively (no enclave).
    pub native_rps: f64,
    /// Requests per second with the KVS inside an SGX enclave.
    pub sgx_rps: f64,
}

impl KvsPoint {
    /// Normalized difference `(native - sgx) / sgx`, the secondary axis of Figure 4.
    pub fn normed_difference(&self) -> f64 {
        (self.native_rps - self.sgx_rps) / self.sgx_rps
    }
}

/// Parameters of the Figure 4 key-value store experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvsExperiment {
    /// Fixed per-request cost outside the store itself (network, request
    /// parsing) in nanoseconds. Dominates while the store is small.
    pub request_overhead_ns: f64,
    /// Number of random memory touches a single KVS request performs
    /// (hash-bucket walk plus value copy).
    pub accesses_per_request: u32,
    /// Size of one key-value pair in bytes (determines how many pairs fit).
    pub pair_bytes: usize,
}

impl Default for KvsExperiment {
    fn default() -> Self {
        KvsExperiment { request_overhead_ns: 25_000.0, accesses_per_request: 16, pair_bytes: 1024 }
    }
}

/// Runs the Figure 4 experiment over the given enclave sizes.
pub fn kvs_sweep(
    model: &CostModel,
    experiment: &KvsExperiment,
    sizes_bytes: &[usize],
) -> Vec<KvsPoint> {
    let native_model = CostModel::native();
    sizes_bytes
        .iter()
        .map(|&bytes| {
            let per_request = |m: &CostModel, enclave: bool| {
                let transition = if enclave { m.ecall_roundtrip_ns(256, 1024 + 64) } else { 0.0 };
                let touches = experiment.accesses_per_request as f64 * m.random_access_ns(bytes);
                experiment.request_overhead_ns + transition + touches
            };
            KvsPoint {
                enclave_bytes: bytes,
                native_rps: 1e9 / per_request(&native_model, false),
                sgx_rps: 1e9 / per_request(model, true),
            }
        })
        .collect()
}

/// The allocation sizes (in MB) used on the x-axis of Figure 3.
pub fn figure3_sizes_mb() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32, 64, 92, 128, 256, 512, 1024, 2561]
}

/// The enclave sizes (in MB) used on the x-axis of Figure 4.
pub fn figure4_sizes_mb() -> Vec<usize> {
    vec![1, 4, 16, 64, 102, 128, 256, 512, 1024, 3072]
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: usize = 1024 * 1024;

    #[test]
    fn figure3_shape_two_cliffs() {
        let model = CostModel::default();
        let sizes: Vec<usize> = figure3_sizes_mb().iter().map(|mb| mb * MB).collect();
        let points = random_access_sweep(&model, &sizes);
        let at = |mb: usize| points.iter().find(|p| p.enclave_bytes == mb * MB).unwrap();
        // Inside L3: fastest. Between L3 and EPC: ~5x slower. Past EPC: >100x slower.
        assert!(at(4).kilo_reads_per_sec / at(64).kilo_reads_per_sec > 3.0);
        assert!(at(64).kilo_reads_per_sec / at(256).kilo_reads_per_sec > 20.0);
        assert!(at(1).kilo_reads_per_sec / at(2561).kilo_reads_per_sec > 500.0);
    }

    #[test]
    fn figure3_writes_slower_than_reads_when_paging() {
        let model = CostModel::default();
        let points = random_access_sweep(&model, &[256 * MB]);
        assert!(points[0].kilo_writes_per_sec < points[0].kilo_reads_per_sec);
    }

    #[test]
    fn figure4_sgx_close_to_native_below_epc() {
        let model = CostModel::default();
        let points = kvs_sweep(&model, &KvsExperiment::default(), &[16 * MB]);
        let p = points[0];
        // Paper: below the EPC limit SGX throughput is within ~25% of native.
        assert!(p.normed_difference() < 0.5, "normed diff {}", p.normed_difference());
    }

    #[test]
    fn figure4_sgx_collapses_past_epc() {
        let model = CostModel::default();
        let points = kvs_sweep(&model, &KvsExperiment::default(), &[102 * MB, 512 * MB, 3072 * MB]);
        for p in &points {
            assert!(
                p.normed_difference() > 2.0,
                "expected large normed difference at {} MB, got {}",
                p.enclave_bytes / MB,
                p.normed_difference()
            );
        }
        // And the effect grows with size.
        assert!(points[2].normed_difference() > points[0].normed_difference());
    }

    #[test]
    fn size_axes_are_nonempty_and_sorted() {
        let f3 = figure3_sizes_mb();
        let f4 = figure4_sizes_mb();
        assert!(f3.windows(2).all(|w| w[0] < w[1]));
        assert!(f4.windows(2).all(|w| w[0] < w[1]));
    }
}
