//! Software simulation of Intel SGX used by the SecureKeeper reproduction.
//!
//! The original paper runs on SGX-capable Skylake machines with the Intel SGX
//! SDK. This repository has no SGX hardware available, so this crate provides
//! a faithful *functional and performance model* of the parts of SGX the paper
//! relies on:
//!
//! * **Enclave lifecycle** — creation, measurement, initialization,
//!   destruction ([`enclave::Enclave`], [`enclave::EnclaveBuilder`]).
//! * **EPC accounting** — the Enclave Page Cache is limited to 128 MB of
//!   which roughly 92 MB are usable; exceeding it triggers costly paging
//!   ([`epc::Epc`]).
//! * **ecall/ocall transitions** — entering and leaving an enclave has a
//!   fixed cost that dominates small-message workloads
//!   ([`ecall::TransitionStats`], [`cost::CostModel`]).
//! * **Paging cost model** — random accesses to enclave memory fall off a
//!   cliff once the working set exceeds the L3 cache and again once it
//!   exceeds the EPC (paper Figures 3 and 4) ([`paging`]).
//! * **Sealing** — encrypting enclave secrets for persistent storage bound to
//!   the enclave measurement ([`sealing`]).
//! * **Remote attestation** — quote generation and verification so that the
//!   SecureKeeper administrator can provision the storage key only to genuine
//!   entry enclaves ([`attestation`]).
//!
//! The cost model is calibrated against the microbenchmarks published in the
//! paper itself, so the *shape* of every performance result (who wins, by what
//! factor, where the cliffs are) is reproduced even though absolute numbers
//! necessarily differ from the authors' testbed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attestation;
pub mod cost;
pub mod ecall;
pub mod enclave;
pub mod epc;
pub mod error;
pub mod paging;
pub mod sealing;

pub use cost::CostModel;
pub use enclave::{Enclave, EnclaveBuilder, EnclaveId, Measurement};
pub use epc::{Epc, EPC_TOTAL_BYTES, EPC_USABLE_BYTES};
pub use error::SgxError;

/// Size of an SGX page in bytes.
pub const PAGE_SIZE: usize = 4096;
