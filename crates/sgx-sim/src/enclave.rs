//! Simulated enclave lifecycle: creation, measurement, ecalls, destruction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use zkcrypto::sha256::Sha256;

use crate::cost::CostModel;
use crate::ecall::TransitionStats;
use crate::epc::Epc;
use crate::error::SgxError;

static NEXT_ENCLAVE_ID: AtomicU64 = AtomicU64::new(1);

/// Unique identifier of a simulated enclave instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EnclaveId(u64);

impl EnclaveId {
    /// Allocates a fresh process-wide unique id.
    pub fn next() -> Self {
        EnclaveId(NEXT_ENCLAVE_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// Builds an id from a raw value (tests only; uniqueness is the caller's problem).
    pub fn from_raw(raw: u64) -> Self {
        EnclaveId(raw)
    }

    /// Raw numeric value.
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for EnclaveId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "enclave#{}", self.0)
    }
}

/// The MRENCLAVE-style measurement of an enclave: a SHA-256 digest over the
/// enclave's code image and configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Measurement([u8; 32]);

impl Measurement {
    /// Computes the measurement of an enclave image.
    pub fn of_image(code: &[u8], heap_bytes: usize, stack_bytes: usize) -> Self {
        let mut hasher = Sha256::new();
        hasher.update(code);
        hasher.update(&(heap_bytes as u64).to_le_bytes());
        hasher.update(&(stack_bytes as u64).to_le_bytes());
        Measurement(hasher.finalize())
    }

    /// Raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

/// Lifecycle state of an enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EnclaveState {
    /// ECREATE/EADD done, EINIT pending.
    Created,
    /// EINIT done, ecalls permitted.
    Initialized,
    /// EREMOVE done.
    Destroyed,
}

/// Builder for a simulated enclave, mirroring the knobs of the SGX SDK's
/// enclave configuration file (heap size, stack size, thread count).
#[derive(Debug, Clone)]
pub struct EnclaveBuilder {
    code: Vec<u8>,
    heap_bytes: usize,
    stack_bytes: usize,
    threads: usize,
    cost_model: CostModel,
}

impl EnclaveBuilder {
    /// Starts a builder for an enclave whose "code image" is `code`.
    ///
    /// The code bytes only feed the measurement; they are not executed.
    pub fn new(code: impl Into<Vec<u8>>) -> Self {
        EnclaveBuilder {
            code: code.into(),
            heap_bytes: 64 * 1024,
            stack_bytes: 64 * 1024,
            threads: 1,
            cost_model: CostModel::default(),
        }
    }

    /// Sets the heap size in bytes.
    pub fn heap_bytes(mut self, bytes: usize) -> Self {
        self.heap_bytes = bytes;
        self
    }

    /// Sets the per-thread stack size in bytes (default 64 KB, as in the SDK).
    pub fn stack_bytes(mut self, bytes: usize) -> Self {
        self.stack_bytes = bytes;
        self
    }

    /// Sets the number of trusted threads.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the cost model (defaults to [`CostModel::default`]).
    pub fn cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// ELRANGE size implied by this configuration: code + heap + per-thread
    /// stack and thread-control structures.
    pub fn elrange_bytes(&self) -> usize {
        const TCS_BYTES: usize = 16 * 1024;
        self.code.len() + self.heap_bytes + self.threads * (self.stack_bytes + TCS_BYTES)
    }

    /// Creates and initializes the enclave, reserving its ELRANGE in `epc`.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::OutOfEpcMemory`] when the ELRANGE cannot be created.
    pub fn build(self, epc: &Epc) -> Result<Enclave, SgxError> {
        let id = EnclaveId::next();
        let elrange = self.elrange_bytes();
        epc.reserve(id, elrange)?;
        let measurement = Measurement::of_image(&self.code, self.heap_bytes, self.stack_bytes);
        let enclave = Enclave {
            id,
            measurement,
            elrange_bytes: elrange,
            epc: epc.clone(),
            cost_model: self.cost_model,
            inner: Arc::new(Mutex::new(EnclaveInner {
                state: EnclaveState::Created,
                stats: TransitionStats::default(),
                simulated_ns: 0.0,
            })),
        };
        // EINIT: the SDK initializes the enclave right after adding its pages.
        enclave.inner.lock().state = EnclaveState::Initialized;
        Ok(enclave)
    }
}

#[derive(Debug)]
struct EnclaveInner {
    state: EnclaveState,
    stats: TransitionStats,
    simulated_ns: f64,
}

/// A simulated SGX enclave.
///
/// The enclave does not actually isolate anything — it runs the provided
/// trusted closures in-process — but it *accounts* for everything the real
/// hardware would charge: transition costs, boundary copies, and EPC pressure.
/// Cloning an [`Enclave`] produces another handle to the same instance, which
/// mirrors how multiple untrusted threads may enter the same enclave.
#[derive(Debug, Clone)]
pub struct Enclave {
    id: EnclaveId,
    measurement: Measurement,
    elrange_bytes: usize,
    epc: Epc,
    cost_model: CostModel,
    inner: Arc<Mutex<EnclaveInner>>,
}

impl Enclave {
    /// The enclave's unique id.
    pub fn id(&self) -> EnclaveId {
        self.id
    }

    /// The enclave's measurement (MRENCLAVE).
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Size of the enclave's ELRANGE in bytes.
    pub fn elrange_bytes(&self) -> usize {
        self.elrange_bytes
    }

    /// The cost model used to account simulated time.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Executes a trusted function as an ecall.
    ///
    /// `bytes_in` and `bytes_out` describe the marshalled buffer sizes so the
    /// transition cost can be charged; the closure is the "trusted" code.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::Destroyed`] after [`Enclave::destroy`] was called,
    /// or propagates the error returned by the trusted closure.
    pub fn ecall<R>(
        &self,
        bytes_in: usize,
        bytes_out: usize,
        trusted: impl FnOnce() -> Result<R, SgxError>,
    ) -> Result<R, SgxError> {
        {
            let mut inner = self.inner.lock();
            match inner.state {
                EnclaveState::Destroyed => return Err(SgxError::Destroyed),
                EnclaveState::Created => return Err(SgxError::NotInitialized),
                EnclaveState::Initialized => {}
            }
            inner.stats.ecalls += 1;
            inner.stats.bytes_in += bytes_in as u64;
            inner.stats.bytes_out += bytes_out as u64;
            inner.simulated_ns += self.cost_model.ecall_roundtrip_ns(bytes_in, bytes_out);
        }
        trusted()
    }

    /// Records an ocall made from inside the enclave (cost accounting only).
    pub fn ocall(&self, bytes_out: usize, bytes_in: usize) {
        let mut inner = self.inner.lock();
        inner.stats.ocalls += 1;
        inner.simulated_ns += self.cost_model.ecall_roundtrip_ns(bytes_out, bytes_in);
    }

    /// Charges additional simulated nanoseconds of in-enclave work (crypto,
    /// hashing, serialization) to this enclave.
    pub fn charge_ns(&self, ns: f64) {
        self.inner.lock().simulated_ns += ns;
    }

    /// Charges `accesses` random accesses over a working set of `bytes`.
    pub fn charge_random_accesses(&self, bytes: usize, accesses: u64) {
        self.epc.charge_accesses(self.id, accesses);
        let per_access = self.cost_model.random_access_ns(bytes);
        self.inner.lock().simulated_ns += per_access * accesses as f64;
    }

    /// Returns transition statistics accumulated so far.
    pub fn stats(&self) -> TransitionStats {
        self.inner.lock().stats
    }

    /// Total simulated nanoseconds charged to this enclave so far.
    pub fn simulated_ns(&self) -> f64 {
        self.inner.lock().simulated_ns
    }

    /// Resets the simulated-time counter and returns its previous value.
    pub fn take_simulated_ns(&self) -> f64 {
        let mut inner = self.inner.lock();
        std::mem::replace(&mut inner.simulated_ns, 0.0)
    }

    /// Destroys the enclave and releases its EPC reservation.
    pub fn destroy(&self) {
        let mut inner = self.inner.lock();
        inner.state = EnclaveState::Destroyed;
        self.epc.release(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_computes_elrange_from_components() {
        let builder = EnclaveBuilder::new(vec![0u8; 436 * 1024])
            .heap_bytes(128 * 1024)
            .stack_bytes(64 * 1024)
            .threads(1);
        // 436 KB code + 128 KB heap + 64 KB stack + 16 KB TCS ≈ 644 KB.
        assert_eq!(builder.elrange_bytes(), (436 + 128 + 64 + 16) * 1024);
    }

    #[test]
    fn measurement_depends_on_code_and_config() {
        let a = Measurement::of_image(b"entry enclave v1", 1024, 1024);
        let b = Measurement::of_image(b"entry enclave v2", 1024, 1024);
        let c = Measurement::of_image(b"entry enclave v1", 2048, 1024);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, Measurement::of_image(b"entry enclave v1", 1024, 1024));
    }

    #[test]
    fn ecall_counts_transitions_and_charges_time() {
        let epc = Epc::new();
        let enclave = EnclaveBuilder::new(b"code".to_vec()).build(&epc).unwrap();
        let result = enclave.ecall(100, 200, || Ok::<_, SgxError>(42)).unwrap();
        assert_eq!(result, 42);
        let stats = enclave.stats();
        assert_eq!(stats.ecalls, 1);
        assert_eq!(stats.bytes_in, 100);
        assert_eq!(stats.bytes_out, 200);
        assert!(enclave.simulated_ns() > 0.0);
    }

    #[test]
    fn destroyed_enclave_rejects_ecalls_and_frees_epc() {
        let epc = Epc::new();
        let enclave = EnclaveBuilder::new(b"code".to_vec()).build(&epc).unwrap();
        assert_eq!(epc.usage().enclaves, 1);
        enclave.destroy();
        assert_eq!(epc.usage().enclaves, 0);
        let err = enclave.ecall(0, 0, || Ok::<_, SgxError>(())).unwrap_err();
        assert_eq!(err, SgxError::Destroyed);
    }

    #[test]
    fn oversized_enclave_is_rejected() {
        let epc = Epc::new();
        let err =
            EnclaveBuilder::new(vec![]).heap_bytes(256 * 1024 * 1024).build(&epc).unwrap_err();
        assert!(matches!(err, SgxError::OutOfEpcMemory { .. }));
    }

    #[test]
    fn take_simulated_ns_resets_counter() {
        let epc = Epc::new();
        let enclave = EnclaveBuilder::new(b"c".to_vec()).build(&epc).unwrap();
        enclave.charge_ns(1234.5);
        assert_eq!(enclave.take_simulated_ns(), 1234.5);
        assert_eq!(enclave.simulated_ns(), 0.0);
    }

    #[test]
    fn charge_random_accesses_reflects_epc_pressure() {
        let epc = Epc::new();
        let small =
            EnclaveBuilder::new(b"small".to_vec()).heap_bytes(1024 * 1024).build(&epc).unwrap();
        small.charge_random_accesses(1024 * 1024, 1000);
        let cheap = small.take_simulated_ns();

        let big =
            EnclaveBuilder::new(b"big".to_vec()).heap_bytes(100 * 1024 * 1024).build(&epc).unwrap();
        big.charge_random_accesses(100 * 1024 * 1024 + small.elrange_bytes(), 1000);
        let expensive = big.take_simulated_ns();
        assert!(expensive > cheap * 10.0, "expensive={expensive} cheap={cheap}");
    }

    #[test]
    fn enclave_ids_are_unique() {
        let epc = Epc::new();
        let a = EnclaveBuilder::new(b"x".to_vec()).build(&epc).unwrap();
        let b = EnclaveBuilder::new(b"x".to_vec()).build(&epc).unwrap();
        assert_ne!(a.id(), b.id());
        assert_eq!(a.measurement(), b.measurement());
    }

    #[test]
    fn clone_shares_stats() {
        let epc = Epc::new();
        let enclave = EnclaveBuilder::new(b"x".to_vec()).build(&epc).unwrap();
        let handle = enclave.clone();
        handle.ecall(1, 1, || Ok::<_, SgxError>(())).unwrap();
        assert_eq!(enclave.stats().ecalls, 1);
    }
}
