//! Error type for the SGX simulation.

use std::error::Error;
use std::fmt;

/// Errors produced by the simulated SGX runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SgxError {
    /// The enclave has not been initialized (EINIT has not run).
    NotInitialized,
    /// The enclave was already destroyed.
    Destroyed,
    /// The requested ELRANGE size cannot be satisfied.
    OutOfEpcMemory {
        /// Bytes requested.
        requested: usize,
        /// Bytes currently available in the EPC.
        available: usize,
    },
    /// An ecall was invoked that the enclave does not export.
    UnknownEcall {
        /// Name of the missing ecall.
        name: String,
    },
    /// The output buffer supplied to an ecall is too small for the result.
    BufferTooSmall {
        /// Bytes required by the enclave.
        needed: usize,
        /// Bytes available in the caller-supplied buffer.
        capacity: usize,
    },
    /// Unsealing failed: the blob was produced by a different enclave
    /// measurement or was tampered with.
    UnsealingFailed,
    /// Attestation verification failed.
    AttestationFailed {
        /// Human-readable reason.
        reason: String,
    },
    /// The enclave code raised an application-level error.
    EnclaveFault {
        /// Description propagated from inside the enclave.
        message: String,
    },
}

impl fmt::Display for SgxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgxError::NotInitialized => write!(f, "enclave is not initialized"),
            SgxError::Destroyed => write!(f, "enclave has been destroyed"),
            SgxError::OutOfEpcMemory { requested, available } => {
                write!(f, "out of EPC memory: requested {requested} bytes, {available} available")
            }
            SgxError::UnknownEcall { name } => write!(f, "unknown ecall `{name}`"),
            SgxError::BufferTooSmall { needed, capacity } => {
                write!(f, "ecall buffer too small: need {needed} bytes, capacity {capacity}")
            }
            SgxError::UnsealingFailed => write!(f, "unsealing failed"),
            SgxError::AttestationFailed { reason } => write!(f, "attestation failed: {reason}"),
            SgxError::EnclaveFault { message } => write!(f, "enclave fault: {message}"),
        }
    }
}

impl Error for SgxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = SgxError::OutOfEpcMemory { requested: 1024, available: 512 };
        assert!(err.to_string().contains("1024"));
        assert!(err.to_string().contains("512"));
        assert!(SgxError::UnknownEcall { name: "ec_request".into() }
            .to_string()
            .contains("ec_request"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SgxError>();
    }
}
