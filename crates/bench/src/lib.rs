//! Shared helpers for the figure/table reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one figure or table of the paper's
//! evaluation (see `DESIGN.md` for the index) and prints it as an aligned text
//! table: one row per x value, one column per series. Run them with, e.g.,
//!
//! ```text
//! cargo run -p bench --bin fig07_get_throughput
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use workload::costmodel::ServiceCostModel;
use workload::metrics::{Figure, Series};
use workload::variant::{OpKind, RequestMode, Variant};

/// Payload sizes (bytes) swept on the x-axis of Figures 7–9.
pub fn payload_sweep() -> Vec<usize> {
    vec![0, 256, 512, 1024, 1536, 2048, 2560, 3072, 3584, 4096, 4500]
}

/// Builds one throughput-vs-payload figure for a single operation, with one
/// series per (variant, mode) combination — the layout of Figures 7 and 8.
pub fn throughput_vs_payload_figure(caption: &str, op: OpKind, modes: &[RequestMode]) -> Figure {
    let model = ServiceCostModel::default();
    let mut figure = Figure::new(caption, "Payload [Byte]", "Requests/s");
    for &mode in modes {
        for variant in Variant::all() {
            let mut series = Series::new(format!("{} {}", variant.label(), mode.label()));
            for &payload in &payload_sweep() {
                let clients = match mode {
                    RequestMode::Synchronous => 300,
                    RequestMode::Asynchronous => 5,
                };
                series.push(
                    payload as f64,
                    model.throughput_rps(variant, op, payload, mode, clients),
                );
            }
            figure.add(series);
        }
    }
    figure
}

/// Prints a figure to stdout in the canonical text-table form.
pub fn print_figure(figure: &Figure) {
    println!("{}", figure.to_table());
}

/// Prints a short header so the harness output is self-describing.
pub fn print_header(experiment: &str, paper_reference: &str) {
    println!("================================================================");
    println!("{experiment}");
    println!("reproduces: {paper_reference}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_sweep_is_sorted_and_covers_the_paper_range() {
        let sweep = payload_sweep();
        assert_eq!(*sweep.first().unwrap(), 0);
        assert_eq!(*sweep.last().unwrap(), 4500);
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn figures_contain_six_series_for_two_modes() {
        let figure = throughput_vs_payload_figure(
            "test",
            OpKind::Get,
            &[RequestMode::Synchronous, RequestMode::Asynchronous],
        );
        assert_eq!(figure.series.len(), 6);
        assert!(figure.to_table().contains("SecureKeeper"));
    }
}
