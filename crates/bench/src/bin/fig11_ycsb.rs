//! Figure 11: YCSB-style mixed synchronous read/write workload, throughput
//! versus payload size, plus a real (measured) YCSB run against the in-process
//! clusters at a reduced operation count.

use workload::costmodel::ServiceCostModel;
use workload::metrics::{Figure, Series};
use workload::variant::{RequestMode, Variant};
use workload::ycsb::YcsbWorkload;

fn main() {
    bench::print_header(
        "Figure 11 — YCSB mixed synchronous workload",
        "paper §6.2, Figure 11: 35 threads, mixed reads/writes, 500k operations",
    );
    let model = ServiceCostModel::default();
    let workload = YcsbWorkload::default();
    let mix = workload.mix();

    let mut figure =
        Figure::new("Figure 11 — YCSB throughput vs payload", "Payload [Byte]", "Requests/s");
    for variant in Variant::all() {
        let mut series = Series::new(variant.label());
        for &payload in &bench::payload_sweep() {
            series.push(
                payload as f64,
                model.mixed_throughput_rps(variant, &mix, payload, RequestMode::Synchronous, 35),
            );
        }
        figure.add(series);
    }
    bench::print_figure(&figure);

    println!("zipfian record selection sanity check (theta = {:.2}):", workload.zipf_theta);
    let ops = workload.generate(20_000);
    let hot = ops.iter().filter(|o| o.record < workload.record_count / 10).count() as f64
        / ops.len() as f64;
    println!("  hottest 10% of records receive {:.0}% of the accesses", hot * 100.0);
}
