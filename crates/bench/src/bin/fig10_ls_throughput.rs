//! Figure 10: LS (getChildren) throughput versus payload size — under
//! SecureKeeper every listed child name must be decrypted individually.

use workload::costmodel::ServiceCostModel;
use workload::metrics::{Figure, Series};
use workload::variant::{OpKind, RequestMode, Variant};

fn main() {
    bench::print_header(
        "Figure 10 — throughput of sync. and async. LS requests",
        "paper §6.2, Figure 10: the per-child path decryption makes LS the costliest read",
    );
    let model = ServiceCostModel::default();
    let mut figure =
        Figure::new("Figure 10 — LS throughput vs payload", "Payload [Byte]", "Requests/s");
    for mode in [RequestMode::Synchronous, RequestMode::Asynchronous] {
        for variant in Variant::all() {
            let mut series = Series::new(format!("{} {}", variant.label(), mode.label()));
            for payload in [0usize, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
                let clients = if mode == RequestMode::Synchronous { 300 } else { 5 };
                series.push(
                    payload as f64,
                    model.throughput_rps(variant, OpKind::Ls, payload, mode, clients),
                );
            }
            figure.add(series);
        }
    }
    bench::print_figure(&figure);
    println!(
        "(the model lists {} children per LS call, as in the evaluation setup)",
        model.ls_children
    );
}
