//! Figure 14 (repro extension): connection scaling on the event-loop
//! transport — many live client connections against one server process.
//!
//! The paper's deployment regime is "many concurrent clients"; this harness
//! measures what the sharded readiness reactor buys there. For each variant
//! (vanilla ZooKeeper and SecureKeeper) it:
//!
//! 1. ramps up N live connections (default 1000, `--clients N` to override;
//!    the 10k point is opt-in because in-process loopback costs two file
//!    descriptors per connection — 10k connections need `ulimit -n` ≥ 24000,
//!    see docs/OPERATIONS.md),
//! 2. holds them all **idle** while a sampled subset performs reads, proving
//!    the held connections cost no transport threads and the loop stays
//!    interactive,
//! 3. drives **reads across every connection** from a small pool of worker
//!    threads and reports aggregate throughput plus the p99 read latency.
//!
//! The server's transport thread count is asserted O(cores) — independent of
//! N — which is the scaling claim the reactor exists to make true.
//!
//! ```text
//! cargo run --release --bin fig14_connections            # 1000 connections
//! cargo run --release --bin fig14_connections -- --clients 10000
//! ```
//!
//! With `BENCH_JSON` set, p99 and derived ns/op rows are appended in the
//! regression-guard JSON-lines format (`scripts/check_bench_regression.py`).

use std::io::Write;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use securekeeper::integration::{secure_standalone, SecureKeeperConfig};
use securekeeper::SecureSessionCredentials;
use workload::metrics::{Figure, Series};
use zkserver::net::{PlainCredentials, SessionCredentials};
use zkserver::session::MonotonicClock;
use zkserver::{ZkReplica, ZkTcpClient, ZkTcpServer};

/// Default number of live connections per variant.
const DEFAULT_CLIENTS: usize = 1000;
/// Payload of the read target znode.
const PAYLOAD_BYTES: usize = 256;
/// Reads per connection in the active phase.
const READS_PER_CONN: usize = 4;
/// Worker threads driving the active phase (the point: a handful of client
/// threads, not one per connection).
const ACTIVE_WORKERS: usize = 8;
/// Every Nth connection performs a probe read during the idle phase.
const IDLE_SAMPLE_STRIDE: usize = 100;

struct PhaseReport {
    ops: usize,
    wall: Duration,
    p99_ns: u64,
}

impl PhaseReport {
    fn throughput_rps(&self) -> f64 {
        self.ops as f64 / self.wall.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

fn p99(latencies: &mut [u64]) -> u64 {
    if latencies.is_empty() {
        return 0;
    }
    latencies.sort_unstable();
    let rank = (latencies.len() as f64 * 0.99).ceil() as usize;
    latencies[rank.saturating_sub(1).min(latencies.len() - 1)]
}

/// Connects `count` sessions and verifies each can read the target znode's
/// prefix (cheap liveness check during ramp-up, every 250th connection).
fn ramp_up(
    addr: SocketAddr,
    credentials: &Arc<dyn SessionCredentials>,
    count: usize,
) -> Vec<ZkTcpClient> {
    let mut clients = Vec::with_capacity(count);
    for index in 0..count {
        let mut client = ZkTcpClient::connect_with(addr, Arc::clone(credentials), 60_000)
            .unwrap_or_else(|err| {
                panic!("connect {index}/{count} failed: {err} (raise `ulimit -n`?)")
            });
        if index % 250 == 0 {
            client.get_data("/fig14", false).expect("ramp-up probe read");
        }
        clients.push(client);
    }
    clients
}

/// Idle phase: all connections stay open, a sampled subset reads. Returns the
/// sampled read latencies' p99.
fn idle_phase(clients: &mut [ZkTcpClient]) -> PhaseReport {
    let started = Instant::now();
    let mut latencies = Vec::new();
    for client in clients.iter_mut().step_by(IDLE_SAMPLE_STRIDE) {
        let before = Instant::now();
        client.get_data("/fig14", false).expect("idle probe read");
        latencies.push(before.elapsed().as_nanos() as u64);
    }
    let ops = latencies.len();
    PhaseReport { ops, wall: started.elapsed(), p99_ns: p99(&mut latencies) }
}

/// Active phase: every connection performs `READS_PER_CONN` reads, driven by
/// `ACTIVE_WORKERS` threads that each own a slice of the connections.
fn active_phase(clients: Vec<ZkTcpClient>) -> (PhaseReport, Vec<ZkTcpClient>) {
    let total = clients.len();
    let chunk = total.div_ceil(ACTIVE_WORKERS);
    let started = Instant::now();
    let mut handles = Vec::new();
    let mut clients = clients;
    while !clients.is_empty() {
        let mut slice: Vec<ZkTcpClient> = clients.drain(..chunk.min(clients.len())).collect();
        handles.push(std::thread::spawn(move || {
            let mut latencies = Vec::with_capacity(slice.len() * READS_PER_CONN);
            for client in &mut slice {
                for _ in 0..READS_PER_CONN {
                    let before = Instant::now();
                    client.get_data("/fig14", false).expect("active read");
                    latencies.push(before.elapsed().as_nanos() as u64);
                }
            }
            (slice, latencies)
        }));
    }
    let mut latencies = Vec::with_capacity(total * READS_PER_CONN);
    let mut survivors = Vec::with_capacity(total);
    for handle in handles {
        let (slice, mut worker_latencies) = handle.join().expect("active worker");
        survivors.extend(slice);
        latencies.append(&mut worker_latencies);
    }
    let wall = started.elapsed();
    let ops = latencies.len();
    (PhaseReport { ops, wall, p99_ns: p99(&mut latencies) }, survivors)
}

struct VariantResult {
    label: &'static str,
    clients: usize,
    idle: PhaseReport,
    active: PhaseReport,
    transport_threads: usize,
}

fn run_variant(
    label: &'static str,
    server: &ZkTcpServer,
    credentials: Arc<dyn SessionCredentials>,
    count: usize,
) -> VariantResult {
    // Seed the read target through a throwaway session.
    {
        let mut seeder =
            ZkTcpClient::connect_with(server.local_addr(), Arc::clone(&credentials), 60_000)
                .expect("seeder connect");
        match seeder.create(
            "/fig14",
            vec![7u8; PAYLOAD_BYTES],
            jute::records::CreateMode::Persistent,
        ) {
            Ok(_) | Err(zkserver::ZkError::NodeExists { .. }) => {}
            Err(err) => panic!("seed /fig14: {err}"),
        }
        seeder.close();
    }

    let mut clients = ramp_up(server.local_addr(), &credentials, count);
    assert!(
        server.connection_count() >= count,
        "{label}: expected {count} live connections, server sees {}",
        server.connection_count()
    );

    // The scaling claim: transport threads are O(cores), never O(N).
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let transport_threads = server.transport_thread_count();
    assert!(
        transport_threads <= cores.min(4) + 2,
        "{label}: {transport_threads} transport threads for {count} connections"
    );

    let idle = idle_phase(&mut clients);
    let (active, survivors) = active_phase(clients);
    for client in survivors {
        client.close();
    }
    VariantResult { label, clients: count, idle, active, transport_threads }
}

fn append_json_row(path: &str, benchmark: &str, value_ns: f64) {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .expect("open BENCH_JSON output");
    writeln!(file, "{{\"benchmark\":\"{benchmark}\",\"median_ns\":{value_ns:.1}}}")
        .expect("write BENCH_JSON row");
}

fn report(result: &VariantResult, json_path: Option<&str>) {
    println!(
        "{}: {} connections held on {} transport threads",
        result.label, result.clients, result.transport_threads
    );
    println!(
        "  idle probe:  {} sampled reads, p99 {:.2} ms",
        result.idle.ops,
        result.idle.p99_ns as f64 / 1e6
    );
    println!(
        "  active:      {} reads in {:.2} s — {:.0} reads/s, p99 {:.2} ms",
        result.active.ops,
        result.active.wall.as_secs_f64(),
        result.active.throughput_rps(),
        result.active.p99_ns as f64 / 1e6
    );
    if let Some(path) = json_path {
        let clients = result.clients;
        let label = result.label;
        append_json_row(
            path,
            &format!("fig14/active_read_p99_ns_{clients}conns/{label}"),
            result.active.p99_ns as f64,
        );
        append_json_row(
            path,
            &format!("fig14/active_read_derived_ns_per_op_{clients}conns/{label}"),
            1e9 / result.active.throughput_rps().max(f64::MIN_POSITIVE),
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let clients = args
        .iter()
        .position(|arg| arg == "--clients")
        .and_then(|position| args.get(position + 1))
        .and_then(|value| value.parse::<usize>().ok())
        .unwrap_or(DEFAULT_CLIENTS)
        .max(1);
    let json_path = std::env::var("BENCH_JSON").ok();

    bench::print_header(
        "Figure 14 (repro extension) — live-connection scaling on the event-loop transport",
        "N held connections, O(cores) transport threads, p99 read latency under full fan-out",
    );

    let mut figure = Figure::new(
        format!("Figure 14 — active read throughput at {clients} live connections"),
        "Variant",
        "Reads/s",
    );

    // Vanilla ZooKeeper: plain transport, passthrough interceptor.
    let plain = {
        let replica = Arc::new(ZkReplica::new(1).with_clock(Arc::new(MonotonicClock::new())));
        let server = ZkTcpServer::bind("127.0.0.1:0", replica).expect("bind loopback");
        let result = run_variant("plain", &server, Arc::new(PlainCredentials), clients);
        server.shutdown();
        result
    };
    report(&plain, json_path.as_deref());
    let mut series = Series::new("zookeeper (measured)");
    series.push(clients as f64, plain.active.throughput_rps());
    figure.add(series);

    // SecureKeeper: entry enclaves on the connection path, encrypted wire.
    let secure = {
        let config = SecureKeeperConfig::with_label("fig14-conns");
        let (replica, _interceptor, _counter) = secure_standalone(&config);
        let server = ZkTcpServer::bind("127.0.0.1:0", replica).expect("bind loopback");
        let result = run_variant("secure", &server, Arc::new(SecureSessionCredentials), clients);
        server.shutdown();
        result
    };
    report(&secure, json_path.as_deref());
    let mut series = Series::new("securekeeper (measured)");
    series.push(clients as f64, secure.active.throughput_rps());
    figure.add(series);

    bench::print_figure(&figure);
}
