//! Figure 2: memory usage of a ZooKeeper cluster over time (idle, then a
//! 70:30 GET/SET workload from 4 clients on 1 KiB znodes).

use workload::memtrace::{JvmModel, MemoryTrace};

fn main() {
    bench::print_header(
        "Figure 2 — memory usage of ZooKeeper over time",
        "paper §3.3, Figure 2: idle ~120 MB, >400 MB under a small workload",
    );
    let trace = MemoryTrace::default();
    let traces = trace.run(&JvmModel::default());

    println!(
        "{:>8} {:>22} {:>22} {:>22}",
        "time[s]", &traces[0].label, &traces[1].label, &traces[2].label
    );
    println!(
        "{:>8} {:>11} {:>10} {:>11} {:>10} {:>11} {:>10}",
        "", "total[MB]", "tree[MB]", "total[MB]", "tree[MB]", "total[MB]", "tree[MB]"
    );
    let samples = traces[0].total_bytes.points.len();
    for i in 0..samples {
        let t = traces[0].total_bytes.points[i].0;
        print!("{t:>8.0}");
        for replica in &traces {
            let total = replica.total_bytes.points[i].1 / (1024.0 * 1024.0);
            let tree = replica.tree_bytes.points[i].1 / (1024.0 * 1024.0);
            print!(" {total:>11.1} {tree:>10.3}");
        }
        println!();
    }
    println!();
    println!("note: 'total' models the paper's JVM process footprint (baseline heap +");
    println!("per-request garbage); 'tree' is the measured coordination state of this");
    println!("reproduction's replicas — the part SecureKeeper actually has to protect.");
    let epc_mb = sgx_sim::EPC_USABLE_BYTES as f64 / (1024.0 * 1024.0);
    println!("usable EPC for comparison: {epc_mb:.0} MB");
}
