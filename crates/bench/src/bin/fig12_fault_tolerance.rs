//! Figure 12: throughput over time while a replica fails — leader failure
//! (12a, with an election outage) and follower failure (12b).

use workload::costmodel::ServiceCostModel;
use workload::faults::{FaultExperiment, FaultKind};
use workload::metrics::Figure;
use workload::variant::Variant;

fn main() {
    bench::print_header(
        "Figure 12 — fault-tolerance behaviour of the ZooKeeper variants",
        "paper §6.3, Figures 12a/12b: leader failure causes a short outage, follower failure only a capacity drop",
    );
    let model = ServiceCostModel::default();
    for (caption, fault) in [
        ("Figure 12a — leader failure", FaultKind::Leader),
        ("Figure 12b — follower failure", FaultKind::Follower),
    ] {
        let experiment = FaultExperiment { fault, ..FaultExperiment::default() };
        let mut figure = Figure::new(caption, "Time [s]", "Requests/s");
        for variant in Variant::all() {
            figure.add(experiment.timeline(&model, variant));
        }
        bench::print_figure(&figure);
        println!(
            "steady-state throughput after the fault: {:.0}% of the pre-fault level\n",
            experiment.expected_degradation(&model, Variant::SecureKeeper) * 100.0
        );
    }
}
