//! Figure 12 (networked): measured throughput over time while the *leader*
//! of a live 3-replica TCP ensemble crashes — the real-socket counterpart of
//! the analytic `fig12_fault_tolerance` timeline.
//!
//! Both variants run on loopback: a vanilla ensemble (plain wire, local
//! reads, forwarded writes) and a SecureKeeper ensemble (entry-enclave
//! interceptor on every replica, clients with replayable session keys that
//! survive the failover). The harness reports the pre-crash steady state,
//! the depth of the outage, and the time until throughput recovers.
//!
//! When `BENCH_JSON` is set, the key metrics are appended to that file as
//! JSON lines compatible with `scripts/check_bench_regression.py` (the
//! `ensemble-e2e` CI job archives them as `BENCH_ensemble.json`).

use std::io::Write;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use securekeeper::integration::{secure_ensemble_replica, SecureKeeperConfig};
use securekeeper::ReplayableSessionCredentials;
use workload::failover::{run_failover, FailoverReport, FailoverSpec};
use zkserver::ensemble::{EnsembleConfig, ZkEnsembleServer};
use zkserver::net::{PlainCredentials, SessionCredentials};
use zkserver::session::MonotonicClock;
use zkserver::ZkReplica;

fn ensemble_config() -> EnsembleConfig {
    EnsembleConfig {
        heartbeat_interval: Duration::from_millis(25),
        election_timeout: Duration::from_millis(200),
        election_vote_window: Duration::from_millis(100),
        write_timeout: Duration::from_secs(2),
        poll_interval: Duration::from_millis(5),
        ..EnsembleConfig::default()
    }
}

/// Runs one leader-crash experiment and returns the report plus the spec it
/// ran under.
fn run_variant(
    label: &str,
    servers: Vec<ZkEnsembleServer>,
    credentials: &dyn Fn() -> Arc<dyn SessionCredentials>,
) -> (FailoverReport, FailoverSpec) {
    let mut servers = servers;
    assert!(servers[0].is_leader(), "member 1 leads the first epoch");
    // Clients only dial the two survivors so every reconnect lands.
    let addrs: Vec<SocketAddr> = servers[1..].iter().map(|s| s.client_addr()).collect();
    let leader = servers.remove(0);
    let spec = FailoverSpec::default();
    let report = run_failover(&addrs, credentials, || leader.shutdown(), &spec);

    println!("--- {label} ---");
    println!(
        "steady state: {:.0} req/s ({:.1} µs/op, {} clients)",
        report.pre_crash_rps,
        report.steady_op_latency.as_secs_f64() * 1e6,
        spec.clients,
    );
    match report.recovery {
        Some(recovery) => println!(
            "leader crash at t={:.1}s: recovered to >=50% in {} ms, post-crash {:.0} req/s",
            report.crash_bucket as f64 * report.bucket_seconds,
            recovery.as_millis(),
            report.post_crash_rps,
        ),
        None => println!("leader crash: ensemble did NOT recover within the run"),
    }
    print!("timeline [req/s]:");
    for (bucket, rps) in report.timeline_rps.iter().enumerate() {
        if bucket == report.crash_bucket {
            print!("  |CRASH|");
        }
        print!(" {rps:.0}");
    }
    println!("\n");
    (report, spec)
}

/// Appends regression-guard rows in the vendored-criterion JSON-lines format.
fn append_json(path: &str, label: &str, report: &FailoverReport, spec: &FailoverSpec) {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .expect("open BENCH_JSON output");
    let rows = [
        (format!("ensemble/failover_recovery_ms/{label}"), report.recovery_ms(spec) * 1e6),
        (format!("ensemble/steady_op_latency/{label}"), report.steady_op_latency.as_nanos() as f64),
    ];
    for (benchmark, median_ns) in rows {
        writeln!(file, "{{\"benchmark\":\"{benchmark}\",\"median_ns\":{median_ns:.1}}}")
            .expect("write BENCH_JSON row");
    }
}

fn main() {
    bench::print_header(
        "Figure 12 (networked) — measured fault tolerance of the live TCP ensemble",
        "paper §6.3, Figure 12a: leader failure causes a short outage until a new leader serves",
    );
    let json_path = std::env::var("BENCH_JSON").ok();

    // Vanilla ensemble.
    let servers = ZkEnsembleServer::start_local_ensemble(3, &ensemble_config(), |id| {
        Arc::new(ZkReplica::new(id).with_clock(Arc::new(MonotonicClock::new())))
    })
    .expect("bind vanilla ensemble");
    let (report, spec) =
        run_variant("zookeeper (plain wire)", servers, &|| Arc::new(PlainCredentials));
    assert!(report.recovery.is_some(), "plain ensemble failed to recover from the leader crash");
    if let Some(path) = &json_path {
        append_json(path, "plain", &report, &spec);
    }

    // SecureKeeper ensemble: every replica runs the entry-enclave
    // interceptor; clients replay their session key across the failover.
    let config = SecureKeeperConfig::with_label("fig12-failover");
    let servers = ZkEnsembleServer::start_local_ensemble(3, &ensemble_config(), move |id| {
        let (replica, _interceptor, _counter) = secure_ensemble_replica(id, &config);
        replica
    })
    .expect("bind secure ensemble");
    let (report, spec) = run_variant("securekeeper (encrypted wire)", servers, &|| {
        Arc::new(ReplayableSessionCredentials::generate())
    });
    assert!(report.recovery.is_some(), "secure ensemble failed to recover from the leader crash");
    if let Some(path) = &json_path {
        append_json(path, "secure", &report, &spec);
    }
}
