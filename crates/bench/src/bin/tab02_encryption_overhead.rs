//! Table 2: how transport, path and payload encryption change message lengths,
//! measured with the real ciphers of the `securekeeper` crate.

use workload::report::EncryptionOverheadReport;

fn main() {
    bench::print_header(
        "Table 2 — comparison of encryption overhead",
        "paper §6.2, Table 2: transport adds a constant, paths grow per chunk (~33% Base64 + IV/MAC), payloads grow by a constant",
    );
    println!(
        "{:>6} {:>9} {:>12} {:>14} {:>16} {:>18} {:>12}",
        "depth",
        "payload",
        "plain path",
        "cipher path",
        "plain request",
        "storage request",
        "tls request"
    );
    for depth in [1usize, 2, 3, 5] {
        for payload in [0usize, 128, 1024, 4096] {
            let report = EncryptionOverheadReport::measure(depth, payload);
            println!(
                "{:>6} {:>9} {:>12} {:>14} {:>16} {:>18} {:>12}",
                depth,
                payload,
                report.plain_path_len,
                report.encrypted_path_len,
                report.plain_request_len,
                report.storage_encrypted_request_len,
                report.transport_encrypted_request_len,
            );
        }
    }
    let reference = EncryptionOverheadReport::measure(3, 1024);
    println!();
    println!(
        "constant per-payload storage overhead: {} bytes (IV + tag + path hash + flag)",
        reference.payload_overhead
    );
    println!(
        "constant per-frame transport overhead: {} bytes (AES-GCM tag)",
        reference.transport_overhead
    );
    println!("path growth factor at depth 3: x{:.2}", reference.path_growth_factor());
    println!();
    println!("qualitative summary (paper Table 2):");
    println!("  transport  | request: -tag -IV      | response: +tag +IV");
    println!(
        "  path       | request: +per-chunk overhead | response: -per-chunk overhead (LS only)"
    );
    println!("  payload    | request: +tag +IV +hash | response: -tag -IV -hash");
}
