//! Figure 8: SET throughput versus payload size, synchronous and asynchronous.

use workload::variant::{OpKind, RequestMode};

fn main() {
    bench::print_header(
        "Figure 8 — throughput of sync. and async. SET requests",
        "paper §6.2, Figure 8",
    );
    let figure = bench::throughput_vs_payload_figure(
        "Figure 8 — SET throughput vs payload",
        OpKind::Set,
        &[RequestMode::Synchronous, RequestMode::Asynchronous],
    );
    bench::print_figure(&figure);
}
